//! Property tests for the generic delta-dataflow engine: agreement with
//! from-scratch re-evaluation on arbitrary valid update streams — including
//! the *cyclic* triangle query no specialized engine accepts — and
//! order-independence of batches (Sec. 2: ring payloads make a batch's
//! cumulative effect independent of execution order).

use ivm_core::Maintainer;
use ivm_data::ops::{eval_join_aggregate, lift_one};
use ivm_data::{sym, Database, Relation, Tuple, Update, Value};
use ivm_dataflow::DataflowEngine;
use ivm_query::{Atom, Query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The cyclic self-join triangle count `Q() = Σ E(a,b)·E(b,c)·E(c,a)`.
fn triangle_query() -> Query {
    let [a, b, c] = ivm_data::vars(["dfq_A", "dfq_B", "dfq_C"]);
    let e = sym("dfq_E");
    Query::new(
        "dfq_tri",
        [],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    )
}

/// A cyclic triangle *listing* variant with free vertex variables, over
/// three distinct edge relations.
fn triangle_listing_query() -> Query {
    let [a, b, c] = ivm_data::vars(["dfq_LA", "dfq_LB", "dfq_LC"]);
    Query::new(
        "dfq_tri_list",
        [a, b, c],
        vec![
            Atom::new(sym("dfq_LR"), [a, b]),
            Atom::new(sym("dfq_LS"), [b, c]),
            Atom::new(sym("dfq_LT"), [c, a]),
        ],
    )
}

/// From-scratch oracle for a (possibly self-join) query: one relation per
/// atom, re-schema'd to the atom's variables, joined and aggregated.
fn oracle(q: &Query, base: &[Relation<i64>]) -> Relation<i64> {
    let per_atom: Vec<Relation<i64>> = q
        .atoms
        .iter()
        .zip(base)
        .map(|(atom, rel)| {
            Relation::from_rows(
                atom.schema.clone(),
                rel.iter().map(|(t, r)| (t.clone(), *r)),
            )
        })
        .collect();
    let refs: Vec<&Relation<i64>> = per_atom.iter().collect();
    eval_join_aggregate(&refs, &q.free, lift_one)
}

fn assert_outputs_match(
    got: &Relation<i64>,
    expect: &Relation<i64>,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), expect.len(), "{}: sizes differ", ctx);
    for (t, p) in expect.iter() {
        prop_assert_eq!(&got.get(t), p, "{} at {:?}", ctx, t);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cyclic self-join triangle: the maintained count equals from-scratch
    /// re-evaluation after every prefix of a random insert/delete stream.
    #[test]
    fn triangle_self_join_matches_oracle(
        ops in proptest::collection::vec(((0u64..5, 0u64..5), proptest::bool::ANY), 0..50),
    ) {
        let q = triangle_query();
        let e = q.atoms[0].name;
        let mut eng = DataflowEngine::<i64>::new(q.clone(), &Database::new(), lift_one).unwrap();
        let mut edges = Relation::<i64>::new(q.atoms[0].schema.clone());
        for (i, ((a, b), del)) in ops.iter().enumerate() {
            let t = ivm_data::tup![*a, *b];
            let m: i64 = if *del && edges.get(&t) > 0 { -1 } else { 1 };
            edges.apply(t.clone(), &m);
            eng.apply(&Update::with_payload(e, t, m)).unwrap();
            if i % 7 == 0 {
                let expect = oracle(&q, &[edges.clone(), edges.clone(), edges.clone()]);
                prop_assert_eq!(
                    eng.output_relation().get(&Tuple::empty()),
                    expect.get(&Tuple::empty()),
                    "after op {}", i
                );
            }
        }
        let expect = oracle(&q, &[edges.clone(), edges.clone(), edges]);
        assert_outputs_match(eng.output_relation(), &expect, "final")?;
    }

    /// Cyclic triangle listing with free variables over three relations.
    #[test]
    fn triangle_listing_matches_oracle(
        ops in proptest::collection::vec(
            (0usize..3, (0u64..4, 0u64..4), proptest::bool::ANY),
            0..45,
        ),
    ) {
        let q = triangle_listing_query();
        let mut eng = DataflowEngine::<i64>::new(q.clone(), &Database::new(), lift_one).unwrap();
        let mut base: Vec<Relation<i64>> = q
            .atoms
            .iter()
            .map(|a| Relation::new(a.schema.clone()))
            .collect();
        for (ai, (x, y), del) in ops {
            let t = ivm_data::tup![x, y];
            let m: i64 = if del && base[ai].get(&t) > 0 { -1 } else { 1 };
            base[ai].apply(t.clone(), &m);
            eng.apply(&Update::with_payload(q.atoms[ai].name, t, m)).unwrap();
        }
        let expect = oracle(&q, &base);
        assert_outputs_match(eng.output_relation(), &expect, "listing")?;
    }

    /// Ring order-independence (Sec. 2): one consolidated `apply_batch` of
    /// N shuffled updates leaves the engine in a state identical to N
    /// single `apply` calls in original order — for a q-hierarchical star
    /// AND the cyclic triangle.
    #[test]
    fn batch_of_shuffled_updates_equals_singles(
        ops in proptest::collection::vec(
            (0usize..3, (0i64..4, 0i64..4), -1i64..3),
            0..60,
        ),
        seed in 0u64..1_000,
    ) {
        let [x, y, z, w] = ivm_data::vars(["dfq_SX", "dfq_SY", "dfq_SZ", "dfq_SW"]);
        let star = Query::new(
            "dfq_star",
            [x, y, z, w],
            vec![
                Atom::new(sym("dfq_SR"), [x, y]),
                Atom::new(sym("dfq_SS"), [x, z]),
                Atom::new(sym("dfq_ST"), [x, w]),
            ],
        );
        for q in [star, triangle_query()] {
            let updates: Vec<Update<i64>> = ops
                .iter()
                .filter(|(_, _, m)| *m != 0)
                .map(|(ai, (a, b), m)| {
                    let atom = &q.atoms[ai % q.atoms.len()];
                    Update::with_payload(atom.name, ivm_data::tup![*a, *b], *m)
                })
                .collect();

            let mut shuffled = updates.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, rng.gen_range(0..i + 1));
            }

            let db = Database::new();
            let mut singles = DataflowEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
            let mut batched = DataflowEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
            for u in &updates {
                singles.apply(u).unwrap();
            }
            batched.apply_batch(&shuffled).unwrap();

            let expect = singles.output();
            assert_outputs_match(batched.output_relation(), &expect, q.name.name().as_str())?;
            // Consolidation means the batch propagates at most once per
            // distinct (relation, tuple) key, usually far fewer deltas.
            prop_assert!(batched.stats().deltas_in <= singles.stats().deltas_in);
        }
    }
}

/// Deterministic end-to-end check mirroring Kara et al.'s triangle setting:
/// maintain the triangle count under interleaved inserts/deletes and
/// compare against brute force over the final edge set.
#[test]
fn triangle_count_brute_force_cross_check() {
    let q = triangle_query();
    let e = q.atoms[0].name;
    let mut eng = DataflowEngine::<i64>::new(q, &Database::new(), lift_one).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let mut edges = std::collections::HashMap::<(u64, u64), i64>::new();
    for _ in 0..400 {
        let a = rng.gen_range(0..12u64);
        let b = rng.gen_range(0..12u64);
        let cur = edges.entry((a, b)).or_insert(0);
        let m: i64 = if rng.gen_bool(0.35) && *cur > 0 {
            -1
        } else {
            1
        };
        *cur += m;
        eng.apply(&Update::with_payload(e, ivm_data::tup![a, b], m))
            .unwrap();
    }
    edges.retain(|_, v| *v != 0);
    let mut brute = 0i64;
    for (&(a, b), &m1) in &edges {
        for (&(b2, c), &m2) in &edges {
            if b2 != b {
                continue;
            }
            if let Some(&m3) = edges.get(&(c, a)) {
                brute += m1 * m2 * m3;
            }
        }
    }
    assert_eq!(eng.output_relation().get(&Tuple::empty()), brute);
}

/// The engine accepts every query of the q-hierarchical family used in
/// `engine_equivalence.rs` *and* queries outside that class — construction
/// is total over conjunctive queries.
#[test]
fn construction_is_total_over_query_shapes() {
    let queries = [
        ivm_query::examples::fig3_query(),
        ivm_query::examples::ex43_non_hierarchical(),
        ivm_query::examples::path3_query(),
        triangle_query(),
        triangle_listing_query(),
    ];
    for q in queries {
        let eng = DataflowEngine::<i64>::new(q.clone(), &Database::new(), lift_one);
        assert!(eng.is_ok(), "construction failed for {q:?}");
    }
}

/// Value-typed columns flow through the dataflow unchanged (string keys).
#[test]
fn string_valued_columns_supported() {
    let [k, v] = ivm_data::vars(["dfq_strK", "dfq_strV"]);
    let (rn, sn) = (sym("dfq_strR"), sym("dfq_strS"));
    let q = Query::new(
        "dfq_str",
        [k],
        vec![Atom::new(rn, [k, v]), Atom::new(sn, [k])],
    );
    let mut eng = DataflowEngine::<i64>::new(q, &Database::new(), lift_one).unwrap();
    eng.apply(&Update::insert(
        rn,
        Tuple::new([Value::str("apple"), Value::from(1i64)]),
    ))
    .unwrap();
    eng.apply(&Update::insert(sn, Tuple::new([Value::str("apple")])))
        .unwrap();
    eng.apply(&Update::insert(sn, Tuple::new([Value::str("pear")])))
        .unwrap();
    assert_eq!(eng.output().get(&Tuple::new([Value::str("apple")])), 1);
    assert_eq!(eng.output().get(&Tuple::new([Value::str("pear")])), 0);
}
