//! Crash-consistency and kill-and-recover acceptance for `ivm-store`.
//!
//! Two layers of evidence that durable sessions survive a kill:
//!
//! 1. **Journal-level crash consistency** — for *every* byte offset
//!    inside the final record of a committed journal, and for every
//!    single-byte corruption of that record, replay stops deterministically
//!    at the last valid record. It never panics and never invents data.
//!
//! 2. **Session-level equivalence** — a session that is killed at an
//!    arbitrary point of a generated update stream (with a snapshot taken
//!    at an arbitrary earlier point) and then recovered must, after the
//!    rest of the stream, agree tuple-for-tuple with a never-killed
//!    oracle that saw the same stream. Warm restarts must come back on
//!    the pre-kill plan without a blind-build first-data replan.
//!
//! Shapes, stream strategies, and the oracle live in `tests/common`.

mod common;

use common::{
    clamped_updates, edge_ops_default, edge_updates, mirror_db, oracle_db, outputs_match, star,
    triangle, triangle3, wide_ops,
};
use ivm::{Database, EngineKind, Maintainer, Session, Update};
use ivm_data::{sym, tup};
use ivm_dataflow::{ReplanPolicy, ReplanTrigger};
use ivm_obs::MetricsRegistry;
use ivm_query::{Atom, Query};
use ivm_store::Journal;
use ivm_workloads::RetailerGen;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh scratch directory per call — proptest cases in one process
/// must not share journal files.
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ivm-recov-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------
// 1. Journal-level crash consistency
// ---------------------------------------------------------------------

/// Truncate a committed journal at every byte offset inside its final
/// record: replay must return exactly the earlier records, report the
/// torn tail, and hand back a `valid_bytes` that resumes cleanly.
#[test]
fn replay_stops_at_every_truncation_offset_of_the_final_record() {
    let dir = scratch("trunc");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.ivm");
    let e = sym("srj_E");
    let batch = |i: i64| {
        vec![
            Update::<i64>::with_payload(e, tup![i, i + 1], 1),
            Update::<i64>::with_payload(e, tup![i + 1, i], -2),
        ]
    };

    let mut journal = Journal::create(&path).unwrap();
    for epoch in 1..=3u64 {
        journal.append(epoch, &batch(epoch as i64));
    }
    journal.commit().unwrap();
    let keep = journal.committed_bytes();
    journal.append(4, &batch(4));
    journal.commit().unwrap();
    let full = journal.committed_bytes();
    drop(journal);
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes.len() as u64, full);

    // Sanity: the intact journal replays all four records.
    let whole = Journal::replay::<i64>(&path).unwrap();
    assert_eq!(whole.records.len(), 4);
    assert!(whole.torn.is_none());
    assert_eq!(whole.records[3], (4, batch(4)));

    for cut in keep..full {
        let torn_path = dir.join("torn.ivm");
        std::fs::write(&torn_path, &bytes[..cut as usize]).unwrap();
        let replay = Journal::replay::<i64>(&torn_path).unwrap();
        assert_eq!(
            replay.records.len(),
            3,
            "cut at byte {cut} of {full} must keep exactly the 3 committed records"
        );
        assert_eq!(replay.valid_bytes, keep, "cut at byte {cut}");
        assert!(
            cut == keep || replay.torn.is_some(),
            "a strictly partial final record (cut {cut}) must be reported torn"
        );
        // The replayed prefix is byte-identical history, not a best guess.
        for (i, (epoch, b)) in replay.records.iter().enumerate() {
            assert_eq!(*epoch, i as u64 + 1);
            assert_eq!(b, &batch(*epoch as i64));
        }
        // `valid_bytes` resumes: re-open there and append record 4 again.
        let mut resumed = Journal::open_at(&torn_path, replay.valid_bytes).unwrap();
        resumed.append(4, &batch(4));
        resumed.commit().unwrap();
        drop(resumed);
        let healed = Journal::replay::<i64>(&torn_path).unwrap();
        assert_eq!(healed.records.len(), 4, "resume after cut {cut}");
        assert!(healed.torn.is_none());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flip every single byte of the final record in turn: CRC (or the
/// length prefix) must reject it, replay keeps the earlier records, and
/// nothing panics.
#[test]
fn replay_rejects_every_single_byte_corruption_of_the_final_record() {
    let dir = scratch("flip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.ivm");
    let e = sym("srf_E");
    let batch: Vec<Update<i64>> = vec![
        Update::with_payload(e, tup![7u64, 8u64], 1),
        Update::with_payload(e, tup![8u64, 7u64], -1),
    ];

    let mut journal = Journal::create(&path).unwrap();
    journal.append(1, &batch);
    journal.append(2, &batch);
    journal.commit().unwrap();
    let keep_records = 1usize;
    drop(journal);
    let bytes = std::fs::read(&path).unwrap();
    let second_start = {
        // Find where record 2 begins: replay record 1 alone by truncating
        // is not possible without knowing the offset, so recompute it from
        // a one-record journal of identical content.
        let probe = dir.join("probe.ivm");
        let mut j = Journal::create(&probe).unwrap();
        j.append(1, &batch);
        j.commit().unwrap();
        j.committed_bytes() as usize
    };
    assert!(second_start < bytes.len());

    for pos in second_start..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x5a;
        let flip_path = dir.join("flip.ivm");
        std::fs::write(&flip_path, &corrupt).unwrap();
        let replay = Journal::replay::<i64>(&flip_path).unwrap();
        assert_eq!(
            replay.records.len(),
            keep_records,
            "flipped byte {pos}: the corrupt record must be rejected"
        );
        assert_eq!(replay.records[0], (1, batch.clone()), "flipped byte {pos}");
        assert!(replay.torn.is_some(), "flipped byte {pos} must be reported");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 2. Session-level kill-and-recover equivalence
// ---------------------------------------------------------------------

/// Drive one shape through a kill-and-recover life cycle and compare the
/// survivor against a never-killed oracle over the same stream.
fn check_kill_recover(
    q: &Query,
    tag: &str,
    updates: &[Update<i64>],
    chunk: usize,
    kill_raw: usize,
    snap_raw: usize,
) -> Result<(), TestCaseError> {
    let chunks: Vec<&[Update<i64>]> = updates.chunks(chunk.max(1)).collect();
    let kill = kill_raw % (chunks.len() + 1);
    // Snapshot after `snap_after` pre-kill chunks; 0 = never (cold path).
    let snap_after = snap_raw % (kill + 1);

    let dir = scratch(tag);
    let empty = mirror_db(q);
    let mut first = Session::<i64>::builder(q.clone())
        .durable(&dir)
        .build(&empty)
        .map_err(|e| TestCaseError::fail(format!("build: {e}")))?;
    let pre_kill_kind = first.engine_kind();
    let mut snapped_epoch = None;
    for (i, batch) in chunks[..kill].iter().enumerate() {
        first
            .apply_batch(batch)
            .map_err(|e| TestCaseError::fail(format!("life 1 batch {i}: {e}")))?;
        if i + 1 == snap_after {
            let epoch = first
                .snapshot()
                .map_err(|e| TestCaseError::fail(format!("snapshot: {e}")))?;
            snapped_epoch = Some(epoch);
        }
    }
    let pre_kill_plan = first.describe();
    // The kill: no shutdown hook runs, the session is simply gone.
    drop(first);

    let mut second = Session::<i64>::builder(q.clone())
        .recover(&dir, &empty)
        .map_err(|e| TestCaseError::fail(format!("recover: {e}")))?;
    let note = second.explain().recovered.clone();
    prop_assert!(note.is_some(), "recovered session must say so in explain()");
    let note = note.unwrap();
    if let Some(epoch) = snapped_epoch {
        prop_assert!(
            note.contains(&format!("snapshot epoch {epoch}")),
            "explain must name the snapshot epoch: {note}"
        );
    } else {
        prop_assert!(
            note.contains("cold recovery"),
            "no snapshot was ever taken: {note}"
        );
    }
    prop_assert_eq!(
        second.engine_kind(),
        pre_kill_kind,
        "recovery must come back on the pre-kill engine"
    );
    prop_assert_eq!(
        second.describe(),
        pre_kill_plan,
        "recovery must come back on the pre-kill plan"
    );
    prop_assert_eq!(
        second.journal_epoch(),
        Some(kill as u64),
        "epoch numbering must continue where the dead session stopped"
    );

    // Rest of the stream into the survivor; the whole stream into the
    // oracle's mirror.
    for (i, batch) in chunks[kill..].iter().enumerate() {
        second
            .apply_batch(batch)
            .map_err(|e| TestCaseError::fail(format!("life 2 batch {i}: {e}")))?;
    }
    let mut mirror = mirror_db(q);
    mirror.apply_batch(updates);
    let expect = oracle_db(q, &mirror);
    outputs_match(&second.output(), &expect, &format!("{tag} recovered"))?;

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Triangle (cyclic self-join): kill anywhere, snapshot anywhere
    /// before it, recover, finish the stream — ≡ never-killed oracle.
    /// Cyclic ⇒ the dataflow/WCOJ backend, which takes unclamped ±
    /// streams (multiplicities may go negative).
    #[test]
    fn triangle_kill_and_recover_is_equivalent(
        ops in edge_ops_default(),
        chunk in 1usize..6,
        kill_raw in 0usize..16,
        snap_raw in 0usize..16,
    ) {
        let q = triangle("srt_");
        let updates = edge_updates(&q, &ops);
        check_kill_recover(&q, "srt", &updates, chunk, kill_raw, snap_raw)?;
    }

    /// Acyclic full star with free variables — auto-selection picks a
    /// specialized view-tree engine, which maintains the paper's update
    /// model (valid streams), so the generated stream is clamped.
    #[test]
    fn star_kill_and_recover_is_equivalent(
        ops in wide_ops(),
        chunk in 1usize..6,
        kill_raw in 0usize..16,
        snap_raw in 0usize..16,
    ) {
        let q = star("srs_");
        let updates = clamped_updates(&q, &ops);
        check_kill_recover(&q, "srs", &updates, chunk, kill_raw, snap_raw)?;
    }
}

/// The Retailer workload end to end: initial load, inventory stream,
/// snapshot mid-stream, kill, recover, finish — against a never-killed
/// session fed the identical stream.
#[test]
fn retailer_kill_and_recover_matches_never_killed_session() {
    let mut gen = RetailerGen::new(8, 3, 8, 17);
    let db = gen.initial_db(300);
    let q = gen.query().clone();
    let batches: Vec<Vec<Update<i64>>> = (0..6).map(|_| gen.inventory_batch(120)).collect();

    let dir = scratch("retailer");
    let mut durable = Session::<i64>::builder(q.clone())
        .durable(&dir)
        .build(&db)
        .unwrap();
    let mut oracle = Session::<i64>::builder(q.clone()).build(&db).unwrap();
    for batch in &batches[..4] {
        durable.apply_batch(batch).unwrap();
    }
    durable.snapshot().unwrap();
    drop(durable);

    let mut recovered = Session::<i64>::builder(q).recover(&dir, &db).unwrap();
    assert!(
        recovered
            .explain()
            .recovered
            .as_deref()
            .unwrap()
            .contains("warm restart"),
        "{:?}",
        recovered.explain().recovered
    );
    for batch in &batches[4..] {
        recovered.apply_batch(batch).unwrap();
    }
    for batch in &batches {
        oracle.apply_batch(batch).unwrap();
    }
    let expect = oracle.output();
    let got = recovered.output();
    assert_eq!(got.len(), expect.len(), "retailer view size");
    for (t, p) in expect.iter() {
        assert_eq!(&got.get(t), p, "retailer view at {t:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm restarts are *warm*: the recovered session runs the exact plan
/// the dead one had adapted to, with zero blind-build first-data
/// replans, and the recovery metrics land on the registry.
#[test]
fn warm_recovery_preserves_the_adapted_plan_without_first_data_replans() {
    let [a, b, c, d] = ivm_data::vars(["srw_A", "srw_B", "srw_C", "srw_D"]);
    let (rn, sn, tn) = (sym("srw_R"), sym("srw_S"), sym("srw_T"));
    let q = Query::new(
        "srw_chain",
        [],
        vec![
            Atom::new(rn, [a, b]),
            Atom::new(sn, [b, c]),
            Atom::new(tn, [c, d]),
        ],
    );

    let dir = scratch("warm");
    let mut first = Session::<i64>::builder(q.clone())
        .adaptive(ReplanPolicy::default())
        .durable(&dir)
        .build(&Database::new())
        .unwrap();
    // Skewed first batch over a blind (empty-database) build: the
    // adaptive policy must fire its first-data replan in life 1 …
    let mut batch: Vec<Update<i64>> = Vec::new();
    for i in 0..40i64 {
        batch.push(Update::insert(rn, tup![i, i + 1]));
    }
    for i in 0..10i64 {
        batch.push(Update::insert(sn, tup![i + 1, i + 2]));
    }
    batch.push(Update::insert(tn, tup![2i64, 3i64]));
    first.apply_batch(&batch).unwrap();
    assert_eq!(first.explain().replans.len(), 1, "{}", first.explain());
    assert_eq!(first.explain().replans[0].trigger, ReplanTrigger::FirstData);
    let adapted_plan = first.describe();
    first.snapshot().unwrap();
    drop(first);

    // … and life 2 must *not*: the snapshot base re-lowers the same plan
    // from the same cardinalities, so there is nothing blind to fix.
    let registry = MetricsRegistry::new();
    let mut second = Session::<i64>::builder(q)
        .adaptive(ReplanPolicy::default())
        .observe(&registry)
        .recover(&dir, &Database::new())
        .unwrap();
    assert_eq!(second.describe(), adapted_plan, "pre-kill plan restored");
    assert!(second.explain().replans.is_empty(), "{}", second.explain());

    second
        .apply_batch(&[Update::insert(tn, tup![3i64, 4i64])])
        .unwrap();
    assert!(
        second
            .explain()
            .replans
            .iter()
            .all(|ev| ev.trigger != ReplanTrigger::FirstData),
        "a warm restart must never first-data replan: {}",
        second.explain()
    );

    let m = registry.snapshot();
    assert_eq!(m.counter("ivm.store.recoveries"), 1);
    assert_eq!(
        m.counter("ivm.store.replayed_epochs"),
        0,
        "snapshot consolidated everything; the tail was empty"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn journal tail survives end to end: kill mid-write, recover (the
/// half-record is discarded and reported), keep ingesting, and the final
/// view matches the oracle over what was actually made durable.
#[test]
fn torn_tail_recovery_stops_cleanly_and_keeps_serving() {
    let q = triangle("srtorn_");
    let empty = mirror_db(&q);
    let dir = scratch("torn-e2e");
    let mut first = Session::<i64>::builder(q.clone())
        .durable(&dir)
        .build(&empty)
        .unwrap();
    let e = sym("srtorn_E");
    let edges = |lo: i64, hi: i64| -> Vec<Update<i64>> {
        (lo..hi)
            .flat_map(|i| {
                [
                    Update::insert(e, tup![i, (i + 1) % hi]),
                    Update::insert(e, tup![(i + 1) % hi, i]),
                ]
            })
            .collect()
    };
    first.apply_batch(&edges(0, 4)).unwrap();
    first.apply_batch(&edges(0, 6)).unwrap();
    drop(first);

    // Tear the final record mid-byte, as a crash during the write would.
    let journal = dir.join("journal.ivm");
    let len = std::fs::metadata(&journal).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&journal)
        .unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    let mut second = Session::<i64>::builder(q.clone())
        .recover(&dir, &empty)
        .unwrap();
    let note = second.explain().recovered.clone().unwrap();
    assert!(note.contains("torn"), "torn tail must be reported: {note}");
    assert_eq!(
        second.journal_epoch(),
        Some(1),
        "only epoch 1 survived intact"
    );
    // The view reflects exactly the surviving epoch …
    let mut mirror = mirror_db(&q);
    mirror.apply_batch(&edges(0, 4));
    let expect = oracle_db(&q, &mirror);
    let got = second.output();
    assert_eq!(got.len(), expect.len());
    // … and the session keeps working, journaling onto the healed tail.
    second.apply_batch(&edges(0, 6)).unwrap();
    mirror.apply_batch(&edges(0, 6));
    let expect = oracle_db(&q, &mirror);
    let got = second.output();
    assert_eq!(got.len(), expect.len());
    for (t, p) in expect.iter() {
        assert_eq!(&got.get(t), p);
    }
    assert_eq!(second.journal_epoch(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovering a directory that holds a *different* query's history must
/// refuse loudly instead of replaying someone else's updates.
#[test]
fn recovery_refuses_a_snapshot_from_another_query() {
    let q1 = triangle("srq1_");
    let q2 = star("srq2_");
    let empty1 = mirror_db(&q1);
    let dir = scratch("wrongq");
    let mut s = Session::<i64>::builder(q1.clone())
        .durable(&dir)
        .build(&empty1)
        .unwrap();
    let e = sym("srq1_E");
    s.apply_batch(&[Update::insert(e, tup![1u64, 2u64])])
        .unwrap();
    s.snapshot().unwrap();
    drop(s);

    let err = Session::<i64>::builder(q2.clone())
        .recover(&dir, &mirror_db(&q2))
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("srq1_tri"),
        "must name the stored query: {msg}"
    );
    assert!(
        msg.contains("srq2_star"),
        "must name the asked query: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 3. Heavy-light family persistence
// ---------------------------------------------------------------------

/// The snapshot's strategy tag names the engine *family*: a killed
/// heavy-light session comes back on the heavy-light engine with its
/// per-key degree sketch rebuilt warm, so the tail replay (and further
/// ingestion) performs **zero** family re-selection — and the recovered
/// view stays ≡ the never-killed oracle.
#[test]
fn heavy_light_recovery_is_warm_with_zero_family_reselection() {
    let q = triangle3("srhl_");
    let (rn, sn, tn) = (sym("srhl_3R"), sym("srhl_3S"), sym("srhl_3T"));
    let policy = ReplanPolicy {
        min_batches_between: 1,
        min_replay_fraction: 0.0,
        ..ReplanPolicy::default()
    };
    let empty = mirror_db(&q);
    let dir = scratch("hl-warm");
    let mut first = Session::<i64>::builder(q.clone())
        .adaptive(policy)
        .durable(&dir)
        .build(&empty)
        .unwrap();
    assert_eq!(first.engine_kind(), EngineKind::HeavyLight);
    // Hub skew: every v closes the triangle (0, v, 9). The skew is what
    // keeps the family comparison pinned on heavy-light.
    let hub = |v: i64| {
        vec![
            Update::insert(rn, tup![0i64, v]),
            Update::insert(sn, tup![v, 9000i64]),
        ]
    };
    first
        .apply_batch(&[Update::insert(tn, tup![9000i64, 0i64])])
        .unwrap();
    for v in 1..=12i64 {
        first.apply_batch(&hub(v)).unwrap();
    }
    first.snapshot().unwrap();
    // Two journaled epochs beyond the snapshot — the replayed tail.
    for v in 13..=14i64 {
        first.apply_batch(&hub(v)).unwrap();
    }
    let pre_kill_plan = first.describe();
    assert!(first.explain().replans.is_empty(), "{}", first.explain());
    drop(first);

    let mut second = Session::<i64>::builder(q.clone())
        .adaptive(policy)
        .recover(&dir, &empty)
        .unwrap();
    assert_eq!(second.engine_kind(), EngineKind::HeavyLight);
    assert_eq!(
        second.describe(),
        pre_kill_plan,
        "pre-kill partition restored"
    );
    assert!(
        second.explain().replans.is_empty(),
        "recovery must not re-select the family: {}",
        second.explain()
    );
    // Keep streaming: the warm degree sketch means the policy still sees
    // the pre-kill skew — no family shift fires now either.
    for v in 15..=18i64 {
        second.apply_batch(&hub(v)).unwrap();
    }
    assert!(
        second.explain().replans.is_empty(),
        "warm statistics must prevent any post-recovery family shift: {}",
        second.explain()
    );
    assert_eq!(second.output().get(&ivm_data::Tuple::empty()), 18);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The opposite direction: a session whose adaptive policy had shifted
/// *away* from heavy-light to the dataflow family pre-kill must recover
/// on the dataflow family — auto-selection would lower heavy-light for
/// the query, and the persisted tag overrides it.
#[test]
fn family_shifted_session_recovers_on_the_dataflow_family() {
    let q = triangle3("srfs_");
    let rn = sym("srfs_3R");
    let policy = ReplanPolicy {
        min_batches_between: 2,
        min_replay_fraction: 0.01,
        family_cost_ratio: 2.0,
        ..ReplanPolicy::default()
    };
    let empty = mirror_db(&q);
    let dir = scratch("hl-shifted");
    let mut first = Session::<i64>::builder(q.clone())
        .adaptive(policy)
        .durable(&dir)
        .build(&empty)
        .unwrap();
    assert_eq!(first.engine_kind(), EngineKind::HeavyLight);
    // Flat, wide streams: max degree stays 1 while N grows, so the
    // auxiliary views stop paying for themselves.
    for round in 0..4i64 {
        let batch: Vec<Update<i64>> = (0..30i64)
            .map(|i| Update::insert(rn, tup![round * 30 + i, round * 30 + i]))
            .collect();
        first.apply_batch(&batch).unwrap();
    }
    assert_eq!(
        first.engine_kind(),
        EngineKind::DataflowMultiway,
        "flat data must shift the family to dataflow: {}",
        first.explain()
    );
    assert!(first
        .explain()
        .replans
        .iter()
        .any(|ev| ev.trigger == ReplanTrigger::FamilyShift));
    first.snapshot().unwrap();
    drop(first);

    let second = Session::<i64>::builder(q.clone())
        .adaptive(policy)
        .recover(&dir, &empty)
        .unwrap();
    assert_eq!(
        second.engine_kind(),
        EngineKind::DataflowMultiway,
        "the persisted family overrides auto-selection: {}",
        second.explain()
    );
    assert!(second.explain().replans.is_empty(), "{}", second.explain());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 4. Automatic snapshot consolidation
// ---------------------------------------------------------------------

/// `.auto_snapshot(bytes)` keeps the journal bounded without manual
/// `snapshot()` calls: every ingestion call that leaves the journal past
/// the threshold consolidates it, so recovery replays (almost) nothing.
#[test]
fn auto_snapshot_bounds_the_journal_and_recovery_replays_nothing() {
    let q = triangle3("sras_");
    let (rn, sn, tn) = (sym("sras_3R"), sym("sras_3S"), sym("sras_3T"));
    let empty = mirror_db(&q);
    let dir = scratch("auto-snap");
    let mut s = Session::<i64>::builder(q.clone())
        .durable(&dir)
        .auto_snapshot(1)
        .build(&empty)
        .unwrap();
    // An empty journal still holds its file header; "consolidated" means
    // back to exactly that baseline.
    let baseline = s.journal_bytes().unwrap();
    for i in 1..=5i64 {
        s.apply_batch(&[
            Update::insert(rn, tup![i, i + 1]),
            Update::insert(sn, tup![i + 1, i + 2]),
            Update::insert(tn, tup![i + 2, i]),
        ])
        .unwrap();
        assert_eq!(
            s.journal_bytes(),
            Some(baseline),
            "a 1-byte threshold consolidates after every batch"
        );
    }
    drop(s);

    let registry = MetricsRegistry::new();
    let second = Session::<i64>::builder(q.clone())
        .observe(&registry)
        .recover(&dir, &empty)
        .unwrap();
    let m = registry.snapshot();
    assert_eq!(m.counter("ivm.store.replayed_epochs"), 0);
    assert_eq!(second.journal_epoch(), Some(5));
    let note = second.explain().recovered.as_deref().unwrap();
    assert!(note.contains("snapshot epoch 5"), "{note}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An in-memory session cannot consolidate a journal it does not have.
#[test]
fn auto_snapshot_without_durable_is_refused() {
    let q = triangle3("srasx_");
    let err = Session::<i64>::builder(q)
        .auto_snapshot(1 << 20)
        .build(&Database::new())
        .unwrap_err();
    assert!(err.to_string().contains("durable"), "{err}");
}
