//! Round-trip property tests for the dependency-free binary codec
//! (`ivm_data::codec`) the durable store journals and snapshots with.
//!
//! Every value the store persists must decode back to exactly what was
//! encoded — including the shapes that stress the format: negative ring
//! multiplicities, empty relations, max-arity tuples, mixed int/string
//! columns, and empty strings. The inverse direction matters just as
//! much: `from_bytes` must *reject* (never panic on) every truncation of
//! a valid encoding, because a torn journal record hands the decoder
//! exactly such a prefix.

use ivm_data::codec::{from_bytes, to_bytes};
use ivm_data::{sym, Database, Relation, Schema, Tuple, Update, Value};
use proptest::prelude::*;

/// Up to the widest tuples any workload in the workspace produces.
const MAX_ARITY: usize = 8;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (i64::MIN..i64::MAX).prop_map(Value::from),
        Just(Value::from(i64::MAX)),
        (0u64..64).prop_map(|n| Value::str(format!("s{n}"))),
        Just(Value::str("")),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value_strategy(), 0..MAX_ARITY + 1).prop_map(Tuple::new)
}

/// Signed multiplicities biased to the interesting ring values: ±1, the
/// occasional ±big, and never 0 (a zero payload is a no-op upstream).
fn payload_strategy() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(1i64),
        Just(-1),
        Just(2),
        Just(-2),
        Just(i64::MAX),
        Just(i64::MIN + 1),
    ]
}

fn update_strategy() -> impl Strategy<Value = Update<i64>> {
    (0u64..4, tuple_strategy(), payload_strategy())
        .prop_map(|(r, t, p)| Update::with_payload(sym(&format!("scd_R{r}")), t, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn values_round_trip(v in value_strategy()) {
        prop_assert_eq!(from_bytes::<Value>(&to_bytes(&v)), Some(v));
    }

    #[test]
    fn tuples_round_trip(t in tuple_strategy()) {
        prop_assert_eq!(from_bytes::<Tuple>(&to_bytes(&t)), Some(t));
    }

    #[test]
    fn updates_round_trip(u in update_strategy()) {
        prop_assert_eq!(from_bytes::<Update<i64>>(&to_bytes(&u)), Some(u));
    }

    #[test]
    fn update_batches_round_trip(
        batch in proptest::collection::vec(update_strategy(), 0..24)
    ) {
        prop_assert_eq!(
            from_bytes::<Vec<Update<i64>>>(&to_bytes(&batch)),
            Some(batch)
        );
    }

    /// Relations round-trip through the codec with negative payloads and
    /// duplicate tuples consolidated exactly as the source relation held
    /// them — including the empty relation.
    #[test]
    fn relations_round_trip(
        arity in 0usize..4,
        rows in proptest::collection::vec(
            ((0u64..4, 0u64..4, 0u64..4), payload_strategy()),
            0..24,
        )
    ) {
        let schema = Schema::new(
            ["scd_a", "scd_b", "scd_c"][..arity].iter().map(|s| sym(s)),
        );
        let mut rel: Relation<i64> = Relation::new(schema);
        for ((x, y, z), p) in rows {
            let cols = [x, y, z];
            let t = Tuple::new((0..arity).map(|i| Value::from(cols[i] as i64)));
            rel.apply(t, &p);
        }
        let back = from_bytes::<Relation<i64>>(&to_bytes(&rel))
            .expect("valid encoding decodes");
        prop_assert_eq!(back.len(), rel.len());
        for (t, p) in rel.iter() {
            prop_assert_eq!(&back.get(t), p, "at {:?}", t);
        }
    }

    /// Torn-prefix safety: every strict truncation of a valid encoding
    /// is rejected with `None` — no panic, no partial value.
    #[test]
    fn truncations_never_decode_and_never_panic(
        batch in proptest::collection::vec(update_strategy(), 1..8)
    ) {
        let bytes = to_bytes(&batch);
        for cut in 0..bytes.len() {
            prop_assert_eq!(
                from_bytes::<Vec<Update<i64>>>(&bytes[..cut]).is_none(),
                true,
                "truncation at {} of {} decoded",
                cut,
                bytes.len()
            );
        }
    }
}

/// A whole database — several relations, one empty, mixed-sign payloads
/// — survives the codec exactly, regardless of the order its contents
/// were inserted in.
#[test]
fn database_round_trip_is_exact() {
    let (e, f) = (sym("scd_dbE"), sym("scd_dbF"));
    let schema = || Schema::new(ivm_data::vars(["scd_x", "scd_y"]));
    let mut db: Database<i64> = Database::new();
    db.create(e, schema());
    db.create(f, schema());
    for i in 0..16i64 {
        db.apply(&Update::with_payload(
            e,
            Tuple::new([Value::from(i), Value::from(i % 3)]),
            if i % 4 == 0 { -2 } else { 1 },
        ));
    }
    // `f` stays empty: empty relations must survive too.
    let bytes = to_bytes(&db);
    let back = from_bytes::<Database<i64>>(&bytes).expect("decodes");
    assert_eq!(back.size(), db.size());
    assert!(back.get(f).is_some(), "empty relation preserved");
    for (name, rel) in db.iter() {
        let brel = back.get(*name).expect("relation preserved");
        assert_eq!(brel.len(), rel.len());
        for (t, p) in rel.iter() {
            assert_eq!(&brel.get(t), p);
        }
    }

    // Rebuild the same contents in a different order: the decoded
    // databases agree tuple-for-tuple (tuple order inside a relation's
    // hash map is not canonical, so bytes may differ — contents cannot).
    let mut db2: Database<i64> = Database::new();
    db2.create(f, schema());
    db2.create(e, schema());
    for i in (0..16i64).rev() {
        db2.apply(&Update::with_payload(
            e,
            Tuple::new([Value::from(i), Value::from(i % 3)]),
            if i % 4 == 0 { -2 } else { 1 },
        ));
    }
    let back2 = from_bytes::<Database<i64>>(&to_bytes(&db2)).expect("decodes");
    for (name, rel) in back.iter() {
        let rel2 = back2.get(*name).expect("same relations");
        assert_eq!(rel2.len(), rel.len());
        for (t, p) in rel.iter() {
            assert_eq!(&rel2.get(t), p);
        }
    }
}
