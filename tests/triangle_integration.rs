//! Integration: triangle maintainers under realistic skewed streams, and
//! the OuMv reduction at a size where rebalancing actually fires.

use ivm_ivme::{Rel, TriangleDelta, TriangleIvmEps, TriangleMaintainer, TrianglePairwiseMv};
use ivm_oumv::{solve, NaiveOuMv, OuMvInstance, ReductionOuMv};
use ivm_workloads::graphs::EdgeStream;

#[test]
fn sliding_window_agreement_under_skew() {
    let stream = EdgeStream::zipf(300, 4_000, 1.0, 21).sliding_window(1_500);
    let mut delta = TriangleDelta::new();
    let mut mv = TrianglePairwiseMv::new();
    let mut eps_half = TriangleIvmEps::new(0.5);
    let mut eps_low = TriangleIvmEps::new(0.2);
    for (i, &(a, b, m)) in stream.iter().enumerate() {
        let rel = Rel::ALL[i % 3];
        delta.apply(rel, a, b, m);
        mv.apply(rel, a, b, m);
        eps_half.apply(rel, a, b, m);
        eps_low.apply(rel, a, b, m);
        if i % 500 == 0 {
            assert_eq!(delta.count(), eps_half.count(), "step {i}");
            assert_eq!(delta.count(), eps_low.count(), "step {i}");
            assert_eq!(delta.count(), mv.count(), "step {i}");
        }
    }
    assert_eq!(delta.count(), eps_half.count());
    assert!(
        eps_half.migrations() + eps_half.rebalances() > 0,
        "skewed window must trigger partition maintenance"
    );
}

#[test]
fn ivme_work_beats_delta_on_heavy_keys() {
    // The motivating scenario of Sec 3.2/3.3: a single-tuple update
    // δR(a₀, b₀) where b₀ pairs with K C-values in S and a₀ pairs with the
    // same K C-values in T. The first-order delta query must intersect two
    // K-element lists (Θ(K) per update); IVMε answers the heavy/light case
    // with one lookup into the materialized view V_ST (O(1) per update
    // after O(N^½)-amortized maintenance).
    let k: u64 = 5_000;
    let (a0, b0) = (1_000_000u64, 2_000_000u64);
    let mut delta = TriangleDelta::new();
    let mut eps = TriangleIvmEps::new(0.5);
    for c in 0..k {
        delta.apply(Rel::S, b0, c, 1);
        delta.apply(Rel::T, c, a0, 1);
        eps.apply(Rel::S, b0, c, 1);
        eps.apply(Rel::T, c, a0, 1);
    }
    let (d0, e0) = (delta.work(), eps.work());
    let probes = 500u64;
    for _ in 0..probes {
        delta.apply(Rel::R, a0, b0, 1);
        delta.apply(Rel::R, a0, b0, -1);
        eps.apply(Rel::R, a0, b0, 1);
        eps.apply(Rel::R, a0, b0, -1);
    }
    let delta_work = delta.work() - d0;
    let eps_work = eps.work() - e0;
    assert_eq!(delta.count(), eps.count());
    assert_eq!(delta.count(), 0, "edge removed at the end of each probe");
    // Sanity: one insert must see K triangles.
    delta.apply(Rel::R, a0, b0, 1);
    eps.apply(Rel::R, a0, b0, 1);
    assert_eq!(delta.count(), k as i64);
    assert_eq!(eps.count(), k as i64);
    // Θ(K) vs O(1): require at least a 20× gap (measured is ~K/2 ≈ 2500×).
    assert!(
        eps_work * 20 < delta_work,
        "IVMε ({eps_work}) should beat first-order deltas ({delta_work}) on heavy keys"
    );
}

#[test]
fn oumv_reduction_at_scale() {
    let inst = OuMvInstance::random(48, 0.08, 99);
    let mut naive = NaiveOuMv::default();
    let mut red = ReductionOuMv::default();
    let expect = solve(&mut naive, &inst);
    let got = solve(&mut red, &inst);
    assert_eq!(expect, got);
    assert!(
        expect.iter().any(|&b| b) && expect.iter().any(|&b| !b),
        "instance should have both answers represented: {expect:?}"
    );
}
