//! Auto-selection acceptance harness: `Session::builder(q).build(&db)`
//! must (a) pick the engine the dichotomy predicts for every class, and
//! (b) produce a session whose maintained output stays ≡ a from-scratch
//! oracle under random mixed ± batch streams — whatever engine it picked,
//! and again when a shard fleet is requested on top.
//!
//! Shapes cover the whole selection table: the cyclic self-join triangle
//! (→ WCOJ multiway), the 3-relation triangle (→ heavy-light IVMε
//! partitioned maintenance), the cyclic 4-cycle, the
//! acyclic star and path (→ left-deep dataflow), the paper's Fig 3 query
//! and the 5-relation Retailer join (→ eager-fact view trees), and the
//! triangle-detection CQAP (→ fractured CQAP engine, checked through both
//! full enumeration and constant-delay probes).
//!
//! Stream strategies and the oracle live in `tests/common`.

mod common;

use common::{
    clamped_updates, empty_base, four_cycle, oracle, outputs_match, triangle, wide_ops, WideOp,
};
use ivm::{Database, EngineKind, Maintainer, QueryClass, Relation, Session, Update};
use ivm_data::sym;
use ivm_query::examples;
use ivm_query::Query;
use proptest::prelude::*;

/// Drive one query through an auto-selected session and a 2-shard fleet,
/// comparing both against the oracle after every batch.
fn check_auto_selection(
    q: &Query,
    expected: EngineKind,
    ops: &[WideOp],
    chunk: usize,
) -> Result<(), TestCaseError> {
    let updates = clamped_updates(q, ops);
    let db = Database::new();
    let mut auto = Session::<i64>::builder(q.clone()).build(&db).unwrap();
    prop_assert_eq!(auto.engine_kind(), expected, "auto pick for {:?}", q.name);
    prop_assert!(auto.explain().fallback.is_none());
    let mut fleet = Session::<i64>::builder(q.clone())
        .shards(2)
        .build(&db)
        .unwrap();
    prop_assert_eq!(fleet.engine_kind(), EngineKind::Sharded);

    let mut base = empty_base(q);
    for batch in updates.chunks(chunk.max(1)) {
        auto.apply_batch(batch).unwrap();
        fleet.apply_batch(batch).unwrap();
        common::apply_to_base(&mut base, batch);
        let expect = oracle(q, &base);
        outputs_match(&auto.output(), &expect, &format!("{:?} auto", q.name))?;
        outputs_match(&fleet.output(), &expect, &format!("{:?} sharded", q.name))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cyclic self-join triangle → worst-case-optimal multiway.
    #[test]
    fn selects_multiway_for_self_join_triangle(ops in wide_ops(), chunk in 1usize..9) {
        check_auto_selection(&triangle("ss_"), EngineKind::DataflowMultiway, &ops, chunk)?;
    }

    /// The paper's 3-relation triangle count admits the heavy-light
    /// IVMε family (Sec 3.3) — and the session it stands up must stay
    /// ≡ the oracle under the same random mixed ± streams as every
    /// other engine.
    #[test]
    fn selects_heavy_light_for_triangle_count(ops in wide_ops(), chunk in 1usize..9) {
        check_auto_selection(
            &examples::triangle_count(),
            EngineKind::HeavyLight,
            &ops,
            chunk,
        )?;
    }

    /// Cyclic 4-cycle → multiway; the 2-shard fleet exercises the
    /// broadcast-replication routing underneath the session.
    #[test]
    fn selects_multiway_for_four_cycle(ops in wide_ops(), chunk in 1usize..9) {
        check_auto_selection(&four_cycle("ss_"), EngineKind::DataflowMultiway, &ops, chunk)?;
    }

    /// Acyclic full star with the center variable *bound* (all the leaf
    /// variables free, so q-hierarchy fails on the bound-dominating root)
    /// → left-deep dataflow. Note the free set differs from the harness
    /// star in `tests/common`, which frees everything.
    #[test]
    fn selects_leftdeep_for_star(ops in wide_ops(), chunk in 1usize..9) {
        let [x, y, z, w] = ivm_data::vars(["ss_SX", "ss_SY", "ss_SZ", "ss_SW"]);
        let q = Query::new(
            "ss_bstar",
            [y, z, w],
            vec![
                ivm_query::Atom::new(sym("ss_SR"), [x, y]),
                ivm_query::Atom::new(sym("ss_SS"), [x, z]),
                ivm_query::Atom::new(sym("ss_ST"), [x, w]),
            ],
        );
        check_auto_selection(&q, EngineKind::DataflowLeftDeep, &ops, chunk)?;
    }

    /// The acyclic 3-path → left-deep dataflow.
    #[test]
    fn selects_leftdeep_for_path3(ops in wide_ops(), chunk in 1usize..9) {
        check_auto_selection(
            &examples::path3_query(),
            EngineKind::DataflowLeftDeep,
            &ops,
            chunk,
        )?;
    }

    /// Fig 3 (q-hierarchical) → the eager-fact view tree.
    #[test]
    fn selects_eager_fact_for_fig3(ops in wide_ops(), chunk in 1usize..9) {
        check_auto_selection(&examples::fig3_query(), EngineKind::EagerFact, &ops, chunk)?;
    }

    /// The 5-relation Retailer join (q-hierarchical under the Σ-reduct)
    /// → eager-fact, including under mixed-sign multi-arity streams.
    #[test]
    fn selects_eager_fact_for_retailer(ops in wide_ops(), chunk in 1usize..9) {
        check_auto_selection(
            &examples::retailer_query().0,
            EngineKind::EagerFact,
            &ops,
            chunk,
        )?;
    }

    /// The triangle-detection CQAP → the fractured CQAP engine; its full
    /// enumeration (the Maintainer surface the session exposes) matches
    /// the oracle, and per-input probes match the oracle pointwise.
    #[test]
    fn selects_cqap_for_triangle_detection(ops in wide_ops(), chunk in 1usize..9) {
        let q = examples::triangle_detect_cqap();
        let updates = clamped_updates(&q, &ops);
        let mut s = Session::<i64>::builder(q.clone()).build(&Database::new()).unwrap();
        prop_assert_eq!(s.engine_kind(), EngineKind::Cqap);
        let mut base = empty_base(&q);
        for batch in updates.chunks(chunk.max(1)) {
            s.apply_batch(batch).unwrap();
            common::apply_to_base(&mut base, batch);
        }
        let expect = oracle(&q, &base);
        outputs_match(&s.output(), &expect, "cqap full enumeration")?;
        // Constant-delay access answers agree pointwise with the oracle.
        for (t, p) in expect.iter() {
            prop_assert_eq!(&s.probe(t).unwrap(), p, "probe at {:?}", t);
        }
    }
}

/// The deterministic acceptance table: one assertion per selection row,
/// plus the class each query was put in.
#[test]
fn selection_table_is_exactly_as_documented() {
    let db = Database::new();
    let cases: Vec<(Query, EngineKind, QueryClass)> = vec![
        (
            examples::fig3_query(),
            EngineKind::EagerFact,
            QueryClass::QHierarchical,
        ),
        (
            examples::retailer_query().0,
            EngineKind::EagerFact,
            QueryClass::QHierarchical,
        ),
        (
            examples::triangle_count(),
            EngineKind::HeavyLight,
            QueryClass::Cyclic,
        ),
        (
            examples::triangle_detect_cqap(),
            EngineKind::Cqap,
            QueryClass::CqapTractable,
        ),
        (
            examples::path3_query(),
            EngineKind::DataflowLeftDeep,
            QueryClass::Acyclic,
        ),
        (
            examples::ex51_query(),
            EngineKind::DataflowLeftDeep,
            QueryClass::Acyclic,
        ),
        // The intractable CQAP falls back to the class of its hypergraph.
        (
            examples::edge_triangle_listing_cqap(),
            EngineKind::DataflowMultiway,
            QueryClass::Cyclic,
        ),
    ];
    for (q, kind, class) in cases {
        let name = q.name;
        let s = Session::<i64>::builder(q).build(&db).unwrap();
        assert_eq!(s.engine_kind(), kind, "engine for {name}");
        assert_eq!(s.explain().class(), class, "class for {name}");
        assert!(s.explain().fallback.is_none(), "no fallback for {name}");
    }
    // Scale-out request overrides the table.
    let s = Session::<i64>::builder(examples::fig3_query())
        .shards(4)
        .build(&db)
        .unwrap();
    assert_eq!(s.engine_kind(), EngineKind::Sharded);
    assert_eq!(s.explain().shards, 4);
    // Degenerate shard plans report the fleet actually stood up.
    let s = Session::<i64>::builder(triangle("ss_d"))
        .shards(4)
        .build(&db)
        .unwrap();
    assert_eq!(s.engine_kind(), EngineKind::Sharded);
    assert_eq!(
        s.explain().shards,
        1,
        "column-permuting self-join is unshardable; fleet clamps to 1"
    );
}

/// Every engine kind — the four Fig 4 specialists, CQAP, both dataflow
/// plans, and the fleet — ingests the *same batch slice* through the one
/// trait-level `apply_batch` and agrees on the output. (The CQAP engine
/// runs its own query shape; the rest share Fig 3.)
#[test]
fn one_apply_batch_surface_across_all_engines() {
    let db = Database::new();
    let (rn, sn) = (sym("f3_R"), sym("f3_S"));
    let batch: Vec<Update<i64>> = (0..24i64)
        .flat_map(|i| {
            [
                Update::with_payload(
                    rn,
                    ivm_data::tup![i % 3, i % 5],
                    if i % 7 == 0 { -1 } else { 1 },
                ),
                Update::insert(sn, ivm_data::tup![i % 3, i % 4]),
            ]
        })
        .collect();
    let kinds = [
        EngineKind::EagerFact,
        EngineKind::EagerList,
        EngineKind::LazyFact,
        EngineKind::LazyList,
        EngineKind::DataflowLeftDeep,
        EngineKind::DataflowMultiway,
        EngineKind::Sharded,
    ];
    let mut reference: Option<Relation<i64>> = None;
    for kind in kinds {
        let mut b = Session::<i64>::builder(examples::fig3_query()).engine(kind);
        if kind == EngineKind::Sharded {
            // .shards only composes with the sharded kind; combining it
            // with a forced single-threaded engine is a build error.
            b = b.shards(2);
        }
        let mut s = b.build(&db).unwrap();
        s.apply_batch(&batch).unwrap();
        let got = s.output();
        match &reference {
            None => reference = Some(got),
            Some(expect) => {
                assert_eq!(got.len(), expect.len(), "{kind:?}");
                for (t, p) in expect.iter() {
                    assert_eq!(&got.get(t), p, "{kind:?} at {t:?}");
                }
            }
        }
    }
    // And the CQAP engine through the same trait surface.
    let mut s = Session::<i64>::builder(examples::lookup_cqap())
        .build(&db)
        .unwrap();
    assert_eq!(s.engine_kind(), EngineKind::Cqap);
    s.apply_batch(&[
        Update::insert(sym("lk_S"), ivm_data::tup![10i64, 1i64]),
        Update::insert(sym("lk_T"), ivm_data::tup![1i64]),
    ])
    .unwrap();
    assert_eq!(s.output().get(&ivm_data::tup![10i64, 1i64]), 1);
}
