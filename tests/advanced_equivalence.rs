//! Second property suite: the specialized engines (CQAP, insert-only,
//! QhEps, covariance-ring trees) against brute-force oracles.

use ivm_core::acyclic::InsertOnlyEngine;
use ivm_core::cqap::CqapEngine;
use ivm_core::viewtree::ViewTree;
use ivm_core::Maintainer;
use ivm_data::ops::{eval_join_aggregate, lift_one};
use ivm_data::{sym, FxHashMap, Relation, Tuple, Update, Value};
use ivm_ivme::QhEpsEngine;
use ivm_ring::{Covar, Semiring};
use proptest::prelude::*;

// CQAP triangle detection: probes agree with a brute-force edge set for
// any mix of inserts and (valid) deletes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cqap_probe_matches_bruteforce(
        ops in proptest::collection::vec(((0u64..5, 0u64..5), proptest::bool::ANY), 0..40),
        probes in proptest::collection::vec((0u64..5, 0u64..5, 0u64..5), 0..30),
    ) {
        let q = ivm_query::examples::triangle_detect_cqap();
        let mut eng: CqapEngine<i64> = CqapEngine::new(q, lift_one).unwrap();
        let e = sym("tdc_E");
        let mut edges: FxHashMap<(u64, u64), i64> = FxHashMap::default();
        for ((a, b), del) in ops {
            let cur = edges.entry((a, b)).or_insert(0);
            let m: i64 = if del && *cur > 0 { -1 } else { 1 };
            *cur += m;
            eng.apply(&Update::with_payload(e, ivm_data::tup![a, b], m)).unwrap();
        }
        edges.retain(|_, v| *v != 0);
        for (a, b, c) in probes {
            let expect = edges.get(&(a, b)).copied().unwrap_or(0)
                * edges.get(&(b, c)).copied().unwrap_or(0)
                * edges.get(&(c, a)).copied().unwrap_or(0);
            prop_assert_eq!(
                eng.probe(&ivm_data::tup![a, b, c]),
                expect,
                "probe ({}, {}, {})", a, b, c
            );
        }
    }

    /// Insert-only engine ≡ from-scratch evaluation on the 3-path, for any
    /// insert sequence and any interleaving of enumerations.
    #[test]
    fn insert_only_matches_oracle(
        ops in proptest::collection::vec((0usize..3, 0i64..4, 0i64..4), 0..50),
        check_at in proptest::collection::vec(0usize..50, 0..4),
    ) {
        let q = ivm_query::examples::path3_query();
        let names = [sym("p3_R"), sym("p3_S"), sym("p3_T")];
        let mut eng: InsertOnlyEngine<i64> = InsertOnlyEngine::new(q.clone()).unwrap();
        let mut oracle: Vec<Relation<i64>> = q
            .atoms
            .iter()
            .map(|a| Relation::new(a.schema.clone()))
            .collect();
        for (i, &(rel, x, y)) in ops.iter().enumerate() {
            let t: Tuple = [x, y].iter().map(|&v| Value::from(v)).collect();
            oracle[rel].apply(t.clone(), &1);
            eng.insert(&Update::insert(names[rel], t)).unwrap();
            if check_at.contains(&i) {
                let refs: Vec<&Relation<i64>> = oracle.iter().collect();
                let expect = eval_join_aggregate(&refs, &q.free, lift_one);
                let got = eng.output().unwrap();
                prop_assert_eq!(got.len(), expect.len(), "at op {}", i);
                for (t, p) in expect.iter() {
                    prop_assert_eq!(&got.get(t), p);
                }
            }
        }
    }

    /// QhEps agrees with the oracle for every ε on arbitrary valid
    /// streams (including S-side deletes and degree churn).
    #[test]
    fn qh_eps_matches_oracle(
        ops in proptest::collection::vec(
            (proptest::bool::ANY, 0u64..6, 0u64..4, proptest::bool::ANY),
            0..60
        ),
        eps_idx in 0usize..5,
    ) {
        let eps = [0.0, 0.25, 0.5, 0.75, 1.0][eps_idx];
        let mut eng = QhEpsEngine::new(eps);
        let mut r: FxHashMap<(u64, u64), i64> = FxHashMap::default();
        let mut s: FxHashMap<u64, i64> = FxHashMap::default();
        for (is_r, a, b, del) in ops {
            if is_r {
                let cur = r.entry((a, b)).or_insert(0);
                let m: i64 = if del && *cur > 0 { -1 } else { 1 };
                *cur += m;
                eng.apply_r(a, b, m);
            } else {
                let cur = s.entry(b).or_insert(0);
                let m: i64 = if del && *cur > 0 { -1 } else { 1 };
                *cur += m;
                eng.apply_s(b, m);
            }
        }
        // Oracle: Q(a) = Σ_b R(a,b)·S(b).
        let mut expect: FxHashMap<u64, i64> = FxHashMap::default();
        for (&(a, b), &rm) in &r {
            let sv = s.get(&b).copied().unwrap_or(0);
            if rm != 0 && sv != 0 {
                *expect.entry(a).or_insert(0) += rm * sv;
            }
        }
        expect.retain(|_, v| *v != 0);
        prop_assert_eq!(eng.output(), expect, "eps={}", eps);
    }
}

/// A covariance-ring view tree maintains exactly the statistics of the
/// (unmaterialized) join: count, sums, and cross-moments all match a
/// materialize-then-aggregate oracle.
#[test]
fn covariance_tree_matches_materialized_statistics() {
    use ivm_query::{Atom, Query};
    // Q() = Σ R(K, X) · S(K, Y): features X (index 0) and Y (index 1).
    let [k, x, y] = ivm_data::vars(["cov_K", "cov_X", "cov_Y"]);
    let (rn, sn) = (sym("cov_R"), sym("cov_S"));
    let q = Query::new(
        "cov_Q",
        [],
        vec![Atom::new(rn, [k, x]), Atom::new(sn, [k, y])],
    );
    fn lift(var: ivm_data::Sym, v: &Value) -> Covar<2> {
        match var.name().as_str() {
            "cov_X" => Covar::lift(0, v.to_f64()),
            "cov_Y" => Covar::lift(1, v.to_f64()),
            _ => Covar::one(),
        }
    }
    let mut tree: ViewTree<Covar<2>> = ViewTree::new(q, lift).unwrap();

    let r_rows = [(0i64, 2i64), (0, 3), (1, 5), (2, 7)];
    let s_rows = [(0i64, 10i64), (1, 20), (1, 30)];
    for &(kk, xx) in &r_rows {
        tree.apply(&Update::with_payload(
            rn,
            ivm_data::tup![kk, xx],
            Covar::one(),
        ))
        .unwrap();
    }
    for &(kk, yy) in &s_rows {
        tree.apply(&Update::with_payload(
            sn,
            ivm_data::tup![kk, yy],
            Covar::one(),
        ))
        .unwrap();
    }
    let mut agg = Covar::<2>::zero();
    tree.for_each_output(&mut |_, c| agg.add_assign(c));

    // Oracle: materialize the join, accumulate statistics.
    let mut n = 0i64;
    let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &(kr, xx) in &r_rows {
        for &(ks, yy) in &s_rows {
            if kr == ks {
                n += 1;
                sx += xx as f64;
                sy += yy as f64;
                sxy += (xx * yy) as f64;
                sxx += (xx * xx) as f64;
                syy += (yy * yy) as f64;
            }
        }
    }
    assert_eq!(agg.count(), n);
    assert_eq!(agg.sum(0), sx);
    assert_eq!(agg.sum(1), sy);
    assert_eq!(agg.moment(0, 1), sxy);
    assert_eq!(agg.moment(0, 0), sxx);
    assert_eq!(agg.moment(1, 1), syy);

    // Deletes roll the statistics back exactly.
    for &(kk, xx) in &r_rows {
        tree.apply(&Update::with_payload(
            rn,
            ivm_data::tup![kk, xx],
            Covar::one().neg_wrapper(),
        ))
        .unwrap();
    }
    let mut agg2 = Covar::<2>::zero();
    tree.for_each_output(&mut |_, c| agg2.add_assign(c));
    assert!(agg2.is_zero());
}

/// `Ring::neg` through a helper (keeps the test readable).
trait NegWrapper {
    fn neg_wrapper(&self) -> Self;
}

impl NegWrapper for Covar<2> {
    fn neg_wrapper(&self) -> Self {
        ivm_ring::Ring::neg(self)
    }
}

/// The view tree is generic over *semirings*, not just rings: a min-plus
/// payload computes the cheapest derivation of each output tuple under an
/// insert-only stream (Sec. 4.6's setting, where inverses are not needed).
#[test]
fn tropical_viewtree_cheapest_derivation() {
    use ivm_query::{Atom, Query};
    use ivm_ring::MinPlus;
    // Q(K) = Σ_X,Y R(K, X) · S(K, Y): cost of a K-group = min over
    // derivations of (cost_R + cost_S), with costs lifted from X and Y.
    let [k, x, y] = ivm_data::vars(["mp_K", "mp_X", "mp_Y"]);
    let (rn, sn) = (sym("mp_R"), sym("mp_S"));
    let q = Query::new(
        "mp_Q",
        [k],
        vec![Atom::new(rn, [k, x]), Atom::new(sn, [k, y])],
    );
    fn lift(var: ivm_data::Sym, v: &Value) -> MinPlus {
        let name = var.name();
        if name == "mp_X" || name == "mp_Y" {
            MinPlus::cost(v.to_f64())
        } else {
            MinPlus::one()
        }
    }
    let mut tree: ViewTree<MinPlus> = ViewTree::new(q, lift).unwrap();
    for &(kk, cost) in &[(1i64, 7i64), (1, 3), (2, 10)] {
        tree.apply(&Update::with_payload(
            rn,
            ivm_data::tup![kk, cost],
            MinPlus::one(),
        ))
        .unwrap();
    }
    for &(kk, cost) in &[(1i64, 5i64), (2, 2)] {
        tree.apply(&Update::with_payload(
            sn,
            ivm_data::tup![kk, cost],
            MinPlus::one(),
        ))
        .unwrap();
    }
    let mut out: FxHashMap<i64, f64> = FxHashMap::default();
    tree.for_each_output(&mut |t, m| {
        out.insert(t.at(0).as_int().unwrap(), m.0);
    });
    // k=1: min(7,3) + 5 = 8; k=2: 10 + 2 = 12.
    assert_eq!(out.get(&1).copied(), Some(8.0));
    assert_eq!(out.get(&2).copied(), Some(12.0));
}

/// Delay smoke check: enumeration of a factorized output produces its
/// first tuple without touching the whole output (the constant-delay
/// guarantee, observed through work done before the first callback).
#[test]
fn first_tuple_does_not_scan_output() {
    use ivm_core::{EagerFactEngine, Maintainer};
    use ivm_data::Database;
    use std::time::Instant;
    let q = ivm_query::examples::fig3_query();
    let (rn, sn) = (sym("f3_R"), sym("f3_S"));
    let mut eng = EagerFactEngine::<i64>::new(q, &Database::new(), lift_one).unwrap();
    // One Y-group with a large cross product: 300 × 300 = 90k tuples.
    for i in 0..300i64 {
        eng.apply(&Update::insert(rn, ivm_data::tup![1i64, i]))
            .unwrap();
        eng.apply(&Update::insert(sn, ivm_data::tup![1i64, i]))
            .unwrap();
    }
    let t0 = Instant::now();
    let mut first = None;
    let mut count = 0usize;
    eng.for_each_output(&mut |_, _| {
        if first.is_none() {
            first = Some(t0.elapsed());
        }
        count += 1;
    });
    let total = t0.elapsed();
    assert_eq!(count, 90_000);
    let first = first.unwrap();
    // The first tuple must arrive in a tiny fraction of the full scan.
    assert!(
        first.as_nanos() * 50 < total.as_nanos().max(1),
        "first tuple after {first:?} of {total:?} total"
    );
}
