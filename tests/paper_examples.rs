//! End-to-end checks of every worked example in the paper, spanning all
//! crates. Each test cites the figure/example it reproduces.

use ivm_core::cascade::CascadeEngine;
use ivm_core::cqap::CqapEngine;
use ivm_core::fd::FdEngine;
use ivm_core::{EagerFactEngine, EagerListEngine, LazyFactEngine, LazyListEngine, Maintainer};
use ivm_data::ops::{eval_join_aggregate, lift_one};
use ivm_data::{sym, tup, Database, Relation, Tuple, Update};
use ivm_ivme::{Rel, TriangleDelta, TriangleIvmEps, TriangleMaintainer};
use ivm_query::examples as ex;
use ivm_query::{is_hierarchical, is_q_hierarchical, is_tractable_cqap};

/// Fig 2: the triangle count over the example database is 19; after
/// δR = {(a2,b1) ↦ −2} it is 13 — via the generic relational operators
/// AND the specialized kernels.
#[test]
fn fig2_exact_numbers() {
    // Generic operators.
    let q = ex::triangle_count();
    let mk = |name: &str, rows: &[(Tuple, i64)]| {
        Relation::from_rows(
            q.atoms
                .iter()
                .find(|a| a.name == sym(name))
                .unwrap()
                .schema
                .clone(),
            rows.iter().cloned(),
        )
    };
    let r = mk("tri_R", &[(tup![1i64, 1i64], 2), (tup![2i64, 1i64], 3)]);
    let s = mk("tri_S", &[(tup![1i64, 1i64], 2), (tup![1i64, 2i64], 1)]);
    let t = mk(
        "tri_T",
        &[
            (tup![1i64, 1i64], 1),
            (tup![2i64, 1i64], 3),
            (tup![2i64, 2i64], 3),
        ],
    );
    let out = eval_join_aggregate(&[&r, &s, &t], &q.free, lift_one);
    assert_eq!(out.get(&Tuple::empty()), 19);

    let r2 = {
        let mut r2 = r.clone();
        r2.apply(tup![2i64, 1i64], &-2);
        r2
    };
    let out2 = eval_join_aggregate(&[&r2, &s, &t], &q.free, lift_one);
    assert_eq!(out2.get(&Tuple::empty()), 13);

    // Specialized kernels.
    let mut eng = TriangleIvmEps::new(0.5);
    for (rel, rows) in [
        (Rel::R, vec![(1u64, 1u64, 2i64), (2, 1, 3)]),
        (Rel::S, vec![(1, 1, 2), (1, 2, 1)]),
        (Rel::T, vec![(1, 1, 1), (2, 1, 3), (2, 2, 3)]),
    ] {
        for (x, y, m) in rows {
            eng.apply(rel, x, y, m);
        }
    }
    assert_eq!(eng.count(), 19);
    eng.apply(Rel::R, 2, 1, -2);
    assert_eq!(eng.count(), 13);
}

/// Fig 3 / Ex 4.4: the q-hierarchical query maintained by all four Fig 4
/// engines with identical outputs.
#[test]
fn fig3_four_engines() {
    let q = ex::fig3_query();
    let (r, s) = (sym("f3_R"), sym("f3_S"));
    let db = Database::new();
    let mut engines: Vec<Box<dyn Maintainer<i64>>> = vec![
        Box::new(EagerFactEngine::new(q.clone(), &db, lift_one).unwrap()),
        Box::new(EagerListEngine::new(q.clone(), &db, lift_one).unwrap()),
        Box::new(LazyFactEngine::new(q.clone(), &db, lift_one).unwrap()),
        Box::new(LazyListEngine::new(q.clone(), &db, lift_one).unwrap()),
    ];
    let updates = [
        Update::insert(r, tup![1i64, 10i64]),
        Update::insert(r, tup![1i64, 11i64]),
        Update::insert(s, tup![1i64, 20i64]),
        Update::insert(s, tup![2i64, 21i64]),
        Update::delete(r, tup![1i64, 10i64]),
    ];
    for u in &updates {
        for e in &mut engines {
            e.apply(u).unwrap();
        }
    }
    let reference = engines[3].output();
    assert_eq!(reference.len(), 1);
    assert_eq!(reference.get(&tup![1i64, 11i64, 20i64]), 1);
    for e in &mut engines[..3] {
        assert_eq!(e.output().len(), reference.len());
        assert_eq!(e.output().get(&tup![1i64, 11i64, 20i64]), 1);
    }
}

/// Ex 4.5: the cascade protocol end to end.
#[test]
fn ex45_cascade_protocol() {
    let (q1, q2) = ex::ex45_pair();
    assert!(!is_hierarchical(&q1));
    assert!(is_q_hierarchical(&q2));
    let mut eng: CascadeEngine<i64> =
        CascadeEngine::new(q1, q2, &Database::new(), lift_one).unwrap();
    let (r, s, t) = (sym("e45_R"), sym("e45_S"), sym("e45_T"));
    for (rel, a, b) in [(r, 1i64, 2i64), (s, 2, 3), (t, 3, 4), (t, 3, 5)] {
        eng.apply(&Update::insert(rel, tup![a, b])).unwrap();
    }
    let q2_out = eng.q2_output().unwrap();
    assert_eq!(q2_out.len(), 1);
    let q1_out = eng.q1_output().unwrap();
    assert_eq!(q1_out.len(), 2);
    assert_eq!(q1_out.get(&tup![1i64, 2i64, 3i64, 4i64]), 1);
    assert_eq!(q1_out.get(&tup![1i64, 2i64, 3i64, 5i64]), 1);
    assert_eq!(eng.forced_refreshes(), 0);
}

/// Ex 4.6: CQAP classification and the triangle-detection access engine.
#[test]
fn ex46_cqaps() {
    assert!(is_tractable_cqap(&ex::triangle_detect_cqap()));
    assert!(!is_tractable_cqap(&ex::edge_triangle_listing_cqap()));
    assert!(is_tractable_cqap(&ex::lookup_cqap()));

    let mut eng: CqapEngine<i64> = CqapEngine::new(ex::triangle_detect_cqap(), lift_one).unwrap();
    let e = sym("tdc_E");
    for (a, b) in [(10u64, 20u64), (20, 30), (30, 10)] {
        eng.apply(&Update::insert(e, tup![a, b])).unwrap();
    }
    assert_eq!(eng.probe(&tup![10u64, 20u64, 30u64]), 1);
    assert_eq!(eng.probe(&tup![20u64, 10u64, 30u64]), 0);
}

/// Ex 4.12: FD-aware maintenance equals from-scratch evaluation.
#[test]
fn ex412_fd_engine() {
    let (q, sigma) = ex::ex412_query();
    let mut eng: FdEngine<i64> =
        FdEngine::new(q.clone(), &sigma, &Database::new(), lift_one).unwrap();
    let (r, s, t) = (sym("e412_R"), sym("e412_S"), sym("e412_T"));
    // Out of order on purpose: R before its FD providers.
    eng.apply(&Update::insert(r, tup![3i64, 30i64])).unwrap();
    eng.apply(&Update::insert(r, tup![3i64, 31i64])).unwrap();
    eng.apply(&Update::insert(s, tup![3i64, 33i64])).unwrap();
    eng.apply(&Update::insert(t, tup![33i64, 333i64])).unwrap();
    let out = eng.output();
    assert_eq!(out.len(), 2);
    assert_eq!(out.get(&tup![333i64, 33i64, 3i64, 30i64]), 1);
}

/// Ex 4.14: static-dynamic maintenance with the hand-validated order.
#[test]
fn ex414_static_dynamic() {
    let q = ex::ex414_query();
    let vo = ivm_query::varorder::find_tractable_order(&q).unwrap();
    let tname = sym("e414_T");
    let mut db: Database<i64> = Database::new();
    let mut t_rel = Relation::new(q.atoms[2].schema.clone());
    t_rel.insert(tup![5i64, 50i64]);
    db.add(tname, t_rel);
    let mut eng = EagerFactEngine::<i64>::with_order(q, vo, &db, lift_one).unwrap();
    eng.apply(&Update::insert(sym("e414_R"), tup![1i64, 9i64]))
        .unwrap();
    eng.apply(&Update::insert(sym("e414_S"), tup![1i64, 5i64]))
        .unwrap();
    let out = eng.output();
    assert_eq!(out.get(&tup![1i64, 5i64, 50i64]), 1);
    // Static relations reject updates.
    assert!(eng
        .apply(&Update::insert(tname, tup![6i64, 60i64]))
        .is_err());
}

/// Theorem 3.4's construction example: the displayed u, M, v with
/// u⊤Mv = 1, encoded through R, S, T exactly as in the paper.
#[test]
fn thm34_worked_encoding() {
    let mut eng = TriangleDelta::new();
    let a = 1_000u64; // the constant value "a"
    eng.apply(Rel::R, a, 2, 1); // u has a 1 in column 2
    for (i, j) in [(2u64, 1u64), (1, 2), (3, 3)] {
        eng.apply(Rel::S, i, j, 1); // M
    }
    eng.apply(Rel::T, 1, a, 1); // v has a 1 in row 1
    assert!(eng.detect(), "u⊤Mv = 1 in the paper's example");
    assert_eq!(eng.count(), 1);
}

/// The classification table (Sec. 4): every named query gets the verdict
/// the paper states.
#[test]
fn classification_verdicts() {
    assert!(!is_hierarchical(&ex::triangle_count()));
    assert!(!is_hierarchical(&ex::ex43_non_hierarchical()));
    assert!(is_hierarchical(&ex::ex51_query()));
    assert!(!is_q_hierarchical(&ex::ex51_query()));
    assert!(is_q_hierarchical(&ex::fig3_query()));
    assert!(is_q_hierarchical(&ex::retailer_query().0));
    let (q412, sigma) = ex::ex412_query();
    assert!(ivm_query::fd::reduct_is_q_hierarchical(&q412, &sigma));
    assert!(ivm_query::acyclic::is_acyclic(&ex::path3_query()));
    assert!(ivm_query::varorder::is_tractable_static_dynamic(
        &ex::ex414_query()
    ));
}
