//! Replanning-equivalence harness: re-lowering a running engine at
//! *arbitrary* stream points must be invisible in the maintained output.
//!
//! Each proptest case drives one query shape through a random mixed-sign
//! update stream and injects replans at generated batch boundaries —
//! flipping between the left-deep and worst-case-optimal strategies with
//! *fresh cardinality orders* learned from the live base state — into
//!
//! 1. a single-threaded `DataflowEngine`
//!    (`replan_with_cards`), and
//! 2. `ShardedEngine` fleets of **1, 2, and 4 shards** (the broadcast
//!    replan path through the worker queues),
//!
//! asserting after every batch that all agree with a from-scratch oracle
//! over the mirrored base relations, and that the carried counters are
//! monotone across every replan (history must survive, per-replay noise
//! must not double-count). Shapes cover the planner's and shard
//! planner's whole split: the self-join triangle (degenerate
//! single-shard routing), the 4-cycle (broadcast replication), the star
//! (fully partitioned), and — deterministically, below — the 5-relation
//! Retailer join under its Inventory stream.
//!
//! Shapes, stream strategies, and the oracle live in `tests/common`.

mod common;

use common::{
    edge_ops, edge_ops_default, edge_updates, four_cycle, mirror_db, oracle_db, outputs_match,
    star, triangle, triangle3, EdgeOp,
};
use ivm::{EngineKind, Session};
use ivm_core::Maintainer;
use ivm_data::ops::{eval_join_aggregate, lift_one};
use ivm_data::Relation;
use ivm_dataflow::{
    Cardinalities, DataflowEngine, DataflowStats, JoinStrategy, ReplanPolicy, ReplanTrigger,
};
use ivm_query::Query;
use ivm_shard::ShardedEngine;
use ivm_workloads::RetailerGen;
use proptest::prelude::*;

/// Carried history must be monotone across a replan: every counter at
/// least its pre-replan value, and the ingestion totals exactly equal
/// (the replay's one-off preprocessing must not double-count).
fn assert_monotone(
    before: &DataflowStats,
    after: &DataflowStats,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(after.batches >= before.batches, "{}: batches shrank", ctx);
    prop_assert_eq!(
        after.updates_in,
        before.updates_in,
        "{}: replay double-counted updates_in",
        ctx
    );
    prop_assert!(
        after.deltas_in >= before.deltas_in,
        "{}: deltas shrank",
        ctx
    );
    prop_assert!(
        after.output_delta_tuples >= before.output_delta_tuples,
        "{}: output deltas shrank",
        ctx
    );
    prop_assert!(
        after.binary_join_tuples >= before.binary_join_tuples
            && after.multiway_seeds >= before.multiway_seeds
            && after.multiway_probes >= before.multiway_probes,
        "{}: join counters shrank",
        ctx
    );
    Ok(())
}

/// Drive one shape through the stream, replanning the single engine and
/// every fleet at the generated batch boundaries — alternating strategy,
/// orders re-derived from the live (learned) cardinalities each time —
/// and compare everything to the oracle after every batch.
fn check_shape_with_replans(
    q: &Query,
    ops: &[EdgeOp],
    chunk: usize,
    replan_at: &[usize],
    start: JoinStrategy,
) -> Result<(), TestCaseError> {
    let updates = edge_updates(q, ops);

    let mut mirror = mirror_db(q);
    let mut single =
        DataflowEngine::<i64>::new_with_strategy(q.clone(), &mirror, lift_one, start).unwrap();
    let mut fleets: Vec<ShardedEngine<i64>> = [1usize, 2, 4]
        .into_iter()
        .map(|n| ShardedEngine::new_with_strategy(q.clone(), &mirror, lift_one, n, start).unwrap())
        .collect();

    let mut strategy = start;
    for (batch_no, batch) in updates.chunks(chunk.max(1)).enumerate() {
        if replan_at.contains(&batch_no) {
            // Fresh orders from the live counts; alternate the strategy.
            strategy = match strategy {
                JoinStrategy::Multiway => JoinStrategy::LeftDeep,
                _ => JoinStrategy::Multiway,
            };
            let cards = Cardinalities::from_db(&mirror, q);
            let before = single.stats();
            single
                .replan_with_cards(&mirror, strategy, cards.clone())
                .unwrap();
            assert_monotone(&before, &single.stats(), "single replan")?;
            prop_assert_eq!(single.resolved_strategy(), strategy);
            for eng in &mut fleets {
                let before = eng.stats();
                eng.replan_with_cards(&mirror, strategy, &cards).unwrap();
                assert_monotone(
                    &before,
                    &eng.stats(),
                    &format!("fleet x{} replan", eng.shards()),
                )?;
                prop_assert_eq!(eng.resolved_strategy(), strategy);
            }
        }
        single.apply_batch(batch).unwrap();
        for eng in &mut fleets {
            eng.apply_batch(batch).unwrap();
        }
        for u in batch {
            mirror.apply(u);
        }
        let expect = oracle_db(q, &mirror);
        outputs_match(
            single.output_relation(),
            &expect,
            &format!("{:?} single ({:?})", q.name, strategy),
        )?;
        for eng in &fleets {
            outputs_match(
                eng.output_relation(),
                &expect,
                &format!("{:?} sharded x{} ({:?})", q.name, eng.shards(), strategy),
            )?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Self-join triangle (degenerate single-shard routing) under
    /// replans at arbitrary points, starting from either strategy.
    #[test]
    fn triangle_replans_agree(
        ops in edge_ops_default(),
        chunk in 1usize..9,
        r1 in 0usize..4,
        r2 in 4usize..8,
        start_multiway in proptest::bool::ANY,
    ) {
        let start = if start_multiway { JoinStrategy::Multiway } else { JoinStrategy::LeftDeep };
        check_shape_with_replans(&triangle("ae_"), &ops, chunk, &[r1, r2], start)?;
    }

    /// 4-cycle (broadcast replication path) under replans.
    #[test]
    fn four_cycle_replans_agree(
        ops in edge_ops_default(),
        chunk in 1usize..9,
        r1 in 0usize..4,
        r2 in 4usize..8,
        start_multiway in proptest::bool::ANY,
    ) {
        let start = if start_multiway { JoinStrategy::Multiway } else { JoinStrategy::LeftDeep };
        check_shape_with_replans(&four_cycle("ae_"), &ops, chunk, &[r1, r2], start)?;
    }

    /// Cross-family adaptive sessions on the 3-relation triangle: a
    /// `family_cost_ratio` below 1 makes the dataflow → heavy-light and
    /// heavy-light → dataflow hysteresis bands *overlap*, so with the
    /// clocks floored the session is free to swap engine families at
    /// every batch boundary the stream's skew happens to license —
    /// the adversarial schedule for the mid-stream rebuild-from-mirror
    /// path. Whatever family it lands on, the maintained output must
    /// stay ≡ the oracle after every batch, every shift must move
    /// between the two families in the comparison's domain, and the
    /// shift log must be exactly the `FamilyShift`-triggered suffix the
    /// session reports. (The deterministic ≥ 1-shift acceptance lives
    /// with the session's unit tests; here the schedule is generated.)
    #[test]
    fn cross_family_oscillation_agrees(
        ops in edge_ops(3, 4, 0..48),
        chunk in 1usize..9,
    ) {
        let q = triangle3("ae_");
        let updates = edge_updates(&q, &ops);
        let mut mirror = mirror_db(&q);
        let mut s = Session::<i64>::builder(q.clone())
            .adaptive(ReplanPolicy {
                min_batches_between: 1,
                min_replay_fraction: 0.0,
                family_cost_ratio: 0.5,
                ..ReplanPolicy::default()
            })
            .build(&mirror)
            .unwrap();
        prop_assert_eq!(s.engine_kind(), EngineKind::HeavyLight);
        for (no, batch) in updates.chunks(chunk.max(1)).enumerate() {
            s.apply_batch(batch).unwrap();
            for u in batch {
                mirror.apply(u);
            }
            let expect = oracle_db(&q, &mirror);
            outputs_match(&s.output(), &expect, &format!("cross-family batch {no}"))?;
            prop_assert!(
                matches!(
                    s.engine_kind(),
                    EngineKind::HeavyLight
                        | EngineKind::DataflowMultiway
                        | EngineKind::DataflowLeftDeep
                ),
                "batch {}: family comparison left its domain: {:?}",
                no,
                s.engine_kind()
            );
        }
        for ev in &s.explain().replans {
            if ev.trigger == ReplanTrigger::FamilyShift {
                prop_assert!(
                    ev.to.contains("HeavyLight") != ev.from.contains("HeavyLight"),
                    "family shift that did not change family: {} -> {}",
                    ev.from,
                    ev.to
                );
            }
        }
    }

    /// Acyclic star (fully partitioned) under replans.
    #[test]
    fn star_replans_agree(
        ops in edge_ops_default(),
        chunk in 1usize..9,
        r1 in 0usize..4,
        r2 in 4usize..8,
        start_multiway in proptest::bool::ANY,
    ) {
        let start = if start_multiway { JoinStrategy::Multiway } else { JoinStrategy::LeftDeep };
        check_shape_with_replans(&star("ae_"), &ops, chunk, &[r1, r2], start)?;
    }
}

/// The 5-relation Retailer join under its Inventory insert stream, with
/// strategy-flipping replans injected mid-stream into both the
/// single-threaded engine and a 2-shard fleet — deterministic, so it
/// doubles as the wide-arity (beyond binary atoms) replan check.
#[test]
fn retailer_replans_mid_stream_match_oracle() {
    let mut gen = RetailerGen::new(8, 3, 8, 42);
    let db = gen.initial_db(400);
    let q = gen.query().clone();
    let mut mirror = db.clone();
    let mut single = DataflowEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    assert_eq!(single.resolved_strategy(), JoinStrategy::LeftDeep);
    let mut fleet = ShardedEngine::<i64>::new(q.clone(), &db, lift_one, 2).unwrap();

    for i in 0..9 {
        if i % 3 == 2 {
            // Learned orders from the live mirror; alternate strategies.
            let strategy = if i == 2 {
                JoinStrategy::Multiway
            } else {
                JoinStrategy::LeftDeep
            };
            let cards = Cardinalities::from_db(&mirror, &q);
            let before = (single.stats(), fleet.stats());
            single
                .replan_with_cards(&mirror, strategy, cards.clone())
                .unwrap();
            fleet.replan_with_cards(&mirror, strategy, &cards).unwrap();
            assert!(single.stats().batches >= before.0.batches);
            assert_eq!(single.stats().updates_in, before.0.updates_in);
            assert!(fleet.stats().batches >= before.1.batches);
            assert_eq!(fleet.stats().updates_in, before.1.updates_in);
            assert_eq!(single.resolved_strategy(), strategy);
            assert_eq!(fleet.resolved_strategy(), strategy);
        }
        let batch = gen.inventory_batch(60);
        single.apply_batch(&batch).unwrap();
        fleet.apply_batch(&batch).unwrap();
        for u in &batch {
            mirror.apply(u);
        }
    }

    let per_atom: Vec<&Relation<i64>> = q
        .atoms
        .iter()
        .map(|atom| mirror.relation(atom.name))
        .collect();
    let expect = eval_join_aggregate(&per_atom, &q.free, lift_one);
    for (name, got) in [
        ("single", single.output_relation()),
        ("fleet", fleet.output_relation()),
    ] {
        assert_eq!(got.len(), expect.len(), "{name}");
        for (t, p) in expect.iter() {
            assert_eq!(&got.get(t), p, "{name} at {t:?}");
        }
    }
}
