//! Replanning-equivalence harness: re-lowering a running engine at
//! *arbitrary* stream points must be invisible in the maintained output.
//!
//! Each proptest case drives one query shape through a random mixed-sign
//! update stream and injects replans at generated batch boundaries —
//! flipping between the left-deep and worst-case-optimal strategies with
//! *fresh cardinality orders* learned from the live base state — into
//!
//! 1. a single-threaded `DataflowEngine`
//!    (`replan_with_cards`), and
//! 2. `ShardedEngine` fleets of **1, 2, and 4 shards** (the broadcast
//!    replan path through the worker queues),
//!
//! asserting after every batch that all agree with a from-scratch oracle
//! over the mirrored base relations, and that the carried counters are
//! monotone across every replan (history must survive, per-replay noise
//! must not double-count). Shapes cover the planner's and shard
//! planner's whole split: the self-join triangle (degenerate
//! single-shard routing), the 4-cycle (broadcast replication), the star
//! (fully partitioned), and — deterministically, below — the 5-relation
//! Retailer join under its Inventory stream.

use ivm_core::Maintainer;
use ivm_data::ops::{eval_join_aggregate, lift_one};
use ivm_data::{sym, tup, Database, Relation, Update};
use ivm_dataflow::{Cardinalities, DataflowEngine, DataflowStats, JoinStrategy};
use ivm_query::{Atom, Query};
use ivm_shard::ShardedEngine;
use ivm_workloads::RetailerGen;
use proptest::prelude::*;

/// The cyclic self-join triangle count `Q() = Σ E(a,b)·E(b,c)·E(c,a)`.
fn triangle() -> Query {
    let [a, b, c] = ivm_data::vars(["ae_A", "ae_B", "ae_C"]);
    let e = sym("ae_E");
    Query::new(
        "ae_tri",
        [],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    )
}

/// The cyclic 4-cycle `Q() = Σ R(a,b)·S(b,c)·T(c,d)·U(d,a)`.
fn four_cycle() -> Query {
    let [a, b, c, d] = ivm_data::vars(["ae_4A", "ae_4B", "ae_4C", "ae_4D"]);
    Query::new(
        "ae_cycle4",
        [],
        vec![
            Atom::new(sym("ae_4R"), [a, b]),
            Atom::new(sym("ae_4S"), [b, c]),
            Atom::new(sym("ae_4T"), [c, d]),
            Atom::new(sym("ae_4U"), [d, a]),
        ],
    )
}

/// The acyclic full star `Q(x,y,z,w) = R(x,y)·S(x,z)·T(x,w)`.
fn star() -> Query {
    let [x, y, z, w] = ivm_data::vars(["ae_SX", "ae_SY", "ae_SZ", "ae_SW"]);
    Query::new(
        "ae_star",
        [x, y, z, w],
        vec![
            Atom::new(sym("ae_SR"), [x, y]),
            Atom::new(sym("ae_SS"), [x, z]),
            Atom::new(sym("ae_ST"), [x, w]),
        ],
    )
}

type Op = (usize, (u64, u64), i64);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0usize..4,
            (0u64..4, 0u64..4),
            prop_oneof![Just(1i64), Just(1), Just(-1), Just(2), Just(-2)],
        ),
        0..48,
    )
}

fn distinct_relations(q: &Query) -> Vec<ivm_data::Sym> {
    let mut rels = Vec::new();
    for atom in &q.atoms {
        if !rels.contains(&atom.name) {
            rels.push(atom.name);
        }
    }
    rels
}

/// From-scratch oracle over the mirrored base relations.
fn oracle(q: &Query, mirror: &Database<i64>) -> Relation<i64> {
    let per_atom: Vec<Relation<i64>> = q
        .atoms
        .iter()
        .map(|atom| {
            Relation::from_rows(
                atom.schema.clone(),
                mirror
                    .relation(atom.name)
                    .iter()
                    .map(|(t, r)| (t.clone(), *r)),
            )
        })
        .collect();
    let refs: Vec<&Relation<i64>> = per_atom.iter().collect();
    eval_join_aggregate(&refs, &q.free, lift_one)
}

fn outputs_match(
    got: &Relation<i64>,
    expect: &Relation<i64>,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), expect.len(), "{}: sizes differ", ctx);
    for (t, p) in expect.iter() {
        prop_assert_eq!(&got.get(t), p, "{} at {:?}", ctx, t);
    }
    Ok(())
}

/// Carried history must be monotone across a replan: every counter at
/// least its pre-replan value, and the ingestion totals exactly equal
/// (the replay's one-off preprocessing must not double-count).
fn assert_monotone(
    before: &DataflowStats,
    after: &DataflowStats,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(after.batches >= before.batches, "{}: batches shrank", ctx);
    prop_assert_eq!(
        after.updates_in,
        before.updates_in,
        "{}: replay double-counted updates_in",
        ctx
    );
    prop_assert!(
        after.deltas_in >= before.deltas_in,
        "{}: deltas shrank",
        ctx
    );
    prop_assert!(
        after.output_delta_tuples >= before.output_delta_tuples,
        "{}: output deltas shrank",
        ctx
    );
    prop_assert!(
        after.binary_join_tuples >= before.binary_join_tuples
            && after.multiway_seeds >= before.multiway_seeds
            && after.multiway_probes >= before.multiway_probes,
        "{}: join counters shrank",
        ctx
    );
    Ok(())
}

/// Drive one shape through the stream, replanning the single engine and
/// every fleet at the generated batch boundaries — alternating strategy,
/// orders re-derived from the live (learned) cardinalities each time —
/// and compare everything to the oracle after every batch.
fn check_shape_with_replans(
    q: &Query,
    ops: &[Op],
    chunk: usize,
    replan_at: &[usize],
    start: JoinStrategy,
) -> Result<(), TestCaseError> {
    let rels = distinct_relations(q);
    let updates: Vec<Update<i64>> = ops
        .iter()
        .filter(|(_, _, m)| *m != 0)
        .map(|&(ri, (x, y), m)| Update::with_payload(rels[ri % rels.len()], tup![x, y], m))
        .collect();

    let mut mirror: Database<i64> = Database::new();
    for &r in &rels {
        mirror.create(
            r,
            q.atoms.iter().find(|a| a.name == r).unwrap().schema.clone(),
        );
    }
    let mut single =
        DataflowEngine::<i64>::new_with_strategy(q.clone(), &mirror, lift_one, start).unwrap();
    let mut fleets: Vec<ShardedEngine<i64>> = [1usize, 2, 4]
        .into_iter()
        .map(|n| ShardedEngine::new_with_strategy(q.clone(), &mirror, lift_one, n, start).unwrap())
        .collect();

    let mut strategy = start;
    for (batch_no, batch) in updates.chunks(chunk.max(1)).enumerate() {
        if replan_at.contains(&batch_no) {
            // Fresh orders from the live counts; alternate the strategy.
            strategy = match strategy {
                JoinStrategy::Multiway => JoinStrategy::LeftDeep,
                _ => JoinStrategy::Multiway,
            };
            let cards = Cardinalities::from_db(&mirror, q);
            let before = single.stats();
            single
                .replan_with_cards(&mirror, strategy, cards.clone())
                .unwrap();
            assert_monotone(&before, &single.stats(), "single replan")?;
            prop_assert_eq!(single.resolved_strategy(), strategy);
            for eng in &mut fleets {
                let before = eng.stats();
                eng.replan_with_cards(&mirror, strategy, &cards).unwrap();
                assert_monotone(
                    &before,
                    &eng.stats(),
                    &format!("fleet x{} replan", eng.shards()),
                )?;
                prop_assert_eq!(eng.resolved_strategy(), strategy);
            }
        }
        single.apply_batch(batch).unwrap();
        for eng in &mut fleets {
            eng.apply_batch(batch).unwrap();
        }
        for u in batch {
            mirror.apply(u);
        }
        let expect = oracle(q, &mirror);
        outputs_match(
            single.output_relation(),
            &expect,
            &format!("{:?} single ({:?})", q.name, strategy),
        )?;
        for eng in &fleets {
            outputs_match(
                eng.output_relation(),
                &expect,
                &format!("{:?} sharded x{} ({:?})", q.name, eng.shards(), strategy),
            )?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Self-join triangle (degenerate single-shard routing) under
    /// replans at arbitrary points, starting from either strategy.
    #[test]
    fn triangle_replans_agree(
        ops in ops_strategy(),
        chunk in 1usize..9,
        r1 in 0usize..4,
        r2 in 4usize..8,
        start_multiway in proptest::bool::ANY,
    ) {
        let start = if start_multiway { JoinStrategy::Multiway } else { JoinStrategy::LeftDeep };
        check_shape_with_replans(&triangle(), &ops, chunk, &[r1, r2], start)?;
    }

    /// 4-cycle (broadcast replication path) under replans.
    #[test]
    fn four_cycle_replans_agree(
        ops in ops_strategy(),
        chunk in 1usize..9,
        r1 in 0usize..4,
        r2 in 4usize..8,
        start_multiway in proptest::bool::ANY,
    ) {
        let start = if start_multiway { JoinStrategy::Multiway } else { JoinStrategy::LeftDeep };
        check_shape_with_replans(&four_cycle(), &ops, chunk, &[r1, r2], start)?;
    }

    /// Acyclic star (fully partitioned) under replans.
    #[test]
    fn star_replans_agree(
        ops in ops_strategy(),
        chunk in 1usize..9,
        r1 in 0usize..4,
        r2 in 4usize..8,
        start_multiway in proptest::bool::ANY,
    ) {
        let start = if start_multiway { JoinStrategy::Multiway } else { JoinStrategy::LeftDeep };
        check_shape_with_replans(&star(), &ops, chunk, &[r1, r2], start)?;
    }
}

/// The 5-relation Retailer join under its Inventory insert stream, with
/// strategy-flipping replans injected mid-stream into both the
/// single-threaded engine and a 2-shard fleet — deterministic, so it
/// doubles as the wide-arity (beyond binary atoms) replan check.
#[test]
fn retailer_replans_mid_stream_match_oracle() {
    let mut gen = RetailerGen::new(8, 3, 8, 42);
    let db = gen.initial_db(400);
    let q = gen.query().clone();
    let mut mirror = db.clone();
    let mut single = DataflowEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    assert_eq!(single.resolved_strategy(), JoinStrategy::LeftDeep);
    let mut fleet = ShardedEngine::<i64>::new(q.clone(), &db, lift_one, 2).unwrap();

    for i in 0..9 {
        if i % 3 == 2 {
            // Learned orders from the live mirror; alternate strategies.
            let strategy = if i == 2 {
                JoinStrategy::Multiway
            } else {
                JoinStrategy::LeftDeep
            };
            let cards = Cardinalities::from_db(&mirror, &q);
            let before = (single.stats(), fleet.stats());
            single
                .replan_with_cards(&mirror, strategy, cards.clone())
                .unwrap();
            fleet.replan_with_cards(&mirror, strategy, &cards).unwrap();
            assert!(single.stats().batches >= before.0.batches);
            assert_eq!(single.stats().updates_in, before.0.updates_in);
            assert!(fleet.stats().batches >= before.1.batches);
            assert_eq!(fleet.stats().updates_in, before.1.updates_in);
            assert_eq!(single.resolved_strategy(), strategy);
            assert_eq!(fleet.resolved_strategy(), strategy);
        }
        let batch = gen.inventory_batch(60);
        single.apply_batch(&batch).unwrap();
        fleet.apply_batch(&batch).unwrap();
        for u in &batch {
            mirror.apply(u);
        }
    }

    let per_atom: Vec<&Relation<i64>> = q
        .atoms
        .iter()
        .map(|atom| mirror.relation(atom.name))
        .collect();
    let expect = eval_join_aggregate(&per_atom, &q.free, lift_one);
    for (name, got) in [
        ("single", single.output_relation()),
        ("fleet", fleet.output_relation()),
    ] {
        assert_eq!(got.len(), expect.len(), "{name}");
        for (t, p) in expect.iter() {
            assert_eq!(&got.get(t), p, "{name} at {t:?}");
        }
    }
}
