//! Shared test-support module for the equivalence harnesses.
//!
//! Every integration suite that drives an engine against a from-scratch
//! oracle needs the same ingredients: the canonical query shapes
//! (triangle / 4-cycle / star), proptest strategies generating mixed-sign
//! duplicate-heavy update streams, the oracle itself
//! (`eval_join_aggregate` over the mirrored base), and the
//! output-comparison helper. They used to be copy-pasted per suite; this
//! module is the single home, with shapes parameterized by a sym prefix
//! because syms are interned globally — two suites touching the *same*
//! relation name would share state across test binaries' processes only
//! by accident, but sharing names across suites would make failure
//! output ambiguous and couple generator domains. Each suite passes its
//! own prefix (`"pe_"`, `"ae_"`, `"ss_"`, `"obp_"`, `"sv_"`, …).
//!
//! Compiled once per test binary via `mod common;` — each suite uses a
//! subset, hence the module-wide `dead_code` allowance.
#![allow(dead_code)]

use ivm_data::ops::{eval_join_aggregate, lift_one};
use ivm_data::{sym, tup, Database, FxHashMap, Relation, Schema, Sym, Tuple, Update, Value};
use ivm_query::{Atom, Query};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Query shapes
// ---------------------------------------------------------------------

/// The cyclic self-join triangle count `Q() = Σ E(a,b)·E(b,c)·E(c,a)`,
/// over relation `{prefix}E`. Unshardable (columns of `E` permute across
/// occurrences), so fleets degenerate to single-shard routing.
pub fn triangle(prefix: &str) -> Query {
    let [a, b, c] = ivm_data::vars([
        format!("{prefix}A").as_str(),
        format!("{prefix}B").as_str(),
        format!("{prefix}C").as_str(),
    ]);
    let e = sym(format!("{prefix}E").as_str());
    Query::new(
        format!("{prefix}tri").as_str(),
        [],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    )
}

/// The cyclic triangle count over THREE DISTINCT relations,
/// `Q() = Σ R(a,b)·S(b,c)·T(c,a)` over `{prefix}3R/{prefix}3S/
/// {prefix}3T` — the shape the heavy-light IVMε engine family admits
/// (the self-join [`triangle`] shares one relation across atoms, which
/// the heavy-light rotation refuses).
pub fn triangle3(prefix: &str) -> Query {
    let [a, b, c] = ivm_data::vars([
        format!("{prefix}3A").as_str(),
        format!("{prefix}3B").as_str(),
        format!("{prefix}3C").as_str(),
    ]);
    Query::new(
        format!("{prefix}tri3").as_str(),
        [],
        vec![
            Atom::new(sym(format!("{prefix}3R").as_str()), [a, b]),
            Atom::new(sym(format!("{prefix}3S").as_str()), [b, c]),
            Atom::new(sym(format!("{prefix}3T").as_str()), [c, a]),
        ],
    )
}

/// The cyclic 4-cycle `Q() = Σ R(a,b)·S(b,c)·T(c,d)·U(d,a)` over four
/// distinct relations `{prefix}4R…{prefix}4U`. Shard plans partition two
/// relations and broadcast the other two — the replication path.
pub fn four_cycle(prefix: &str) -> Query {
    let [a, b, c, d] = ivm_data::vars([
        format!("{prefix}4A").as_str(),
        format!("{prefix}4B").as_str(),
        format!("{prefix}4C").as_str(),
        format!("{prefix}4D").as_str(),
    ]);
    Query::new(
        format!("{prefix}cycle4").as_str(),
        [],
        vec![
            Atom::new(sym(format!("{prefix}4R").as_str()), [a, b]),
            Atom::new(sym(format!("{prefix}4S").as_str()), [b, c]),
            Atom::new(sym(format!("{prefix}4T").as_str()), [c, d]),
            Atom::new(sym(format!("{prefix}4U").as_str()), [d, a]),
        ],
    )
}

/// The acyclic full star `Q(x,y,z,w) = R(x,y)·S(x,z)·T(x,w)` with every
/// variable free, over `{prefix}SR/{prefix}SS/{prefix}ST`. All atoms
/// partition on the shared `x`; nothing broadcasts.
pub fn star(prefix: &str) -> Query {
    let [x, y, z, w] = ivm_data::vars([
        format!("{prefix}SX").as_str(),
        format!("{prefix}SY").as_str(),
        format!("{prefix}SZ").as_str(),
        format!("{prefix}SW").as_str(),
    ]);
    Query::new(
        format!("{prefix}star").as_str(),
        [x, y, z, w],
        vec![
            Atom::new(sym(format!("{prefix}SR").as_str()), [x, y]),
            Atom::new(sym(format!("{prefix}SS").as_str()), [x, z]),
            Atom::new(sym(format!("{prefix}ST").as_str()), [x, w]),
        ],
    )
}

// ---------------------------------------------------------------------
// Generated op streams
// ---------------------------------------------------------------------

/// One generated binary-edge op: (relation pick, edge endpoints, signed
/// ring multiplicity).
pub type EdgeOp = (usize, (u64, u64), i64);

/// One generated wide op: (atom pick, raw column values, signed
/// multiplicity). Tuples are cut to each relation's arity, so one
/// strategy serves every shape from binary edges to 4-column relations.
pub type WideOp = (usize, (u64, u64, u64, u64), i64);

/// The standard binary-edge stream: small value domain (forces
/// duplicates and closures), multiplicities biased to ±1 with occasional
/// ±2, deletes unconditional — absent tuples go to negative multiplicity
/// and must round-trip through every engine identically.
pub fn edge_ops(
    rels: usize,
    domain: u64,
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<EdgeOp>> {
    proptest::collection::vec(
        (
            0usize..rels,
            (0u64..domain, 0u64..domain),
            prop_oneof![Just(1i64), Just(1), Just(-1), Just(2), Just(-2)],
        ),
        len,
    )
}

/// The default `edge_ops` shape used by the cross-engine harnesses:
/// up to 4 relations, endpoints in `0..4`, streams of up to 48 ops.
pub fn edge_ops_default() -> impl Strategy<Value = Vec<EdgeOp>> {
    edge_ops(4, 4, 0..48)
}

/// Wide-arity op stream for multi-relation schemas (up to 8 atoms,
/// column values in `0..3`, streams of up to 40 ops).
pub fn wide_ops() -> impl Strategy<Value = Vec<WideOp>> {
    proptest::collection::vec(
        (
            0usize..8,
            (0u64..3, 0u64..3, 0u64..3, 0u64..3),
            prop_oneof![Just(1i64), Just(1), Just(-1), Just(2), Just(-2)],
        ),
        0..40,
    )
}

/// Distinct relations of `q`, in first-occurrence order.
pub fn distinct_relations(q: &Query) -> Vec<Sym> {
    let mut rels = Vec::new();
    for atom in &q.atoms {
        if !rels.contains(&atom.name) {
            rels.push(atom.name);
        }
    }
    rels
}

/// Distinct relations of `q` with their schemas, first-occurrence order.
pub fn distinct_relations_with_schemas(q: &Query) -> Vec<(Sym, Schema)> {
    let mut rels: Vec<(Sym, Schema)> = Vec::new();
    for atom in &q.atoms {
        if !rels.iter().any(|(n, _)| *n == atom.name) {
            rels.push((atom.name, atom.schema.clone()));
        }
    }
    rels
}

/// Turn binary-edge ops into updates against `q`'s relations, dropping
/// zero-multiplicity no-ops. Deletes are *not* clamped: the ℤ-ring
/// engines must agree on negative multiplicities too.
pub fn edge_updates(q: &Query, ops: &[EdgeOp]) -> Vec<Update<i64>> {
    let rels = distinct_relations(q);
    ops.iter()
        .filter(|(_, _, m)| *m != 0)
        .map(|&(ri, (x, y), m)| Update::with_payload(rels[ri % rels.len()], tup![x, y], m))
        .collect()
}

/// Turn wide ops into a *valid* mixed ± stream (Sec. 2: deletes never
/// push a tuple's multiplicity below zero). The view-tree engines
/// maintain the paper's update model, where streams are valid by
/// definition; clamping keeps the comparison meaningful for every
/// backend while still exercising deletes, duplicates, and cancellation.
pub fn clamped_updates(q: &Query, ops: &[WideOp]) -> Vec<Update<i64>> {
    let rels = distinct_relations_with_schemas(q);
    let mut counts: FxHashMap<(Sym, Tuple), i64> = Default::default();
    ops.iter()
        .filter(|(_, _, m)| *m != 0)
        .filter_map(|&(ri, vals, m)| {
            let (name, schema) = &rels[ri % rels.len()];
            let cols = [vals.0, vals.1, vals.2, vals.3];
            let t = Tuple::new((0..schema.arity()).map(|i| Value::from(cols[i % 4] as i64)));
            let cur = counts.entry((*name, t.clone())).or_insert(0);
            let m = m.max(-*cur);
            if m == 0 {
                return None;
            }
            *cur += m;
            Some(Update::with_payload(*name, t, m))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Oracle and base mirrors
// ---------------------------------------------------------------------

/// An empty per-relation mirror for `q`, keyed by relation sym.
pub fn empty_base(q: &Query) -> FxHashMap<Sym, Relation<i64>> {
    distinct_relations_with_schemas(q)
        .into_iter()
        .map(|(n, s)| (n, Relation::new(s)))
        .collect()
}

/// An empty `Database` mirror holding one relation per distinct atom.
pub fn mirror_db(q: &Query) -> Database<i64> {
    let mut db = Database::new();
    for (n, s) in distinct_relations_with_schemas(q) {
        db.create(n, s);
    }
    db
}

/// Apply a batch to the per-relation mirror.
pub fn apply_to_base(base: &mut FxHashMap<Sym, Relation<i64>>, batch: &[Update<i64>]) {
    for u in batch {
        base.get_mut(&u.relation)
            .unwrap()
            .apply(u.tuple.clone(), &u.payload);
    }
}

/// From-scratch oracle: join-aggregate over one relation copy per atom
/// (self-joins get one copy *each*, as the semantics require).
pub fn oracle(q: &Query, base: &FxHashMap<Sym, Relation<i64>>) -> Relation<i64> {
    let per_atom: Vec<Relation<i64>> = q
        .atoms
        .iter()
        .map(|atom| {
            Relation::from_rows(
                atom.schema.clone(),
                base[&atom.name].iter().map(|(t, r)| (t.clone(), *r)),
            )
        })
        .collect();
    let refs: Vec<&Relation<i64>> = per_atom.iter().collect();
    eval_join_aggregate(&refs, &q.free, lift_one)
}

/// From-scratch oracle over a mirrored `Database`.
pub fn oracle_db(q: &Query, mirror: &Database<i64>) -> Relation<i64> {
    let per_atom: Vec<Relation<i64>> = q
        .atoms
        .iter()
        .map(|atom| {
            Relation::from_rows(
                atom.schema.clone(),
                mirror
                    .relation(atom.name)
                    .iter()
                    .map(|(t, r)| (t.clone(), *r)),
            )
        })
        .collect();
    let refs: Vec<&Relation<i64>> = per_atom.iter().collect();
    eval_join_aggregate(&refs, &q.free, lift_one)
}

/// Assert two output relations agree exactly: same size, same payload at
/// every tuple of `expect`.
pub fn outputs_match(
    got: &Relation<i64>,
    expect: &Relation<i64>,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), expect.len(), "{}: sizes differ", ctx);
    for (t, p) in expect.iter() {
        prop_assert_eq!(&got.get(t), p, "{} at {:?}", ctx, t);
    }
    Ok(())
}
