//! Serving-layer equivalence harness: a [`ServeNode`] fanning one ingest
//! stream out to N subscribers must be observationally identical to N
//! *independent* [`Session`]s, each fed the same stream filtered to its
//! own query's relations.
//!
//! Each proptest case draws a set of subscribers from a small query
//! catalog — the self-join triangle, an α-renamed *and* atom-rotated
//! copy of it (these two must dedup onto one engine), the 4-cycle, and
//! the all-free star — plus a mixed-sign duplicate-heavy update stream,
//! a chunking, a mid-stream subscribe point, and an unsubscribe point.
//! After every batch, for every live subscriber:
//!
//! * the pushed [`ViewDelta`] equals the delta the subscriber's private
//!   reference session returns for the same filtered batch,
//! * exactly one delivery arrived this epoch (empty deltas included),
//!   stamped with the right epoch number,
//! * [`ServeNode::view`] equals the reference session's full output,
//!
//! and structurally: the live group count equals the number of distinct
//! *canonical* queries among live subscribers (dedup neither merges two
//! different views nor splits one), a mid-stream subscriber's first
//! snapshot equals a fresh session built over the current base, and an
//! unsubscribed id is gone without perturbing anyone else. The reference
//! sessions are built *without* shared stores, so the comparison is
//! precisely "fabric vs N independent engines".
//!
//! Shapes, stream strategies, and the comparison helper live in
//! `tests/common`.

mod common;

use common::{edge_ops, four_cycle, outputs_match, star, triangle, EdgeOp};
use ivm_core::Maintainer;
use ivm_data::{sym, tup, Database, Sym, Update};
use ivm_query::{Atom, Query};
use ivm_serve::{ServeNode, Subscription};
use ivm_session::Session;
use proptest::prelude::*;

/// An α-renamed, atom-rotated triangle over the *same* relation as
/// `triangle("sv_")` — canonically equal, so it must share that engine.
fn renamed_triangle() -> Query {
    let [x, y, z] = ivm_data::vars(["sv_RX", "sv_RY", "sv_RZ"]);
    let e = sym("sv_E");
    Query::new(
        "sv_tri_renamed",
        [],
        vec![
            Atom::new(e, [y, z]),
            Atom::new(e, [z, x]),
            Atom::new(e, [x, y]),
        ],
    )
}

/// The subscriber catalog. Entries 0 and 1 canonicalize identically
/// (one dedup class); 2 and 3 are their own classes.
fn catalog(i: usize) -> Query {
    match i % 4 {
        0 => triangle("sv_"),
        1 => renamed_triangle(),
        2 => four_cycle("sv_"),
        _ => star("sv_"),
    }
}

/// Dedup class of catalog entry `i` (0 and 1 are isomorphic).
fn dedup_class(i: usize) -> usize {
    match i % 4 {
        0 | 1 => 0,
        k => k - 1,
    }
}

/// Every relation any catalog query mentions, in op-slot order.
fn all_relations() -> Vec<Sym> {
    [
        "sv_E", "sv_4R", "sv_4S", "sv_4T", "sv_4U", "sv_SR", "sv_SS", "sv_ST",
    ]
    .map(sym)
    .to_vec()
}

/// One live subscriber under test: the node-side subscription paired
/// with its independent reference session.
struct Pair {
    sub: Subscription<i64>,
    reference: Session<i64>,
    rels: Vec<Sym>,
    class: usize,
}

/// Subscribe `catalog(pick)` on the node and stand up the matching
/// reference session over `mirror` (the node base's exact mirror).
fn subscribe_pair(node: &mut ServeNode<i64>, mirror: &mut Database<i64>, pick: usize) -> Pair {
    let q = catalog(pick);
    // Mirror the node's create-on-first-mention so both sides always
    // hold identical base state for this query's relations.
    for atom in &q.atoms {
        if mirror.get(atom.name).is_none() {
            mirror.create(atom.name, atom.schema.clone());
        }
    }
    let rels: Vec<Sym> = q.atoms.iter().map(|a| a.name).collect();
    let reference = Session::<i64>::builder(q.clone()).build(mirror).unwrap();
    let sub = node.subscribe(q).unwrap();
    Pair {
        sub,
        reference,
        rels,
        class: dedup_class(pick),
    }
}

/// The number of engine groups the live pairs should occupy.
fn expected_groups(pairs: &[Pair]) -> usize {
    let mut classes: Vec<usize> = pairs.iter().map(|p| p.class).collect();
    classes.sort_unstable();
    classes.dedup();
    classes.len()
}

fn check_fabric(
    subs: &[usize],
    ops: &[EdgeOp],
    chunk: usize,
    mid_pick: usize,
    mid_at: usize,
    unsub_at: usize,
) -> Result<(), TestCaseError> {
    let rels = all_relations();
    let updates: Vec<Update<i64>> = ops
        .iter()
        .filter(|(_, _, m)| *m != 0)
        .map(|&(ri, (x, y), m)| Update::with_payload(rels[ri % rels.len()], tup![x, y], m))
        .collect();

    let mut node = ServeNode::<i64>::new();
    let mut mirror = Database::<i64>::new();
    // Relations some subscriber's query has declared on the node. The
    // node atomically rejects updates to anything else, so the driver —
    // like any real ingest frontend — sends only declared relations.
    let mut known: ivm_data::FxHashSet<Sym> = Default::default();
    let mut pairs: Vec<Pair> = subs
        .iter()
        .map(|&pick| subscribe_pair(&mut node, &mut mirror, pick))
        .collect();
    for p in &pairs {
        known.extend(p.rels.iter().copied());
    }
    prop_assert_eq!(node.subscriber_count(), pairs.len());
    prop_assert_eq!(node.group_count(), expected_groups(&pairs));

    let mut epoch = 0u64;
    for (batch_no, raw_batch) in updates.chunks(chunk.max(1)).enumerate() {
        if batch_no == mid_at {
            // Mid-stream registration: the newcomer snapshots the
            // current base and receives deltas from the next epoch on.
            let mut p = subscribe_pair(&mut node, &mut mirror, mid_pick);
            known.extend(p.rels.iter().copied());
            let expect = p.reference.output();
            outputs_match(
                &node.view(p.sub.id()).expect("just subscribed"),
                &expect,
                "mid-stream initial snapshot",
            )?;
            pairs.push(p);
            prop_assert_eq!(node.group_count(), expected_groups(&pairs));
        }
        if batch_no == unsub_at && !pairs.is_empty() {
            let p = pairs.remove(0);
            let id = p.sub.id();
            prop_assert!(node.unsubscribe(id), "first unsubscribe succeeds");
            prop_assert!(!node.is_subscribed(id));
            prop_assert!(!node.unsubscribe(id), "second unsubscribe is a no-op");
            prop_assert!(node.view(id).is_none());
            prop_assert_eq!(node.subscriber_count(), pairs.len());
            prop_assert_eq!(node.group_count(), expected_groups(&pairs));
        }

        let batch: Vec<Update<i64>> = raw_batch
            .iter()
            .filter(|u| known.contains(&u.relation))
            .cloned()
            .collect();
        node.apply_batch(&batch).unwrap();
        mirror.apply_batch(&batch);

        for p in &mut pairs {
            // The reference session sees the same stream filtered to its
            // own query's relations — exactly what "an independent
            // session over this view" would ingest.
            let filtered: Vec<Update<i64>> = batch
                .iter()
                .filter(|u| p.rels.contains(&u.relation))
                .cloned()
                .collect();
            let expect_delta = p.reference.apply_batch(&filtered).unwrap();
            let vd = p.sub.try_next();
            let Some(vd) = vd else {
                return Err(TestCaseError::fail(format!(
                    "subscriber {} missed its epoch-{epoch} delivery",
                    p.sub.id()
                )));
            };
            prop_assert_eq!(vd.epoch, epoch, "epoch stamp");
            prop_assert!(
                p.sub.try_next().is_none(),
                "more than one delivery in one epoch"
            );
            outputs_match(
                &vd.delta,
                &expect_delta,
                &format!("delta of subscriber {} at epoch {epoch}", p.sub.id()),
            )?;
            let got_view = node.view(p.sub.id()).expect("subscriber is live");
            outputs_match(
                &got_view,
                &p.reference.output(),
                &format!("view of subscriber {} at epoch {epoch}", p.sub.id()),
            )?;
        }
        epoch += 1;
    }
    prop_assert_eq!(node.epoch(), epoch);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// N subscribers (duplicates and α-renamed queries included) over
    /// one shared node ≡ N independent sessions over the same filtered
    /// stream, at every batch boundary, with one subscriber joining and
    /// one leaving mid-stream at generated points.
    #[test]
    fn serve_node_matches_independent_sessions(
        subs in proptest::collection::vec(0usize..4, 1..5),
        ops in edge_ops(8, 4, 0..48),
        chunk in 1usize..9,
        mid_pick in 0usize..4,
        mid_at in 0usize..4,
        unsub_at in 0usize..6,
    ) {
        check_fabric(&subs, &ops, chunk, mid_pick, mid_at, unsub_at)?;
    }
}

/// Deterministic dedup + shared-store acceptance: the triangle *count*
/// and the triangle *listing* are different views (different free sets →
/// different canonical keys → two groups) over the same base relation,
/// so their multiway engines share one `sv_E` trie store through the
/// hub — and both still match independent sessions exactly.
#[test]
fn two_views_one_relation_share_state_and_stay_correct() {
    let e = sym("sv_E");
    let count = triangle("sv_");
    let [a, b, c] = ivm_data::vars(["sv_LA", "sv_LB", "sv_LC"]);
    let listing = Query::new(
        "sv_tri_listing",
        [a, b, c],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    );

    let mut node = ServeNode::<i64>::new();
    let mut sub_count = node.subscribe(count.clone()).unwrap();
    let mut sub_listing = node.subscribe(listing.clone()).unwrap();
    assert_eq!(node.group_count(), 2, "different free sets never dedup");

    let mut mirror = Database::<i64>::new();
    mirror.create(e, count.atoms[0].schema.clone());
    let mut ref_count = Session::<i64>::builder(count).build(&mirror).unwrap();
    let mut ref_listing = Session::<i64>::builder(listing).build(&mirror).unwrap();

    let stream: Vec<Update<i64>> = (0..30u64)
        .map(|i| {
            let (x, y) = (i % 5, (i * 3 + 1) % 5);
            Update::with_payload(e, tup![x, y], if i % 7 == 0 { -1 } else { 1 })
        })
        .collect();
    for batch in stream.chunks(6) {
        node.apply_batch(batch).unwrap();
        mirror.apply_batch(batch);
        let d_count = ref_count.apply_batch(batch).unwrap();
        let d_listing = ref_listing.apply_batch(batch).unwrap();
        let vd_count = sub_count.try_next().expect("count delivery");
        let vd_listing = sub_listing.try_next().expect("listing delivery");
        assert_eq!(vd_count.delta.len(), d_count.len());
        for (t, p) in d_count.iter() {
            assert_eq!(&vd_count.delta.get(t), p, "count delta at {t:?}");
        }
        assert_eq!(vd_listing.delta.len(), d_listing.len());
        for (t, p) in d_listing.iter() {
            assert_eq!(&vd_listing.delta.get(t), p, "listing delta at {t:?}");
        }
    }

    // The fabric's census: sv_E lives once in the base and once in the
    // hub-shared trie store; two private sessions each hold their own
    // engine copy on top of their own base.
    let independent = mirror.size() * 2
        + ref_count.resident_tuples().unwrap_or(0)
        + ref_listing.resident_tuples().unwrap_or(0);
    assert!(
        node.resident_tuples() < independent,
        "shared fabric ({}) must be smaller than independent sessions ({})",
        node.resident_tuples(),
        independent
    );
}
