//! Heavy-light (IVMε) partition-invariant harness for the generic
//! engine behind `EngineKind::HeavyLight`.
//!
//! Three properties, checked after *every* batch of generated
//! mixed-sign streams:
//!
//! 1. **Partition invariants** — the hysteresis band holds: every heavy
//!    key has degree > θ, every light key degree < 2θ
//!    ([`HeavyLightEngine::check_partition`]).
//! 2. **View invariants** — the three auxiliary HL views equal a
//!    from-scratch recompute over the current partition
//!    ([`HeavyLightEngine::check_views`]) — so the lazy global
//!    rebalances and per-key migrations never leave a stale entry.
//! 3. **Output equivalence** — the maintained count equals the
//!    from-scratch join-aggregate oracle over a mirrored base.
//!
//! The whole grid of ε values is exercised (ε = 0 makes nearly every
//! key heavy, ε = 1 nearly every key light — the two degenerate
//! partitions bracket the O(√N) optimum at ε = ½), and preprocessing is
//! pinned to streaming: an engine built over a preloaded base must be
//! indistinguishable from one that ingested the same tuples as updates.
//!
//! Shapes, stream strategies, and the oracle live in `tests/common`.

mod common;

use common::{edge_ops, edge_updates, mirror_db, oracle_db, outputs_match, triangle3, EdgeOp};
use ivm::{HeavyLightEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, Update};
use proptest::prelude::*;

/// The ε grid every property runs over: both degenerate partitions, the
/// optimum, and two asymmetric points.
const EPS_GRID: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Assert every invariant the engine exposes, plus oracle equality.
fn assert_invariants(
    eng: &mut HeavyLightEngine<i64>,
    mirror: &ivm::Database<i64>,
    ctx: &str,
) -> Result<(), TestCaseError> {
    if let Err(e) = eng.check_partition() {
        return Err(TestCaseError::fail(format!("{ctx}: partition: {e}")));
    }
    if let Err(e) = eng.check_views() {
        return Err(TestCaseError::fail(format!("{ctx}: views: {e}")));
    }
    let expect = oracle_db(eng.query(), mirror);
    let q = eng.query().clone();
    outputs_match(&eng.output(), &expect, &format!("{ctx} ({:?})", q.name))
}

/// Drive one generated stream through an engine at `eps`, checking all
/// three properties at every batch boundary.
fn check_stream(eps: f64, ops: &[EdgeOp], chunk: usize) -> Result<(), TestCaseError> {
    let q = triangle3("hp_");
    let updates = edge_updates(&q, ops);
    let mut mirror = mirror_db(&q);
    let mut eng = HeavyLightEngine::<i64>::new_with_eps(q.clone(), &mirror, lift_one, eps).unwrap();
    for (no, batch) in updates.chunks(chunk.max(1)).enumerate() {
        eng.apply_batch(batch).unwrap();
        for u in batch {
            mirror.apply(u);
        }
        assert_invariants(&mut eng, &mirror, &format!("ε={eps} batch {no}"))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Partition + view invariants and oracle equality under mixed-sign
    /// duplicate-heavy streams, across the whole ε grid.
    #[test]
    fn invariants_hold_at_every_eps(
        ops in edge_ops(3, 4, 0..48),
        chunk in 1usize..9,
        eps_idx in 0usize..EPS_GRID.len(),
    ) {
        check_stream(EPS_GRID[eps_idx], &ops, chunk)?;
    }

    /// A wider key domain reaches past the tiny-N regime where θ clamps
    /// to 1: rebalances and heavy/light migrations actually fire here,
    /// and the invariants must survive them.
    #[test]
    fn invariants_hold_under_wide_domains(
        ops in edge_ops(3, 12, 16..96),
        chunk in 1usize..13,
        eps_idx in 0usize..EPS_GRID.len(),
    ) {
        check_stream(EPS_GRID[eps_idx], &ops, chunk)?;
    }

    /// Preprocessing ≡ streaming: an engine built over a preloaded base
    /// must agree — output, partition, views — with one that started
    /// empty and ingested the prefix as updates, and both stay ≡ the
    /// oracle over the suffix.
    #[test]
    fn preloaded_build_is_indistinguishable_from_streaming(
        ops in edge_ops(3, 5, 8..64),
        cut_raw in 0usize..64,
        chunk in 1usize..9,
        eps_idx in 0usize..EPS_GRID.len(),
    ) {
        let eps = EPS_GRID[eps_idx];
        let q = triangle3("hp_");
        let updates = edge_updates(&q, &ops);
        let cut = cut_raw % (updates.len() + 1);

        let mut mirror = mirror_db(&q);
        let mut streamed =
            HeavyLightEngine::<i64>::new_with_eps(q.clone(), &mirror, lift_one, eps).unwrap();
        if cut > 0 {
            streamed.apply_batch(&updates[..cut]).unwrap();
        }
        for u in &updates[..cut] {
            mirror.apply(u);
        }
        let mut preloaded =
            HeavyLightEngine::<i64>::new_with_eps(q.clone(), &mirror, lift_one, eps).unwrap();
        assert_invariants(&mut preloaded, &mirror, &format!("ε={eps} preload"))?;
        outputs_match(
            &preloaded.output(),
            &streamed.output(),
            "preloaded vs streamed at the cut",
        )?;

        for (no, batch) in updates[cut..].chunks(chunk.max(1)).enumerate() {
            streamed.apply_batch(batch).unwrap();
            preloaded.apply_batch(batch).unwrap();
            for u in batch {
                mirror.apply(u);
            }
            assert_invariants(&mut streamed, &mirror, &format!("ε={eps} streamed {no}"))?;
            assert_invariants(&mut preloaded, &mirror, &format!("ε={eps} preloaded {no}"))?;
        }
    }
}

/// Deterministic rebalance exercise: grow a hub far past the size-drift
/// trigger, then delete it back down. Migrations and global rebalances
/// must both fire, and every invariant must hold at each step — this is
/// the lazy-rebalance ≡ oracle acceptance in a shape whose counters we
/// can assert on.
#[test]
fn hub_growth_and_collapse_forces_migrations_and_rebalances() {
    let q = triangle3("hpr_");
    let (r, s, t) = (sym("hpr_3R"), sym("hpr_3S"), sym("hpr_3T"));
    let mut mirror = mirror_db(&q);
    let mut eng = HeavyLightEngine::<i64>::new(q.clone(), &mirror, lift_one).unwrap();

    let step = |eng: &mut HeavyLightEngine<i64>,
                mirror: &mut ivm::Database<i64>,
                batch: Vec<Update<i64>>,
                ctx: &str| {
        eng.apply_batch(&batch).unwrap();
        for u in &batch {
            mirror.apply(u);
        }
        eng.check_partition()
            .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        eng.check_views().unwrap_or_else(|e| panic!("{ctx}: {e}"));
        let expect = oracle_db(&q, mirror);
        let got = eng.output();
        assert_eq!(got.len(), expect.len(), "{ctx}: sizes");
        for (tp, p) in expect.iter() {
            assert_eq!(&got.get(tp), p, "{ctx} at {tp:?}");
        }
    };

    // Grow: node 0 becomes an S-hub with `v` partners as T closes the
    // cycle — each batch adds triangles and pushes N across 2× drifts.
    for v in 1..=60i64 {
        let batch = vec![
            Update::with_payload(r, tup![v, 0i64], 1),
            Update::with_payload(s, tup![0i64, v], 1),
            Update::with_payload(t, tup![v, v], 1),
        ];
        step(&mut eng, &mut mirror, batch, &format!("grow {v}"));
    }
    let grown = eng.stats();
    assert!(
        grown.migrations > 0,
        "a 60-partner hub must cross the 2θ promotion band: {grown:?}"
    );
    assert!(
        grown.rebalances > 0,
        "180 pairs from 0 must cross the 2× size-drift trigger: {grown:?}"
    );
    assert!(
        eng.heavy_counts().iter().sum::<usize>() > 0,
        "the hub key must be resident in a heavy set"
    );

    // Collapse: retract whole triangles; the hub's degree falls through
    // θ (the demotion path, with its signed view transfer, runs) and the
    // base shrinks past the half-size drift trigger.
    for v in 1..=55i64 {
        let batch = vec![
            Update::with_payload(r, tup![v, 0i64], -1),
            Update::with_payload(s, tup![0i64, v], -1),
            Update::with_payload(t, tup![v, v], -1),
        ];
        step(&mut eng, &mut mirror, batch, &format!("collapse {v}"));
    }
    let shrunk = eng.stats();
    assert!(
        shrunk.migrations > grown.migrations,
        "the hub must demote on the way down: {shrunk:?}"
    );
    assert!(
        shrunk.rebalances > grown.rebalances,
        "dropping 165 of 180 pairs re-crosses the drift trigger: {shrunk:?}"
    );
}
