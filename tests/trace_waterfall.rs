//! Well-formedness of the causal trace ring and everything derived from
//! it: per-epoch waterfalls, the ingest-histogram agreement, and the
//! live scrape endpoint.
//!
//! A 4-shard observed session runs proptest-generated streams through
//! the async enqueue/drain path, where the router and four worker
//! threads all record spans into one ring concurrently. Afterwards the
//! trace must be *causally* coherent, not just present:
//!
//! * span ids are unique, and every non-root span's parent exists in
//!   the ring **with the same epoch tag** (a cross-thread span joined
//!   the wrong epoch exactly never),
//! * every ingested batch reconstructs into a waterfall rooted at
//!   `session.ingest`, with consecutive epoch numbers and no orphans,
//! * on the synchronous path, waterfall totals equal the
//!   `ivm.session.ingest_ns` histogram **to the nanosecond** (both
//!   sides log the same measured elapsed, so this is an identity, not
//!   a tolerance), and
//! * `GET /metrics` on the live endpoint returns byte-for-byte the
//!   exposition of the same snapshot `Session::metrics` reports.

mod common;

use common::{edge_ops, edge_updates, star};
use ivm::obs::{http_get, EpochWaterfall, Json};
use ivm::{Database, Maintainer, MetricsRegistry, Session};
use proptest::prelude::*;
use std::collections::HashMap;

fn check_trace_well_formed(ops: &[common::EdgeOp], chunk: usize) -> Result<(), TestCaseError> {
    let q = star("twf_");
    let registry = MetricsRegistry::new();
    let mut s = Session::<i64>::builder(q.clone())
        .shards(4)
        .observe(&registry)
        .build(&Database::new())
        .expect("star is shardable");

    let updates = edge_updates(&q, ops);
    let mut batches = 0u64;
    for batch in updates.chunks(chunk) {
        s.enqueue_batch(batch).expect("valid batch");
        batches += 1;
    }
    s.drain().expect("drain settles the fleet");

    let events = registry.tracer().events();
    prop_assert_eq!(registry.tracer().dropped(), 0, "ring large enough");

    // Ids unique; every parent resolvable in the same epoch.
    let mut by_id: HashMap<u64, (u64, Option<u64>)> = HashMap::new();
    for e in &events {
        let clash = by_id.insert(e.id, (e.epoch, e.parent));
        prop_assert!(clash.is_none(), "span id {} assigned twice", e.id);
    }
    for e in &events {
        if let Some(p) = e.parent {
            let Some(&(p_epoch, _)) = by_id.get(&p) else {
                return Err(TestCaseError::fail(format!(
                    "span {} ({}) orphaned: parent {} not in ring",
                    e.id, e.label, p
                )));
            };
            prop_assert_eq!(
                p_epoch,
                e.epoch,
                "span {} ({}) crossed epochs to its parent",
                e.id,
                e.label
            );
        }
    }
    // Exactly one root per epoch — the session's ingest call.
    for epoch in 0..batches {
        let roots: Vec<&str> = events
            .iter()
            .filter(|e| e.epoch == epoch && e.parent.is_none())
            .map(|e| e.label.as_str())
            .collect();
        prop_assert_eq!(&roots, &["session.ingest"], "epoch {}", epoch);
    }

    // Every batch reconstructs: consecutive epochs, nothing dangling.
    let falls = EpochWaterfall::from_events(&events);
    prop_assert_eq!(falls.len() as u64, batches);
    for (i, w) in falls.iter().enumerate() {
        prop_assert_eq!(w.epoch, i as u64);
        prop_assert_eq!(w.orphans, 0, "epoch {}", i);
        prop_assert_eq!(w.stages[0].label.as_str(), "session.ingest");
        // Stage rows never attribute more than their own window to
        // children: self time is a residue, not a negative.
        for st in &w.stages {
            prop_assert!(st.self_ns <= st.elapsed_ns);
        }
    }
    // The histogram saw the same epochs the ring did.
    let m = s.metrics();
    let h = m.histogram("ivm.session.ingest_ns").expect("observed");
    prop_assert_eq!(h.count, batches);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_trace_stays_causally_coherent(
        ops in edge_ops(3, 6, 1..48),
        chunk in 1usize..9,
    ) {
        check_trace_well_formed(&ops, chunk)?;
    }
}

/// On the synchronous path the root span and the `ingest_ns` histogram
/// log the *same* measured elapsed, so waterfall totals and histogram
/// sum agree exactly — per epoch and in aggregate.
#[test]
fn waterfall_totals_match_ingest_histogram_exactly() {
    let q = star("twfh_");
    let registry = MetricsRegistry::new();
    let mut s = Session::<i64>::builder(q.clone())
        .observe(&registry)
        .build(&Database::new())
        .expect("builds");

    let rels: Vec<_> = q.atoms.iter().map(|a| a.name).collect();
    for i in 0..5i64 {
        let batch: Vec<_> = rels
            .iter()
            .map(|&r| ivm::Update::insert(r, ivm::data::tup![i, i + 1]))
            .collect();
        s.apply_batch(&batch).expect("valid batch");
    }

    let falls = s.waterfalls();
    assert_eq!(falls.len(), 5, "one waterfall per synchronous batch");
    let m = s.metrics();
    let h = m.histogram("ivm.session.ingest_ns").expect("observed");
    assert_eq!(h.count, 5);
    assert_eq!(
        h.sum_ns,
        falls.iter().map(|w| w.total_ns).sum::<u64>(),
        "root spans and histogram observations must be the same numbers"
    );
}

/// The live endpoint serves the same truth the in-process snapshot
/// reports: identical Prometheus text, and JSON routes that parse back
/// to the same counter values and carry the ring's waterfalls.
#[test]
fn scrape_endpoint_agrees_with_snapshot() {
    let q = star("twfe_");
    let registry = MetricsRegistry::new();
    let mut s = Session::<i64>::builder(q.clone())
        .shards(2)
        .observe(&registry)
        .serve_metrics("127.0.0.1:0")
        .build(&Database::new())
        .expect("builds with endpoint");

    let rels: Vec<_> = q.atoms.iter().map(|a| a.name).collect();
    for i in 0..4i64 {
        let batch: Vec<_> = rels
            .iter()
            .map(|&r| ivm::Update::insert(r, ivm::data::tup![i, i + 7]))
            .collect();
        s.enqueue_batch(&batch).expect("valid batch");
    }
    s.drain().expect("settles");

    let addr = s.metrics_addr().expect("endpoint started");
    let m = s.metrics();

    // /metrics: byte-for-byte the snapshot's exposition (the fleet is
    // drained and parked, so nothing moves between the two reads).
    let prom = http_get(addr, "/metrics").expect("scrape");
    assert_eq!(prom, m.to_prometheus());

    // /snapshot.json: parses, and the counters agree with the snapshot.
    let snap = Json::parse(&http_get(addr, "/snapshot.json").expect("scrape")).expect("valid JSON");
    for name in ["ivm.session.batches", "ivm.session.updates"] {
        let served = snap
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_f64());
        assert_eq!(served, Some(m.counter(name) as f64), "counter {name}");
    }

    // /epochs.json: parses, one waterfall per ingested batch.
    let epochs = Json::parse(&http_get(addr, "/epochs.json").expect("scrape")).expect("valid JSON");
    let falls = epochs
        .get("epochs")
        .and_then(|e| e.as_arr())
        .expect("array");
    assert_eq!(falls.len(), 4);
    for w in falls {
        assert_eq!(
            w.get("root").and_then(|r| r.as_str()),
            Some("session.ingest")
        );
    }
}

/// `.serve_metrics` without `.observe` has nothing to expose — the
/// builder refuses instead of standing up an endpoint that lies.
#[test]
fn serve_metrics_requires_observe() {
    let err = Session::<i64>::builder(star("twfn_"))
        .serve_metrics("127.0.0.1:0")
        .build(&Database::new());
    assert!(err.is_err(), "endpoint without a registry must be refused");
}
