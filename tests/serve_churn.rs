//! Subscriber-churn isolation: a misbehaving subscriber — a panicking
//! callback, or a channel whose receiver was dropped — is evicted at the
//! failing delivery and nothing else notices. Ingest never stalls,
//! sibling taps on the *same* deduped engine keep receiving exact
//! deltas, other groups are untouched, and after the churn the
//! `ivm.serve.*` gauges read the surviving truth (subscriber and group
//! counts, zeroed queue depths for the dead).
//!
//! Shapes and the comparison helper live in `tests/common`.

mod common;

use common::{four_cycle, triangle};
use ivm_core::Maintainer;
use ivm_data::{sym, tup, Database, Update};
use ivm_obs::MetricsRegistry;
use ivm_serve::{ServeNode, ViewDelta};
use ivm_session::Session;
use std::cell::RefCell;
use std::rc::Rc;

/// A deterministic mixed-sign stream over the triangle's edge relation
/// and the 4-cycle's four relations, so both groups see real deltas.
fn stream(prefix: &str) -> Vec<Update<i64>> {
    let e = sym(&format!("{prefix}E"));
    let cyc = ["4R", "4S", "4T", "4U"].map(|s| sym(&format!("{prefix}{s}")));
    (0..32u64)
        .flat_map(|i| {
            let (x, y) = (i % 4, (i * 3 + 1) % 4);
            [
                Update::with_payload(e, tup![x, y], if i % 9 == 0 { -1 } else { 1 }),
                Update::insert(cyc[(i % 4) as usize], tup![y, x]),
            ]
        })
        .collect()
}

/// A callback that panics from epoch `at` on evicts exactly that
/// subscriber: the sibling tap on the same engine and the other group
/// keep matching their independent reference sessions, ingest continues,
/// and the eviction is visible in the counters and gauges.
#[test]
fn panicking_callback_is_evicted_without_corrupting_siblings() {
    // catch_unwind still runs the panic hook; silence the *expected*
    // panic (and only it) so it doesn't spray backtraces into output.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("subscriber bug"));
        if !expected {
            prev(info);
        }
    }));
    let registry = MetricsRegistry::new();
    let mut node = ServeNode::<i64>::new();
    node.observe(&registry);

    let tri = triangle("svc_");
    let cyc = four_cycle("svc_");
    // Sibling on the same deduped engine as the panicking subscriber.
    let mut tri_sub = node.subscribe(tri.clone()).unwrap();
    let seen: Rc<RefCell<Vec<u64>>> = Rc::default();
    let seen2 = Rc::clone(&seen);
    let bomb = node
        .subscribe_with(tri.clone(), move |vd: &ViewDelta<i64>| {
            if vd.epoch >= 2 {
                panic!("subscriber bug");
            }
            seen2.borrow_mut().push(vd.epoch);
        })
        .unwrap();
    let mut cyc_sub = node.subscribe(cyc.clone()).unwrap();
    assert_eq!(node.group_count(), 2);
    assert_eq!(node.subscriber_count(), 3);

    // Independent references over private mirrors.
    let mut mirror = Database::<i64>::new();
    for q in [&tri, &cyc] {
        for atom in &q.atoms {
            if mirror.get(atom.name).is_none() {
                mirror.create(atom.name, atom.schema.clone());
            }
        }
    }
    let mut ref_tri = Session::<i64>::builder(tri).build(&mirror).unwrap();
    let mut ref_cyc = Session::<i64>::builder(cyc).build(&mirror).unwrap();

    let updates = stream("svc_");
    let e = sym("svc_E");
    for (i, batch) in updates.chunks(8).enumerate() {
        node.apply_batch(batch).unwrap();
        mirror.apply_batch(batch);
        // Independent sessions see the stream filtered to their own
        // relations, exactly as the node filters per group.
        let (tri_part, cyc_part): (Vec<Update<i64>>, Vec<Update<i64>>) =
            batch.iter().cloned().partition(|u| u.relation == e);
        let d_tri = ref_tri.apply_batch(&tri_part).unwrap();
        let d_cyc = ref_cyc.apply_batch(&cyc_part).unwrap();
        for (sub, expect) in [(&mut tri_sub, &d_tri), (&mut cyc_sub, &d_cyc)] {
            let vd = sub.try_next().expect("live subscribers hear every epoch");
            assert_eq!(vd.epoch, i as u64);
            assert_eq!(vd.delta.len(), expect.len(), "epoch {i}");
            for (t, p) in expect.iter() {
                assert_eq!(&vd.delta.get(t), p, "epoch {i} at {t:?}");
            }
        }
        // The bomb heard epochs 0 and 1, then blew up and was evicted —
        // from epoch 2 on the node no longer knows it.
        assert_eq!(node.is_subscribed(bomb), i < 2, "epoch {i}");
    }
    let _ = std::panic::take_hook();

    assert_eq!(&*seen.borrow(), &[0, 1], "deliveries before the panic");
    assert_eq!(node.subscriber_count(), 2);
    assert_eq!(node.group_count(), 2, "the sibling keeps the engine alive");
    let m = registry.snapshot();
    assert_eq!(m.counter("ivm.serve.evictions"), 1);
    assert_eq!(m.gauge("ivm.serve.subscribers"), 2);
    assert_eq!(m.gauge("ivm.serve.groups"), 2);
    assert_eq!(m.counter("ivm.serve.epochs"), 8, "ingest never stalled");
}

/// Dropping a `Subscription` receiver evicts the subscriber at its next
/// delivery; if it was the last tap of its group the engine retires too,
/// and every gauge — subscribers, groups, the dead tap's queue depth —
/// settles to the surviving truth while ingest continues unstalled.
#[test]
fn dropped_receiver_retires_tap_and_group_and_gauges_settle() {
    let registry = MetricsRegistry::new();
    let mut node = ServeNode::<i64>::new();
    node.observe(&registry);

    let tri = triangle("svd_");
    let cyc = four_cycle("svd_");
    let mut keeper = node.subscribe(tri.clone()).unwrap();
    let goner = node.subscribe(cyc.clone()).unwrap();
    let goner_id = goner.id();
    assert_eq!(node.group_count(), 2);

    let updates = stream("svd_");
    let mut chunks = updates.chunks(8);

    // One healthy epoch: both hear it; the goner leaves its delivery
    // undrained so its queue-depth gauge is provably nonzero.
    node.apply_batch(chunks.next().unwrap()).unwrap();
    assert!(keeper.try_next().is_some());
    let m = registry.snapshot();
    assert_eq!(m.gauge(&format!("ivm.serve.sub{goner_id}.queue_depth")), 1);
    assert_eq!(m.gauge("ivm.serve.subscribers"), 2);
    assert_eq!(m.gauge("ivm.serve.groups"), 2);

    // Drop the receiver mid-stream; the next delivery fails, the tap is
    // evicted, and — as the group's only tap — the 4-cycle engine
    // retires with it.
    drop(goner);
    node.apply_batch(chunks.next().unwrap()).unwrap();
    assert!(!node.is_subscribed(goner_id));
    assert_eq!(node.subscriber_count(), 1);
    assert_eq!(node.group_count(), 1);
    assert!(
        keeper.try_next().is_some(),
        "the keeper never misses a beat"
    );

    let m = registry.snapshot();
    assert_eq!(m.counter("ivm.serve.evictions"), 1);
    assert_eq!(m.gauge("ivm.serve.subscribers"), 1);
    assert_eq!(m.gauge("ivm.serve.groups"), 1);
    assert_eq!(
        m.gauge(&format!("ivm.serve.sub{goner_id}.queue_depth")),
        0,
        "a dead tap owes nothing"
    );
    // Pruned, not merely zeroed: the dead tap's series leave the
    // registry entirely, while the keeper's keep exporting.
    assert!(
        !m.gauges
            .contains_key(&format!("ivm.serve.sub{goner_id}.queue_depth"))
            && !m
                .histograms
                .contains_key(&format!("ivm.serve.sub{goner_id}.notify_ns")),
        "an evicted subscriber's series must be deregistered"
    );
    assert!(
        m.gauges
            .contains_key(&format!("ivm.serve.sub{}.queue_depth", keeper.id())),
        "pruning is per-subscriber, not a blanket sweep"
    );

    // Ingest keeps flowing — including updates to the retired group's
    // relations, which stay declared in the shared base — and the
    // keeper's view is still exact.
    let mut mirror = Database::<i64>::new();
    for q in [&tri, &cyc] {
        for atom in &q.atoms {
            if mirror.get(atom.name).is_none() {
                mirror.create(atom.name, atom.schema.clone());
            }
        }
    }
    let e = sym("svd_E");
    let mut ref_tri = Session::<i64>::builder(tri).build(&mirror).unwrap();
    for batch in updates.chunks(8) {
        // Replay the whole stream against the reference to reach the
        // node's cumulative state (the node already ingested the first
        // two chunks above); the independent session sees it filtered
        // to its own relation, as always.
        mirror.apply_batch(batch);
        let filtered: Vec<Update<i64>> =
            batch.iter().filter(|u| u.relation == e).cloned().collect();
        ref_tri.apply_batch(&filtered).unwrap();
    }
    for batch in chunks {
        node.apply_batch(batch).unwrap();
        assert!(keeper.try_next().is_some());
    }
    let got = node.view(keeper.id()).expect("keeper is live");
    let expect = ref_tri.output();
    assert_eq!(got.len(), expect.len());
    for (t, p) in expect.iter() {
        assert_eq!(&got.get(t), p, "keeper view at {t:?}");
    }

    // Late unsubscribe of the keeper empties the node entirely; gauges
    // follow.
    assert!(node.unsubscribe(keeper.id()));
    let m = registry.snapshot();
    assert_eq!(m.gauge("ivm.serve.subscribers"), 0);
    assert_eq!(m.gauge("ivm.serve.groups"), 0);
    assert_eq!(node.subscriber_count(), 0);
    assert_eq!(node.group_count(), 0);
}

/// A bounded subscription back-pressures instead of buffering without
/// limit: a slow consumer that never drains fills its `capacity`-deep
/// queue, the first overflowing delivery evicts it through the same
/// path as any other failing subscriber, and the queue-depth gauge
/// reads the bound right up to the eviction — then leaves the registry.
#[test]
fn bounded_subscriber_overflow_evicts_and_gauges_read_the_bound() {
    let registry = MetricsRegistry::new();
    let mut node = ServeNode::<i64>::new();
    node.observe(&registry);

    let tri = triangle("svb_");
    // Sibling on the same deduped engine: overflow must be private.
    let mut keeper = node.subscribe(tri.clone()).unwrap();
    let slow = node.subscribe_bounded(tri.clone(), 2).unwrap();
    let slow_id = slow.id();
    assert_eq!(node.group_count(), 1, "bounded taps join the same group");
    assert_eq!(node.subscriber_count(), 2);

    // Only the triangle's relation is declared — filter the stream.
    let e = sym("svb_E");
    let tri_stream: Vec<Update<i64>> = stream("svb_")
        .into_iter()
        .filter(|u| u.relation == e)
        .collect();
    let mut chunks = tri_stream.chunks(4);

    // Two epochs fit the bound exactly; the slow tap never drains.
    for expected_depth in [1i64, 2] {
        node.apply_batch(chunks.next().unwrap()).unwrap();
        assert!(keeper.try_next().is_some());
        let m = registry.snapshot();
        assert_eq!(
            m.gauge(&format!("ivm.serve.sub{slow_id}.queue_depth")),
            expected_depth,
            "undrained deliveries pile up to the bound"
        );
        assert!(node.is_subscribed(slow_id));
    }

    // The third delivery overflows: evicted, pruned, sibling untouched.
    node.apply_batch(chunks.next().unwrap()).unwrap();
    assert!(!node.is_subscribed(slow_id), "overflow evicts the slow tap");
    assert!(
        keeper.try_next().is_some(),
        "the keeper never misses a beat"
    );
    assert_eq!(node.subscriber_count(), 1);
    assert_eq!(node.group_count(), 1, "the sibling keeps the engine alive");

    let m = registry.snapshot();
    assert_eq!(m.counter("ivm.serve.evictions"), 1);
    assert_eq!(m.gauge("ivm.serve.subscribers"), 1);
    assert!(
        !m.gauges
            .contains_key(&format!("ivm.serve.sub{slow_id}.queue_depth")),
        "the evicted tap's series must be deregistered"
    );

    // The two in-bound deliveries were real — the receiver still holds
    // them even though the sender is gone.
    let mut slow = slow;
    assert_eq!(slow.try_next().map(|vd| vd.epoch), Some(0));
    assert_eq!(slow.try_next().map(|vd| vd.epoch), Some(1));
    assert!(
        slow.try_next().is_none(),
        "the overflowing epoch was dropped"
    );

    // Ingest never stalled and the keeper's view stays exact.
    for batch in chunks {
        node.apply_batch(batch).unwrap();
        assert!(keeper.try_next().is_some());
    }
    let m = registry.snapshot();
    assert_eq!(m.counter("ivm.serve.epochs"), 8, "ingest never stalled");
    let mut mirror = Database::<i64>::new();
    mirror.create(e, tri.atoms[0].schema.clone());
    mirror.apply_batch(&tri_stream);
    let mut ref_tri = Session::<i64>::builder(tri).build(&mirror).unwrap();
    let got = node.view(keeper.id()).expect("keeper is live");
    let expect = ref_tri.output();
    assert_eq!(got.len(), expect.len());
    for (t, p) in expect.iter() {
        assert_eq!(&got.get(t), p, "keeper view at {t:?}");
    }
}

/// A resubscription after total churn builds a fresh engine from the
/// node's *current* base — the stream ingested while nobody listened is
/// still reflected, because the base outlives every group.
#[test]
fn resubscribe_after_total_churn_sees_accumulated_base() {
    let mut node = ServeNode::<i64>::new();
    let tri = triangle("sve_");
    let first = node.subscribe(tri.clone()).unwrap();
    let updates = stream("sve_");
    // Only the triangle's relation is declared — filter the stream.
    let e = sym("sve_E");
    let tri_stream: Vec<Update<i64>> = updates
        .iter()
        .filter(|u| u.relation == e)
        .cloned()
        .collect();
    let (head, tail) = tri_stream.split_at(tri_stream.len() / 2);

    node.apply_batch(head).unwrap();
    assert!(node.unsubscribe(first.id()));
    assert_eq!(node.group_count(), 0);
    // Nobody is listening, but the base keeps absorbing the stream.
    node.apply_batch(tail).unwrap();

    let mut sub = node.subscribe(tri.clone()).unwrap();
    // The fresh engine preprocessed the full accumulated base.
    let mut mirror = Database::<i64>::new();
    mirror.create(e, tri.atoms[0].schema.clone());
    mirror.apply_batch(&tri_stream);
    let mut ref_tri = Session::<i64>::builder(tri).build(&mirror).unwrap();
    let got = node.view(sub.id()).expect("fresh subscriber");
    let expect = ref_tri.output();
    assert_eq!(got.len(), expect.len());
    for (t, p) in expect.iter() {
        assert_eq!(&got.get(t), p, "resubscribed view at {t:?}");
    }
    assert!(sub.try_next().is_none(), "no deliveries before next epoch");
}
