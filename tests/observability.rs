//! Conservation laws for the telemetry layer under concurrent sharded
//! ingestion.
//!
//! A 4-shard observed session runs proptest-generated update streams —
//! mixed inserts/deletes, duplicate tuples, arbitrary chunking — through
//! the async enqueue/drain path, where four worker threads publish into
//! the same `MetricsRegistry` concurrently. After `drain`, bookkeeping
//! must balance exactly, not approximately:
//!
//! * the fleet-merged dataflow counters equal the **sum of the per-shard
//!   series** (no double count from broadcast handling, no lost updates
//!   from worker-side mirror sync),
//! * every queue-depth gauge reads **zero** (each enqueue was matched by
//!   a drain decrement — the failure-poisoning side of this property,
//!   where a dead shard must also zero its gauges, lives next to the
//!   pub(crate) machinery it needs in `crates/shard`),
//! * the session-level update count equals the raw stream length
//!   (router consolidation may shrink what *workers* see, never what the
//!   session counted), and
//! * the Prometheus exposition scrapes to the same values as the
//!   snapshot it was rendered from, and the JSON export carries the same
//!   series.
//!
//! The vendored proptest shim seeds deterministically from the test
//! name, so failures reproduce.

use ivm::{Database, MetricsRegistry, Query, Session, Update};
use ivm_data::{sym, tup};
use ivm_query::Atom;
use proptest::prelude::*;

/// Acyclic star Q(x,y,z,w) = R(x,y)·S(x,z)·T(x,w): every relation is
/// hash-partitioned on the shared variable `x`, so all four shards do
/// real work and nothing is broadcast.
fn star3() -> Query {
    let [x, y, z, w] = ivm_data::vars(["obp_X", "obp_Y", "obp_Z", "obp_W"]);
    Query::new(
        "obp_star",
        [x, y, z, w],
        vec![
            Atom::new(sym("obp_R"), [x, y]),
            Atom::new(sym("obp_S"), [x, z]),
            Atom::new(sym("obp_T"), [x, w]),
        ],
    )
}

/// `(relation index, tuple, ring multiplicity)` — deletes of tuples never
/// inserted are legal (payloads go negative in ℤ).
type Op = (usize, (u64, u64), i64);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0usize..3,
            (0u64..6, 0u64..6),
            prop_oneof![Just(1i64), Just(1), Just(-1), Just(2), Just(-2)],
        ),
        1..72,
    )
}

fn check_conservation(ops: &[Op], chunk: usize) -> Result<(), TestCaseError> {
    let q = star3();
    let names = [q.atoms[0].name, q.atoms[1].name, q.atoms[2].name];
    let registry = MetricsRegistry::new();
    let mut s = Session::<i64>::builder(q)
        .shards(4)
        .observe(&registry)
        .build(&Database::new())
        .expect("star is shardable");

    let updates: Vec<Update<i64>> = ops
        .iter()
        .map(|&(r, (a, b), m)| Update::with_payload(names[r], tup![a, b], m))
        .collect();
    let mut total = 0u64;
    for batch in updates.chunks(chunk) {
        s.enqueue_batch(batch).expect("valid batch");
        total += batch.len() as u64;
    }
    s.drain().expect("drain settles the fleet");

    let m = s.metrics();
    // The session counts the raw stream; consolidation happens below it.
    prop_assert_eq!(m.counter("ivm.session.updates"), total);
    prop_assert!(m.counter("ivm.session.batches") >= u64::from(!ops.is_empty()));

    // Global == Σ per-shard for every series the facade stores from
    // worker reports.
    for key in ["updates_in", "deltas_in", "output_delta_tuples", "batches"] {
        let fleet = m.counter(&format!("ivm.fleet.{key}"));
        let per_shard: u64 = (0..4)
            .map(|i| m.counter(&format!("ivm.fleet.shard{i}.{key}")))
            .sum();
        prop_assert_eq!(
            fleet,
            per_shard,
            "fleet {} diverged from its per-shard sum",
            key
        );
    }
    // The same totals arrive by a second, independent path: each worker's
    // dataflow mirrors its own stats into `shard{i}.dataflow.*` at batch
    // boundaries. On an empty-database build (no pre-attach history) the
    // two paths must agree shard by shard. (`batches` is excluded: the
    // worker's preprocessing batch predates the attach baseline.)
    for key in ["updates_in", "deltas_in", "output_delta_tuples"] {
        for i in 0..4 {
            prop_assert_eq!(
                m.counter(&format!("ivm.fleet.shard{i}.{key}")),
                m.counter(&format!("ivm.fleet.shard{i}.dataflow.{key}")),
                "shard {} {}: report path and mirror path diverged",
                i,
                key
            );
        }
    }
    // What the workers jointly ingested is what the router sent them —
    // at most the raw total (consolidation only ever merges).
    prop_assert!(m.counter("ivm.fleet.updates_in") <= total);

    // A drained fleet owes nothing: every queue gauge back to zero.
    for i in 0..4 {
        prop_assert_eq!(m.gauge(&format!("ivm.fleet.shard{i}.queue_depth")), 0);
    }

    // Export agreement: the Prometheus text scrapes back to the snapshot
    // values, and the JSON snapshot carries the same series.
    let prom = m.to_prometheus();
    let json = m.render_json();
    for name in ["ivm.session.updates", "ivm.fleet.updates_in"] {
        let series = name.replace('.', "_");
        let scraped: Option<u64> = prom
            .lines()
            .find(|l| l.split_whitespace().next() == Some(series.as_str()))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok());
        prop_assert_eq!(scraped, Some(m.counter(name)), "series {}", series);
        prop_assert!(json.contains(&format!("\"{name}\"")));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_metrics_conserve_across_shards(
        ops in ops_strategy(),
        chunk in 1usize..9,
    ) {
        check_conservation(&ops, chunk)?;
    }
}
