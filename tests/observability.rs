//! Conservation laws for the telemetry layer under concurrent sharded
//! ingestion.
//!
//! A 4-shard observed session runs proptest-generated update streams —
//! mixed inserts/deletes, duplicate tuples, arbitrary chunking — through
//! the async enqueue/drain path, where four worker threads publish into
//! the same `MetricsRegistry` concurrently. After `drain`, bookkeeping
//! must balance exactly, not approximately:
//!
//! * the fleet-merged dataflow counters equal the **sum of the per-shard
//!   series** (no double count from broadcast handling, no lost updates
//!   from worker-side mirror sync),
//! * every queue-depth gauge reads **zero** (each enqueue was matched by
//!   a drain decrement — the failure-poisoning side of this property,
//!   where a dead shard must also zero its gauges, lives next to the
//!   pub(crate) machinery it needs in `crates/shard`),
//! * the session-level update count equals the raw stream length
//!   (router consolidation may shrink what *workers* see, never what the
//!   session counted), and
//! * the Prometheus exposition scrapes to the same values as the
//!   snapshot it was rendered from, and the JSON export carries the same
//!   series.
//!
//! The vendored proptest shim seeds deterministically from the test
//! name, so failures reproduce. The star shape (every relation
//! hash-partitioned on the shared variable, so all four shards do real
//! work and nothing is broadcast) and the stream strategy live in
//! `tests/common`.

mod common;

use common::{edge_ops, edge_updates, star, EdgeOp};
use ivm::{Database, MetricsRegistry, Session};
use proptest::prelude::*;

fn check_conservation(ops: &[EdgeOp], chunk: usize) -> Result<(), TestCaseError> {
    let q = star("obp_");
    let registry = MetricsRegistry::new();
    let mut s = Session::<i64>::builder(q.clone())
        .shards(4)
        .observe(&registry)
        .build(&Database::new())
        .expect("star is shardable");

    let updates = edge_updates(&q, ops);
    let mut total = 0u64;
    for batch in updates.chunks(chunk) {
        s.enqueue_batch(batch).expect("valid batch");
        total += batch.len() as u64;
    }
    s.drain().expect("drain settles the fleet");

    let m = s.metrics();
    // The session counts the raw stream; consolidation happens below it.
    prop_assert_eq!(m.counter("ivm.session.updates"), total);
    prop_assert!(m.counter("ivm.session.batches") >= u64::from(!updates.is_empty()));

    // Global == Σ per-shard for every series the facade stores from
    // worker reports.
    for key in ["updates_in", "deltas_in", "output_delta_tuples", "batches"] {
        let fleet = m.counter(&format!("ivm.fleet.{key}"));
        let per_shard: u64 = (0..4)
            .map(|i| m.counter(&format!("ivm.fleet.shard{i}.{key}")))
            .sum();
        prop_assert_eq!(
            fleet,
            per_shard,
            "fleet {} diverged from its per-shard sum",
            key
        );
    }
    // The same totals arrive by a second, independent path: each worker's
    // dataflow mirrors its own stats into `shard{i}.dataflow.*` at batch
    // boundaries. On an empty-database build (no pre-attach history) the
    // two paths must agree shard by shard. (`batches` is excluded: the
    // worker's preprocessing batch predates the attach baseline.)
    for key in ["updates_in", "deltas_in", "output_delta_tuples"] {
        for i in 0..4 {
            prop_assert_eq!(
                m.counter(&format!("ivm.fleet.shard{i}.{key}")),
                m.counter(&format!("ivm.fleet.shard{i}.dataflow.{key}")),
                "shard {} {}: report path and mirror path diverged",
                i,
                key
            );
        }
    }
    // What the workers jointly ingested is what the router sent them —
    // at most the raw total (consolidation only ever merges).
    prop_assert!(m.counter("ivm.fleet.updates_in") <= total);

    // A drained fleet owes nothing: every queue gauge back to zero.
    for i in 0..4 {
        prop_assert_eq!(m.gauge(&format!("ivm.fleet.shard{i}.queue_depth")), 0);
    }

    // Export agreement: the Prometheus text scrapes back to the snapshot
    // values, and the JSON snapshot carries the same series.
    let prom = m.to_prometheus();
    let json = m.render_json();
    for name in ["ivm.session.updates", "ivm.fleet.updates_in"] {
        let series = name.replace('.', "_");
        let scraped: Option<u64> = prom
            .lines()
            .find(|l| l.split_whitespace().next() == Some(series.as_str()))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok());
        prop_assert_eq!(scraped, Some(m.counter(name)), "series {}", series);
        prop_assert!(json.contains(&format!("\"{name}\"")));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_metrics_conserve_across_shards(
        ops in edge_ops(3, 6, 1..72),
        chunk in 1usize..9,
    ) {
        check_conservation(&ops, chunk)?;
    }
}
