//! Integration: the Fig 4 Retailer workload driven end to end through all
//! four engines, checking they agree after realistic batches.

use ivm_core::{EagerFactEngine, EagerListEngine, LazyFactEngine, LazyListEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_workloads::RetailerGen;

#[test]
fn four_engines_agree_on_retailer_stream() {
    let mut gen = RetailerGen::new(12, 3, 8, 5);
    let db = gen.initial_db(400);
    let q = gen.query().clone();
    let mut eager_fact = EagerFactEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    let mut eager_list = EagerListEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    let mut lazy_fact = LazyFactEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    let mut lazy_list = LazyListEngine::<i64>::new(q, &db, lift_one).unwrap();

    for _batch in 0..5 {
        for upd in gen.inventory_batch(200) {
            eager_fact.apply(&upd).unwrap();
            eager_list.apply(&upd).unwrap();
            lazy_fact.apply(&upd).unwrap();
            lazy_list.apply(&upd).unwrap();
        }
        let reference = lazy_list.output();
        for (name, got) in [
            ("eager-fact", eager_fact.output()),
            ("eager-list", eager_list.output()),
            ("lazy-fact", lazy_fact.output()),
        ] {
            assert_eq!(got.len(), reference.len(), "{name} output size");
            for (t, p) in reference.iter() {
                assert_eq!(&got.get(t), p, "{name} at {t:?}");
            }
        }
    }
}

#[test]
fn retailer_output_grows_with_inventory() {
    let mut gen = RetailerGen::new(12, 3, 8, 6);
    let db = gen.initial_db(800);
    let q = gen.query().clone();
    let mut eng = EagerFactEngine::<i64>::new(q, &db, lift_one).unwrap();
    let mut sizes = Vec::new();
    for _ in 0..4 {
        for upd in gen.inventory_batch(300) {
            eng.apply(&upd).unwrap();
        }
        let mut n = 0usize;
        eng.for_each_output(&mut |_, _| n += 1);
        sizes.push(n);
    }
    assert!(
        sizes.windows(2).all(|w| w[0] <= w[1]),
        "insert-only stream: output monotone, got {sizes:?}"
    );
    assert!(*sizes.last().unwrap() > 0, "joins must produce output");
}
