//! Randomized cross-engine equivalence harness.
//!
//! Every query shape runs the *same* proptest-generated update stream —
//! mixed inserts and deletes, duplicate tuples, deletes of tuples that
//! were never inserted (legal here: ring payloads just go negative) —
//! through three independent evaluators:
//!
//! 1. `DataflowEngine` forced onto the **left-deep** binary-join chain,
//! 2. `DataflowEngine` forced onto the **worst-case-optimal multiway**
//!    plan,
//! 3. `ShardedEngine` with **1, 2, and 4 shards** (hash-partitioned
//!    parallel workers merging deltas by ring ⊎),
//! 4. a **from-scratch oracle** (`eval_join_aggregate` over the final
//!    base relations),
//!
//! and asserts all agree after every batch. The shapes cover the
//! planner's whole split *and* the shard planner's whole split: the
//! cyclic self-join triangle (unshardable → degenerate single-shard
//! routing), the cyclic 4-cycle (two relations partitioned, two
//! broadcast — the replication path), and the acyclic star (everything
//! partitioned by the shared variable). 64 cases per shape; the vendored
//! proptest shim seeds each test deterministically from its name, so
//! failures reproduce.
//!
//! Shapes, stream strategies, and the oracle live in `tests/common`.

mod common;

use common::{
    edge_ops_default, edge_updates, empty_base, four_cycle, oracle, outputs_match, star, triangle,
    EdgeOp,
};
use ivm_core::Maintainer;
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, Database, Tuple, Update};
use ivm_dataflow::{DataflowEngine, JoinStrategy};
use ivm_query::Query;
use ivm_shard::ShardedEngine;
use proptest::prelude::*;

/// Drive one query shape through both plans and the oracle, comparing
/// after every applied batch.
fn check_shape(q: &Query, ops: &[EdgeOp], chunk: usize) -> Result<(), TestCaseError> {
    let updates = edge_updates(q, ops);

    let db = Database::new();
    let mut left =
        DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, JoinStrategy::LeftDeep)
            .unwrap();
    let mut multi =
        DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, JoinStrategy::Multiway)
            .unwrap();
    // The sharded engine must agree at every fleet size, including the
    // broadcast-replication path (4-cycle) and the degenerate self-join
    // fallback (triangle).
    let mut sharded: Vec<ShardedEngine<i64>> = [1usize, 2, 4]
        .into_iter()
        .map(|n| ShardedEngine::new(q.clone(), &db, lift_one, n).unwrap())
        .collect();
    let mut base = empty_base(q);

    for batch in updates.chunks(chunk.max(1)) {
        left.apply_batch(batch).unwrap();
        multi.apply_batch(batch).unwrap();
        for eng in &mut sharded {
            eng.apply_batch(batch).unwrap();
        }
        common::apply_to_base(&mut base, batch);
        let expect = oracle(q, &base);
        outputs_match(
            left.output_relation(),
            &expect,
            &format!("{:?} left-deep", q.name),
        )?;
        outputs_match(
            multi.output_relation(),
            &expect,
            &format!("{:?} multiway", q.name),
        )?;
        for eng in &sharded {
            outputs_match(
                eng.output_relation(),
                &expect,
                &format!("{:?} sharded x{}", q.name, eng.shards()),
            )?;
        }
    }
    // The multiway plan must never have materialized a binary-join
    // intermediate, whatever the stream did.
    prop_assert_eq!(multi.stats().binary_join_tuples, 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cyclic self-join triangle: left-deep ≡ multiway ≡ oracle on every
    /// batch prefix of a random mixed-sign stream.
    #[test]
    fn triangle_engines_agree(ops in edge_ops_default(), chunk in 1usize..9) {
        check_shape(&triangle("pe_"), &ops, chunk)?;
    }

    /// Cyclic 4-cycle over four distinct relations.
    #[test]
    fn four_cycle_engines_agree(ops in edge_ops_default(), chunk in 1usize..9) {
        check_shape(&four_cycle("pe_"), &ops, chunk)?;
    }

    /// Acyclic star with all variables free (multiway forced).
    #[test]
    fn star_engines_agree(ops in edge_ops_default(), chunk in 1usize..9) {
        check_shape(&star("pe_"), &ops, chunk)?;
    }

    /// Pipelined ingestion is just a reordering of the same ring algebra:
    /// enqueue-everything-then-drain must equal the synchronous engine and
    /// the oracle, on the shape whose plan replicates (broadcasts) atoms.
    #[test]
    fn pipelined_sharded_four_cycle_agrees(ops in edge_ops_default(), chunk in 1usize..9) {
        let q = four_cycle("pe_");
        let updates = edge_updates(&q, &ops);
        let db = Database::new();
        let mut eng = ShardedEngine::<i64>::new(q.clone(), &db, lift_one, 3).unwrap();
        let mut base = empty_base(&q);
        for batch in updates.chunks(chunk.max(1)) {
            // Fire-and-forget; nothing is awaited until the drain below.
            eng.enqueue_batch(batch).unwrap();
            common::apply_to_base(&mut base, batch);
        }
        eng.drain().unwrap();
        let expect = oracle(&q, &base);
        outputs_match(eng.output_relation(), &expect, "pipelined 4-cycle x3")?;
    }

    /// Single-tuple application order is immaterial: one batch equals the
    /// same updates applied one at a time, on both plans.
    #[test]
    fn batch_equals_singles_on_both_plans(ops in edge_ops_default()) {
        let q = triangle("pe_");
        let updates = edge_updates(&q, &ops);
        for strategy in [JoinStrategy::LeftDeep, JoinStrategy::Multiway] {
            let db = Database::new();
            let mut one =
                DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, strategy)
                    .unwrap();
            let mut many =
                DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, strategy)
                    .unwrap();
            for u in &updates {
                one.apply_batch(std::slice::from_ref(u)).unwrap();
            }
            many.apply_batch(&updates).unwrap();
            outputs_match(
                many.output_relation(),
                one.output_relation(),
                &format!("batch-vs-singles {strategy:?}"),
            )?;
        }
    }
}

/// The three harness shapes cover the shard planner's whole split, and
/// the streams above really exercise each path — deterministic check.
#[test]
fn harness_shapes_cover_all_shard_plan_paths() {
    let db = Database::new();
    // Self-join triangle: occurrences permute the columns of E, so no
    // physical partition serves all of them → degenerate serial routing.
    let tri = ShardedEngine::<i64>::new(triangle("pe_"), &db, lift_one, 4).unwrap();
    assert!(tri.plan().is_degenerate(), "{}", tri.describe());

    // 4-cycle: a covers R and U; S and T replicate → broadcast path.
    let mut cyc = ShardedEngine::<i64>::new(four_cycle("pe_"), &db, lift_one, 4).unwrap();
    assert_eq!(cyc.plan().partitioned_count(), 2, "{}", cyc.describe());
    assert_eq!(cyc.plan().broadcast_count(), 2, "{}", cyc.describe());
    let batch: Vec<Update<i64>> = (0..8u64)
        .flat_map(|i| {
            [
                Update::insert(sym("pe_4R"), tup![i, i + 1]),
                Update::insert(sym("pe_4S"), tup![i, i + 1]),
            ]
        })
        .collect();
    cyc.apply_batch(&batch).unwrap();
    let st = cyc.sharded_stats();
    assert!(
        st.router.broadcast_copies > 0,
        "the 4-cycle stream must exercise replication"
    );
    assert!(st.router.routed > 0);

    // Star: x occurs in every atom → everything partitions, nothing
    // replicates.
    let star_eng = ShardedEngine::<i64>::new(star("pe_"), &db, lift_one, 4).unwrap();
    assert_eq!(
        star_eng.plan().broadcast_count(),
        0,
        "{}",
        star_eng.describe()
    );
    assert_eq!(star_eng.plan().partitioned_count(), 3);
}

/// The acceptance check of the WCOJ change, deterministic: on a triangle
/// workload dense enough that the left-deep chain materializes many
/// binary intermediates, the auto-chosen multiway plan materializes none
/// and both still agree with the oracle.
#[test]
fn triangle_multiway_materializes_no_binary_intermediates() {
    let q = triangle("pe_");
    let e = q.atoms[0].name;
    let updates: Vec<Update<i64>> = (0..14u64)
        .flat_map(|i| (0..14u64).map(move |j| (i, j)))
        .filter(|&(i, j)| (i * 7 + j * 3) % 4 != 0 && i != j)
        .map(|(i, j)| Update::insert(e, tup![i, j]))
        .collect();

    let db = Database::new();
    // Auto picks multiway for the cyclic triangle.
    let mut auto = DataflowEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    assert!(auto.plan().contains("MultiwayJoin"), "{}", auto.plan());
    let mut left =
        DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, JoinStrategy::LeftDeep)
            .unwrap();
    for chunk in updates.chunks(16) {
        auto.apply_batch(chunk).unwrap();
        left.apply_batch(chunk).unwrap();
    }
    assert_eq!(
        auto.output_relation().get(&Tuple::empty()),
        left.output_relation().get(&Tuple::empty())
    );
    assert_eq!(
        auto.stats().binary_join_tuples,
        0,
        "multiway plan materialized a binary intermediate"
    );
    assert!(
        left.stats().binary_join_tuples > auto.stats().output_delta_tuples,
        "left-deep chain should materialize more intermediate tuples \
         ({}) than the multiway plan emits outputs ({})",
        left.stats().binary_join_tuples,
        auto.stats().output_delta_tuples,
    );
    assert!(auto.stats().multiway_seeds > 0);
}
