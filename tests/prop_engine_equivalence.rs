//! Randomized cross-engine equivalence harness.
//!
//! Every query shape runs the *same* proptest-generated update stream —
//! mixed inserts and deletes, duplicate tuples, deletes of tuples that
//! were never inserted (legal here: ring payloads just go negative) —
//! through three independent evaluators:
//!
//! 1. `DataflowEngine` forced onto the **left-deep** binary-join chain,
//! 2. `DataflowEngine` forced onto the **worst-case-optimal multiway**
//!    plan,
//! 3. `ShardedEngine` with **1, 2, and 4 shards** (hash-partitioned
//!    parallel workers merging deltas by ring ⊎),
//! 4. a **from-scratch oracle** (`eval_join_aggregate` over the final
//!    base relations),
//!
//! and asserts all agree after every batch. The shapes cover the
//! planner's whole split *and* the shard planner's whole split: the
//! cyclic self-join triangle (unshardable → degenerate single-shard
//! routing), the cyclic 4-cycle (two relations partitioned, two
//! broadcast — the replication path), and the acyclic star (everything
//! partitioned by the shared variable). 64 cases per shape; the vendored
//! proptest shim seeds each test deterministically from its name, so
//! failures reproduce.

use ivm_core::Maintainer;
use ivm_data::ops::{eval_join_aggregate, lift_one};
use ivm_data::{sym, tup, Database, Relation, Tuple, Update};
use ivm_dataflow::{DataflowEngine, JoinStrategy};
use ivm_query::{Atom, Query};
use ivm_shard::ShardedEngine;
use proptest::prelude::*;

/// The cyclic self-join triangle count `Q() = Σ E(a,b)·E(b,c)·E(c,a)`.
fn triangle() -> Query {
    let [a, b, c] = ivm_data::vars(["pe_A", "pe_B", "pe_C"]);
    let e = sym("pe_E");
    Query::new(
        "pe_tri",
        [],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    )
}

/// The cyclic 4-cycle `Q() = Σ R(a,b)·S(b,c)·T(c,d)·U(d,a)`.
fn four_cycle() -> Query {
    let [a, b, c, d] = ivm_data::vars(["pe_4A", "pe_4B", "pe_4C", "pe_4D"]);
    Query::new(
        "pe_cycle4",
        [],
        vec![
            Atom::new(sym("pe_4R"), [a, b]),
            Atom::new(sym("pe_4S"), [b, c]),
            Atom::new(sym("pe_4T"), [c, d]),
            Atom::new(sym("pe_4U"), [d, a]),
        ],
    )
}

/// The acyclic full star `Q(x,y,z,w) = R(x,y)·S(x,z)·T(x,w)` — here the
/// multiway plan is exercised by force, not by the cyclicity split.
fn star() -> Query {
    let [x, y, z, w] = ivm_data::vars(["pe_SX", "pe_SY", "pe_SZ", "pe_SW"]);
    Query::new(
        "pe_star",
        [x, y, z, w],
        vec![
            Atom::new(sym("pe_SR"), [x, y]),
            Atom::new(sym("pe_SS"), [x, z]),
            Atom::new(sym("pe_ST"), [x, w]),
        ],
    )
}

/// One generated op: (relation pick, edge endpoints, signed multiplicity).
type Op = (usize, (u64, u64), i64);

/// The op-stream strategy: small value domain (forces duplicates and
/// triangle closures), multiplicities biased to ±1 with occasional ±2,
/// deletes unconditional — absent tuples go to negative multiplicity and
/// must round-trip through every engine identically.
fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0usize..4,
            (0u64..4, 0u64..4),
            prop_oneof![Just(1i64), Just(1), Just(-1), Just(2), Just(-2)],
        ),
        0..48,
    )
}

/// Distinct relations of `q`, in first-occurrence order.
fn distinct_relations(q: &Query) -> Vec<ivm_data::Sym> {
    let mut rels = Vec::new();
    for atom in &q.atoms {
        if !rels.contains(&atom.name) {
            rels.push(atom.name);
        }
    }
    rels
}

/// From-scratch oracle: join-aggregate over one relation copy per atom.
fn oracle(q: &Query, base: &ivm_data::FxHashMap<ivm_data::Sym, Relation<i64>>) -> Relation<i64> {
    let per_atom: Vec<Relation<i64>> = q
        .atoms
        .iter()
        .map(|atom| {
            Relation::from_rows(
                atom.schema.clone(),
                base[&atom.name].iter().map(|(t, r)| (t.clone(), *r)),
            )
        })
        .collect();
    let refs: Vec<&Relation<i64>> = per_atom.iter().collect();
    eval_join_aggregate(&refs, &q.free, lift_one)
}

fn outputs_match(
    got: &Relation<i64>,
    expect: &Relation<i64>,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), expect.len(), "{}: sizes differ", ctx);
    for (t, p) in expect.iter() {
        prop_assert_eq!(&got.get(t), p, "{} at {:?}", ctx, t);
    }
    Ok(())
}

/// Drive one query shape through both plans and the oracle, comparing
/// after every applied batch.
fn check_shape(q: &Query, ops: &[Op], chunk: usize) -> Result<(), TestCaseError> {
    let rels = distinct_relations(q);
    let updates: Vec<Update<i64>> = ops
        .iter()
        .filter(|(_, _, m)| *m != 0)
        .map(|&(ri, (x, y), m)| Update::with_payload(rels[ri % rels.len()], tup![x, y], m))
        .collect();

    let db = Database::new();
    let mut left =
        DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, JoinStrategy::LeftDeep)
            .unwrap();
    let mut multi =
        DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, JoinStrategy::Multiway)
            .unwrap();
    // The sharded engine must agree at every fleet size, including the
    // broadcast-replication path (4-cycle) and the degenerate self-join
    // fallback (triangle).
    let mut sharded: Vec<ShardedEngine<i64>> = [1usize, 2, 4]
        .into_iter()
        .map(|n| ShardedEngine::new(q.clone(), &db, lift_one, n).unwrap())
        .collect();
    let mut base: ivm_data::FxHashMap<ivm_data::Sym, Relation<i64>> = rels
        .iter()
        .map(|&r| {
            (
                r,
                Relation::new(q.atoms.iter().find(|a| a.name == r).unwrap().schema.clone()),
            )
        })
        .collect();

    for batch in updates.chunks(chunk.max(1)) {
        left.apply_batch(batch).unwrap();
        multi.apply_batch(batch).unwrap();
        for eng in &mut sharded {
            eng.apply_batch(batch).unwrap();
        }
        for u in batch {
            base.get_mut(&u.relation)
                .unwrap()
                .apply(u.tuple.clone(), &u.payload);
        }
        let expect = oracle(q, &base);
        outputs_match(
            left.output_relation(),
            &expect,
            &format!("{:?} left-deep", q.name),
        )?;
        outputs_match(
            multi.output_relation(),
            &expect,
            &format!("{:?} multiway", q.name),
        )?;
        for eng in &sharded {
            outputs_match(
                eng.output_relation(),
                &expect,
                &format!("{:?} sharded x{}", q.name, eng.shards()),
            )?;
        }
    }
    // The multiway plan must never have materialized a binary-join
    // intermediate, whatever the stream did.
    prop_assert_eq!(multi.stats().binary_join_tuples, 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cyclic self-join triangle: left-deep ≡ multiway ≡ oracle on every
    /// batch prefix of a random mixed-sign stream.
    #[test]
    fn triangle_engines_agree(ops in ops_strategy(), chunk in 1usize..9) {
        check_shape(&triangle(), &ops, chunk)?;
    }

    /// Cyclic 4-cycle over four distinct relations.
    #[test]
    fn four_cycle_engines_agree(ops in ops_strategy(), chunk in 1usize..9) {
        check_shape(&four_cycle(), &ops, chunk)?;
    }

    /// Acyclic star with all variables free (multiway forced).
    #[test]
    fn star_engines_agree(ops in ops_strategy(), chunk in 1usize..9) {
        check_shape(&star(), &ops, chunk)?;
    }

    /// Pipelined ingestion is just a reordering of the same ring algebra:
    /// enqueue-everything-then-drain must equal the synchronous engine and
    /// the oracle, on the shape whose plan replicates (broadcasts) atoms.
    #[test]
    fn pipelined_sharded_four_cycle_agrees(ops in ops_strategy(), chunk in 1usize..9) {
        let q = four_cycle();
        let rels = distinct_relations(&q);
        let updates: Vec<Update<i64>> = ops
            .iter()
            .filter(|(_, _, m)| *m != 0)
            .map(|&(ri, (x, y), m)| Update::with_payload(rels[ri % rels.len()], tup![x, y], m))
            .collect();
        let db = Database::new();
        let mut eng = ShardedEngine::<i64>::new(q.clone(), &db, lift_one, 3).unwrap();
        let mut base: ivm_data::FxHashMap<ivm_data::Sym, Relation<i64>> = rels
            .iter()
            .map(|&r| {
                (
                    r,
                    Relation::new(q.atoms.iter().find(|a| a.name == r).unwrap().schema.clone()),
                )
            })
            .collect();
        for batch in updates.chunks(chunk.max(1)) {
            // Fire-and-forget; nothing is awaited until the drain below.
            eng.enqueue_batch(batch).unwrap();
            for u in batch {
                base.get_mut(&u.relation)
                    .unwrap()
                    .apply(u.tuple.clone(), &u.payload);
            }
        }
        eng.drain().unwrap();
        let expect = oracle(&q, &base);
        outputs_match(eng.output_relation(), &expect, "pipelined 4-cycle x3")?;
    }

    /// Single-tuple application order is immaterial: one batch equals the
    /// same updates applied one at a time, on both plans.
    #[test]
    fn batch_equals_singles_on_both_plans(ops in ops_strategy()) {
        let q = triangle();
        let rels = distinct_relations(&q);
        let updates: Vec<Update<i64>> = ops
            .iter()
            .filter(|(_, _, m)| *m != 0)
            .map(|&(ri, (x, y), m)| Update::with_payload(rels[ri % rels.len()], tup![x, y], m))
            .collect();
        for strategy in [JoinStrategy::LeftDeep, JoinStrategy::Multiway] {
            let db = Database::new();
            let mut one =
                DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, strategy)
                    .unwrap();
            let mut many =
                DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, strategy)
                    .unwrap();
            for u in &updates {
                one.apply_batch(std::slice::from_ref(u)).unwrap();
            }
            many.apply_batch(&updates).unwrap();
            outputs_match(
                many.output_relation(),
                one.output_relation(),
                &format!("batch-vs-singles {strategy:?}"),
            )?;
        }
    }
}

/// The three harness shapes cover the shard planner's whole split, and
/// the streams above really exercise each path — deterministic check.
#[test]
fn harness_shapes_cover_all_shard_plan_paths() {
    let db = Database::new();
    // Self-join triangle: occurrences permute the columns of E, so no
    // physical partition serves all of them → degenerate serial routing.
    let tri = ShardedEngine::<i64>::new(triangle(), &db, lift_one, 4).unwrap();
    assert!(tri.plan().is_degenerate(), "{}", tri.describe());

    // 4-cycle: a covers R and U; S and T replicate → broadcast path.
    let mut cyc = ShardedEngine::<i64>::new(four_cycle(), &db, lift_one, 4).unwrap();
    assert_eq!(cyc.plan().partitioned_count(), 2, "{}", cyc.describe());
    assert_eq!(cyc.plan().broadcast_count(), 2, "{}", cyc.describe());
    let batch: Vec<Update<i64>> = (0..8u64)
        .flat_map(|i| {
            [
                Update::insert(sym("pe_4R"), tup![i, i + 1]),
                Update::insert(sym("pe_4S"), tup![i, i + 1]),
            ]
        })
        .collect();
    cyc.apply_batch(&batch).unwrap();
    let st = cyc.sharded_stats();
    assert!(
        st.router.broadcast_copies > 0,
        "the 4-cycle stream must exercise replication"
    );
    assert!(st.router.routed > 0);

    // Star: x occurs in every atom → everything partitions, nothing
    // replicates.
    let star_eng = ShardedEngine::<i64>::new(star(), &db, lift_one, 4).unwrap();
    assert_eq!(
        star_eng.plan().broadcast_count(),
        0,
        "{}",
        star_eng.describe()
    );
    assert_eq!(star_eng.plan().partitioned_count(), 3);
}

/// The acceptance check of the WCOJ change, deterministic: on a triangle
/// workload dense enough that the left-deep chain materializes many
/// binary intermediates, the auto-chosen multiway plan materializes none
/// and both still agree with the oracle.
#[test]
fn triangle_multiway_materializes_no_binary_intermediates() {
    let q = triangle();
    let e = q.atoms[0].name;
    let updates: Vec<Update<i64>> = (0..14u64)
        .flat_map(|i| (0..14u64).map(move |j| (i, j)))
        .filter(|&(i, j)| (i * 7 + j * 3) % 4 != 0 && i != j)
        .map(|(i, j)| Update::insert(e, tup![i, j]))
        .collect();

    let db = Database::new();
    // Auto picks multiway for the cyclic triangle.
    let mut auto = DataflowEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    assert!(auto.plan().contains("MultiwayJoin"), "{}", auto.plan());
    let mut left =
        DataflowEngine::<i64>::new_with_strategy(q.clone(), &db, lift_one, JoinStrategy::LeftDeep)
            .unwrap();
    for chunk in updates.chunks(16) {
        auto.apply_batch(chunk).unwrap();
        left.apply_batch(chunk).unwrap();
    }
    assert_eq!(
        auto.output_relation().get(&Tuple::empty()),
        left.output_relation().get(&Tuple::empty())
    );
    assert_eq!(
        auto.stats().binary_join_tuples,
        0,
        "multiway plan materialized a binary intermediate"
    );
    assert!(
        left.stats().binary_join_tuples > auto.stats().output_delta_tuples,
        "left-deep chain should materialize more intermediate tuples \
         ({}) than the multiway plan emits outputs ({})",
        left.stats().binary_join_tuples,
        auto.stats().output_delta_tuples,
    );
    assert!(auto.stats().multiway_seeds > 0);
}
