//! Property tests: every maintenance engine agrees with from-scratch
//! re-evaluation on arbitrary valid update streams, across a family of
//! q-hierarchical queries.

use ivm_core::{EagerFactEngine, EagerListEngine, LazyFactEngine, LazyListEngine, Maintainer};
use ivm_data::ops::{eval_join_aggregate, lift_one};
use ivm_data::{sym, Database, Relation, Schema, Tuple, Update, Value};
use ivm_dataflow::DataflowEngine;
use ivm_query::{Atom, Query};
use proptest::prelude::*;

/// The query family under test: three q-hierarchical shapes of increasing
/// width, from the paper's Fig 3 to a 3-relation star.
fn query_family() -> Vec<Query> {
    let [x, y, z, w] = ivm_data::vars(["eq_X", "eq_Y", "eq_Z", "eq_W"]);
    vec![
        // Fig 3.
        Query::new(
            "eq_fig3",
            [y, x, z],
            vec![
                Atom::new(sym("eq_R0"), [y, x]),
                Atom::new(sym("eq_S0"), [y, z]),
            ],
        ),
        // A star with three satellites.
        Query::new(
            "eq_star",
            [x, y, z, w],
            vec![
                Atom::new(sym("eq_R1"), [x, y]),
                Atom::new(sym("eq_S1"), [x, z]),
                Atom::new(sym("eq_T1"), [x, w]),
            ],
        ),
        // Nested: R(X,Y,Z) with a child relation per level + aggregation.
        Query::new(
            "eq_nested",
            [x, y],
            vec![
                Atom::new(sym("eq_R2"), [x, y, z]),
                Atom::new(sym("eq_S2"), [x, y]),
                Atom::new(sym("eq_T2"), [x]),
            ],
        ),
    ]
}

/// An update script: (atom index, values, delete?) triples; deletes are
/// made valid (only remove present tuples) during execution.
type Script = Vec<(usize, Vec<i64>, bool)>;

fn script_strategy(n_atoms: usize) -> impl Strategy<Value = Script> {
    proptest::collection::vec(
        (
            0..n_atoms,
            proptest::collection::vec(0i64..4, 3),
            proptest::bool::ANY,
        ),
        0..60,
    )
}

fn run_script(q: &Query, script: &Script) -> Result<(), TestCaseError> {
    let db = Database::new();
    let mut eager_fact = EagerFactEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    let mut eager_list = EagerListEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    let mut lazy_fact = LazyFactEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    let mut lazy_list = LazyListEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    let mut dataflow = DataflowEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    let mut oracle: Vec<Relation<i64>> = q
        .atoms
        .iter()
        .map(|a| Relation::new(a.schema.clone()))
        .collect();

    for (ai, vals, del) in script {
        let atom = &q.atoms[*ai];
        let tuple: Tuple = vals[..atom.schema.arity()]
            .iter()
            .map(|&v| Value::from(v))
            .collect();
        // Validity: delete only present tuples.
        let m: i64 = if *del && oracle[*ai].get(&tuple) > 0 {
            -1
        } else {
            1
        };
        oracle[*ai].apply(tuple.clone(), &m);
        let upd = Update::with_payload(atom.name, tuple, m);
        eager_fact.apply(&upd).unwrap();
        eager_list.apply(&upd).unwrap();
        lazy_fact.apply(&upd).unwrap();
        lazy_list.apply(&upd).unwrap();
        dataflow.apply(&upd).unwrap();
    }

    let refs: Vec<&Relation<i64>> = oracle.iter().collect();
    let expect = eval_join_aggregate(&refs, &q.free, lift_one);
    for (name, got) in [
        ("eager-fact", eager_fact.output()),
        ("eager-list", eager_list.output()),
        ("lazy-fact", lazy_fact.output()),
        ("lazy-list", lazy_list.output()),
        ("dataflow", dataflow.output()),
    ] {
        prop_assert_eq!(got.len(), expect.len(), "{} size", name);
        for (t, p) in expect.iter() {
            prop_assert_eq!(&got.get(t), p, "{} at {:?}", name, t);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fig3_engines_match_oracle(script in script_strategy(2)) {
        run_script(&query_family()[0], &script)?;
    }

    #[test]
    fn star_engines_match_oracle(script in script_strategy(3)) {
        run_script(&query_family()[1], &script)?;
    }

    #[test]
    fn nested_engines_match_oracle(script in script_strategy(3)) {
        run_script(&query_family()[2], &script)?;
    }
}

/// The whole family is q-hierarchical (sanity of the test setup itself).
#[test]
fn family_is_q_hierarchical() {
    for q in query_family() {
        assert!(
            ivm_query::is_q_hierarchical(&q),
            "{q:?} must be q-hierarchical"
        );
    }
}

/// Boolean variants (empty free set) are also maintained correctly — the
/// output degenerates to a single payload.
#[test]
fn boolean_variant() {
    let base = &query_family()[1];
    let q = Query {
        name: sym("eq_star_bool"),
        free: Schema::empty(),
        input: Schema::empty(),
        atoms: base.atoms.clone(),
    };
    let db = Database::new();
    let mut eng = EagerFactEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
    let mut oracle: Vec<Relation<i64>> = q
        .atoms
        .iter()
        .map(|a| Relation::new(a.schema.clone()))
        .collect();
    for i in 0..40i64 {
        let ai = (i % 3) as usize;
        let tuple: Tuple = [i % 3, i % 4].iter().map(|&v| Value::from(v)).collect();
        oracle[ai].apply(tuple.clone(), &1);
        eng.apply(&Update::insert(q.atoms[ai].name, tuple)).unwrap();
    }
    let refs: Vec<&Relation<i64>> = oracle.iter().collect();
    let expect = eval_join_aggregate(&refs, &q.free, lift_one);
    assert_eq!(
        eng.output().get(&Tuple::empty()),
        expect.get(&Tuple::empty())
    );
}
