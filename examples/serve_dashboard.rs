//! A live dashboard served from one ingest stream: a [`ServeNode`] owns
//! the base relations and a single `apply_batch` loop, while several
//! subscribers — a triangle *count*, an α-renamed copy of it (the
//! fabric collapses both onto one engine), the triangle *listing*
//! (second engine, but its edge store is hub-shared with the count's),
//! and a 4-cycle widget — each hold a live incrementally-maintained
//! view and hear one `ViewDelta` per epoch.
//!
//! Mid-stream, the 4-cycle widget is closed (its engine retires; the
//! base keeps absorbing its relations) and a latecomer subscribes to
//! the listing — its first snapshot already reflects everything
//! ingested before it arrived. The `ivm.serve.*` gauges are printed
//! each round so the dedup and churn are visible in the numbers.
//!
//! Run: `cargo run --release --example serve_dashboard`

use ivm::{Atom, MetricsRegistry, Query, ServeNode, Update, ViewDelta};
use ivm_data::{sym, tup, vars};
use std::cell::Cell;
use std::rc::Rc;

fn triangle_count(name: &str, vs: [&str; 3]) -> Query {
    let e = sym("dash_E");
    let [a, b, c] = vars(vs);
    Query::new(
        name,
        [],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    )
}

fn main() {
    let registry = MetricsRegistry::new();
    let mut node = ServeNode::<i64>::new();
    node.observe(&registry);

    // Panel 1: triangle count, consumed by a callback that keeps a
    // running total on the "dashboard".
    let tri_total: Rc<Cell<i64>> = Rc::default();
    let tally = Rc::clone(&tri_total);
    let tri_id = node
        .subscribe_with(
            triangle_count("dash_tri", ["dash_A", "dash_B", "dash_C"]),
            move |vd: &ViewDelta<i64>| {
                let d: i64 = vd.delta.iter().map(|(_, p)| *p).sum();
                tally.set(tally.get() + d);
            },
        )
        .unwrap();

    // Panel 2: the same query α-renamed — the canonicalizer sees through
    // the renaming and taps the existing engine instead of building one.
    let mut tri_twin = node
        .subscribe(triangle_count("dash_tri2", ["dash_X", "dash_Y", "dash_Z"]))
        .unwrap();

    // Panel 3: the triangle *listing* — different free set, so a second
    // engine, but its trie store over dash_E is shared with the count's.
    let e = sym("dash_E");
    let [la, lb, lc] = vars(["dash_LA", "dash_LB", "dash_LC"]);
    let listing = Query::new(
        "dash_tri_listing",
        [la, lb, lc],
        vec![
            Atom::new(e, [la, lb]),
            Atom::new(e, [lb, lc]),
            Atom::new(e, [lc, la]),
        ],
    );
    let mut listing_sub = node.subscribe(listing.clone()).unwrap();

    // Panel 4: a 4-cycle widget over its own relations; closed mid-run.
    let cyc = ["dash_4R", "dash_4S", "dash_4T", "dash_4U"].map(sym);
    let [ca, cb, cc, cd] = vars(["dash_CA", "dash_CB", "dash_CC", "dash_CD"]);
    let widget = node
        .subscribe(Query::new(
            "dash_cycle4",
            [],
            vec![
                Atom::new(cyc[0], [ca, cb]),
                Atom::new(cyc[1], [cb, cc]),
                Atom::new(cyc[2], [cc, cd]),
                Atom::new(cyc[3], [cd, ca]),
            ],
        ))
        .unwrap();
    let widget_id = widget.id();
    let mut widget = Some(widget);

    println!(
        "fabric: {} subscribers on {} engines (the α-renamed twin was deduped)\n",
        node.subscriber_count(),
        node.group_count()
    );

    // One ingest loop feeds every panel. Mixed-sign: edges rotate in and
    // the oldest rotate out.
    let mut late_listing = None;
    for round in 0u64..8 {
        let mut batch = Vec::new();
        for i in 0..12u64 {
            let (x, y) = ((round * 5 + i) % 9, (round * 3 + i * 7 + 1) % 9);
            batch.push(Update::insert(e, tup![x, y]));
            batch.push(Update::insert(cyc[(i % 4) as usize], tup![y, x]));
            if round > 3 {
                let (ox, oy) = (((round - 4) * 5 + i) % 9, ((round - 4) * 3 + i * 7 + 1) % 9);
                batch.push(Update::delete(e, tup![ox, oy]));
            }
        }
        node.apply_batch(&batch).unwrap();

        if round == 2 {
            // The widget panel is closed: its engine retires, its
            // relations stay declared in the shared base.
            drop(widget.take());
            node.apply_batch(&[]).unwrap(); // eviction happens at delivery
            assert!(!node.is_subscribed(widget_id));
        }
        if round == 4 {
            // A latecomer joins the listing's existing engine; its view
            // is complete from the first look.
            let sub = node.subscribe(listing.clone()).unwrap();
            let snapshot = node.view(sub.id()).unwrap();
            println!(
                "  round {round}: latecomer subscribed — initial snapshot already \
                 lists {} triangles",
                snapshot.len()
            );
            late_listing = Some(sub);
        }

        // Drain every pending epoch (the eviction round applied an extra
        // empty batch) so the twin's running delta stays in lockstep.
        let mut twin_delta = 0i64;
        while let Some(vd) = tri_twin.try_next() {
            twin_delta += vd.delta.iter().map(|(_, p)| *p).sum::<i64>();
        }
        let mut listed = 0usize;
        while let Some(vd) = listing_sub.try_next() {
            listed += vd.delta.len();
        }
        let m = registry.snapshot();
        println!(
            "round {round}: triangle count {:>4} (twin agrees: Δ{twin_delta:+}); \
             {listed:>2} listing rows changed; subscribers={} groups={}",
            tri_total.get(),
            m.gauge("ivm.serve.subscribers"),
            m.gauge("ivm.serve.groups"),
        );
    }

    // The two counting panels never diverged, and the listing's support
    // sums to the count — three views, one state.
    let count_view = node.view(tri_id).unwrap();
    let twin_view = node.view(tri_twin.id()).unwrap();
    let listing_view = node.view(late_listing.as_ref().unwrap().id()).unwrap();
    let count: i64 = count_view.iter().map(|(_, p)| *p).sum();
    let listed: i64 = listing_view.iter().map(|(_, p)| *p).sum();
    assert_eq!(count, twin_view.iter().map(|(_, p)| *p).sum::<i64>());
    assert_eq!(count, listed, "Σ listing multiplicities = count");
    assert_eq!(count, tri_total.get(), "callback total tracked the view");

    let m = registry.snapshot();
    println!(
        "\nfinal: {count} triangles across {} live views on {} engines; \
         dedup_hits={} store_dedup_hits={} evictions={} over {} epochs; \
         {} resident tuples serve every panel",
        node.subscriber_count(),
        node.group_count(),
        m.counter("ivm.serve.dedup_hits"),
        m.counter("ivm.serve.store_dedup_hits"),
        m.counter("ivm.serve.evictions"),
        m.counter("ivm.serve.epochs"),
        node.resident_tuples(),
    );
}
