//! Queries with free access patterns (Sec. 4.3): the flight-booking
//! scenario from the paper's motivation — "to access the flights from a
//! flight booking database behind a web interface, one has to specify the
//! date, departure, and destination".
//!
//! `Q(fid | date, src, dst) = Flight(date, src, dst, fid)` is a tractable
//! CQAP: the engine maintains it under updates and serves access requests
//! with constant delay. Extending the query with an `OnTime(fid)` join
//! makes it *intractable* (fid dominates the input variables but is not an
//! input) — the classifier catches this and the engine refuses.
//!
//! Run: `cargo run --example flight_access_patterns`

use ivm_core::cqap::CqapEngine;
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, vars, Update};
use ivm_query::{is_tractable_cqap, Atom, Query};

fn main() {
    let [date, src, dst, fid] = vars(["fl_date", "fl_src", "fl_dst", "fl_fid"]);
    let flights = sym("fl_Flight");
    let q = Query::with_access_pattern(
        "fl_Q",
        [fid],
        [date, src, dst],
        vec![Atom::new(flights, [date, src, dst, fid])],
    );
    println!("CQAP: {q:?}");
    println!("tractable (Thm 4.8): {}\n", is_tractable_cqap(&q));

    let mut engine: CqapEngine<i64> = CqapEngine::new(q, lift_one).expect("tractable");

    // Load a tiny schedule: (date, src, dst, flight id).
    let rows: &[(i64, &str, &str, i64)] = &[
        (20240501, "ZRH", "VIE", 801),
        (20240501, "ZRH", "VIE", 803),
        (20240501, "ZRH", "CDG", 811),
        (20240502, "ZRH", "VIE", 801),
        (20240501, "VIE", "ZRH", 802),
    ];
    for &(d, s, t, f) in rows {
        engine
            .apply(&Update::insert(flights, tup![d, s, t, f]))
            .unwrap();
    }

    let ask = |engine: &CqapEngine<i64>, d: i64, s: &str, t: &str| {
        print!("flights {s}→{t} on {d}: ");
        let mut any = false;
        engine.access(&tup![d, s, t], &mut |fid, _| {
            print!("{fid:?} ");
            any = true;
        });
        println!("{}", if any { "" } else { "(none)" });
    };

    ask(&engine, 20240501, "ZRH", "VIE");
    ask(&engine, 20240501, "ZRH", "CDG");
    ask(&engine, 20240503, "ZRH", "VIE");

    // A cancellation propagates in O(1):
    engine
        .apply(&Update::delete(
            flights,
            tup![20240501i64, "ZRH", "VIE", 803i64],
        ))
        .unwrap();
    println!("\nafter cancelling flight 803:");
    ask(&engine, 20240501, "ZRH", "VIE");

    // The extended query is intractable — the dichotomy in action.
    let ontime = sym("fl_OnTime");
    let q2 = Query::with_access_pattern(
        "fl_Q2",
        [fid],
        [date, src, dst],
        vec![
            Atom::new(flights, [date, src, dst, fid]),
            Atom::new(ontime, [fid]),
        ],
    );
    println!("\nextended CQAP: {q2:?}");
    println!("tractable: {}", is_tractable_cqap(&q2));
    let err = CqapEngine::<i64>::new(q2, lift_one).unwrap_err();
    println!("engine verdict: {err}");
}
