//! Queries with free access patterns (Sec. 4.3): the flight-booking
//! scenario from the paper's motivation — "to access the flights from a
//! flight booking database behind a web interface, one has to specify the
//! date, departure, and destination".
//!
//! `Q(fid | date, src, dst) = Flight(date, src, dst, fid)` is a tractable
//! CQAP: the session auto-selects the CQAP engine, maintains the query
//! under updates, and serves access requests with constant delay through
//! `Session::access`. Extending the query with an `OnTime(fid)` join makes
//! the access pattern *intractable* (fid dominates the input variables but
//! is not an input) — the classifier catches this and the session demotes
//! the query to its next-strongest class (as a plain query it is still
//! q-hierarchical, so enumeration stays O(1)-delay on a view tree), but
//! the constant-delay access *service* is gone and `Session::access`
//! refuses rather than silently degrading.
//!
//! Run: `cargo run --example flight_access_patterns`

use ivm::{Database, EngineKind, Maintainer, Session, Update};
use ivm_data::{sym, tup, vars};
use ivm_query::{Atom, Query};

fn main() {
    let [date, src, dst, fid] = vars(["fl_date", "fl_src", "fl_dst", "fl_fid"]);
    let flights = sym("fl_Flight");
    let q = Query::with_access_pattern(
        "fl_Q",
        [fid],
        [date, src, dst],
        vec![Atom::new(flights, [date, src, dst, fid])],
    );
    let mut session = Session::<i64>::builder(q).build(&Database::new()).unwrap();
    println!("{}\n", session.explain());
    assert_eq!(session.engine_kind(), EngineKind::Cqap);

    // Load a tiny schedule in one batch: (date, src, dst, flight id).
    let rows: &[(i64, &str, &str, i64)] = &[
        (20240501, "ZRH", "VIE", 801),
        (20240501, "ZRH", "VIE", 803),
        (20240501, "ZRH", "CDG", 811),
        (20240502, "ZRH", "VIE", 801),
        (20240501, "VIE", "ZRH", 802),
    ];
    let batch: Vec<Update<i64>> = rows
        .iter()
        .map(|&(d, s, t, f)| Update::insert(flights, tup![d, s, t, f]))
        .collect();
    session.apply_batch(&batch).unwrap();

    let ask = |session: &Session<i64>, d: i64, s: &str, t: &str| {
        print!("flights {s}→{t} on {d}: ");
        let mut any = false;
        session
            .access(&tup![d, s, t], &mut |fid, _| {
                print!("{fid:?} ");
                any = true;
            })
            .unwrap();
        println!("{}", if any { "" } else { "(none)" });
    };

    ask(&session, 20240501, "ZRH", "VIE");
    ask(&session, 20240501, "ZRH", "CDG");
    ask(&session, 20240503, "ZRH", "VIE");

    // A cancellation propagates in O(1):
    session
        .apply_batch(&[Update::delete(
            flights,
            tup![20240501i64, "ZRH", "VIE", 803i64],
        )])
        .unwrap();
    println!("\nafter cancelling flight 803:");
    ask(&session, 20240501, "ZRH", "VIE");

    // The extended query's access pattern is intractable — the dichotomy
    // in action: the session still maintains it (demoted to the plain
    // query's own class), but the constant-delay access service is gone
    // and says so.
    let ontime = sym("fl_OnTime");
    let q2 = Query::with_access_pattern(
        "fl_Q2",
        [fid],
        [date, src, dst],
        vec![
            Atom::new(flights, [date, src, dst, fid]),
            Atom::new(ontime, [fid]),
        ],
    );
    let session2 = Session::<i64>::builder(q2).build(&Database::new()).unwrap();
    println!("\nextended CQAP:\n{}", session2.explain());
    let err = session2
        .probe(&tup![20240501i64, "ZRH", "VIE"])
        .unwrap_err();
    println!("access request refused: {err}");
}
