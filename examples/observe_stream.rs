//! Live observability over a skewed stream: a 4-shard adaptive session
//! on the 3-relation triangle count, with a metrics registry attached —
//! the full telemetry stack in one run.
//!
//! Each round enqueues a burst of Zipf-skewed edge batches *without
//! draining*, samples the per-shard queue-depth gauges mid-flight (the
//! fleet is genuinely behind at that instant), then drains and prints a
//! dashboard line: ingest latency, settle latency, per-shard busy time.
//! After the stream: the per-operator breakdown of one worker's dataflow,
//! the session's replan timeline (trigger names and before/after
//! throughput), a per-epoch latency *waterfall* reconstructed from the
//! causal trace ring (router consolidate/partition, per-shard queue
//! wait and apply, per-operator engine time — all under one epoch
//! root), a curl transcript against the live scrape endpoint the
//! session serves, and excerpts of the two export formats — Prometheus
//! text exposition and the JSON snapshot — rendered from the *same*
//! registry.
//!
//! Run: `cargo run --release --example observe_stream`

use ivm::obs::http_get;
use ivm::{Atom, Database, Maintainer, MetricsRegistry, Query, ReplanPolicy, Session, Update};
use ivm_data::{sym, tup, vars};
use ivm_workloads::graphs::EdgeStream;

fn main() {
    // Q() = Σ R(a,b)·S(b,c)·T(c,a) over three distinct relations: cyclic
    // (worst-case-optimal multiway per shard) and shardable (two
    // relations hash-partitioned, one broadcast).
    let [a, b, c] = vars(["obs_A", "obs_B", "obs_C"]);
    let names = [sym("obs_R"), sym("obs_S"), sym("obs_T")];
    let q = Query::new(
        "obs_tri",
        [],
        vec![
            Atom::new(names[0], [a, b]),
            Atom::new(names[1], [b, c]),
            Atom::new(names[2], [c, a]),
        ],
    );

    let registry = MetricsRegistry::new();
    let mut s = Session::<i64>::builder(q)
        .shards(4)
        .adaptive(ReplanPolicy::default())
        .observe(&registry)
        .serve_metrics("127.0.0.1:0")
        .build(&Database::new())
        .unwrap();
    println!("fleet: {}", s.describe());
    let addr = s.metrics_addr().expect("endpoint requested at build");
    println!("scrape endpoint: http://{addr}/metrics\n");

    // Skewed stream: the Zipf hub concentrates work onto few keys, so the
    // per-shard busy times visibly diverge — that imbalance is exactly
    // what the dashboard is for.
    let stream = EdgeStream::zipf(600, 12_000, 0.9, 11);
    let mut total = 0u64;
    println!(
        "{:>5} {:>9} {:>12} {:>12}  per-shard busy (ms)",
        "round", "updates", "ingest p99", "settle p99"
    );
    for (round, burst) in stream.edges.chunks(3_000).enumerate() {
        // Enqueue the whole burst pipelined; the fleet falls behind...
        let mut in_flight = 0i64;
        for chunk in burst.chunks(750) {
            // Deliberately asymmetric volumes (|R| ≈ 2|S| ≈ 4|T|): the
            // learned cardinalities diverge from the blind all-zero
            // build, so the adaptive policy has something to act on and
            // the replan timeline below is non-trivial.
            let batch: Vec<Update<i64>> = chunk
                .iter()
                .enumerate()
                .flat_map(|(j, &(x, y))| {
                    let mut v = vec![Update::insert(names[0], tup![x, y])];
                    if j % 2 == 0 {
                        v.push(Update::insert(names[1], tup![x, y]));
                    }
                    if j % 4 == 0 {
                        v.push(Update::insert(names[2], tup![x, y]));
                    }
                    v
                })
                .collect();
            total += batch.len() as u64;
            s.enqueue_batch(&batch).unwrap();
            let m = s.metrics();
            in_flight = in_flight.max(
                (0..4)
                    .map(|i| m.gauge(&format!("ivm.fleet.shard{i}.queue_depth")))
                    .sum(),
            );
        }
        // ...then settles. Queue gauges must read zero again afterwards.
        s.drain().unwrap();
        let m = s.metrics();
        let p99 = |name: &str| {
            m.histogram(name)
                .map_or(0.0, |h| h.quantile_ns(0.99) as f64 / 1.0e6)
        };
        let busy: Vec<String> = (0..4)
            .map(|i| {
                format!(
                    "{:.1}",
                    m.counter(&format!("ivm.fleet.shard{i}.busy_ns")) as f64 / 1.0e6
                )
            })
            .collect();
        println!(
            "{round:>5} {total:>9} {:>9.2}ms {:>9.2}ms  [{}]  (peak in-flight jobs: {in_flight})",
            p99("ivm.session.ingest_ns"),
            p99("ivm.fleet.settle_ns"),
            busy.join(" "),
        );
    }

    let m = s.metrics();
    for i in 0..4 {
        assert_eq!(
            m.gauge(&format!("ivm.fleet.shard{i}.queue_depth")),
            0,
            "drained fleet must show empty queues"
        );
    }
    let per_shard: u64 = (0..4)
        .map(|i| m.counter(&format!("ivm.fleet.shard{i}.dataflow.updates_in")))
        .sum();
    assert_eq!(
        m.counter("ivm.fleet.updates_in"),
        per_shard,
        "fleet totals must equal the sum of per-shard counters"
    );

    println!("\n## shard 0 per-operator breakdown\n");
    for (name, v) in m.counters_with_prefix("ivm.fleet.shard0.dataflow.op.") {
        println!("{v:>12}  {name}");
    }

    println!("\n## epoch waterfall (causal trace, synchronous apply)\n");
    // A few synchronous epochs: `apply_batch` on a fleet enqueues and
    // settles in one call, so the `session.ingest` root span brackets
    // the epoch end to end and the per-stage children — router
    // consolidate/partition, each shard's queue wait and apply, the
    // per-operator engine time under each apply — account for its wall
    // time. Pick the best-covered recent epoch to print.
    let tail = EdgeStream::zipf(400, 9_000, 0.9, 13);
    for chunk in tail.edges.chunks(1_500) {
        let batch: Vec<Update<i64>> = chunk
            .iter()
            .flat_map(|&(x, y)| {
                [
                    Update::insert(names[0], tup![x, y]),
                    Update::insert(names[1], tup![x, y]),
                    Update::insert(names[2], tup![x, y]),
                ]
            })
            .collect();
        s.apply_batch(&batch).unwrap();
    }
    let falls = s.waterfalls();
    let best = falls
        .iter()
        .rev()
        .take(6)
        .max_by(|a, b| a.coverage().total_cmp(&b.coverage()))
        .expect("synchronous epochs just ran");
    print!("{}", best.render());
    let path: Vec<&str> = best
        .critical_path()
        .iter()
        .map(|st| st.label.as_str())
        .collect();
    println!(
        "\ncoverage {:.1}% | queue wait {} | compute {} | critical path: {}",
        best.coverage() * 100.0,
        ivm::obs::fmt_ns(best.queue_wait_ns()),
        ivm::obs::fmt_ns(best.compute_ns()),
        path.join(" -> "),
    );
    assert!(
        best.coverage() >= 0.9,
        "traced stages must cover >=90% of the epoch's wall time, got {:.1}%",
        best.coverage() * 100.0
    );

    println!("\n## live scrape endpoint\n");
    println!("$ curl -s http://{addr}/metrics | head -6");
    let scraped = http_get(addr, "/metrics").expect("endpoint is live");
    for line in scraped.lines().take(6) {
        println!("{line}");
    }
    println!("$ curl -s http://{addr}/epochs.json | cut -c1-72");
    let epochs = http_get(addr, "/epochs.json").expect("endpoint is live");
    println!("{}", &epochs[..epochs.len().min(72)]);
    // The endpoint and the in-process snapshot expose one truth.
    let m_now = s.metrics();
    let batches_line = format!(
        "ivm_session_batches {}",
        m_now.counter("ivm.session.batches")
    );
    assert!(
        scraped.lines().any(|l| l == batches_line),
        "scrape must agree with the snapshot: {batches_line}"
    );

    println!("\n## replan timeline\n");
    for line in s.explain().to_string().lines() {
        if line.contains("replan") || line.trim_start().starts_with('#') {
            println!("{line}");
        }
    }

    println!("\n## Prometheus exposition (excerpt)\n");
    for line in m
        .to_prometheus()
        .lines()
        .filter(|l| l.contains("ivm_session") || l.contains("queue_depth"))
        .take(14)
    {
        println!("{line}");
    }
    let triangles: i64 = s.output().iter().map(|(_, p)| *p).sum();
    println!(
        "\n## JSON snapshot: {} bytes covering {} counters; maintained triangle count {}",
        m.render_json().len(),
        m.counters.len(),
        triangles,
    );
}
