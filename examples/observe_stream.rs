//! Live observability over a skewed stream: a 4-shard adaptive session
//! on the 3-relation triangle count, with a metrics registry attached —
//! the full telemetry stack in one run.
//!
//! Each round enqueues a burst of Zipf-skewed edge batches *without
//! draining*, samples the per-shard queue-depth gauges mid-flight (the
//! fleet is genuinely behind at that instant), then drains and prints a
//! dashboard line: ingest latency, settle latency, per-shard busy time.
//! After the stream: the per-operator breakdown of one worker's dataflow,
//! the session's replan timeline (trigger names and before/after
//! throughput), and excerpts of the two export formats — Prometheus text
//! exposition and the JSON snapshot — rendered from the *same* registry.
//!
//! Run: `cargo run --release --example observe_stream`

use ivm::{Atom, Database, Maintainer, MetricsRegistry, Query, ReplanPolicy, Session, Update};
use ivm_data::{sym, tup, vars};
use ivm_workloads::graphs::EdgeStream;

fn main() {
    // Q() = Σ R(a,b)·S(b,c)·T(c,a) over three distinct relations: cyclic
    // (worst-case-optimal multiway per shard) and shardable (two
    // relations hash-partitioned, one broadcast).
    let [a, b, c] = vars(["obs_A", "obs_B", "obs_C"]);
    let names = [sym("obs_R"), sym("obs_S"), sym("obs_T")];
    let q = Query::new(
        "obs_tri",
        [],
        vec![
            Atom::new(names[0], [a, b]),
            Atom::new(names[1], [b, c]),
            Atom::new(names[2], [c, a]),
        ],
    );

    let registry = MetricsRegistry::new();
    let mut s = Session::<i64>::builder(q)
        .shards(4)
        .adaptive(ReplanPolicy::default())
        .observe(&registry)
        .build(&Database::new())
        .unwrap();
    println!("fleet: {}\n", s.describe());

    // Skewed stream: the Zipf hub concentrates work onto few keys, so the
    // per-shard busy times visibly diverge — that imbalance is exactly
    // what the dashboard is for.
    let stream = EdgeStream::zipf(600, 12_000, 0.9, 11);
    let mut total = 0u64;
    println!(
        "{:>5} {:>9} {:>12} {:>12}  per-shard busy (ms)",
        "round", "updates", "ingest p99", "settle p99"
    );
    for (round, burst) in stream.edges.chunks(3_000).enumerate() {
        // Enqueue the whole burst pipelined; the fleet falls behind...
        let mut in_flight = 0i64;
        for chunk in burst.chunks(750) {
            // Deliberately asymmetric volumes (|R| ≈ 2|S| ≈ 4|T|): the
            // learned cardinalities diverge from the blind all-zero
            // build, so the adaptive policy has something to act on and
            // the replan timeline below is non-trivial.
            let batch: Vec<Update<i64>> = chunk
                .iter()
                .enumerate()
                .flat_map(|(j, &(x, y))| {
                    let mut v = vec![Update::insert(names[0], tup![x, y])];
                    if j % 2 == 0 {
                        v.push(Update::insert(names[1], tup![x, y]));
                    }
                    if j % 4 == 0 {
                        v.push(Update::insert(names[2], tup![x, y]));
                    }
                    v
                })
                .collect();
            total += batch.len() as u64;
            s.enqueue_batch(&batch).unwrap();
            let m = s.metrics();
            in_flight = in_flight.max(
                (0..4)
                    .map(|i| m.gauge(&format!("ivm.fleet.shard{i}.queue_depth")))
                    .sum(),
            );
        }
        // ...then settles. Queue gauges must read zero again afterwards.
        s.drain().unwrap();
        let m = s.metrics();
        let p99 = |name: &str| {
            m.histogram(name)
                .map_or(0.0, |h| h.quantile_ns(0.99) as f64 / 1.0e6)
        };
        let busy: Vec<String> = (0..4)
            .map(|i| {
                format!(
                    "{:.1}",
                    m.counter(&format!("ivm.fleet.shard{i}.busy_ns")) as f64 / 1.0e6
                )
            })
            .collect();
        println!(
            "{round:>5} {total:>9} {:>9.2}ms {:>9.2}ms  [{}]  (peak in-flight jobs: {in_flight})",
            p99("ivm.session.ingest_ns"),
            p99("ivm.fleet.settle_ns"),
            busy.join(" "),
        );
    }

    let m = s.metrics();
    for i in 0..4 {
        assert_eq!(
            m.gauge(&format!("ivm.fleet.shard{i}.queue_depth")),
            0,
            "drained fleet must show empty queues"
        );
    }
    let per_shard: u64 = (0..4)
        .map(|i| m.counter(&format!("ivm.fleet.shard{i}.dataflow.updates_in")))
        .sum();
    assert_eq!(
        m.counter("ivm.fleet.updates_in"),
        per_shard,
        "fleet totals must equal the sum of per-shard counters"
    );

    println!("\n## shard 0 per-operator breakdown\n");
    for (name, v) in m.counters_with_prefix("ivm.fleet.shard0.dataflow.op.") {
        println!("{v:>12}  {name}");
    }

    println!("\n## replan timeline\n");
    for line in s.explain().to_string().lines() {
        if line.contains("replan") || line.trim_start().starts_with('#') {
            println!("{line}");
        }
    }

    println!("\n## Prometheus exposition (excerpt)\n");
    for line in m
        .to_prometheus()
        .lines()
        .filter(|l| l.contains("ivm_session") || l.contains("queue_depth"))
        .take(14)
    {
        println!("{line}");
    }
    let triangles: i64 = s.output().iter().map(|(_, p)| *p).sum();
    println!(
        "\n## JSON snapshot: {} bytes covering {} counters; maintained triangle count {}",
        m.render_json().len(),
        m.counters.len(),
        triangles,
    );
}
