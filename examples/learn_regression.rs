//! In-database machine learning over a maintained join (Sec. 6's pointer
//! to F-IVM [33, 34, 22]): keep the normal-equation aggregates of a linear
//! regression fresh under updates by swapping the payload ring for the
//! degree-2 covariance ring — no training-set materialization, ever.
//!
//! The model predicts `units` from `price` and `rain` over the join of a
//! Sales and a Weather relation. The maintained `Covar` payload holds
//! count, feature sums, and second moments; gradient descent on the normal
//! equations runs directly off those aggregates after every batch.
//!
//! Run: `cargo run --release --example learn_regression`

use ivm::{Database, EngineKind, Maintainer, Session};
use ivm_data::{sym, tup, vars, Sym, Update, Value};
use ivm_query::{Atom, Query};
use ivm_ring::{Covar, Semiring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Feature layout: 0 = price, 1 = rain, 2 = units (the label).
const D: usize = 3;

/// Lifting: map each bound variable to its covariance-ring encoding.
fn lift(var: Sym, v: &Value) -> Covar<D> {
    let name = var.name();
    match name.as_str() {
        "lr_price" => Covar::lift(0, v.to_f64()),
        "lr_rain" => Covar::lift(1, v.to_f64()),
        "lr_units" => Covar::lift(2, v.to_f64()),
        _ => Covar::one(), // join keys carry no features
    }
}

fn main() {
    // Q() = Σ Sales(store, day, price, units) · Weather(store, day, rain)
    let [store, day, price, units, rain] =
        vars(["lr_store", "lr_day", "lr_price", "lr_units", "lr_rain"]);
    let (sales, weather) = (sym("lr_Sales"), sym("lr_Weather"));
    let q = Query::new(
        "lr_Q",
        [],
        vec![
            Atom::new(sales, [store, day, price, units]),
            Atom::new(weather, [store, day, rain]),
        ],
    );
    // The session classifies the Boolean 2-relation join (q-hierarchical)
    // and stands up the factorized eager-fact view tree, carrying the
    // covariance ring through the custom lift.
    let mut session = Session::<Covar<D>>::builder(q)
        .lift(lift)
        .build(&Database::new())
        .expect("q-hierarchical");
    assert_eq!(session.engine_kind(), EngineKind::EagerFact);

    // Ground truth: units = 2.0·price + 5.0·rain + noise.
    let mut rng = StdRng::seed_from_u64(7);
    println!("streaming batches; model re-fit from maintained aggregates:\n");
    for batch in 1..=6 {
        let mut updates: Vec<Update<Covar<D>>> = Vec::with_capacity(4_000);
        for _ in 0..2_000 {
            let st = rng.gen_range(0..50i64);
            let dy = rng.gen_range(0..30i64);
            let pr = rng.gen_range(1..20i64);
            // Weather is functionally determined by (store, day): the
            // relation stays consistent under repeated inserts.
            let rn = i64::from((st * 31 + dy * 7) % 5 < 2);
            let noise: f64 = rng.gen_range(-1.0..1.0);
            let un = (2.0 * pr as f64 + 5.0 * rn as f64 + noise).round() as i64;
            updates.push(Update::with_payload(
                weather,
                tup![st, dy, rn],
                Covar::one(),
            ));
            updates.push(Update::with_payload(
                sales,
                tup![st, dy, pr, un],
                Covar::one(),
            ));
        }
        // One consolidated batch through the trait-level surface.
        session.apply_batch(&updates).unwrap();
        // The Boolean query's single output payload is the full aggregate.
        let mut agg = Covar::<D>::zero();
        session.for_each_output(&mut |_, c| agg = agg.plus(c));
        let (w_price, w_rain) = fit(&agg);
        println!(
            "batch {batch}: n={:>8}  fitted units ≈ {:.3}·price + {:.3}·rain   (truth: 2·price + 5·rain)",
            agg.count(),
            w_price,
            w_rain
        );
    }
}

/// Gradient descent on the normal equations, using only the maintained
/// moments: ∇ = (XᵀX)w − Xᵀy, all entries of which live in the aggregate.
fn fit(agg: &Covar<D>) -> (f64, f64) {
    let n = agg.count() as f64;
    if n == 0.0 {
        return (0.0, 0.0);
    }
    // Features 0,1; label 2. Normalize by n for conditioning.
    let xtx = [
        [agg.moment(0, 0) / n, agg.moment(0, 1) / n],
        [agg.moment(1, 0) / n, agg.moment(1, 1) / n],
    ];
    let xty = [agg.moment(0, 2) / n, agg.moment(1, 2) / n];
    let mut w = [0.0f64; 2];
    let lr = 0.5 / (xtx[0][0] + xtx[1][1]).max(1.0);
    for _ in 0..10_000 {
        let g0 = xtx[0][0] * w[0] + xtx[0][1] * w[1] - xty[0];
        let g1 = xtx[1][0] * w[0] + xtx[1][1] * w[1] - xty[1];
        w[0] -= lr * g0;
        w[1] -= lr * g1;
    }
    (w[0], w[1])
}
