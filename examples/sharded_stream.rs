//! Asynchronous sharded ingestion through the session API: keep
//! enqueueing batches while the shard fleet is still processing earlier
//! ones, then drain once and verify the maintained view against a
//! single-threaded session over the same stream.
//!
//! The workload is the Retailer star join (fully hash-partitioned by
//! `locn` — no replication) under its Inventory insert stream. Watch the
//! enqueue timeline: `Session::enqueue_batch` returns long before the
//! fleet is done, which is the point — ingestion is decoupled from
//! processing by bounded per-shard queues, so a bursty producer is
//! absorbed instead of blocked (until a queue fills: then backpressure,
//! not unbounded buffering). The same two calls run unchanged against a
//! non-sharded session, where they degrade to synchronous application.
//!
//! Run: `cargo run --release --example sharded_stream`

use ivm::{EngineKind, Maintainer, Session};
use ivm_workloads::RetailerGen;
use std::time::Instant;

fn main() {
    let shards = 4;
    let n_batches = 40;
    let batch_size = 1000;

    // Identical generator seeds → identical initial db and stream for
    // both sessions.
    let mut gen = RetailerGen::new(48, 6, 48, 21);
    let db = gen.initial_db(40_000);
    let q = gen.query().clone();
    let batches: Vec<_> = (0..n_batches)
        .map(|_| gen.inventory_batch(batch_size))
        .collect();

    let mut sharded = Session::<i64>::builder(q.clone())
        .shards(shards)
        .build(&db)
        .unwrap();
    println!("fleet: {}", sharded.describe());

    // Phase 1 — enqueue everything without waiting for processing.
    let t0 = Instant::now();
    for b in &batches {
        sharded.enqueue_batch(b).unwrap();
    }
    let enqueue_done = t0.elapsed();

    // Phase 2 — settle all in-flight shard deltas into the view.
    sharded.drain().unwrap();
    let drained = t0.elapsed();
    println!(
        "enqueued {} batches x {batch_size} in {enqueue_done:?}; \
         drained at {drained:?} ({:.0} tuples/s wall)",
        n_batches,
        (n_batches * batch_size) as f64 / drained.as_secs_f64(),
    );
    let stats = sharded.sharded_stats().expect("shard-backed session");
    println!(
        "critical path: busiest shard {:?} of {:?} total busy \
         (balance {:.2}); {} entries routed, {} broadcast copies",
        stats.max_busy(),
        stats.total_busy(),
        stats.balance(),
        stats.router.routed,
        stats.router.broadcast_copies,
    );

    // Verify against a single-threaded dataflow session on the same
    // stream — same enqueue/drain spelling, synchronous under the hood.
    let mut single = Session::<i64>::builder(q)
        .engine(EngineKind::DataflowLeftDeep)
        .build(&db)
        .unwrap();
    for b in &batches {
        single.enqueue_batch(b).unwrap();
    }
    single.drain().unwrap();
    let (a, b) = (single.output(), sharded.output());
    assert_eq!(a.len(), b.len(), "view sizes must match");
    for (t, p) in a.iter() {
        assert_eq!(&b.get(t), p, "payload mismatch at {t:?}");
    }
    println!(
        "verified: sharded view ≡ single-threaded view ({} tuples)",
        a.len()
    );
}
