//! Quickstart: choose nothing.
//!
//! `Session::builder(query).build(&db)` runs the paper's dichotomy
//! analyses, stands up the engine the query's class admits, and returns
//! one uniform handle — the same batch-first `apply_batch` surface
//! whether the backend is a factorized view tree, a worst-case-optimal
//! dataflow, or a sharded fleet. `explain()` shows its work.
//!
//! Run: `cargo run --example quickstart`

use ivm::{Database, EngineKind, Maintainer, Session, Update};
use ivm_data::{sym, tup, vars};
use ivm_query::{Atom, Query};

fn main() {
    // ── 1. A q-hierarchical query: Q(Y, X, Z) = R(Y, X) · S(Y, Z) (Fig 3).
    let [x, y, z] = vars(["qs_X", "qs_Y", "qs_Z"]);
    let (r, s) = (sym("qs_R"), sym("qs_S"));
    let q = Query::new(
        "qs_Q",
        [y, x, z],
        vec![Atom::new(r, [y, x]), Atom::new(s, [y, z])],
    );
    let mut session = Session::<i64>::builder(q).build(&Database::new()).unwrap();
    println!("{}\n", session.explain());
    assert_eq!(session.engine_kind(), EngineKind::EagerFact);

    // One batch through the one trait-level surface; the returned delta
    // contract is documented on `Maintainer::apply_batch`.
    session
        .apply_batch(&[
            Update::insert(r, tup![1i64, 10i64]),
            Update::insert(r, tup![1i64, 11i64]),
            Update::insert(s, tup![1i64, 20i64]),
            Update::insert(s, tup![2i64, 21i64]),
        ])
        .unwrap();
    println!("after one 4-insert batch:");
    session.for_each_output(&mut |t, m| println!("  Q{t:?} ↦ {m}"));

    session
        .apply_batch(&[Update::delete(r, tup![1i64, 10i64])])
        .unwrap();
    println!("\nafter deleting R(1, 10):");
    session.for_each_output(&mut |t, m| println!("  Q{t:?} ↦ {m}"));

    // ── 2. The triangle count admits the heavy-light IVMε family:
    // sublinear O(√N) amortized updates via degree partitioning. (A
    // cyclic query outside the triangle class — or one whose payload
    // lacks additive inverses — auto-selects the worst-case-optimal
    // multiway dataflow plan instead.)
    let tri = ivm_query::examples::triangle_count();
    let (tr, ts, tt) = (sym("tri_R"), sym("tri_S"), sym("tri_T"));
    let mut session = Session::<i64>::builder(tri)
        .build(&Database::new())
        .unwrap();
    println!("\n{}\n", session.explain());
    assert_eq!(session.engine_kind(), EngineKind::HeavyLight);
    let batch: Vec<Update<i64>> = [(1i64, 2i64), (2, 3), (3, 1)]
        .into_iter()
        .flat_map(|(a, b)| [tr, ts, tt].map(|rel| Update::insert(rel, tup![a, b])))
        .collect();
    session.apply_batch(&batch).unwrap();
    println!("triangles: {}", session.output().get(&ivm::Tuple::empty()));

    // ── 3. Scale-out is one builder call; ingestion code is unchanged.
    let mut session = Session::<i64>::builder(ivm_query::examples::fig3_query())
        .shards(4)
        .build(&Database::new())
        .unwrap();
    println!("\nsharded: {}", session.describe());
    session
        .apply_batch(&[
            Update::insert(sym("f3_R"), tup![1i64, 10i64]),
            Update::insert(sym("f3_S"), tup![1i64, 20i64]),
        ])
        .unwrap();
    assert_eq!(session.output().len(), 1);

    // ── 4. The dichotomy can still be *enforced* instead of routed
    //      around: forcing eager-fact onto a non-q-hierarchical query
    //      surfaces the classifier's rejection.
    let [a, b] = vars(["qs_A", "qs_B"]);
    let bad = Query::new(
        "qs_bad",
        [a],
        vec![
            Atom::new(sym("qs_R2"), [a, b]),
            Atom::new(sym("qs_S2"), ivm_data::Schema::from([b])),
        ],
    );
    let err = Session::<i64>::builder(bad.clone())
        .engine(EngineKind::EagerFact)
        .build(&Database::new())
        .unwrap_err();
    println!("\nforced eager-fact on a non-q-hierarchical query: {err}");

    // Auto-selection instead classifies it and runs the generic engine.
    let session = Session::<i64>::builder(bad)
        .build(&Database::new())
        .unwrap();
    println!(
        "auto-selection picks: {} ({})",
        session.engine_kind(),
        session.explain().class()
    );
}
