//! Quickstart: classify a query, pick an engine, stream updates, and
//! enumerate the maintained output.
//!
//! Run: `cargo run --example quickstart`

use ivm_core::{EagerFactEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, vars, Database, Schema, Update};
use ivm_query::{is_hierarchical, is_q_hierarchical, Atom, Query};

fn main() {
    // Q(Y, X, Z) = R(Y, X) · S(Y, Z)  — Fig 3 of the paper.
    let [x, y, z] = vars(["qs_X", "qs_Y", "qs_Z"]);
    let (r, s) = (sym("qs_R"), sym("qs_S"));
    let q = Query::new(
        "qs_Q",
        [y, x, z],
        vec![Atom::new(r, [y, x]), Atom::new(s, [y, z])],
    );

    // 1. Classification (Theorem 4.1): q-hierarchical ⇒ O(1) update,
    //    O(1) enumeration delay.
    println!("query:           {q:?}");
    println!("hierarchical:    {}", is_hierarchical(&q));
    println!("q-hierarchical:  {}", is_q_hierarchical(&q));

    // 2. Build the factorized engine (F-IVM-style view tree).
    let mut engine =
        EagerFactEngine::<i64>::new(q, &Database::new(), lift_one).expect("q-hierarchical");

    // 3. Stream single-tuple inserts and deletes.
    engine.apply(&Update::insert(r, tup![1i64, 10i64])).unwrap();
    engine.apply(&Update::insert(r, tup![1i64, 11i64])).unwrap();
    engine.apply(&Update::insert(s, tup![1i64, 20i64])).unwrap();
    engine.apply(&Update::insert(s, tup![2i64, 21i64])).unwrap();

    println!("\nafter 4 inserts:");
    engine.for_each_output(&mut |t, m| println!("  Q{t:?} ↦ {m}"));

    engine.apply(&Update::delete(r, tup![1i64, 10i64])).unwrap();
    println!("\nafter deleting R(1, 10):");
    engine.for_each_output(&mut |t, m| println!("  Q{t:?} ↦ {m}"));

    // 4. A non-q-hierarchical query is rejected by the factorized engine —
    //    the dichotomy is enforced, not just documented.
    let [a, b] = vars(["qs_A", "qs_B"]);
    let bad = Query::new(
        "qs_bad",
        [a],
        vec![
            Atom::new(sym("qs_R2"), [a, b]),
            Atom::new(sym("qs_S2"), Schema::from([b])),
        ],
    );
    let err = EagerFactEngine::<i64>::new(bad, &Database::new(), lift_one).unwrap_err();
    println!("\nnon-q-hierarchical query rejected: {err}");
}
