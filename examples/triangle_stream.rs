//! Streaming triangle counting over a skewed sliding-window graph —
//! IVMε (Sec 3.3) against the first-order delta baseline (Sec 3.1).
//!
//! Run: `cargo run --release -p ivm-bench --example triangle_stream`

use ivm_ivme::{Rel, TriangleDelta, TriangleIvmEps, TriangleMaintainer};
use ivm_workloads::graphs::EdgeStream;
use std::time::Instant;

fn main() {
    let window = 30_000;
    let stream = EdgeStream::zipf(4_000, 60_000, 0.9, 11).sliding_window(window);
    println!(
        "sliding window of {window} edges over a Zipf(0.9) graph \
         ({} single-tuple updates total)\n",
        stream.len() * 3
    );

    let mut ivme = TriangleIvmEps::new(0.5);
    let mut delta = TriangleDelta::new();

    for (name, eng) in [
        ("ivm-eps(0.5)", &mut ivme as &mut dyn TriangleMaintainer),
        ("first-order delta", &mut delta),
    ] {
        let t0 = Instant::now();
        for &(a, b, m) in &stream {
            // The same edge stream feeds all three relation roles.
            eng.apply(Rel::R, a, b, m);
            eng.apply(Rel::S, a, b, m);
            eng.apply(Rel::T, a, b, m);
        }
        println!(
            "{name:>18}: count={} in {:?} ({:.0} upd/s, work={})",
            eng.count(),
            t0.elapsed(),
            (stream.len() * 3) as f64 / t0.elapsed().as_secs_f64(),
            eng.work(),
        );
    }
    assert_eq!(ivme.count(), delta.count(), "engines must agree");
    println!(
        "\nivm-eps bookkeeping: θ={}, heavy keys={:?}, migrations={}, rebalances={}",
        ivme.threshold(),
        ivme.heavy_counts(),
        ivme.migrations(),
        ivme.rebalances()
    );
}
