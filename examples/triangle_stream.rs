//! Streaming triangle counting over a skewed sliding-window graph —
//! IVMε (Sec 3.3) against the first-order delta baseline (Sec 3.1) and
//! the generic batched delta-dataflow engine (no triangle-specific code).
//!
//! Run: `cargo run --release --example triangle_stream`

use ivm::{Maintainer, Session};
use ivm_data::{sym, tup, vars, Database, Tuple, Update};
use ivm_ivme::{Rel, TriangleDelta, TriangleIvmEps, TriangleMaintainer};
use ivm_query::{Atom, Query};
use ivm_workloads::graphs::EdgeStream;
use std::time::Instant;

fn main() {
    let window = 30_000;
    let stream = EdgeStream::zipf(4_000, 60_000, 0.9, 11).sliding_window(window);
    println!(
        "sliding window of {window} edges over a Zipf(0.9) graph \
         ({} single-tuple updates total)\n",
        stream.len() * 3
    );

    let mut ivme = TriangleIvmEps::new(0.5);
    let mut delta = TriangleDelta::new();

    for (name, eng) in [
        ("ivm-eps(0.5)", &mut ivme as &mut dyn TriangleMaintainer),
        ("first-order delta", &mut delta),
    ] {
        let t0 = Instant::now();
        for &(a, b, m) in &stream {
            // The same edge stream feeds all three relation roles.
            eng.apply(Rel::R, a, b, m);
            eng.apply(Rel::S, a, b, m);
            eng.apply(Rel::T, a, b, m);
        }
        println!(
            "{name:>18}: count={} in {:?} ({:.0} upd/s, work={})",
            eng.count(),
            t0.elapsed(),
            (stream.len() * 3) as f64 / t0.elapsed().as_secs_f64(),
            eng.work(),
        );
    }
    assert_eq!(ivme.count(), delta.count(), "engines must agree");

    // The same cyclic query from its declarative form, through the
    // session front door: the classifier sees a cyclic hypergraph and
    // auto-selects the worst-case-optimal multiway dataflow — slower than
    // the hand-tuned kernels, but with zero triangle-specific code, and
    // batches amortize the gap.
    let [a, b, c] = vars(["ts_A", "ts_B", "ts_C"]);
    let (rn, sn, tn) = (sym("ts_R"), sym("ts_S"), sym("ts_T"));
    let q = Query::new(
        "ts_tri",
        [],
        vec![
            Atom::new(rn, [a, b]),
            Atom::new(sn, [b, c]),
            Atom::new(tn, [c, a]),
        ],
    );
    let mut generic = Session::<i64>::builder(q).build(&Database::new()).unwrap();
    println!(
        "\nsession auto-selected: {} ({})",
        generic.engine_kind(),
        generic.explain().class()
    );
    let batch_size = 1_024;
    let t0 = Instant::now();
    let mut batch: Vec<Update<i64>> = Vec::with_capacity(3 * batch_size);
    for &(x, y, m) in &stream {
        for rel in [rn, sn, tn] {
            batch.push(Update::with_payload(rel, tup![x, y], m));
        }
        if batch.len() >= 3 * batch_size {
            generic.apply_batch(&batch).unwrap();
            batch.clear();
        }
    }
    generic.apply_batch(&batch).unwrap();
    let count = generic.output().get(&Tuple::empty());
    println!(
        "{:>18}: count={count} in {:?} ({:.0} upd/s, batches of {batch_size} edges)",
        "generic dataflow",
        t0.elapsed(),
        (stream.len() * 3) as f64 / t0.elapsed().as_secs_f64(),
    );
    assert_eq!(count, delta.count(), "generic engine must agree");

    println!(
        "\nivm-eps bookkeeping: θ={}, heavy keys={:?}, migrations={}, rebalances={}",
        ivme.threshold(),
        ivme.heavy_counts(),
        ivme.migrations(),
        ivme.rebalances()
    );
}
