//! A live "dashboard" over the Retailer workload (the Fig 4 scenario):
//! a q-hierarchical 5-relation join maintained under inventory insert
//! batches, with periodic full enumeration.
//!
//! Run: `cargo run --release --example retailer_dashboard`

use ivm_core::{EagerFactEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_workloads::RetailerGen;
use std::time::Instant;

fn main() {
    let mut gen = RetailerGen::new(32, 8, 32, 99);
    let db = gen.initial_db(10_000);
    let q = gen.query().clone();
    println!("maintaining: {q:?}\n");

    let t0 = Instant::now();
    let mut engine = EagerFactEngine::<i64>::new(q, &db, lift_one).expect("retailer query");
    println!(
        "preprocessing ({} initial tuples): {:?}",
        db.size(),
        t0.elapsed()
    );

    for round in 1..=5 {
        let batch = gen.inventory_batch(1000);
        let t = Instant::now();
        for upd in &batch {
            engine.apply(upd).unwrap();
        }
        let maintain = t.elapsed();

        let t = Instant::now();
        let mut tuples = 0usize;
        let mut derivations = 0i64;
        engine.for_each_output(&mut |_, m| {
            tuples += 1;
            derivations += m;
        });
        let enumerate = t.elapsed();

        println!(
            "batch {round}: +1000 inventory rows in {maintain:?} \
             ({:.0} upd/s) | output: {tuples} tuples / {derivations} \
             derivations, enumerated in {enumerate:?}",
            1000.0 / maintain.as_secs_f64()
        );
    }
}
