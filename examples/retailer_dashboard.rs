//! A live "dashboard" over the Retailer workload (the Fig 4 scenario):
//! a q-hierarchical 5-relation join maintained under inventory insert
//! batches, with periodic full enumeration.
//!
//! The session classifies the Retailer join (q-hierarchical under the
//! `zip → locn` Σ-reduct, Ex 4.10) and stands up the factorized
//! eager-fact engine on its own; ingestion is the batch-first
//! `apply_batch` everything else in the workspace uses.
//!
//! Run: `cargo run --release --example retailer_dashboard`

use ivm::{EngineKind, Maintainer, Session};
use ivm_workloads::RetailerGen;
use std::time::Instant;

fn main() {
    let mut gen = RetailerGen::new(32, 8, 32, 99);
    let db = gen.initial_db(10_000);
    let q = gen.query().clone();

    let t0 = Instant::now();
    let mut session = Session::<i64>::builder(q)
        .build(&db)
        .expect("retailer query");
    println!("{}\n", session.explain());
    assert_eq!(session.engine_kind(), EngineKind::EagerFact);
    println!(
        "preprocessing ({} initial tuples): {:?}",
        db.size(),
        t0.elapsed()
    );

    for round in 1..=5 {
        let batch = gen.inventory_batch(1000);
        let t = Instant::now();
        session.apply_batch(&batch).unwrap();
        let maintain = t.elapsed();

        let t = Instant::now();
        let mut tuples = 0usize;
        let mut derivations = 0i64;
        session.for_each_output(&mut |_, m| {
            tuples += 1;
            derivations += m;
        });
        let enumerate = t.elapsed();

        println!(
            "batch {round}: +1000 inventory rows in {maintain:?} \
             ({:.0} upd/s) | output: {tuples} tuples / {derivations} \
             derivations, enumerated in {enumerate:?}",
            1000.0 / maintain.as_secs_f64()
        );
    }
}
