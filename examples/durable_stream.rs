//! Surviving a restart: a durable session journals every batch
//! write-ahead, consolidates its history into an atomic snapshot, dies
//! without warning, and comes back *warm* — same view, same plan, same
//! epoch numbering — then finishes the stream as if nothing happened.
//!
//! The life cycle demonstrated here:
//!
//! 1. `SessionBuilder::durable(dir)` — every `apply_batch` appends the
//!    batch to an epoch-tagged journal and fsyncs *before* the engine
//!    sees it, so an acknowledged batch is never lost.
//! 2. `Session::snapshot()` — drains, writes one atomic snapshot (base
//!    relations, maintained view, learned cardinalities, resolved
//!    strategy) and truncates the journal behind it: recovery time is
//!    now bounded by the tail since the snapshot, not total history.
//! 3. the crash — `drop` with no shutdown hook, mid-stream.
//! 4. `SessionBuilder::recover(dir, &db)` — loads the snapshot, rebuilds
//!    the engine warm over its base (no blind build, no first-data
//!    replan), cross-checks the rebuilt view against the recorded one,
//!    replays the journal tail, and keeps journaling where the dead
//!    session stopped. `explain()` carries the `recovered:` audit line.
//!
//! Run: `cargo run --example durable_stream`

use ivm::{Database, Maintainer, Session, Update};
use ivm_data::{sym, tup, vars};
use ivm_query::{Atom, Query};

/// The triangle count over a mutating edge relation.
fn triangle() -> Query {
    let [a, b, c] = vars(["ds_A", "ds_B", "ds_C"]);
    let e = sym("ds_E");
    Query::new(
        "ds_tri",
        [],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    )
}

/// A deterministic mutating edge stream: mostly inserts, periodic
/// deletes, chunked into the batches the session will journal.
fn stream() -> Vec<Vec<Update<i64>>> {
    let e = sym("ds_E");
    (0..8u64)
        .map(|epoch| {
            (0..12u64)
                .map(|i| {
                    let x = (epoch * 5 + i) % 9;
                    let y = (x + 1 + i % 3) % 9;
                    let m = if (epoch + i) % 7 == 0 { -1 } else { 1 };
                    Update::with_payload(e, tup![x, y], m)
                })
                .collect()
        })
        .collect()
}

fn count(session: &mut Session<i64>) -> i64 {
    session.output().iter().map(|(_, m)| *m).sum()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("ivm-durable-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::<i64>::new();
    let batches = stream();

    // ---- life 1: journal, snapshot, die -----------------------------
    let mut session = Session::<i64>::builder(triangle())
        .durable(&dir)
        .build(&db)
        .unwrap();
    println!("life 1: {}", session.describe());
    for (i, batch) in batches[..5].iter().enumerate() {
        session.apply_batch(batch).unwrap();
        println!(
            "  epoch {:?}: {} updates journaled, triangle count {}",
            session.journal_epoch().unwrap(),
            batch.len(),
            count(&mut session),
        );
        if i == 2 {
            let epoch = session.snapshot().unwrap();
            println!("  snapshot consolidated through epoch {epoch}; journal truncated");
        }
    }
    let count_at_death = count(&mut session);
    let plan_at_death = session.describe();
    println!("  ── killed (no shutdown hook) with count {count_at_death} ──");
    drop(session);

    // ---- life 2: recover warm, finish the stream --------------------
    let mut session = Session::<i64>::builder(triangle())
        .recover(&dir, &db)
        .unwrap();
    println!("\nlife 2: {}", session.describe());
    println!("{}", session.explain());
    assert_eq!(
        session.describe(),
        plan_at_death,
        "same plan, not a rebuild"
    );
    assert_eq!(
        count(&mut session),
        count_at_death,
        "nothing acknowledged was lost"
    );
    assert_eq!(
        session.journal_epoch(),
        Some(5),
        "epochs continue, not restart"
    );

    for batch in &batches[5..] {
        session.apply_batch(batch).unwrap();
        println!(
            "  epoch {:?}: {} updates journaled, triangle count {}",
            session.journal_epoch().unwrap(),
            batch.len(),
            count(&mut session),
        );
    }

    // The never-killed reference agrees with the survivor.
    let mut reference = Session::<i64>::builder(triangle()).build(&db).unwrap();
    for batch in &batches {
        reference.apply_batch(batch).unwrap();
    }
    assert_eq!(count(&mut session), count(&mut reference));
    println!(
        "\nfinal triangle count {} — identical to a session that never died",
        count(&mut session)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
