//! Umbrella crate: re-exports the whole IVM system under one name.
//!
//! The workspace reproduces *Recent Increments in Incremental View
//! Maintenance* (PODS 2024) as a set of layered crates; this crate exists
//! so downstream users (and the integration tests and examples in this
//! package) can depend on a single `ivm` crate:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | payloads | [`ring`] | semirings/rings: `Z`, reals, Boolean, tropical, covariance |
//! | storage | [`data`] | relations, tuples, schemas, grouped indexes, updates |
//! | language | [`query`] | query AST + the dichotomy analyses (q-hierarchical, CQAP, FDs) |
//! | telemetry | [`obs`] | lock-free metrics registry, histograms, tracer, Prometheus/JSON export |
//! | engines | [`core`] | per-class maintenance engines (view trees, cascades, CQAPs) |
//! | runtime | [`dataflow`] | generic batched delta-dataflow engine for arbitrary CQs |
//! | sublinear | [`hl`] | heavy-light partitioned IVMε engine for triangle-class queries |
//! | scale-out | [`shard`] | hash-partitioned parallel shards with async batch ingestion |
//! | durability | [`store`] | epoch-tagged update journal, consolidated snapshots, warm recovery |
//! | front door | [`session`] | classify → select → one uniform [`Session`] handle |
//! | serving | [`serve`] | one ingest stream fanned out to many live views ([`ServeNode`]) |
//! | kernels | [`ivme`], [`oumv`] | specialized triangle/q-hierarchical kernels, lower bounds |
//! | workloads | [`workloads`] | retailer, graph, PK-FK, Zipf generators |
//!
//! Most callers only need the front door:
//!
//! ```
//! use ivm::{Maintainer, Session};
//!
//! let q = ivm::query::examples::triangle_count();   // cyclic
//! let mut s = Session::<i64>::builder(q).build(&ivm::Database::new()).unwrap();
//! println!("{}", s.explain()); // → worst-case-optimal multiway dataflow
//! ```

pub use ivm_core as core;
pub use ivm_data as data;
pub use ivm_dataflow as dataflow;
pub use ivm_hl as hl;
pub use ivm_ivme as ivme;
pub use ivm_obs as obs;
pub use ivm_oumv as oumv;
pub use ivm_query as query;
pub use ivm_ring as ring;
pub use ivm_serve as serve;
pub use ivm_session as session;
pub use ivm_shard as shard;
pub use ivm_store as store;
pub use ivm_workloads as workloads;

pub use ivm_core::Maintainer;
pub use ivm_data::{Batch, Database, Relation, Tuple, Update, Value};
pub use ivm_dataflow::{DataflowEngine, DeltaBatch, StoreHub};
pub use ivm_hl::HeavyLightEngine;
pub use ivm_obs::{
    EpochWaterfall, FlightRecorder, MetricsRegistry, MetricsServer, MetricsSnapshot,
};
pub use ivm_query::{Atom, Query};
pub use ivm_ring::{Ring, Semiring};
pub use ivm_serve::{ServeNode, Subscription, ViewDelta};
pub use ivm_session::{
    EngineKind, Explain, QueryClass, ReplanEvent, ReplanPolicy, ReplanTrigger, Session,
    SessionBuilder,
};
pub use ivm_shard::ShardedEngine;
pub use ivm_store::{SnapshotDoc, Store};
