//! CRC-32 (IEEE 802.3 polynomial), table-driven, dependency-free.

/// The reflected-polynomial lookup table, built once at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"the journal record payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 0x40;
            assert_ne!(crc32(&flipped), base, "flip at {i} must change the crc");
        }
    }
}
