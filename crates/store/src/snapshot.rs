//! Consolidated snapshots: one atomic file holding everything a session
//! needs to restart warm.
//!
//! A snapshot captures four things: the base [`Database`] (replay
//! source), the maintained view contents (so recovery can cross-check
//! the rebuilt view), the learned per-relation cardinalities, and the
//! resolved plan strategy — the last two are what let a recovered
//! session skip the blind-build phase: its plan is lowered from the
//! pre-kill statistics, so no first-data replan ever fires.
//!
//! File layout: `[8-byte magic][u64 payload length][u32 crc][payload]`,
//! written to a temp file, fsynced, then renamed over `snapshot.ivm` —
//! a crash mid-write leaves the previous snapshot untouched, so the
//! newest *valid* snapshot is always the one the file holds.

use crate::crc::crc32;
use crate::StoreError;
use ivm_data::codec::Persist;
use ivm_data::{Database, Relation, Sym, Value};
use ivm_ring::Semiring;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// First bytes of every snapshot file. The trailing digit is the format
/// version: bumped to 2 when the per-key degree sketch joined the
/// payload, so a snapshot written by an older build is refused as
/// unreadable instead of silently misdecoded.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"IVMSNAP2";

/// The snapshot file's name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.ivm";

/// Everything a consolidated snapshot persists.
pub struct SnapshotDoc<R: Semiring> {
    /// The last journal epoch this snapshot consolidates: recovery skips
    /// journal records at or below it (they are already baked in).
    pub epoch: u64,
    /// The session query's name — a cheap fingerprint so recovery refuses
    /// to warm-start a *different* query from this state.
    pub query_name: String,
    /// The resolved plan strategy ([`JoinStrategy::tag`]-encoded by the
    /// session layer; 0 when the backend has no strategy to persist).
    ///
    /// [`JoinStrategy::tag`]: https://docs.rs/ivm-dataflow
    pub strategy_tag: u8,
    /// The learned per-relation cardinalities at snapshot time.
    pub cards: Vec<(Sym, u64)>,
    /// The per-key first-column degree sketch of every binary relation,
    /// `(relation, [(key, degree)])` sorted by relation and key — the
    /// skew evidence behind cross-family engine selection. Recovery
    /// cross-checks it against the sketch rebuilt from `base` and warms
    /// the recovered session's learned statistics from the same base, so
    /// no family re-selection fires on replay.
    pub degrees: Vec<(Sym, Vec<(Value, u64)>)>,
    /// The full base database — the replay source for the journal tail.
    pub base: Database<R>,
    /// The maintained view at `epoch`, for recovery cross-checking.
    pub view: Relation<R>,
}

impl<R: Semiring + Persist> Persist for SnapshotDoc<R> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.epoch.encode(out);
        self.query_name.encode(out);
        (self.strategy_tag as u32).encode(out);
        self.cards.encode(out);
        self.degrees.encode(out);
        self.base.encode(out);
        self.view.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(SnapshotDoc {
            epoch: u64::decode(buf)?,
            query_name: String::decode(buf)?,
            strategy_tag: u8::try_from(u32::decode(buf)?).ok()?,
            cards: Vec::decode(buf)?,
            degrees: Vec::decode(buf)?,
            base: Database::decode(buf)?,
            view: Relation::decode(buf)?,
        })
    }
}

/// Write `doc` atomically into `dir` (temp file + rename). Returns the
/// snapshot file's size in bytes.
pub fn write_snapshot<R: Semiring + Persist>(
    dir: &Path,
    doc: &SnapshotDoc<R>,
) -> Result<u64, StoreError> {
    let mut payload = Vec::new();
    doc.encode(&mut payload);
    let mut bytes = Vec::with_capacity(payload.len() + 20);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    (payload.len() as u64).encode(&mut bytes);
    crc32(&payload).encode(&mut bytes);
    bytes.extend_from_slice(&payload);

    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let final_path = dir.join(SNAPSHOT_FILE);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, &final_path)?;
    // Make the rename itself durable where the platform allows it;
    // best-effort because directory fsync is not universally supported.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_data();
    }
    Ok(bytes.len() as u64)
}

/// Read the snapshot in `dir`. `Ok(None)` when no snapshot was ever
/// written; `Err(Corrupt)` when the file exists but fails its magic,
/// CRC, or decode — recovery treats that as a hard failure (the journal
/// behind a snapshot was truncated, so there is nothing to fall back on).
pub fn read_snapshot<R: Semiring + Persist>(
    dir: &Path,
) -> Result<Option<SnapshotDoc<R>>, StoreError> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let corrupt = |m: &str| StoreError::Corrupt(format!("{}: {m}", path.display()));
    if bytes.len() < 20 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("missing snapshot magic"));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    let payload = bytes
        .get(20..20 + len)
        .ok_or_else(|| corrupt("payload length runs past the file"))?;
    if crc32(payload) != crc {
        return Err(corrupt("payload crc mismatch"));
    }
    let mut buf = payload;
    let doc = SnapshotDoc::decode(&mut buf)
        .filter(|_| buf.is_empty())
        .ok_or_else(|| corrupt("undecodable snapshot payload"))?;
    Ok(Some(doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{sym, tup, vars, Schema, Update};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ivm-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn doc() -> SnapshotDoc<i64> {
        let e = sym("snap_E");
        let mut base: Database<i64> = Database::new();
        base.create(e, Schema::new(vars(["snap_a", "snap_b"]).to_vec()));
        base.apply(&Update::insert(e, tup![1i64, 2i64]));
        base.apply(&Update::insert(e, tup![2i64, 1i64]));
        let mut view = Relation::new(Schema::new([]));
        view.apply(Tuple::empty(), &2i64);
        SnapshotDoc {
            epoch: 42,
            query_name: "snap_q".into(),
            strategy_tag: 2,
            cards: vec![(e, 2)],
            degrees: vec![(e, vec![(1i64.into(), 1), (2i64.into(), 1)])],
            base,
            view,
        }
    }
    use ivm_data::{Relation, Tuple};

    #[test]
    fn snapshot_round_trips() {
        let dir = tmp("roundtrip");
        let bytes = write_snapshot(&dir, &doc()).unwrap();
        assert!(bytes > 20);
        let back = read_snapshot::<i64>(&dir).unwrap().expect("written");
        assert_eq!(back.epoch, 42);
        assert_eq!(back.query_name, "snap_q");
        assert_eq!(back.strategy_tag, 2);
        assert_eq!(back.cards, vec![(sym("snap_E"), 2)]);
        assert_eq!(
            back.degrees,
            vec![(sym("snap_E"), vec![(1i64.into(), 1), (2i64.into(), 1)])]
        );
        assert_eq!(back.base.size(), 2);
        assert_eq!(back.view.get(&Tuple::empty()), 2);
    }

    #[test]
    fn missing_snapshot_is_none_and_corruption_is_an_error() {
        let dir = tmp("corrupt");
        assert!(read_snapshot::<i64>(&dir).unwrap().is_none());
        write_snapshot(&dir, &doc()).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot::<i64>(&dir),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmp("rewrite");
        write_snapshot(&dir, &doc()).unwrap();
        let mut d2 = doc();
        d2.epoch = 43;
        write_snapshot(&dir, &d2).unwrap();
        let back = read_snapshot::<i64>(&dir).unwrap().unwrap();
        assert_eq!(back.epoch, 43);
        assert!(!dir.join(format!("{SNAPSHOT_FILE}.tmp")).exists());
    }
}
