//! The [`Store`]: one directory holding a journal and a snapshot, with
//! the `ivm.store.*` metric namespace and the recovery entry point.

use crate::journal::{Journal, Replay};
use crate::snapshot::{read_snapshot, write_snapshot, SnapshotDoc};
use crate::StoreError;
use ivm_data::codec::Persist;
use ivm_data::Update;
use ivm_obs::{Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, Namespace};
use ivm_ring::Semiring;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The journal file's name inside a store directory.
pub const JOURNAL_FILE: &str = "journal.ivm";

/// `ivm.store.*` metric handles, attached via [`Store::observe`].
struct StoreObs {
    append_ns: Histogram,
    fsync_ns: Histogram,
    journal_bytes: Gauge,
    snapshot_bytes: Gauge,
    records: Counter,
    commits: Counter,
    snapshots: Counter,
}

/// A durable store: the write half of one session's persistence.
///
/// Owns the journal (append/commit) and the snapshot file. Obtain one
/// fresh with [`Store::create`] (starts a new history) or back from disk
/// with [`Store::recover`].
pub struct Store {
    dir: PathBuf,
    journal: Journal,
    obs: Option<StoreObs>,
}

/// What [`Store::recover`] found on disk.
pub struct Recovered<R: Semiring> {
    /// The store, reopened for appending — torn journal tails already
    /// discarded, so the next commit resumes at the last valid record.
    pub store: Store,
    /// The newest valid snapshot, if one was ever written.
    pub snapshot: Option<SnapshotDoc<R>>,
    /// Journal records *beyond* the snapshot's epoch, in append order —
    /// the tail to replay through the ordinary batch path. Records the
    /// snapshot already consolidated (a crash can land between snapshot
    /// write and journal truncation) are filtered out here.
    pub tail: Vec<(u64, Vec<Update<R>>)>,
    /// Why journal replay stopped early, if it did.
    pub torn: Option<String>,
}

impl<R: Semiring> Recovered<R> {
    /// Updates across the whole replay tail.
    pub fn tail_updates(&self) -> usize {
        self.tail.iter().map(|(_, b)| b.len()).sum()
    }

    /// The snapshot's consolidated epoch (0 when no snapshot exists).
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot.as_ref().map_or(0, |s| s.epoch)
    }
}

impl Store {
    /// Start a **new** durable history in `dir`: the directory is
    /// created, the journal truncated, and any previous snapshot
    /// removed. Use [`Store::recover`] to resume an existing history.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let snap = dir.join(crate::snapshot::SNAPSHOT_FILE);
        if snap.exists() {
            std::fs::remove_file(&snap)?;
        }
        let journal = Journal::create(dir.join(JOURNAL_FILE))?;
        Ok(Store {
            dir,
            journal,
            obs: None,
        })
    }

    /// Reopen the history in `dir`: load the newest valid snapshot, read
    /// the journal tail up to the first torn/corrupt record, and position
    /// the journal to append after the valid prefix.
    ///
    /// A corrupt *snapshot* is a hard error (the journal behind it was
    /// truncated, so nothing can rebuild that state); a torn journal
    /// *tail* is expected crash debris and merely ends the tail.
    pub fn recover<R: Semiring + Persist>(
        dir: impl Into<PathBuf>,
    ) -> Result<Recovered<R>, StoreError> {
        let dir = dir.into();
        if !dir.is_dir() {
            return Err(StoreError::Io(format!(
                "no durable store at {}",
                dir.display()
            )));
        }
        let snapshot = read_snapshot::<R>(&dir)?;
        let journal_path = dir.join(JOURNAL_FILE);
        let Replay {
            records,
            valid_bytes,
            torn,
        } = Journal::replay::<R>(&journal_path)?;
        let journal = if valid_bytes == 0 {
            // No journal file at all (the store crashed before its first
            // commit, or predates journaling): start one.
            Journal::create(&journal_path)?
        } else {
            Journal::open_at(&journal_path, valid_bytes)?
        };
        let snap_epoch = snapshot.as_ref().map_or(0, |s: &SnapshotDoc<R>| s.epoch);
        let tail: Vec<(u64, Vec<Update<R>>)> = records
            .into_iter()
            .filter(|(epoch, _)| *epoch > snap_epoch)
            .collect();
        Ok(Recovered {
            store: Store {
                dir,
                journal,
                obs: None,
            },
            snapshot,
            tail,
            torn,
        })
    }

    /// Publish `ivm.store.*` series into `registry`: `append_ns` /
    /// `fsync_ns` latency histograms, `journal_bytes` / `snapshot_bytes`
    /// gauges, and the `records` / `commits` / `snapshots` counters.
    /// Gauges snap to the current on-disk truth immediately.
    pub fn observe(&mut self, registry: &MetricsRegistry) {
        let ns = Namespace::new("ivm").child("store");
        let obs = StoreObs {
            append_ns: ns.histogram(registry, "append_ns"),
            fsync_ns: ns.histogram(registry, "fsync_ns"),
            journal_bytes: ns.gauge(registry, "journal_bytes"),
            snapshot_bytes: ns.gauge(registry, "snapshot_bytes"),
            records: ns.counter(registry, "records"),
            commits: ns.counter(registry, "commits"),
            snapshots: ns.counter(registry, "snapshots"),
        };
        obs.journal_bytes.set(self.journal.committed_bytes() as i64);
        let snap = self.dir.join(crate::snapshot::SNAPSHOT_FILE);
        let snap_bytes = std::fs::metadata(&snap).map(|m| m.len()).unwrap_or(0);
        obs.snapshot_bytes.set(snap_bytes as i64);
        self.obs = Some(obs);
    }

    /// Buffer one epoch's batch into the journal (group commit: durable
    /// only after the next [`Store::commit`]).
    pub fn append<R: Semiring + Persist>(&mut self, epoch: u64, batch: &[Update<R>]) {
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        self.journal.append(epoch, batch);
        if let (Some(o), Some(t0)) = (&self.obs, t0) {
            o.append_ns.record_duration(t0.elapsed());
            o.records.inc();
        }
    }

    /// Flush every buffered record with one `fsync`.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        let wrote = self.journal.commit()?;
        if let (Some(o), Some(t0)) = (&self.obs, t0) {
            if wrote > 0 {
                o.fsync_ns.record_duration(t0.elapsed());
                o.commits.inc();
                o.journal_bytes.set(self.journal.committed_bytes() as i64);
            }
        }
        Ok(())
    }

    /// Write `doc` atomically and truncate the journal behind it: every
    /// record the snapshot consolidated is dropped, so journal length —
    /// and with it recovery time — tracks the tail since the last
    /// snapshot, not total history. Buffered appends are committed first
    /// (they belong to epochs the snapshot covers).
    pub fn snapshot<R: Semiring + Persist>(
        &mut self,
        doc: &SnapshotDoc<R>,
    ) -> Result<u64, StoreError> {
        self.commit()?;
        let bytes = write_snapshot(&self.dir, doc)?;
        self.journal.truncate()?;
        if let Some(o) = &self.obs {
            o.snapshots.inc();
            o.snapshot_bytes.set(bytes as i64);
            o.journal_bytes.set(self.journal.committed_bytes() as i64);
        }
        Ok(bytes)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durable journal size in bytes.
    pub fn journal_bytes(&self) -> u64 {
        self.journal.committed_bytes()
    }

    /// Records buffered but not yet committed.
    pub fn pending_records(&self) -> usize {
        self.journal.pending_records()
    }
}

/// Best-effort post-mortem for a failed recovery: bump the
/// `ivm.store.recovery_failures` counter and write a flight-recorder
/// dump (the same JSON post-mortems eviction and shard failures emit),
/// so the evidence survives the process that could not start. Returns
/// the dump path when one was written.
pub fn record_recovery_failure(
    registry: &MetricsRegistry,
    detail: &str,
) -> Option<std::path::PathBuf> {
    registry.counter("ivm.store.recovery_failures").inc();
    FlightRecorder::new(registry).dump("store-recovery-failure", detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{sym, tup, vars, Database, Relation, Schema};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ivm-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn upd(i: i64) -> Update<i64> {
        Update::insert(sym("st_E"), tup![i, i + 1])
    }

    #[test]
    fn create_append_snapshot_recover() {
        let dir = tmp("lifecycle");
        let mut store = Store::create(&dir).unwrap();
        let registry = MetricsRegistry::new();
        store.observe(&registry);
        for e in 1..=3u64 {
            store.append(e, &[upd(e as i64)]);
        }
        store.commit().unwrap();

        // Snapshot consolidates epochs 1..=3; journal resets.
        let e = sym("st_E");
        let mut base: Database<i64> = Database::new();
        base.create(e, Schema::new(vars(["st_a", "st_b"]).to_vec()));
        for i in 1..=3i64 {
            base.apply(&upd(i));
        }
        let doc = SnapshotDoc {
            epoch: 3,
            query_name: "st_q".into(),
            strategy_tag: 1,
            cards: vec![(e, 3)],
            degrees: Vec::new(),
            base,
            view: Relation::new(Schema::new([])),
        };
        store.snapshot(&doc).unwrap();
        // Two epochs after the snapshot.
        store.append(4u64, &[upd(4)]);
        store.append(5u64, &[upd(5)]);
        store.commit().unwrap();
        let m = registry.snapshot();
        assert_eq!(m.counter("ivm.store.records"), 5);
        assert_eq!(m.counter("ivm.store.snapshots"), 1);
        assert!(m.gauge("ivm.store.snapshot_bytes") > 0);
        drop(store);

        let rec = Store::recover::<i64>(&dir).unwrap();
        let snap = rec.snapshot.as_ref().expect("snapshot written");
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.base.size(), 3);
        assert_eq!(rec.tail.len(), 2, "only the post-snapshot epochs");
        assert_eq!(rec.tail[0].0, 4);
        assert_eq!(rec.tail_updates(), 2);
        assert!(rec.torn.is_none());
    }

    #[test]
    fn recover_filters_epochs_the_snapshot_already_holds() {
        // A crash between snapshot write and journal truncation leaves
        // consolidated records in the journal: recovery must skip them.
        let dir = tmp("filter");
        let mut store = Store::create(&dir).unwrap();
        for e in 1..=4u64 {
            store.append(e, &[upd(e as i64)]);
        }
        store.commit().unwrap();
        let doc = SnapshotDoc::<i64> {
            epoch: 3,
            query_name: "st_q".into(),
            strategy_tag: 0,
            cards: Vec::new(),
            degrees: Vec::new(),
            base: Database::new(),
            view: Relation::new(Schema::new([])),
        };
        // Write the snapshot file directly — without truncating.
        write_snapshot(store.dir(), &doc).unwrap();
        drop(store);
        let rec = Store::recover::<i64>(&dir).unwrap();
        assert_eq!(rec.snapshot_epoch(), 3);
        assert_eq!(rec.tail.len(), 1, "epochs 1..=3 are consolidated");
        assert_eq!(rec.tail[0].0, 4);
    }

    #[test]
    fn recover_missing_dir_errors() {
        let dir = tmp("missing");
        assert!(matches!(
            Store::recover::<i64>(&dir),
            Err(StoreError::Io(_))
        ));
    }

    #[test]
    fn recovery_failure_postmortem_writes_a_dump() {
        let registry = MetricsRegistry::new();
        let dump = record_recovery_failure(&registry, "unit-test detail");
        assert_eq!(
            registry.snapshot().counter("ivm.store.recovery_failures"),
            1
        );
        if let Some(path) = dump {
            let body = std::fs::read_to_string(&path).unwrap();
            assert!(body.contains("store-recovery-failure"), "{body}");
            let _ = std::fs::remove_file(path);
        }
    }
}
