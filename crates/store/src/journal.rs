//! The append-only, epoch-tagged update journal.
//!
//! File layout: an 8-byte magic header, then records back to back. Each
//! record is
//!
//! ```text
//! [u32 payload length][u32 crc32(payload)][payload]
//! payload = u64 epoch ++ Vec<Update<R>> (ivm_data::codec encoding)
//! ```
//!
//! Appends buffer in memory; [`Journal::commit`] writes every buffered
//! record and issues **one** `fsync` for all of them — group commit. A
//! crash loses at most the uncommitted buffer (both the journal and the
//! downstream view miss those epochs consistently); it can also tear the
//! last committed record mid-write, which is why [`Journal::replay`]
//! stops at the first record whose length prefix runs past the file or
//! whose CRC disagrees, reporting the valid prefix length so the writer
//! can resume exactly there.

use crate::crc::crc32;
use crate::StoreError;
use ivm_data::codec::Persist;
use ivm_data::Update;
use ivm_ring::Semiring;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// First bytes of every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"IVMJRNL1";

/// The write half: an open journal file plus the group-commit buffer.
pub struct Journal {
    path: PathBuf,
    file: File,
    /// Encoded records appended since the last commit.
    pending: Vec<u8>,
    pending_records: usize,
    /// Durable file length (header + committed records).
    committed_bytes: u64,
}

/// What [`Journal::replay`] read back: every decodable record in order,
/// and where the valid prefix ends.
pub struct Replay<R> {
    /// `(epoch, batch)` per record, in append order.
    pub records: Vec<(u64, Vec<Update<R>>)>,
    /// File offset one past the last valid record — the resume point for
    /// [`Journal::open_at`] (equals the file length when nothing tore).
    pub valid_bytes: u64,
    /// Why replay stopped early, if it did (torn length prefix, CRC
    /// mismatch, undecodable payload). `None` for a clean tail.
    pub torn: Option<String>,
}

impl<R> Replay<R> {
    /// Updates across all replayed records.
    pub fn update_count(&self) -> usize {
        self.records.iter().map(|(_, b)| b.len()).sum()
    }
}

impl Journal {
    /// Create (or truncate to empty) the journal at `path` and write the
    /// header. This starts a **new** durable history.
    pub fn create(path: impl Into<PathBuf>) -> Result<Journal, StoreError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(JOURNAL_MAGIC)?;
        file.sync_data()?;
        Ok(Journal {
            path,
            file,
            pending: Vec::new(),
            pending_records: 0,
            committed_bytes: JOURNAL_MAGIC.len() as u64,
        })
    }

    /// Open an existing journal for appending, discarding everything past
    /// `valid_bytes` (the torn tail [`Journal::replay`] reported). The
    /// next committed record lands exactly after the last valid one.
    pub fn open_at(path: impl Into<PathBuf>, valid_bytes: u64) -> Result<Journal, StoreError> {
        let path = path.into();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let valid = valid_bytes.max(JOURNAL_MAGIC.len() as u64);
        file.set_len(valid)?;
        let mut journal = Journal {
            path,
            file,
            pending: Vec::new(),
            pending_records: 0,
            committed_bytes: valid,
        };
        journal.file.seek(SeekFrom::Start(valid))?;
        Ok(journal)
    }

    /// Buffer one epoch's batch. Nothing touches the disk until
    /// [`Journal::commit`]; many epochs may share one commit.
    pub fn append<R: Semiring + Persist>(&mut self, epoch: u64, batch: &[Update<R>]) {
        let mut payload = Vec::with_capacity(16 + batch.len() * 16);
        epoch.encode(&mut payload);
        (batch.len() as u32).encode(&mut payload);
        for u in batch {
            u.encode(&mut payload);
        }
        (payload.len() as u32).encode(&mut self.pending);
        crc32(&payload).encode(&mut self.pending);
        self.pending.extend_from_slice(&payload);
        self.pending_records += 1;
    }

    /// Write every buffered record and make them durable with a single
    /// `fsync`. Returns the number of bytes written (0 when nothing was
    /// pending — no fsync is issued for an empty buffer).
    pub fn commit(&mut self) -> Result<usize, StoreError> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let bytes = self.pending.len();
        self.file.write_all(&self.pending)?;
        self.file.sync_data()?;
        self.committed_bytes += bytes as u64;
        self.pending.clear();
        self.pending_records = 0;
        Ok(bytes)
    }

    /// Drop every committed record (keeping the header) — called after a
    /// snapshot consolidated them. Uncommitted appends survive: they
    /// describe epochs *after* the snapshot.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        let header = JOURNAL_MAGIC.len() as u64;
        self.file.set_len(header)?;
        self.file.seek(SeekFrom::Start(header))?;
        self.file.sync_data()?;
        self.committed_bytes = header;
        Ok(())
    }

    /// Durable journal size in bytes (header included).
    pub fn committed_bytes(&self) -> u64 {
        self.committed_bytes
    }

    /// Records buffered but not yet committed.
    pub fn pending_records(&self) -> usize {
        self.pending_records
    }

    /// The file this journal writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every valid record back from `path`, stopping cleanly at the
    /// first torn or corrupt one. A missing file replays as empty (a
    /// store that never committed). A present file with a wrong header is
    /// an error — that is not a journal.
    pub fn replay<R: Semiring + Persist>(path: &Path) -> Result<Replay<R>, StoreError> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Replay {
                    records: Vec::new(),
                    valid_bytes: 0,
                    torn: None,
                })
            }
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < JOURNAL_MAGIC.len() || &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "{} does not start with the journal magic",
                path.display()
            )));
        }
        let mut records = Vec::new();
        let mut offset = JOURNAL_MAGIC.len();
        let mut torn = None;
        while offset < bytes.len() {
            let rest = &bytes[offset..];
            if rest.len() < 8 {
                torn = Some(format!("torn record header at offset {offset}"));
                break;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
            if rest.len() < 8 + len {
                torn = Some(format!(
                    "torn record at offset {offset}: length {len} runs past the file"
                ));
                break;
            }
            let payload = &rest[8..8 + len];
            if crc32(payload) != crc {
                torn = Some(format!("crc mismatch at offset {offset}"));
                break;
            }
            let mut buf = payload;
            let decoded = (|| {
                let epoch = u64::decode(&mut buf)?;
                let n = u32::decode(&mut buf)? as usize;
                if n > buf.len() {
                    return None;
                }
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    batch.push(Update::<R>::decode(&mut buf)?);
                }
                buf.is_empty().then_some((epoch, batch))
            })();
            match decoded {
                Some(rec) => records.push(rec),
                None => {
                    // The CRC held but the payload is not ours (e.g. a
                    // future codec version): same clean stop as a tear.
                    torn = Some(format!("undecodable record payload at offset {offset}"));
                    break;
                }
            }
            offset += 8 + len;
        }
        Ok(Replay {
            records,
            valid_bytes: offset as u64,
            torn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{sym, tup};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ivm-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.ivm")
    }

    fn batch(i: i64) -> Vec<Update<i64>> {
        vec![
            Update::insert(sym("jt_R"), tup![i, i + 1]),
            Update::with_payload(sym("jt_R"), tup![i, i], -1),
        ]
    }

    #[test]
    fn append_commit_replay_round_trips() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path).unwrap();
        for e in 0..5u64 {
            j.append(e, &batch(e as i64));
        }
        assert_eq!(j.pending_records(), 5);
        let written = j.commit().unwrap();
        assert!(written > 0);
        assert_eq!(j.pending_records(), 0);

        let replay = Journal::replay::<i64>(&path).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.valid_bytes, j.committed_bytes());
        for (e, (epoch, b)) in replay.records.iter().enumerate() {
            assert_eq!(*epoch, e as u64);
            assert_eq!(b, &batch(e as i64));
        }
    }

    #[test]
    fn uncommitted_appends_are_not_durable() {
        let path = tmp("uncommitted");
        let mut j = Journal::create(&path).unwrap();
        j.append(0, &batch(0));
        j.commit().unwrap();
        j.append(1, &batch(1)); // never committed
        let replay = Journal::replay::<i64>(&path).unwrap();
        assert_eq!(replay.records.len(), 1, "only the committed epoch");
        assert!(replay.torn.is_none());
    }

    #[test]
    fn truncate_resets_to_header_and_appends_resume() {
        let path = tmp("truncate");
        let mut j = Journal::create(&path).unwrap();
        j.append(0, &batch(0));
        j.commit().unwrap();
        j.truncate().unwrap();
        assert_eq!(j.committed_bytes(), JOURNAL_MAGIC.len() as u64);
        j.append(7, &batch(7));
        j.commit().unwrap();
        let replay = Journal::replay::<i64>(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].0, 7);
    }

    #[test]
    fn open_at_discards_the_torn_tail() {
        let path = tmp("openat");
        let mut j = Journal::create(&path).unwrap();
        j.append(0, &batch(0));
        j.commit().unwrap();
        let valid = j.committed_bytes();
        drop(j);
        // Simulate a tear: garbage after the valid prefix.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 5]).unwrap();
        drop(f);
        let replay = Journal::replay::<i64>(&path).unwrap();
        assert_eq!(replay.valid_bytes, valid);
        assert!(replay.torn.is_some());
        let mut j = Journal::open_at(&path, replay.valid_bytes).unwrap();
        j.append(1, &batch(1));
        j.commit().unwrap();
        let replay = Journal::replay::<i64>(&path).unwrap();
        assert!(replay.torn.is_none(), "{:?}", replay.torn);
        assert_eq!(replay.records.len(), 2);
    }

    #[test]
    fn missing_file_replays_empty_but_bad_magic_errors() {
        let path = tmp("magic");
        let missing = path.with_file_name("nope.ivm");
        let replay = Journal::replay::<i64>(&missing).unwrap();
        assert!(replay.records.is_empty() && replay.torn.is_none());
        std::fs::write(&path, b"NOTMAGIC....").unwrap();
        assert!(matches!(
            Journal::replay::<i64>(&path),
            Err(StoreError::Corrupt(_))
        ));
    }
}
