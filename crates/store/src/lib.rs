//! Durable sessions: an update journal, consolidated snapshots, and warm
//! recovery.
//!
//! The paper's preprocessing/update-time dichotomy makes preprocessing
//! the expensive phase IVM exists to amortize — so a maintained view that
//! evaporates on restart forfeits exactly the investment the update-time
//! guarantees protect. This crate persists a session's history so a
//! restarted process resumes *warm*:
//!
//! * [`Journal`] — an append-only, epoch-tagged log of update batches.
//!   Each record is length-prefixed and CRC-checked; appends buffer in
//!   memory and one `fsync` per [`Journal::commit`] covers every epoch
//!   appended since the last (group commit). The binary codec is
//!   [`ivm_data::codec`] — dependency-free, symbols travel by name.
//! * [`SnapshotDoc`] — a consolidated snapshot: the base [`Database`],
//!   the maintained view contents, the learned cardinalities, and the
//!   resolved plan strategy, written atomically (temp file + rename) by
//!   [`Store::snapshot`], which truncates the journal behind it.
//! * [`Store::recover`] — loads the newest valid snapshot and returns
//!   the journal tail beyond it, stopping cleanly at the first torn or
//!   corrupt record. Recovery is *replay*: the tail feeds back through
//!   the ordinary `Maintainer::apply_batch` path (the session layer
//!   does this), mirroring the delta-replay framing of collection-
//!   programming IVM — a restart is just another update stream.
//!
//! The session layer (`ivm-session`) wires this behind
//! `SessionBuilder::durable` / `Session::snapshot` /
//! `SessionBuilder::recover`; the `ivm.store.*` metric namespace
//! ([`Store::observe`]) publishes append/fsync latency histograms,
//! journal/snapshot size gauges, and recovery counters.
//!
//! [`Database`]: ivm_data::Database

mod crc;
pub mod journal;
pub mod snapshot;
pub mod store;

pub use crc::crc32;
pub use journal::{Journal, Replay, JOURNAL_MAGIC};
pub use snapshot::{SnapshotDoc, SNAPSHOT_MAGIC};
pub use store::{record_recovery_failure, Recovered, Store};

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The filesystem said no (stringified `io::Error` — the original is
    /// neither `Clone` nor `Eq`).
    Io(String),
    /// Bytes on disk that should have been a snapshot or journal header
    /// are not one (bad magic, CRC mismatch on the snapshot, undecodable
    /// document). Torn journal *tails* are not errors — replay stops at
    /// the last valid record instead.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "i/o: {m}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}
