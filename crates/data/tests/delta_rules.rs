//! Property tests for the relational operators: the delta rules of
//! Sec. 3.1 (Eq. 1–3) hold as algebraic identities, join/union laws, and
//! grouped-index consistency.

use ivm_data::ops::{aggregate, join, lift_one, marginalize, union};
use ivm_data::{sym, GroupedIndex, Relation, Schema, Sym, Tuple, Value};
use proptest::prelude::*;

fn schema2(n1: &str, n2: &str) -> Schema {
    Schema::from([sym(n1), sym(n2)])
}

/// A small random relation over two integer columns with payloads in
/// [-3, 3] (deltas include deletes).
fn small_rel(n1: &'static str, n2: &'static str) -> impl Strategy<Value = Relation<i64>> {
    proptest::collection::vec(((0i64..6, 0i64..6), -3i64..4), 0..12).prop_map(move |rows| {
        Relation::from_rows(
            schema2(n1, n2),
            rows.into_iter().map(|((x, y), m)| (Tuple::from([x, y]), m)),
        )
    })
}

fn assert_rel_eq(a: &Relation<i64>, b: &Relation<i64>) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "sizes differ: {:?} vs {:?}", a, b);
    for (t, r) in a.iter() {
        // Align column order if schemas are permutations of each other.
        let t2 = if a.schema() == b.schema() {
            t.clone()
        } else {
            t.project(&a.schema().positions_of(b.schema()))
        };
        prop_assert_eq!(&b.get(&t2), r, "payload differs at {:?}", t);
    }
    Ok(())
}

proptest! {
    /// Eq. (1): δ(V1 ⊎ V2) = δV1 ⊎ δV2 — union is ring-linear.
    #[test]
    fn union_is_linear(
        v1 in small_rel("dr_A", "dr_B"),
        v2 in small_rel("dr_A", "dr_B"),
        d1 in small_rel("dr_A", "dr_B"),
        d2 in small_rel("dr_A", "dr_B"),
    ) {
        let lhs = union(&union(&v1, &d1), &union(&v2, &d2));
        let rhs = union(&union(&v1, &v2), &union(&d1, &d2));
        assert_rel_eq(&lhs, &rhs)?;
    }

    /// Eq. (2): (V1 ⊎ δV1)·(V2 ⊎ δV2) =
    ///          V1·V2 ⊎ δV1·V2 ⊎ V1·δV2 ⊎ δV1·δV2.
    #[test]
    fn join_delta_rule(
        v1 in small_rel("dr_A", "dr_B"),
        v2 in small_rel("dr_B", "dr_C"),
        d1 in small_rel("dr_A", "dr_B"),
        d2 in small_rel("dr_B", "dr_C"),
    ) {
        let lhs = join(&union(&v1, &d1), &union(&v2, &d2));
        let rhs = union(
            &union(&join(&v1, &v2), &join(&d1, &v2)),
            &union(&join(&v1, &d2), &join(&d1, &d2)),
        );
        assert_rel_eq(&lhs, &rhs)?;
    }

    /// Eq. (3): Σ_X (V ⊎ δV) = Σ_X V ⊎ Σ_X δV.
    #[test]
    fn aggregation_delta_rule(
        v in small_rel("dr_A", "dr_B"),
        d in small_rel("dr_A", "dr_B"),
    ) {
        let x = sym("dr_B");
        let lhs = marginalize(&union(&v, &d), x, lift_one);
        let rhs = union(&marginalize(&v, x, lift_one), &marginalize(&d, x, lift_one));
        assert_rel_eq(&lhs, &rhs)?;
    }

    /// Join is commutative up to column order.
    #[test]
    fn join_commutes(
        r in small_rel("dr_A", "dr_B"),
        s in small_rel("dr_B", "dr_C"),
    ) {
        let rs = join(&r, &s);
        let sr = join(&s, &r);
        prop_assert_eq!(rs.len(), sr.len());
        for (t, payload) in rs.iter() {
            let reordered = t.project(&rs.schema().positions_of(sr.schema()));
            prop_assert_eq!(&sr.get(&reordered), payload);
        }
    }

    /// Join is associative.
    #[test]
    fn join_associates(
        r in small_rel("dr_A", "dr_B"),
        s in small_rel("dr_B", "dr_C"),
        t in small_rel("dr_C", "dr_D"),
    ) {
        let left = join(&join(&r, &s), &t);
        let right = join(&r, &join(&s, &t));
        assert_rel_eq(&left, &right)?;
    }

    /// Aggregation order does not matter (Σ_X Σ_Y = Σ_Y Σ_X).
    #[test]
    fn marginalization_commutes(v in small_rel("dr_A", "dr_B")) {
        let (a, b) = (sym("dr_A"), sym("dr_B"));
        let ab = marginalize(&marginalize(&v, a, lift_one), b, lift_one);
        let ba = marginalize(&marginalize(&v, b, lift_one), a, lift_one);
        prop_assert_eq!(ab.get(&Tuple::empty()), ba.get(&Tuple::empty()));
        // And both equal the relation total.
        prop_assert_eq!(ab.get(&Tuple::empty()), v.total());
    }

    /// A grouped index maintained tuple-by-tuple agrees with one built from
    /// the final relation, for any interleaving of inserts and deletes.
    #[test]
    fn grouped_index_consistency(
        ops in proptest::collection::vec(((0i64..5, 0i64..5), -2i64..3), 0..30)
    ) {
        let schema = schema2("dr_gA", "dr_gB");
        let key = Schema::from([sym("dr_gA")]);
        let mut rel: Relation<i64> = Relation::new(schema.clone());
        let mut idx: GroupedIndex<i64> = GroupedIndex::new(schema, key.clone());
        for ((x, y), m) in ops {
            let t = Tuple::from([x, y]);
            rel.apply(t.clone(), &m);
            idx.apply(&t, &m);
        }
        let rebuilt = GroupedIndex::from_relation(&rel, key);
        prop_assert_eq!(idx.group_count(), rebuilt.group_count());
        for (k, g) in rebuilt.iter_groups() {
            let live = idx.group(k).expect("missing group");
            prop_assert_eq!(live.total(), g.total());
            prop_assert_eq!(live.len(), g.len());
            for (res, payload) in g.iter() {
                prop_assert_eq!(&live.get(res), payload);
            }
        }
    }

    /// Aggregation with the identity lifting preserves the grand total.
    #[test]
    fn aggregate_preserves_total(v in small_rel("dr_A", "dr_B")) {
        let agg = aggregate(&v, &Schema::from([sym("dr_A")]), lift_one);
        prop_assert_eq!(agg.total(), v.total());
    }
}

/// Lifting with a value-dependent function also satisfies the delta rule —
/// linearity holds point-wise regardless of `g_X`.
#[test]
fn lifted_aggregation_is_linear() {
    fn lift_val(_: Sym, v: &Value) -> i64 {
        v.as_int().unwrap_or(0) * 10
    }
    let schema = schema2("dr_lA", "dr_lB");
    let x = sym("dr_lB");
    let v = Relation::from_rows(schema.clone(), [(Tuple::from([1i64, 2i64]), 3i64)]);
    let d = Relation::from_rows(schema, [(Tuple::from([1i64, 2i64]), -3i64)]);
    let lhs = marginalize(&union(&v, &d), x, lift_val);
    let rhs = union(&marginalize(&v, x, lift_val), &marginalize(&d, x, lift_val));
    assert_eq!(lhs.len(), 0);
    assert_eq!(rhs.len(), 0);
}
