//! A vendored FxHash-style hasher.
//!
//! Relations are hash maps keyed by short tuples of mostly-integer values;
//! SipHash's HashDoS resistance buys nothing here and costs measurably on
//! every probe. This is the rustc/Firefox Fx algorithm (multiply-xor-rotate),
//! ~30 lines, vendored instead of adding a dependency outside the approved
//! set (see DESIGN.md §6).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx hash (64-bit golden-ratio mix).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sanity check the mix: sequential keys should not collide in the
        // low bits used for bucketing.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            low_bits.insert(hash_of(&i) & 0x3f);
        }
        assert!(low_bits.len() > 32, "poor low-bit dispersion");
    }
}
