//! The three relational operators of Sec. 2: union `⊎`, natural join `·`,
//! and aggregation `Σ_X`.
//!
//! These are *batch* operators: they materialize their output. The
//! incremental engines in `ivm-core` use them for preprocessing, for lazy
//! re-evaluation, and as the from-scratch oracle that every property test
//! compares maintained state against.

use crate::relation::{GroupedIndex, Relation};
use crate::schema::{Schema, Sym};
use crate::value::Value;
use ivm_ring::Semiring;

/// Union `R ⊎ S`: point-wise ring addition. Schemas must match.
pub fn union<R: Semiring>(a: &Relation<R>, b: &Relation<R>) -> Relation<R> {
    assert_eq!(
        a.schema(),
        b.schema(),
        "union requires identical schemas ({:?} vs {:?})",
        a.schema(),
        b.schema()
    );
    let mut out = a.clone();
    for (t, r) in b.iter() {
        out.apply(t.clone(), r);
    }
    out
}

/// Natural join `S · T`: for every pair of tuples agreeing on the shared
/// variables, output their combined tuple with multiplied payloads.
///
/// The output schema is `a`'s variables followed by `b`'s remaining ones.
/// Runs in time O(|a| + |b| + |output|) via a hash index on `b`.
pub fn join<R: Semiring>(a: &Relation<R>, b: &Relation<R>) -> Relation<R> {
    let common = a.schema().intersect(b.schema());
    let out_schema = a.schema().union(b.schema());
    let idx = GroupedIndex::from_relation(b, common.clone());
    let a_common_pos = a.schema().positions_of(&common);
    let mut out = Relation::new(out_schema);
    for (ta, ra) in a.iter() {
        let key = ta.project(&a_common_pos);
        if let Some(group) = idx.group(&key) {
            for (residual, rb) in group.iter() {
                out.apply(ta.concat(residual), &ra.times(rb));
            }
        }
    }
    out
}

/// A lifting function `g_X`: maps an `X`-value to a ring element when `X`
/// is marginalized (Sec. 2). The default [`lift_one`] maps everything to
/// `1`, which makes `Σ_X` a pure multiplicity marginalization.
pub type Lift<R> = fn(Sym, &Value) -> R;

/// The default lifting: `g_X(x) = 1` for all variables and values.
pub fn lift_one<R: Semiring>(_var: Sym, _v: &Value) -> R {
    R::one()
}

/// Aggregation `Σ_X R` marginalizing a single bound variable `X` with
/// lifting `g_X`: each tuple `t` contributes `R(t) * g_X(t.X)` to its
/// projection on `schema \ {X}`.
pub fn marginalize<R: Semiring>(rel: &Relation<R>, var: Sym, lift: Lift<R>) -> Relation<R> {
    let out_schema = rel.schema().difference(&Schema::from([var]));
    let out_pos = rel.schema().positions_of(&out_schema);
    let var_pos = rel
        .schema()
        .position(var)
        .unwrap_or_else(|| panic!("cannot marginalize {var}: not in {:?}", rel.schema()));
    let mut out = Relation::new(out_schema);
    for (t, r) in rel.iter() {
        let contrib = r.times(&lift(var, t.at(var_pos)));
        out.apply(t.project(&out_pos), &contrib);
    }
    out
}

/// Aggregation onto a set of group-by variables: marginalizes every other
/// variable with `lift`, in schema order.
pub fn aggregate<R: Semiring>(rel: &Relation<R>, group_by: &Schema, lift: Lift<R>) -> Relation<R> {
    assert!(
        group_by.subset_of(rel.schema()),
        "group-by {group_by:?} must be within {:?}",
        rel.schema()
    );
    let bound = rel.schema().difference(group_by);
    let mut cur = rel.clone();
    for &v in bound.vars() {
        cur = marginalize(&cur, v, lift);
    }
    // Reorder columns to match the requested group-by order.
    if cur.schema() == group_by {
        return cur;
    }
    let pos = cur.schema().positions_of(group_by);
    let mut out = Relation::new(group_by.clone());
    for (t, r) in cur.iter() {
        out.apply(t.project(&pos), r);
    }
    out
}

/// Evaluate `Q(group_by) = Σ_bound Π_i R_i` from scratch: join all inputs,
/// then aggregate. The textbook evaluation every engine is tested against.
pub fn eval_join_aggregate<R: Semiring>(
    relations: &[&Relation<R>],
    group_by: &Schema,
    lift: Lift<R>,
) -> Relation<R> {
    assert!(!relations.is_empty(), "need at least one relation");
    let mut acc = relations[0].clone();
    for rel in &relations[1..] {
        acc = join(&acc, rel);
    }
    aggregate(&acc, group_by, lift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::vars;
    use crate::tup;
    use crate::tuple::Tuple;

    fn rel(schema: Schema, rows: &[(Tuple, i64)]) -> Relation<i64> {
        Relation::from_rows(schema, rows.iter().cloned())
    }

    #[test]
    fn paper_fig2_triangle_join_and_count() {
        // Fig 2 (top row): R, S, T with integer payloads; the triangle
        // count is 19.
        let [a, b, c] = vars(["ops_A", "ops_B", "ops_C"]);
        let r = rel(
            Schema::from([a, b]),
            &[(tup![1i64, 1i64], 2), (tup![2i64, 1i64], 3)],
        );
        let s = rel(
            Schema::from([b, c]),
            &[(tup![1i64, 1i64], 2), (tup![1i64, 2i64], 1)],
        );
        let t = rel(
            Schema::from([c, a]),
            &[
                (tup![1i64, 1i64], 1),
                (tup![2i64, 1i64], 3),
                (tup![2i64, 2i64], 3),
            ],
        );
        let rst = join(&join(&r, &s), &t);
        assert_eq!(rst.get(&tup![1i64, 1i64, 1i64]), 4); // 2*2*1
        assert_eq!(rst.get(&tup![1i64, 1i64, 2i64]), 6); // 2*1*3
        assert_eq!(rst.get(&tup![2i64, 1i64, 2i64]), 9); // 3*1*3
        assert_eq!(rst.len(), 3);

        let q = aggregate(&rst, &Schema::empty(), lift_one);
        assert_eq!(q.get(&Tuple::empty()), 19);
    }

    #[test]
    fn join_multiplies_payloads() {
        let [x, y, z] = vars(["ops_X", "ops_Y", "ops_Z"]);
        let r = rel(Schema::from([x, y]), &[(tup![1i64, 2i64], 3)]);
        let s = rel(Schema::from([y, z]), &[(tup![2i64, 5i64], 7)]);
        let j = join(&r, &s);
        assert_eq!(j.schema(), &Schema::from([x, y, z]));
        assert_eq!(j.get(&tup![1i64, 2i64, 5i64]), 21);
    }

    #[test]
    fn join_on_disjoint_schemas_is_cartesian_product() {
        let [x, y] = vars(["ops_X2", "ops_Y2"]);
        let r = rel(Schema::from([x]), &[(tup![1i64], 2), (tup![2i64], 1)]);
        let s = rel(Schema::from([y]), &[(tup![10i64], 3)]);
        let j = join(&r, &s);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(&tup![1i64, 10i64]), 6);
    }

    #[test]
    fn union_adds_and_cancels() {
        let [x] = vars(["ops_X3"]);
        let r = rel(Schema::from([x]), &[(tup![1i64], 2)]);
        let d = rel(Schema::from([x]), &[(tup![1i64], -2), (tup![2i64], 1)]);
        let u = union(&r, &d);
        assert_eq!(u.len(), 1);
        assert_eq!(u.get(&tup![2i64]), 1);
    }

    #[test]
    fn marginalize_with_lifting() {
        let [x, y] = vars(["ops_X4", "ops_Y4"]);
        let r = rel(
            Schema::from([x, y]),
            &[(tup![1i64, 10i64], 2), (tup![1i64, 20i64], 1)],
        );
        // Lift Y-values into the payload: g_Y(y) = y.
        fn lift_val(_: Sym, v: &Value) -> i64 {
            v.as_int().unwrap()
        }
        let m = marginalize(&r, y, lift_val);
        assert_eq!(m.get(&tup![1i64]), 2 * 10 + 20);
    }

    #[test]
    fn aggregate_reorders_group_by() {
        let [x, y, z] = vars(["ops_X5", "ops_Y5", "ops_Z5"]);
        let r = rel(Schema::from([x, y, z]), &[(tup![1i64, 2i64, 3i64], 1)]);
        let agg = aggregate(&r, &Schema::from([z, x]), lift_one);
        assert_eq!(agg.schema(), &Schema::from([z, x]));
        assert_eq!(agg.get(&tup![3i64, 1i64]), 1);
    }

    #[test]
    fn eval_join_aggregate_matches_manual() {
        let [x, y, z] = vars(["ops_X6", "ops_Y6", "ops_Z6"]);
        let r = rel(
            Schema::from([x, y]),
            &[(tup![1i64, 1i64], 1), (tup![2i64, 1i64], 1)],
        );
        let s = rel(Schema::from([y, z]), &[(tup![1i64, 5i64], 2)]);
        let q = eval_join_aggregate(&[&r, &s], &Schema::from([x]), lift_one);
        assert_eq!(q.get(&tup![1i64]), 2);
        assert_eq!(q.get(&tup![2i64]), 2);
    }
}
