//! Schemas and interned symbols.
//!
//! Variables and relation names are interned into [`Sym`]s (a `u32` into a
//! process-global table), so schema manipulation — which happens constantly
//! during query analysis and view-tree construction — is integer work, and
//! symbols render back to their names in debug output.

use crate::hash::FxHashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned symbol: a variable or relation name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    names: Vec<String>,
    ids: FxHashMap<String, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            ids: FxHashMap::default(),
        })
    })
}

/// Intern a name, returning its symbol. Idempotent.
pub fn sym(name: &str) -> Sym {
    let mut i = interner().lock().expect("interner poisoned");
    if let Some(&id) = i.ids.get(name) {
        return Sym(id);
    }
    let id = u32::try_from(i.names.len()).expect("interner overflow");
    i.names.push(name.to_string());
    i.ids.insert(name.to_string(), id);
    Sym(id)
}

/// Intern several names at once: `vars(["A", "B"])`.
pub fn vars<const N: usize>(names: [&str; N]) -> [Sym; N] {
    names.map(sym)
}

impl Sym {
    /// The interned name.
    pub fn name(self) -> String {
        interner().lock().expect("interner poisoned").names[self.0 as usize].clone()
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// An ordered schema: a tuple of variables, also usable as a set.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema(Vec<Sym>);

impl Schema {
    /// The empty schema.
    pub fn empty() -> Self {
        Schema(Vec::new())
    }

    /// Build from variables; panics on duplicates (schemas are sets).
    pub fn new(vars: impl IntoIterator<Item = Sym>) -> Self {
        let v: Vec<Sym> = vars.into_iter().collect();
        for (i, a) in v.iter().enumerate() {
            assert!(
                !v[..i].contains(a),
                "duplicate variable {a} in schema {v:?}"
            );
        }
        Schema(v)
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The variables in order.
    pub fn vars(&self) -> &[Sym] {
        &self.0
    }

    /// Whether `v` occurs in this schema.
    pub fn contains(&self, v: Sym) -> bool {
        self.0.contains(&v)
    }

    /// Position of `v`, if present.
    pub fn position(&self, v: Sym) -> Option<usize> {
        self.0.iter().position(|&x| x == v)
    }

    /// Positions of `target`'s variables within `self`.
    ///
    /// # Panics
    /// Panics if some variable of `target` is absent from `self` — that is
    /// a query-compilation bug, not a data error.
    pub fn positions_of(&self, target: &Schema) -> Vec<usize> {
        target
            .vars()
            .iter()
            .map(|&v| {
                self.position(v)
                    .unwrap_or_else(|| panic!("variable {v} not in schema {self:?}"))
            })
            .collect()
    }

    /// Set intersection, ordered as in `self`.
    pub fn intersect(&self, other: &Schema) -> Schema {
        Schema(
            self.0
                .iter()
                .copied()
                .filter(|&v| other.contains(v))
                .collect(),
        )
    }

    /// Set union: `self`'s variables followed by `other`'s new ones.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut out = self.0.clone();
        for &v in other.vars() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        Schema(out)
    }

    /// Set difference, ordered as in `self`.
    pub fn difference(&self, other: &Schema) -> Schema {
        Schema(
            self.0
                .iter()
                .copied()
                .filter(|&v| !other.contains(v))
                .collect(),
        )
    }

    /// Whether `self ⊆ other` as sets.
    pub fn subset_of(&self, other: &Schema) -> bool {
        self.0.iter().all(|&v| other.contains(v))
    }
}

impl FromIterator<Sym> for Schema {
    fn from_iter<T: IntoIterator<Item = Sym>>(iter: T) -> Self {
        Schema::new(iter)
    }
}

impl<const N: usize> From<[Sym; N]> for Schema {
    fn from(vars: [Sym; N]) -> Self {
        Schema::new(vars)
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(sym("A"), sym("A"));
        assert_ne!(sym("A"), sym("B"));
        assert_eq!(sym("A").name(), "A");
    }

    #[test]
    fn schema_set_ops() {
        let [a, b, c, d] = vars(["sa", "sb", "sc", "sd"]);
        let s1 = Schema::from([a, b, c]);
        let s2 = Schema::from([b, c, d]);
        assert_eq!(s1.intersect(&s2), Schema::from([b, c]));
        assert_eq!(s1.union(&s2), Schema::from([a, b, c, d]));
        assert_eq!(s1.difference(&s2), Schema::from([a]));
        assert!(Schema::from([b]).subset_of(&s1));
        assert!(!s1.subset_of(&s2));
    }

    #[test]
    fn positions_of_resolves_order() {
        let [a, b, c] = vars(["pa", "pb", "pc"]);
        let s = Schema::from([a, b, c]);
        assert_eq!(s.positions_of(&Schema::from([c, a])), vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_vars_rejected() {
        let a = sym("dup");
        let _ = Schema::from([a, a]);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn positions_of_missing_var_panics() {
        let [a, b] = vars(["ma", "mb"]);
        Schema::from([a]).positions_of(&Schema::from([b]));
    }
}
