//! Binary persistence hooks for the data model: a dependency-free,
//! length-prefixed codec over [`Value`], [`Tuple`], [`Update`],
//! [`Relation`], and [`Database`].
//!
//! The durable-store crate (`ivm-store`) frames these encodings into
//! CRC-checked journal records and snapshot files; the hooks live here so
//! every wire detail about a type sits next to the type itself.
//!
//! Two invariants the store layer relies on:
//!
//! * **Symbols travel by name.** [`Sym`] is a process-local interning
//!   id — meaningless in the next process — so the codec writes the
//!   interned string and re-interns on decode.
//! * **Decoding never panics.** Every [`Persist::decode`] returns `None`
//!   on a truncated or malformed buffer (bad tag, non-UTF-8 string,
//!   length running past the end), because recovery feeds it torn
//!   journal tails by design.

use crate::database::Database;
use crate::relation::Relation;
use crate::schema::{sym, Schema, Sym};
use crate::tuple::Tuple;
use crate::update::Update;
use crate::value::Value;
use ivm_ring::Semiring;
use std::sync::Arc;

/// A type with a stable binary encoding.
///
/// `encode` appends to `out`; `decode` consumes from the front of `buf`
/// (advancing the slice) and returns `None` — never panicking — when the
/// bytes are truncated or malformed.
pub trait Persist: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

/// Encode `value` into a fresh buffer.
pub fn to_bytes<T: Persist>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decode one value from `bytes`, requiring the buffer to be fully
/// consumed (a trailing-garbage guard for whole-document decoding).
pub fn from_bytes<T: Persist>(bytes: &[u8]) -> Option<T> {
    let mut buf = bytes;
    let v = T::decode(&mut buf)?;
    buf.is_empty().then_some(v)
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

impl Persist for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(u32::from_le_bytes(take(buf, 4)?.try_into().ok()?))
    }
}

impl Persist for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(take(buf, 8)?.try_into().ok()?))
    }
}

impl Persist for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(i64::from_le_bytes(take(buf, 8)?.try_into().ok()?))
    }
}

impl Persist for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(buf)? as usize;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(buf)? as usize;
        // Guard against a corrupt length forcing a huge allocation: every
        // element is at least one byte, so `len` can never exceed the
        // bytes actually present.
        if len > buf.len() {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

/// Interning ids are process-local, so a symbol persists as its name and
/// re-interns on decode.
impl Persist for Sym {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name().encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(sym(&String::decode(buf)?))
    }
}

impl Persist for Schema {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.vars().len() as u32).encode(out);
        for v in self.vars() {
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(buf)? as usize;
        if len > buf.len() {
            return None;
        }
        let mut vars = Vec::with_capacity(len);
        for _ in 0..len {
            vars.push(Sym::decode(buf)?);
        }
        Some(Schema::new(vars))
    }
}

const VALUE_INT: u8 = 0;
const VALUE_STR: u8 = 1;

impl Persist for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(VALUE_INT);
                i.encode(out);
            }
            Value::Str(s) => {
                out.push(VALUE_STR);
                s.to_string().encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        match *take(buf, 1)?.first()? {
            VALUE_INT => Some(Value::Int(i64::decode(buf)?)),
            VALUE_STR => Some(Value::Str(Arc::from(String::decode(buf)?.as_str()))),
            _ => None,
        }
    }
}

impl Persist for Tuple {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.arity() as u32).encode(out);
        for v in self.values() {
            v.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let arity = u32::decode(buf)? as usize;
        if arity > buf.len() {
            return None;
        }
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(Value::decode(buf)?);
        }
        Some(Tuple::new(values))
    }
}

impl<R: Persist> Persist for Update<R> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.relation.encode(out);
        self.tuple.encode(out);
        self.payload.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        Some(Update {
            relation: Sym::decode(buf)?,
            tuple: Tuple::decode(buf)?,
            payload: R::decode(buf)?,
        })
    }
}

impl<R: Persist + Semiring> Persist for Relation<R> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.schema().encode(out);
        (self.len() as u32).encode(out);
        for (t, r) in self.iter() {
            t.encode(out);
            r.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let schema = Schema::decode(buf)?;
        let len = u32::decode(buf)? as usize;
        if len > buf.len() {
            return None;
        }
        let mut rows = Vec::with_capacity(len);
        for _ in 0..len {
            rows.push((Tuple::decode(buf)?, R::decode(buf)?));
        }
        Some(Relation::from_rows(schema, rows))
    }
}

impl<R: Persist + Semiring> Persist for Database<R> {
    fn encode(&self, out: &mut Vec<u8>) {
        // Deterministic order: relations sorted by name, so identical
        // databases encode to identical bytes whatever the hash-map
        // iteration order of this process happens to be.
        let mut rels: Vec<(Sym, &Relation<R>)> = self.iter().map(|(s, r)| (*s, r)).collect();
        rels.sort_by_key(|(s, _)| s.name());
        (rels.len() as u32).encode(out);
        for (name, rel) in rels {
            name.encode(out);
            rel.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(buf)? as usize;
        if len > buf.len() {
            return None;
        }
        let mut db = Database::new();
        for _ in 0..len {
            let name = Sym::decode(buf)?;
            let rel = Relation::decode(buf)?;
            // Duplicate names in a decoded stream are corruption, not a
            // reason to panic inside `Database::add`.
            if db.get(name).is_some() {
                return None;
            }
            db.add(name, rel);
        }
        Some(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn primitives_round_trip() {
        for v in [0i64, -1, i64::MIN, i64::MAX] {
            assert_eq!(from_bytes::<i64>(&to_bytes(&v)), Some(v));
        }
        let s = "héllo → wörld".to_string();
        assert_eq!(from_bytes::<String>(&to_bytes(&s)), Some(s));
    }

    #[test]
    fn sym_round_trips_by_name() {
        let a = sym("codec_A");
        let decoded = from_bytes::<Sym>(&to_bytes(&a)).unwrap();
        assert_eq!(decoded, a);
        assert_eq!(decoded.name(), "codec_A");
    }

    #[test]
    fn update_and_relation_round_trip() {
        let u = Update::with_payload(sym("codec_R"), tup![1i64, "x"], -3i64);
        assert_eq!(from_bytes::<Update<i64>>(&to_bytes(&u)), Some(u));

        let schema = Schema::new(crate::vars(["codec_x", "codec_y"]).to_vec());
        let rel: Relation<i64> = Relation::from_rows(
            schema,
            [(tup![1i64, 2i64], 5i64), (tup![3i64, 4i64], -2i64)],
        );
        let back = from_bytes::<Relation<i64>>(&to_bytes(&rel)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(&tup![1i64, 2i64]), 5);
        assert_eq!(back.get(&tup![3i64, 4i64]), -2);
    }

    #[test]
    fn truncated_buffers_decode_to_none() {
        let u = Update::with_payload(sym("codec_T"), tup![7i64, "abc"], 1i64);
        let bytes = to_bytes(&u);
        for cut in 0..bytes.len() {
            let mut buf = &bytes[..cut];
            assert!(
                Update::<i64>::decode(&mut buf).is_none(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_value_tag_is_rejected() {
        let mut bytes = to_bytes(&Value::Int(4));
        bytes[0] = 9;
        assert!(from_bytes::<Value>(&bytes).is_none());
    }

    #[test]
    fn database_encoding_is_deterministic() {
        let mut db: Database<i64> = Database::new();
        let schema = Schema::new(crate::vars(["codec_a", "codec_b"]).to_vec());
        for name in ["codec_Z", "codec_M", "codec_A"] {
            let mut rel = Relation::new(schema.clone());
            rel.apply(tup![1i64, 2i64], &1i64);
            db.add(sym(name), rel);
        }
        assert_eq!(to_bytes(&db), to_bytes(&db.clone()));
        let back = from_bytes::<Database<i64>>(&to_bytes(&db)).unwrap();
        assert_eq!(back.size(), db.size());
    }
}
