//! A database: a set of named relations over a common ring.

use crate::hash::FxHashMap;
use crate::relation::Relation;
use crate::schema::{Schema, Sym};
use crate::update::Update;
use ivm_ring::Semiring;

/// A set of relations over the same ring, addressable by name (Sec. 2).
#[derive(Clone)]
pub struct Database<R> {
    relations: FxHashMap<Sym, Relation<R>>,
}

impl<R: Semiring> Default for Database<R> {
    fn default() -> Self {
        Database::new()
    }
}

impl<R: Semiring> std::fmt::Debug for Database<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<_> = self.relations.keys().collect();
        names.sort();
        f.debug_map()
            .entries(names.iter().map(|&&n| (n, &self.relations[&n])))
            .finish()
    }
}

impl<R: Semiring> Database<R> {
    /// An empty database.
    pub fn new() -> Self {
        Database {
            relations: FxHashMap::default(),
        }
    }

    /// Register an empty relation. Panics if the name is taken.
    pub fn create(&mut self, name: Sym, schema: Schema) {
        let prev = self.relations.insert(name, Relation::new(schema));
        assert!(prev.is_none(), "relation {name} already exists");
    }

    /// Register an existing relation. Panics if the name is taken.
    pub fn add(&mut self, name: Sym, rel: Relation<R>) {
        let prev = self.relations.insert(name, rel);
        assert!(prev.is_none(), "relation {name} already exists");
    }

    /// Look up a relation.
    pub fn get(&self, name: Sym) -> Option<&Relation<R>> {
        self.relations.get(&name)
    }

    /// Look up a relation, panicking when absent (compile-time names).
    pub fn relation(&self, name: Sym) -> &Relation<R> {
        self.relations
            .get(&name)
            .unwrap_or_else(|| panic!("unknown relation {name}"))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: Sym) -> Option<&mut Relation<R>> {
        self.relations.get_mut(&name)
    }

    /// Apply a single-tuple update to its relation.
    ///
    /// # Panics
    /// Panics when the relation does not exist.
    pub fn apply(&mut self, upd: &Update<R>) {
        self.relations
            .get_mut(&upd.relation)
            .unwrap_or_else(|| panic!("unknown relation {}", upd.relation))
            .apply(upd.tuple.clone(), &upd.payload);
    }

    /// Apply a batch in order.
    pub fn apply_batch<'a>(&mut self, batch: impl IntoIterator<Item = &'a Update<R>>)
    where
        R: 'a,
    {
        for u in batch {
            self.apply(u);
        }
    }

    /// Total database size `|D|`: the sum of relation sizes.
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Iterate `(name, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Sym, &Relation<R>)> {
        self.relations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{sym, vars};
    use crate::tup;

    #[test]
    fn create_apply_size() {
        let [a, b] = vars(["db_a", "db_b"]);
        let r = sym("db_R");
        let mut db: Database<i64> = Database::new();
        db.create(r, Schema::from([a, b]));
        db.apply(&Update::insert(r, tup![1i64, 2i64]));
        db.apply(&Update::insert(r, tup![1i64, 3i64]));
        assert_eq!(db.size(), 2);
        assert_eq!(db.relation(r).get(&tup![1i64, 2i64]), 1);
    }

    #[test]
    fn batch_order_does_not_matter_for_final_state() {
        let [a] = vars(["db_a2"]);
        let r = sym("db_R2");
        let mk = || {
            let mut db: Database<i64> = Database::new();
            db.create(r, Schema::from([a]));
            db
        };
        let ins = Update::insert(r, tup![1i64]);
        let del: Update<i64> = Update::delete(r, tup![1i64]);
        let mut d1 = mk();
        d1.apply_batch([&ins, &del, &ins]);
        let mut d2 = mk();
        d2.apply_batch([&ins, &ins, &del]);
        assert_eq!(d1.relation(r).get(&tup![1i64]), 1);
        assert_eq!(d2.relation(r).get(&tup![1i64]), 1);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_relation_rejected() {
        let [a] = vars(["db_a3"]);
        let r = sym("db_R3");
        let mut db: Database<i64> = Database::new();
        db.create(r, Schema::from([a]));
        db.create(r, Schema::from([a]));
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn update_to_missing_relation_panics() {
        let mut db: Database<i64> = Database::new();
        db.apply(&Update::insert(sym("db_missing"), tup![1i64]));
    }
}
