//! Tuples: the keys of relations.

use crate::value::Value;
use std::fmt;

/// An ordered tuple of [`Value`]s over some schema.
///
/// Stored as a boxed slice (two words on the stack) — tuples are hash-map
/// keys and get cloned on insertion, so compactness matters more than
/// in-place mutation, which never happens.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// The empty tuple `()` over the empty schema.
    pub fn empty() -> Self {
        Tuple(Box::from([]))
    }

    /// Build a tuple from values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value at position `i`.
    pub fn at(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project onto the given positions (π in the paper's notation, with
    /// positions resolved from schemas by the caller).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p].clone()).collect())
    }

    /// Concatenate two tuples (used when joining on disjoint schemas).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }
}

impl<V: Into<Value>, const N: usize> From<[V; N]> for Tuple {
    fn from(values: [V; N]) -> Self {
        Tuple(values.into_iter().map(Into::into).collect())
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

/// Build a [`Tuple`] from a heterogeneous list of values.
///
/// ```
/// use ivm_data::tup;
/// let t = tup![1i64, "a", 3i64];
/// assert_eq!(t.arity(), 3);
/// ```
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new([$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::from([1i64, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.at(1), &Value::from(2i64));
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert!(t.is_empty());
        assert_eq!(t, Tuple::new([]));
    }

    #[test]
    fn projection() {
        let t = tup![10i64, "x", 30i64];
        assert_eq!(t.project(&[2, 0]), tup![30i64, 10i64]);
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn concat() {
        let a = tup![1i64];
        let b = tup!["y", 2i64];
        assert_eq!(a.concat(&b), tup![1i64, "y", 2i64]);
    }

    #[test]
    fn macro_mixes_types() {
        let t = tup![7i64, "abc"];
        assert_eq!(t.at(0).as_int(), Some(7));
        assert_eq!(t.at(1).as_str(), Some("abc"));
    }

    #[test]
    fn hash_eq_projection_consistent() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(tup![1i64, 2i64].project(&[0]));
        assert!(set.contains(&tup![1i64]));
    }
}
