//! Updates and batches.
//!
//! An update is a tuple with a ring payload: positive for inserts, negative
//! for deletes (Sec. 2). Because payloads live in a ring, a batch's
//! cumulative effect is independent of execution order — the property the
//! paper leverages for out-of-order and distributed execution.

use crate::schema::Sym;
use crate::tuple::Tuple;
use ivm_ring::{Ring, Semiring};

/// A single-tuple update to one relation.
#[derive(Clone, Debug, PartialEq)]
pub struct Update<R> {
    /// The relation being updated.
    pub relation: Sym,
    /// The affected tuple.
    pub tuple: Tuple,
    /// The payload delta (`+k` insert, `-k` delete in `Z`).
    pub payload: R,
}

impl<R: Semiring> Update<R> {
    /// Insert one derivation of `tuple` into `relation`.
    pub fn insert(relation: Sym, tuple: Tuple) -> Self {
        Update {
            relation,
            tuple,
            payload: R::one(),
        }
    }

    /// An update with an explicit payload delta.
    pub fn with_payload(relation: Sym, tuple: Tuple, payload: R) -> Self {
        Update {
            relation,
            tuple,
            payload,
        }
    }
}

impl<R: Ring> Update<R> {
    /// Delete one derivation of `tuple` from `relation`.
    pub fn delete(relation: Sym, tuple: Tuple) -> Self {
        Update {
            relation,
            tuple,
            payload: R::one().neg(),
        }
    }

    /// The inverse update (insert ↔ delete).
    pub fn inverse(&self) -> Self {
        Update {
            relation: self.relation,
            tuple: self.tuple.clone(),
            payload: self.payload.neg(),
        }
    }
}

/// An ordered sequence of single-tuple updates.
pub type Batch<R> = Vec<Update<R>>;

/// Sum payloads per `(relation, tuple)` key, dropping keys that cancel to
/// zero. Shared kernel of [`consolidate`] and [`consolidated_len`].
fn consolidate_map<R: Semiring>(batch: &[Update<R>]) -> crate::hash::FxHashMap<(Sym, &Tuple), R> {
    let mut acc: crate::hash::FxHashMap<(Sym, &Tuple), R> = crate::hash::FxHashMap::default();
    for u in batch {
        match acc.entry((u.relation, &u.tuple)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().add_assign(&u.payload);
                if e.get().is_zero() {
                    e.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                if !u.payload.is_zero() {
                    e.insert(u.payload.clone());
                }
            }
        }
    }
    acc
}

/// Consolidate a batch: sum the payloads of updates hitting the same
/// `(relation, tuple)` pair and drop entries that cancel to zero. Sound for
/// any ring/semiring payload because batch effects are order-independent
/// (Sec. 2); the result is equivalent to the input batch but touches each
/// distinct key once. Output order is unspecified.
pub fn consolidate<R: Semiring>(batch: &[Update<R>]) -> Batch<R> {
    consolidate_map(batch)
        .into_iter()
        .map(|((rel, t), payload)| Update {
            relation: rel,
            tuple: t.clone(),
            payload,
        })
        .collect()
}

/// Number of distinct `(relation, tuple)` keys a consolidated batch would
/// retain — the propagation cost of the batch after consolidation, without
/// materializing the consolidated updates.
pub fn consolidated_len<R: Semiring>(batch: &[Update<R>]) -> usize {
    consolidate_map(batch).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::sym;
    use crate::tup;

    #[test]
    fn insert_delete_payloads() {
        let r = sym("upd_R");
        let ins: Update<i64> = Update::insert(r, tup![1i64]);
        let del: Update<i64> = Update::delete(r, tup![1i64]);
        assert_eq!(ins.payload, 1);
        assert_eq!(del.payload, -1);
        assert_eq!(ins.inverse(), del);
    }

    #[test]
    fn explicit_payload() {
        let r = sym("upd_R");
        let u: Update<i64> = Update::with_payload(r, tup![2i64], -2);
        assert_eq!(u.payload, -2);
        assert_eq!(u.inverse().payload, 2);
    }

    #[test]
    fn consolidate_merges_and_cancels() {
        let (r, s) = (sym("upd_cR"), sym("upd_cS"));
        let batch: Batch<i64> = vec![
            Update::with_payload(r, tup![1i64], 2),
            Update::with_payload(r, tup![1i64], 3),
            Update::with_payload(s, tup![1i64], 1),
            Update::with_payload(s, tup![1i64], -1),
            Update::with_payload(r, tup![2i64], 0),
        ];
        let mut c = consolidate(&batch);
        assert_eq!(c.len(), 1);
        let u = c.pop().unwrap();
        assert_eq!((u.relation, u.payload), (r, 5));
        assert_eq!(consolidated_len(&batch), 1);
    }

    #[test]
    fn consolidate_distinguishes_relations() {
        let (r, s) = (sym("upd_dR"), sym("upd_dS"));
        let batch: Batch<i64> = vec![
            Update::with_payload(r, tup![1i64], 1),
            Update::with_payload(s, tup![1i64], 1),
        ];
        assert_eq!(consolidate(&batch).len(), 2);
    }
}
