//! Updates and batches.
//!
//! An update is a tuple with a ring payload: positive for inserts, negative
//! for deletes (Sec. 2). Because payloads live in a ring, a batch's
//! cumulative effect is independent of execution order — the property the
//! paper leverages for out-of-order and distributed execution.

use crate::schema::Sym;
use crate::tuple::Tuple;
use ivm_ring::{Ring, Semiring};

/// A single-tuple update to one relation.
#[derive(Clone, Debug, PartialEq)]
pub struct Update<R> {
    /// The relation being updated.
    pub relation: Sym,
    /// The affected tuple.
    pub tuple: Tuple,
    /// The payload delta (`+k` insert, `-k` delete in `Z`).
    pub payload: R,
}

impl<R: Semiring> Update<R> {
    /// Insert one derivation of `tuple` into `relation`.
    pub fn insert(relation: Sym, tuple: Tuple) -> Self {
        Update {
            relation,
            tuple,
            payload: R::one(),
        }
    }

    /// An update with an explicit payload delta.
    pub fn with_payload(relation: Sym, tuple: Tuple, payload: R) -> Self {
        Update {
            relation,
            tuple,
            payload,
        }
    }
}

impl<R: Ring> Update<R> {
    /// Delete one derivation of `tuple` from `relation`.
    pub fn delete(relation: Sym, tuple: Tuple) -> Self {
        Update {
            relation,
            tuple,
            payload: R::one().neg(),
        }
    }

    /// The inverse update (insert ↔ delete).
    pub fn inverse(&self) -> Self {
        Update {
            relation: self.relation,
            tuple: self.tuple.clone(),
            payload: self.payload.neg(),
        }
    }
}

/// An ordered sequence of single-tuple updates.
pub type Batch<R> = Vec<Update<R>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::sym;
    use crate::tup;

    #[test]
    fn insert_delete_payloads() {
        let r = sym("upd_R");
        let ins: Update<i64> = Update::insert(r, tup![1i64]);
        let del: Update<i64> = Update::delete(r, tup![1i64]);
        assert_eq!(ins.payload, 1);
        assert_eq!(del.payload, -1);
        assert_eq!(ins.inverse(), del);
    }

    #[test]
    fn explicit_payload() {
        let r = sym("upd_R");
        let u: Update<i64> = Update::with_payload(r, tup![2i64], -2);
        assert_eq!(u.payload, -2);
        assert_eq!(u.inverse().payload, 2);
    }
}
