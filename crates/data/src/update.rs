//! Updates and batches.
//!
//! An update is a tuple with a ring payload: positive for inserts, negative
//! for deletes (Sec. 2). Because payloads live in a ring, a batch's
//! cumulative effect is independent of execution order — the property the
//! paper leverages for out-of-order and distributed execution.

use crate::schema::Sym;
use crate::tuple::Tuple;
use ivm_ring::{Ring, Semiring};

/// A single-tuple update to one relation.
#[derive(Clone, Debug, PartialEq)]
pub struct Update<R> {
    /// The relation being updated.
    pub relation: Sym,
    /// The affected tuple.
    pub tuple: Tuple,
    /// The payload delta (`+k` insert, `-k` delete in `Z`).
    pub payload: R,
}

impl<R: Semiring> Update<R> {
    /// Insert one derivation of `tuple` into `relation`.
    pub fn insert(relation: Sym, tuple: Tuple) -> Self {
        Update {
            relation,
            tuple,
            payload: R::one(),
        }
    }

    /// An update with an explicit payload delta.
    pub fn with_payload(relation: Sym, tuple: Tuple, payload: R) -> Self {
        Update {
            relation,
            tuple,
            payload,
        }
    }
}

impl<R: Ring> Update<R> {
    /// Delete one derivation of `tuple` from `relation`.
    pub fn delete(relation: Sym, tuple: Tuple) -> Self {
        Update {
            relation,
            tuple,
            payload: R::one().neg(),
        }
    }

    /// The inverse update (insert ↔ delete).
    pub fn inverse(&self) -> Self {
        Update {
            relation: self.relation,
            tuple: self.tuple.clone(),
            payload: self.payload.neg(),
        }
    }
}

/// An ordered sequence of single-tuple updates.
pub type Batch<R> = Vec<Update<R>>;

/// Sum payloads per `(relation, tuple)` key, dropping keys that cancel to
/// zero. Shared kernel of [`consolidate`] and [`consolidated_len`].
fn consolidate_map<R: Semiring>(batch: &[Update<R>]) -> crate::hash::FxHashMap<(Sym, &Tuple), R> {
    let mut acc: crate::hash::FxHashMap<(Sym, &Tuple), R> = crate::hash::FxHashMap::default();
    for u in batch {
        match acc.entry((u.relation, &u.tuple)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().add_assign(&u.payload);
                if e.get().is_zero() {
                    e.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                if !u.payload.is_zero() {
                    e.insert(u.payload.clone());
                }
            }
        }
    }
    acc
}

/// Consolidate a batch: sum the payloads of updates hitting the same
/// `(relation, tuple)` pair and drop entries that cancel to zero. Sound for
/// any ring/semiring payload because batch effects are order-independent
/// (Sec. 2); the result is equivalent to the input batch but touches each
/// distinct key once. Output order is unspecified.
pub fn consolidate<R: Semiring>(batch: &[Update<R>]) -> Batch<R> {
    consolidate_map(batch)
        .into_iter()
        .map(|((rel, t), payload)| Update {
            relation: rel,
            tuple: t.clone(),
            payload,
        })
        .collect()
}

/// Number of distinct `(relation, tuple)` keys a consolidated batch would
/// retain — the propagation cost of the batch after consolidation, without
/// materializing the consolidated updates.
pub fn consolidated_len<R: Semiring>(batch: &[Update<R>]) -> usize {
    consolidate_map(batch).len()
}

/// Deterministic shard assignment for one value: `FxHash(v) mod parts`.
///
/// The hash has no per-process random seed, so the same value lands on the
/// same shard across runs, processes, and machines — a precondition for
/// comparing sharded and unsharded runs, and later for multi-node routing.
pub fn shard_of(v: &crate::value::Value, parts: usize) -> usize {
    use std::hash::BuildHasher;
    assert!(parts > 0, "cannot partition into zero parts");
    (crate::hash::FxBuildHasher::default().hash_one(v) % parts as u64) as usize
}

/// Deterministic shard assignment for one tuple column:
/// [`shard_of`]`(t[column], parts)`.
pub fn shard_of_column(t: &Tuple, column: usize, parts: usize) -> usize {
    shard_of(t.at(column), parts)
}

/// Hash-partition a batch into `parts` sub-batches.
///
/// `route` decides each update's destination: `Some(p)` sends it to
/// sub-batch `p mod parts`, `None` *broadcasts* it — a clone goes into
/// every sub-batch (how a sharded engine replicates relations that do not
/// contain the shard key). Update order within each sub-batch follows the
/// input order, so per-part streams replay faithfully.
///
/// Sound for ring payloads because a batch's effect is the ⊎-sum of the
/// effects of any partition of it (Sec. 2): delta rules are linear, so the
/// sub-batches' output deltas merge back by ring addition.
pub fn partition_updates<R: Clone>(
    batch: &[Update<R>],
    parts: usize,
    mut route: impl FnMut(&Update<R>) -> Option<usize>,
) -> Vec<Batch<R>> {
    assert!(parts > 0, "cannot partition into zero parts");
    let mut out: Vec<Batch<R>> = (0..parts).map(|_| Vec::new()).collect();
    for u in batch {
        match route(u) {
            Some(p) => out[p % parts].push(u.clone()),
            None => {
                for part in &mut out {
                    part.push(u.clone());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::sym;
    use crate::tup;

    #[test]
    fn insert_delete_payloads() {
        let r = sym("upd_R");
        let ins: Update<i64> = Update::insert(r, tup![1i64]);
        let del: Update<i64> = Update::delete(r, tup![1i64]);
        assert_eq!(ins.payload, 1);
        assert_eq!(del.payload, -1);
        assert_eq!(ins.inverse(), del);
    }

    #[test]
    fn explicit_payload() {
        let r = sym("upd_R");
        let u: Update<i64> = Update::with_payload(r, tup![2i64], -2);
        assert_eq!(u.payload, -2);
        assert_eq!(u.inverse().payload, 2);
    }

    #[test]
    fn consolidate_merges_and_cancels() {
        let (r, s) = (sym("upd_cR"), sym("upd_cS"));
        let batch: Batch<i64> = vec![
            Update::with_payload(r, tup![1i64], 2),
            Update::with_payload(r, tup![1i64], 3),
            Update::with_payload(s, tup![1i64], 1),
            Update::with_payload(s, tup![1i64], -1),
            Update::with_payload(r, tup![2i64], 0),
        ];
        let mut c = consolidate(&batch);
        assert_eq!(c.len(), 1);
        let u = c.pop().unwrap();
        assert_eq!((u.relation, u.payload), (r, 5));
        assert_eq!(consolidated_len(&batch), 1);
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        use crate::value::Value;
        for parts in [1usize, 2, 4, 8] {
            for i in 0..64i64 {
                let v = Value::from(i);
                let s = shard_of(&v, parts);
                assert!(s < parts);
                assert_eq!(s, shard_of(&v, parts), "same value, same shard");
            }
        }
        // Strings shard by contents, not by pointer identity.
        assert_eq!(
            shard_of(&Value::str("hub"), 4),
            shard_of(&Value::str(String::from("hub").as_str()), 4)
        );
    }

    #[test]
    fn shard_of_spreads_values() {
        use crate::value::Value;
        let parts = 4;
        let mut hit = vec![false; parts];
        for i in 0..64i64 {
            hit[shard_of(&Value::from(i), parts)] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 values must reach all 4 shards");
    }

    #[test]
    fn partition_routes_and_broadcasts() {
        let (r, s) = (sym("upd_pR"), sym("upd_pS"));
        let batch: Batch<i64> = vec![
            Update::with_payload(r, tup![0i64], 1),
            Update::with_payload(r, tup![1i64], 2),
            Update::with_payload(s, tup![9i64], 3), // broadcast
            Update::with_payload(r, tup![2i64], 4),
        ];
        // Route r by its value mod 2, broadcast s.
        let parts = partition_updates(&batch, 2, |u| {
            if u.relation == r {
                Some(u.tuple.at(0).as_int().unwrap() as usize % 2)
            } else {
                None
            }
        });
        assert_eq!(parts.len(), 2);
        // Part 0: r(0), s(9), r(2); part 1: r(1), s(9).
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[1].len(), 2);
        assert!(parts.iter().all(|p| p.iter().any(|u| u.relation == s)));
        // Nothing lost, broadcast counted once per part.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 3 + 2);
        // Per-part order follows input order.
        assert_eq!(parts[0][0].tuple, tup![0i64]);
        assert_eq!(parts[0][1].tuple, tup![9i64]);
        assert_eq!(parts[0][2].tuple, tup![2i64]);
    }

    #[test]
    fn partition_merges_back_to_original_effect() {
        // ⊎ of the parts' consolidations equals the whole batch's.
        let r = sym("upd_mR");
        let batch: Batch<i64> = (0..20i64)
            .map(|i| Update::with_payload(r, tup![i % 5], if i % 3 == 0 { -1 } else { 1 }))
            .collect();
        let parts = partition_updates(&batch, 3, |u| Some(shard_of_column(&u.tuple, 0, 3)));
        let mut merged: Batch<i64> = parts.concat();
        merged = consolidate(&merged);
        let mut expect = consolidate(&batch);
        let key = |u: &Update<i64>| (u.relation, u.tuple.clone());
        merged.sort_by_key(key);
        expect.sort_by_key(key);
        assert_eq!(merged, expect);
    }

    #[test]
    fn consolidate_distinguishes_relations() {
        let (r, s) = (sym("upd_dR"), sym("upd_dS"));
        let batch: Batch<i64> = vec![
            Update::with_payload(r, tup![1i64], 1),
            Update::with_payload(s, tup![1i64], 1),
        ];
        assert_eq!(consolidate(&batch).len(), 2);
    }
}
