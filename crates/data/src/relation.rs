//! Ring relations and grouped projection indexes.

use crate::hash::FxHashMap;
use crate::schema::Schema;
use crate::tuple::Tuple;
use ivm_ring::Semiring;
use std::fmt;

/// A relation over a schema and a ring: a finite map from tuples to
/// non-zero payloads (Sec. 2 of the paper).
///
/// Tuples mapped to zero are pruned eagerly, so [`Relation::len`] is the
/// paper's `|R|` — the number of present tuples. Lookup, insert, and delete
/// are amortized O(1); iteration has constant delay.
#[derive(Clone)]
pub struct Relation<R> {
    schema: Schema,
    data: FxHashMap<Tuple, R>,
}

impl<R: Semiring> Relation<R> {
    /// An empty relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            data: FxHashMap::default(),
        }
    }

    /// Build from rows, merging duplicate keys with ring addition.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = (Tuple, R)>) -> Self {
        let mut rel = Relation::new(schema);
        for (t, r) in rows {
            rel.apply(t, &r);
        }
        rel
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples with non-zero payload (`|R|`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The payload of `t` (zero when absent).
    pub fn get(&self, t: &Tuple) -> R {
        self.data.get(t).cloned().unwrap_or_else(R::zero)
    }

    /// The stored payload of `t`, if present.
    pub fn payload(&self, t: &Tuple) -> Option<&R> {
        self.data.get(t)
    }

    /// Whether `t` is present (non-zero payload).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.data.contains_key(t)
    }

    /// Apply a single-tuple update: add `delta` to `t`'s payload, pruning
    /// on cancellation to zero. This is the `R := R ⊎ δR` of the paper for a
    /// singleton delta. Amortized O(1).
    pub fn apply(&mut self, t: Tuple, delta: &R) {
        debug_assert_eq!(t.arity(), self.schema.arity(), "tuple arity mismatch");
        if delta.is_zero() {
            return;
        }
        match self.data.entry(t) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().add_assign(delta);
                if e.get().is_zero() {
                    e.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(delta.clone());
            }
        }
    }

    /// Insert one derivation of `t` (payload `+1`).
    pub fn insert(&mut self, t: Tuple) {
        self.apply(t, &R::one());
    }

    /// Iterate `(tuple, payload)` entries with constant delay.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &R)> {
        self.data.iter()
    }

    /// Sum of all payloads — the full aggregation `Σ_all R`.
    pub fn total(&self) -> R {
        let mut acc = R::zero();
        for r in self.data.values() {
            acc.add_assign(r);
        }
        acc
    }
}

impl<R: Semiring> fmt::Debug for Relation<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation{:?} {{", self.schema)?;
        let mut rows: Vec<_> = self.data.iter().collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        for (t, r) in rows {
            writeln!(f, "  {t:?} ↦ {r:?}")?;
        }
        write!(f, "}}")
    }
}

/// One group of a [`GroupedIndex`]: the tuples agreeing on the group key.
#[derive(Clone, Debug)]
pub struct Group<R> {
    total: R,
    entries: FxHashMap<Tuple, R>,
}

impl<R: Semiring> Group<R> {
    fn new() -> Self {
        Group {
            total: R::zero(),
            entries: FxHashMap::default(),
        }
    }

    /// Σ of the group's payloads — an O(1) marginal lookup.
    pub fn total(&self) -> &R {
        &self.total
    }

    /// Number of distinct residual tuples in the group (the paper's
    /// degree `|σ_{key=k} R|`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the group holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload of a residual tuple within the group (zero if absent).
    pub fn get(&self, residual: &Tuple) -> R {
        self.entries.get(residual).cloned().unwrap_or_else(R::zero)
    }

    /// Constant-delay iteration over `(residual, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &R)> {
        self.entries.iter()
    }
}

/// A projection index over a relation: for a key schema `K ⊆ S`, maps each
/// `K`-tuple to the group of tuples agreeing on it.
///
/// This is the index structure the paper assumes (Sec. 2): amortized O(1)
/// single-tuple maintenance, O(1) group lookup with an O(1) marginal
/// ([`Group::total`]), and constant-delay enumeration within a group.
#[derive(Clone)]
pub struct GroupedIndex<R> {
    schema: Schema,
    key: Schema,
    key_pos: Vec<usize>,
    residual_pos: Vec<usize>,
    groups: FxHashMap<Tuple, Group<R>>,
}

impl<R: Semiring> GroupedIndex<R> {
    /// An empty index over `schema`, grouped by `key ⊆ schema`.
    pub fn new(schema: Schema, key: Schema) -> Self {
        assert!(
            key.subset_of(&schema),
            "index key {key:?} must be a subset of schema {schema:?}"
        );
        let key_pos = schema.positions_of(&key);
        let residual = schema.difference(&key);
        let residual_pos = schema.positions_of(&residual);
        GroupedIndex {
            schema,
            key,
            key_pos,
            residual_pos,
            groups: FxHashMap::default(),
        }
    }

    /// Build an index over an existing relation.
    pub fn from_relation(rel: &Relation<R>, key: Schema) -> Self {
        let mut idx = GroupedIndex::new(rel.schema().clone(), key);
        for (t, r) in rel.iter() {
            idx.apply(t, r);
        }
        idx
    }

    /// The full schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The group-by key schema.
    pub fn key(&self) -> &Schema {
        &self.key
    }

    /// The residual schema (full minus key, in schema order).
    pub fn residual_schema(&self) -> Schema {
        self.schema.difference(&self.key)
    }

    /// Number of non-empty groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total tuples indexed across all groups. O(#groups) — meant for
    /// memory censuses, not hot paths.
    pub fn tuple_count(&self) -> usize {
        self.groups.values().map(|g| g.len()).sum()
    }

    /// Apply a single-tuple delta. Amortized O(1).
    pub fn apply(&mut self, t: &Tuple, delta: &R) {
        if delta.is_zero() {
            return;
        }
        let key = t.project(&self.key_pos);
        let residual = t.project(&self.residual_pos);
        let group = self.groups.entry(key.clone()).or_insert_with(Group::new);
        group.total.add_assign(delta);
        match group.entries.entry(residual) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().add_assign(delta);
                if e.get().is_zero() {
                    e.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(delta.clone());
            }
        }
        if group.entries.is_empty() {
            self.groups.remove(&key);
        }
    }

    /// The group for a key tuple, if non-empty. O(1).
    pub fn group(&self, key: &Tuple) -> Option<&Group<R>> {
        self.groups.get(key)
    }

    /// The marginal `Σ_{residual}` payload for a key (zero if absent). O(1).
    pub fn marginal(&self, key: &Tuple) -> R {
        self.groups
            .get(key)
            .map(|g| g.total.clone())
            .unwrap_or_else(R::zero)
    }

    /// Constant-delay iteration over `(key, group)` pairs.
    pub fn iter_groups(&self) -> impl Iterator<Item = (&Tuple, &Group<R>)> {
        self.groups.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::vars;
    use crate::tup;

    fn ab() -> Schema {
        let [a, b] = vars(["rel_a", "rel_b"]);
        Schema::from([a, b])
    }

    #[test]
    fn apply_merges_and_prunes() {
        let mut r: Relation<i64> = Relation::new(ab());
        r.apply(tup![1i64, 2i64], &2);
        r.apply(tup![1i64, 2i64], &3);
        assert_eq!(r.get(&tup![1i64, 2i64]), 5);
        r.apply(tup![1i64, 2i64], &-5);
        assert_eq!(r.len(), 0, "cancelled tuple must be pruned");
        assert!(!r.contains(&tup![1i64, 2i64]));
    }

    #[test]
    fn zero_delta_is_noop() {
        let mut r: Relation<i64> = Relation::new(ab());
        r.apply(tup![1i64, 2i64], &0);
        assert!(r.is_empty());
    }

    #[test]
    fn total_sums_payloads() {
        let r = Relation::from_rows(ab(), [(tup![1i64, 1i64], 2i64), (tup![2i64, 1i64], 3i64)]);
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn negative_payloads_are_representable() {
        // Out-of-order updates can transiently produce negative
        // multiplicities (Sec. 2); the store must keep them.
        let mut r: Relation<i64> = Relation::new(ab());
        r.apply(tup![1i64, 1i64], &-2);
        assert_eq!(r.get(&tup![1i64, 1i64]), -2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn grouped_index_marginals_and_groups() {
        let schema = ab();
        let key = Schema::from([schema.vars()[0]]);
        let mut idx: GroupedIndex<i64> = GroupedIndex::new(schema, key);
        idx.apply(&tup![1i64, 10i64], &2);
        idx.apply(&tup![1i64, 20i64], &3);
        idx.apply(&tup![2i64, 10i64], &1);

        assert_eq!(idx.marginal(&tup![1i64]), 5);
        assert_eq!(idx.marginal(&tup![2i64]), 1);
        assert_eq!(idx.marginal(&tup![3i64]), 0);

        let g = idx.group(&tup![1i64]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(&tup![10i64]), 2);
    }

    #[test]
    fn grouped_index_prunes_empty_groups() {
        let schema = ab();
        let key = Schema::from([schema.vars()[0]]);
        let mut idx: GroupedIndex<i64> = GroupedIndex::new(schema, key);
        idx.apply(&tup![1i64, 10i64], &2);
        idx.apply(&tup![1i64, 10i64], &-2);
        assert_eq!(idx.group_count(), 0);
        assert!(idx.group(&tup![1i64]).is_none());
    }

    #[test]
    fn from_relation_agrees_with_incremental() {
        let rel = Relation::from_rows(
            ab(),
            [
                (tup![1i64, 10i64], 1i64),
                (tup![1i64, 20i64], 2i64),
                (tup![2i64, 30i64], 3i64),
            ],
        );
        let key = Schema::from([ab().vars()[1]]);
        let idx = GroupedIndex::from_relation(&rel, key);
        assert_eq!(idx.marginal(&tup![10i64]), 1);
        assert_eq!(idx.marginal(&tup![20i64]), 2);
        assert_eq!(idx.marginal(&tup![30i64]), 3);
    }

    #[test]
    fn empty_key_groups_everything_together() {
        let mut idx: GroupedIndex<i64> = GroupedIndex::new(ab(), Schema::empty());
        idx.apply(&tup![1i64, 10i64], &2);
        idx.apply(&tup![2i64, 20i64], &3);
        assert_eq!(idx.marginal(&Tuple::empty()), 5);
        assert_eq!(idx.group(&Tuple::empty()).unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn key_outside_schema_rejected() {
        let [z] = vars(["rel_z"]);
        let _: GroupedIndex<i64> = GroupedIndex::new(ab(), Schema::from([z]));
    }
}
