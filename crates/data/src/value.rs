//! Domain values.
//!
//! Engines that work over arbitrary schemas carry [`Value`]s; specialized
//! kernels (triangles, OuMv) work over raw `u64` ids instead and never touch
//! this type (DESIGN.md §5).

use std::fmt;
use std::sync::Arc;

/// A single domain value: integer or string.
///
/// Strings are `Arc<str>` so tuple clones are cheap; integer values are the
/// common case in every workload of the paper.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Integer value (ids, dates, counts, buckets).
    Int(i64),
    /// Interned-ish string value (shared, cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// The integer payload as `f64`, for lifting numeric features.
    ///
    /// Returns `0.0` for strings (non-numeric features must be one-hot
    /// encoded by the caller before lifting).
    pub fn to_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Str(_) => 0.0,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let v = Value::from(42i64);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
        assert_eq!(v.to_f64(), 42.0);
    }

    #[test]
    fn str_roundtrip() {
        let v = Value::str("hello");
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn equality_and_hash_consistency() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::from(1i64));
        set.insert(Value::str("1"));
        assert_eq!(set.len(), 2, "Int(1) and Str(\"1\") are distinct");
        assert!(set.contains(&Value::from(1i64)));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [Value::str("b"), Value::from(2i64), Value::from(1i64)];
        vals.sort();
        assert_eq!(vals[0], Value::from(1i64));
        assert_eq!(vals[1], Value::from(2i64));
    }

    #[test]
    fn clone_is_cheap_for_strings() {
        let v = Value::str("shared");
        let w = v.clone();
        assert_eq!(v, w);
    }
}
