//! Relations over rings, following the data model of the paper (Sec. 2).
//!
//! A relation over schema `S` and ring `D` is a finite-support function
//! `R : Dom(S) → D` mapping *keys* (tuples) to *payloads* (ring values).
//! Relations are hash maps, so lookup/insert/delete run in amortized
//! constant time and entries enumerate with constant delay. [`GroupedIndex`]
//! adds the projection indexes the paper requires: constant-delay
//! enumeration of all tuples agreeing on a given projection, with amortized
//! constant-time maintenance.
//!
//! Updates are ordinary tuples with ring payloads: inserts carry positive
//! values, deletes negative ones, so batches commute (Sec. 2).

pub mod codec;
pub mod database;
pub mod hash;
pub mod ops;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod update;
pub mod value;

pub use codec::Persist;
pub use database::Database;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use relation::{GroupedIndex, Relation};
pub use schema::{sym, vars, Schema, Sym};
pub use tuple::Tuple;
pub use update::{
    consolidate, consolidated_len, partition_updates, shard_of, shard_of_column, Batch, Update,
};
pub use value::Value;
