//! Offline vendored shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the rand 0.8 API its benches, workloads, and
//! tests actually use: [`rngs::StdRng`] (a seedable PRNG), the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), and [`SeedableRng`]
//! (`seed_from_u64`). The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction rand's own `SmallRng` family uses —
//! so streams are deterministic, fast, and statistically sound for
//! workload generation. Not cryptographically secure, which no caller here
//! needs.

use std::ops::Range;

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` via widening multiply (Lemire-style; the
/// ~2^-64 bias is irrelevant for workload generation).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait: every [`RngCore`] is an [`Rng`].
pub trait Rng: RngCore {
    /// Draw a value of an inferred type ([`Standard`] distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from a range, e.g. `rng.gen_range(0..100i64)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded through SplitMix64.
    ///
    /// Named `StdRng` to match the rand API; the streams differ from
    /// upstream rand's `StdRng` (ChaCha12), which matters to nothing in
    /// this workspace — seeds only pin determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..7i64);
            assert!((-5..7).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn reference_through_mut_ref_works() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
    }
}
