//! Offline vendored shim for the `criterion` crate.
//!
//! Exposes exactly what the benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a fixed-budget mean (warm-up
//! then ~1s of timed batches) printed as one line per benchmark — enough
//! to compare hot paths locally without statistical machinery or plotting.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measure: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Run one named benchmark. The closure receives a [`Bencher`] and
    /// should call [`Bencher::iter`] with the code under test.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            f64::NAN
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!("{name:<40} {:>12.1} ns/iter ({} iters)", per_iter, b.iters);
        self
    }
}

/// Times a closure over many iterations.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, first warming up, then timing batches until the
    /// measurement budget is spent.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up: also sizes the batch so each timed batch is ~1ms.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((1_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measure {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
        };
        let mut ran = false;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
