//! Offline vendored shim for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the slice of proptest its property tests use: the [`strategy::Strategy`]
//! trait with `prop_map`, range/tuple/[`strategy::Just`]/union strategies,
//! [`collection::vec`], `bool::ANY` / `any::<bool>()`, the
//! [`test_runner::TestRunner`] with [`test_runner::ProptestConfig`], and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros.
//!
//! Differences from upstream, deliberate for an offline test shim:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim; the inputs here are small by construction.
//! * **Deterministic seeding.** Each test's stream is seeded from its name,
//!   so failures reproduce without a persistence file.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::Range;

    /// A generator of test inputs. Upstream proptest pairs this with a
    /// shrinking value tree; the shim only generates.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut StdRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut StdRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of one value.
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn new_value(&self, _rng: &mut StdRng) -> V {
            self.0.clone()
        }
    }

    /// The `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice among several strategies of one value type.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from type-erased options. Panics if empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Deterministic per-test RNG: FNV-1a over the test path seeds the
    /// stream, so a failure reproduces on re-run without a regression file.
    pub fn rng_for(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Strategies for `bool` (upstream `proptest::bool`).
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any;

    /// Uniform `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }
}

/// `any::<T>()` support (upstream `proptest::arbitrary`).
pub mod arbitrary {
    use super::strategy::Strategy;

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy value.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = crate::bool::Any;
        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }

    /// The canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies (upstream `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Admissible lengths for [`vec`]: an exact size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, 0..30)` or `vec(element, 3)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Test execution (upstream `proptest::test_runner`).
pub mod test_runner {
    use super::strategy::Strategy;
    use std::fmt;

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Override only the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case failed (the shim has no `Reject`: strategies here
    /// never filter).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure with a rendered message.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Runs one test over `config.cases` generated inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        name: String,
    }

    impl TestRunner {
        /// A runner whose RNG stream is seeded from `name`.
        pub fn new_for(config: ProptestConfig, name: &str) -> Self {
            TestRunner {
                config,
                name: name.to_string(),
            }
        }

        /// Generate and run all cases; panics on the first failure with
        /// the case index and generated inputs.
        pub fn run<S>(&mut self, strategy: &S, test: impl Fn(S::Value) -> Result<(), TestCaseError>)
        where
            S: Strategy,
            S::Value: fmt::Debug + Clone,
        {
            let mut rng = super::strategy::rng_for(&self.name);
            for case in 0..self.config.cases {
                let value = strategy.new_value(&mut rng);
                if let Err(e) = test(value.clone()) {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}\ninput: {:?}",
                        self.name, case, self.config.cases, e, value
                    );
                }
            }
        }
    }
}

/// The usual glob import target.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new_for(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let strategy = ($($strat,)+);
                runner.run(&strategy, |($($arg,)+)| {
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    outcome
                });
            }
        )*
    };
}

/// Assert a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies (all options equally weighted).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in -5i64..5, b in 0usize..3) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 3);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0i32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in v {
                prop_assert!((0..10).contains(&x));
            }
        }

        #[test]
        fn map_and_oneof_compose(
            x in prop_oneof![(0i64..3).prop_map(|v| v * 100), Just(-1i64)],
            flag in any::<bool>(),
        ) {
            prop_assert!(x == -1 || x % 100 == 0);
            prop_assert_eq!(flag as u8 + (!flag) as u8, 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_input() {
        let mut runner = crate::test_runner::TestRunner::new_for(
            crate::test_runner::ProptestConfig::with_cases(16),
            "shim_failure_demo",
        );
        runner.run(&(0i64..100,), |(v,)| {
            if v >= 0 {
                Err(crate::test_runner::TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    fn exact_vec_size() {
        let s = crate::collection::vec(0i64..4, 3);
        let mut rng = crate::strategy::rng_for("exact_vec_size");
        for _ in 0..20 {
            assert_eq!(Strategy::new_value(&s, &mut rng).len(), 3);
        }
    }
}
