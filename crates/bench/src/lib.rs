//! Shared harness utilities for the experiment binaries.
//!
//! Every binary regenerates one figure or measurable claim of the paper
//! (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
//! recorded results). Output is a markdown table on stdout so runs can be
//! pasted into EXPERIMENTS.md directly.

use std::time::{Duration, Instant};

pub use ivm_obs::Json;

/// Scale factor for experiment sizes, read from `RIVM_SCALE` (default 1.0).
/// Use e.g. `RIVM_SCALE=0.2` for a quick smoke run.
pub fn scale() -> f64 {
    std::env::var("RIVM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// `n` scaled by [`scale`], at least `min`.
pub fn scaled(n: usize, min: usize) -> usize {
    ((n as f64 * scale()) as usize).max(min)
}

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Nanoseconds per operation.
pub fn ns_per(d: Duration, ops: usize) -> f64 {
    if ops == 0 {
        0.0
    } else {
        d.as_nanos() as f64 / ops as f64
    }
}

/// Throughput in operations per second.
///
/// Total on every input: an empty or unstarted stream (zero ops, or a
/// zero duration such as `ShardedStats::max_busy()` before any worker
/// reported) yields `0.0` rather than `inf`/`NaN`, so downstream ratio
/// math and the `BENCH_*.json` emissions never see a non-finite row.
pub fn per_sec(d: Duration, ops: usize) -> f64 {
    if ops == 0 || d.as_secs_f64() == 0.0 {
        0.0
    } else {
        ops as f64 / d.as_secs_f64()
    }
}

/// `a / b` guarded for speedup columns: `NaN` when the baseline is zero
/// or either input is non-finite (the JSON emitters render `NaN` as
/// `null` instead of leaking an invalid token).
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 || !a.is_finite() || !b.is_finite() {
        f64::NAN
    } else {
        a / b
    }
}

/// A simple markdown table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Print as github-flavored markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Escape a string for embedding in JSON emissions. Delegates to the
/// telemetry crate's escaper (which also handles control characters);
/// prefer building whole documents with [`Json`] via [`bench_doc`].
pub fn json_escape(s: &str) -> String {
    ivm_obs::json_escape(s)
}

/// Start a `BENCH_*.json` document with the header fields every
/// experiment shares: the bench name and the [`scale`] it ran at. Bins
/// append their own fields and hand the document to
/// [`write_bench_json`] — one emission path instead of a hand-rolled
/// string builder per binary.
pub fn bench_doc(bench: &str) -> Json {
    Json::obj()
        .field("bench", Json::str(bench))
        .field("scale", Json::num(scale()))
}

/// Write `doc` to the path named by the `env_var` override (default
/// `default_path`), reporting where it went on stdout — the shared tail
/// of every `BENCH_*.json` emission. Non-finite numbers were already
/// mapped to `null` by [`Json::num`], so the file is always valid JSON.
pub fn write_bench_json(env_var: &str, default_path: &str, doc: &Json) {
    let path = std::env::var(env_var).unwrap_or_else(|_| default_path.to_string());
    let mut body = doc.render();
    body.push('\n');
    match std::fs::write(&path, body) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

/// Format a float compactly.
pub fn fmt(v: f64) -> String {
    if v.is_nan() {
        "n/a".into()
    } else if v == f64::INFINITY {
        "inf".into()
    } else if v >= 1e6 {
        format!("{:.2e}", v)
    } else if v >= 100.0 {
        format!("{:.0}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// log_N of a ratio: the empirical exponent `log(v2/v1)/log(n2/n1)` used
/// to compare measured scaling against the paper's O(N^x) claims.
pub fn empirical_exponent(n1: usize, v1: f64, n2: usize, v2: f64) -> f64 {
    if v1 <= 0.0 || v2 <= 0.0 || n1 == n2 {
        return f64::NAN;
    }
    (v2 / v1).ln() / ((n2 as f64) / (n1 as f64)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_math() {
        // Doubling n quadruples v → exponent 2.
        let e = empirical_exponent(100, 10.0, 200, 40.0);
        assert!((e - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // smoke: no panic
    }

    #[test]
    fn scaled_respects_min() {
        assert!(scaled(100, 10) >= 10);
    }

    #[test]
    fn bench_doc_carries_header_and_nulls_non_finite() {
        let doc = bench_doc("t").field("x", Json::num(f64::NAN));
        let s = doc.render();
        assert!(s.starts_with(r#"{"bench":"t","scale":"#), "{s}");
        assert!(s.contains(r#""x":null"#), "{s}");
    }

    /// The empty/unstarted-stream guards: no `inf`/`NaN` throughput from
    /// zero ops or a zero busy-time denominator, and speedup ratios over
    /// a zero baseline come back `NaN` (rendered `null` in JSON) instead
    /// of panicking or leaking `inf`.
    #[test]
    fn per_sec_and_ratio_guard_degenerate_inputs() {
        assert_eq!(per_sec(Duration::ZERO, 0), 0.0);
        assert_eq!(per_sec(Duration::ZERO, 100), 0.0);
        assert_eq!(per_sec(Duration::from_secs(1), 0), 0.0);
        assert!(per_sec(Duration::from_secs(2), 100).is_finite());
        assert!(ratio(1.0, 0.0).is_nan());
        assert!(ratio(0.0, 0.0).is_nan());
        assert!(ratio(f64::INFINITY, 1.0).is_nan());
        assert_eq!(ratio(4.0, 2.0), 2.0);
        assert_eq!(fmt(f64::NAN), "n/a");
    }
}
