//! **Sec 3.3**: the ε sweep for IVMε triangle maintenance, plus the two
//! ablations called out in DESIGN.md §5.
//!
//! Paper's claim: single-tuple update time O(N^max(ε,1−ε)), minimized at
//! ε = ½. The ablations show both ingredients matter: without the HL view
//! the heavy/heavy-light case degrades to O(N); without rebalancing the
//! partitions go stale and the engine degenerates to first-order deltas.
//!
//! Run: `cargo run --release -p ivm-bench --bin eps_sweep`

use ivm_bench::{fmt, ns_per, scaled, time, Table};
use ivm_ivme::{Rel, TriangleIvmEps, TriangleMaintainer};
use ivm_workloads::graphs::EdgeStream;

fn run(mut eng: TriangleIvmEps, n: usize, probe: usize) -> (f64, f64, i64) {
    let stream = EdgeStream::zipf((n / 8).max(32) as u64, n + probe, 0.9, 5);
    for &(a, b) in &stream.edges[..n] {
        eng.apply(Rel::R, a, b, 1);
        eng.apply(Rel::S, a, b, 1);
        eng.apply(Rel::T, a, b, 1);
    }
    let w0 = eng.work();
    let (_, d) = time(|| {
        for i in 0..probe {
            let (oa, ob) = stream.edges[i];
            let (na, nb) = stream.edges[n + i];
            let rel = Rel::ALL[i % 3];
            eng.apply(rel, oa, ob, -1);
            eng.apply(rel, na, nb, 1);
        }
    });
    let ops = probe * 2;
    (
        (eng.work() - w0) as f64 / ops as f64,
        ns_per(d, ops),
        eng.count(),
    )
}

fn main() {
    let n = scaled(40_000, 4_000);
    let probe = scaled(4_000, 400);
    println!("# IVMε ε-sweep on triangle maintenance (N={n})\n");
    let mut table = Table::new(&["variant", "eps", "work/upd", "ns/upd", "count"]);
    for &eps in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let (w, ns, c) = run(TriangleIvmEps::new(eps), n, probe);
        table.row(vec![
            "ivm-eps".into(),
            format!("{eps:.1}"),
            fmt(w),
            fmt(ns),
            c.to_string(),
        ]);
    }
    for (name, eng) in [
        ("no-hl-views", TriangleIvmEps::new(0.5).without_hl_views()),
        (
            "no-rebalance",
            TriangleIvmEps::new(0.5).without_rebalancing(),
        ),
    ] {
        let (w, ns, c) = run(eng, n, probe);
        table.row(vec![
            name.into(),
            "0.5".into(),
            fmt(w),
            fmt(ns),
            c.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape (paper): work/update is U-shaped in eps with the \
         minimum near 0.5; both ablations are much slower at eps=0.5."
    );
}
