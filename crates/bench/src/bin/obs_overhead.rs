//! Observability overhead guard: the `tri_scaling` dataflow workload run
//! metrics-attached vs detached, measured back to back on the **same
//! engine instance**, best-of-3 pairs.
//!
//! The telemetry layer promises near-zero hot-path cost: relaxed atomic
//! adds on registered handles, nothing at all when detached. This bin
//! holds that promise to a number — if the attached configuration loses
//! more than the acceptance threshold in ingest throughput, it exits
//! nonzero and CI fails.
//!
//! Methodology: separate detached/attached processes (or even separate
//! engine builds) differ by allocator layout and cache history far more
//! than by the few hundred nanoseconds under test — run-to-run spread on
//! a shared box is ±10%. Instead each round builds one engine, warms the
//! probe path, times the hub probe phase detached, *then attaches the
//! registry mid-run* and times the identical phase again. The probe's
//! insert/delete pairs cancel, so both phases start from the same
//! logical state, same tries, same allocations; the only delta is the
//! telemetry. (Phase order slightly favors attached — second pass,
//! warmer caches — which is fine for a regression guard.)
//!
//! Run: `cargo run --release -p ivm-bench --bin obs_overhead`
//! Threshold override: `RIVM_OBS_MAX_REGRESSION_PCT` (default 5.0).
//! Also emits `BENCH_obs.json` (path override: `BENCH_OBS_JSON`).

use ivm_bench::{bench_doc, fmt, per_sec, scaled, time, Json, Table};
use ivm_core::Maintainer;
use ivm_data::ops::lift_one;
use ivm_data::{tup, Database, Update};
use ivm_dataflow::{DataflowEngine, JoinStrategy};
use ivm_obs::MetricsRegistry;
use ivm_workloads::graphs::EdgeStream;

/// `probe` hub insert/delete pairs — tri_scaling's measured phase. The
/// pairs cancel in the ring, so the engine's logical state is unchanged.
fn probe_phase(eng: &mut DataflowEngine<i64>, names: [ivm_data::Sym; 3], probe: usize) -> f64 {
    let hub = 0u64;
    let (_, d) = time(|| {
        for i in 0..probe {
            let r = names[i % 3];
            eng.apply_batch(&[Update::insert(r, tup![hub, hub])])
                .unwrap();
            eng.apply_batch(&[Update::with_payload(r, tup![hub, hub], -1i64)])
                .unwrap();
        }
    });
    per_sec(d, probe * 2)
}

/// One paired measurement: load `edges` (untimed), warm up, time the
/// probe phase detached, attach a registry to the same engine, time it
/// again. Returns `(detached, attached)` updates/second.
fn run_pair(edges: &[(u64, u64)], probe: usize) -> (f64, f64) {
    let q = ivm_query::examples::triangle_count();
    let names = [q.atoms[0].name, q.atoms[1].name, q.atoms[2].name];
    let mut eng = DataflowEngine::<i64>::new_with_strategy(
        q,
        &Database::new(),
        lift_one,
        JoinStrategy::Multiway,
    )
    .unwrap();
    for &(a, b) in edges {
        for r in names {
            eng.apply_batch(&[Update::insert(r, tup![a, b])]).unwrap();
        }
    }
    probe_phase(&mut eng, names, probe / 4 + 1); // warmup, untimed
    let detached = probe_phase(&mut eng, names, probe);

    let registry = MetricsRegistry::new();
    eng.observe(&registry, "tri");
    let attached = probe_phase(&mut eng, names, probe);
    // The attached phase must actually have been observed — a silently
    // detached registry would make the comparison meaningless. The
    // mirror baselines at attach, so exactly the probe updates count.
    assert_eq!(
        registry.snapshot().counter("tri.updates_in"),
        (probe * 2) as u64,
        "registry must mirror the attached probe phase"
    );
    (detached, attached)
}

fn main() {
    let n = scaled(16_000, 2_000);
    let probe = scaled(2_000, 400);
    let stream = EdgeStream::zipf((n / 8).max(32) as u64, n, 0.9, 3);
    let threshold: f64 = std::env::var("RIVM_OBS_MAX_REGRESSION_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    println!(
        "# Observability overhead guard — {n}-edge graph, {probe} hub \
         insert/delete probe pairs (tri_scaling's measured phase), \
         detached-then-attached on one engine, best of 3 pairs\n"
    );

    let mut best_detached = 0.0f64;
    let mut best_attached = 0.0f64;
    for _ in 0..3 {
        let (d, a) = run_pair(&stream.edges, probe);
        best_detached = best_detached.max(d);
        best_attached = best_attached.max(a);
    }
    let regression_pct = (1.0 - best_attached / best_detached) * 100.0;

    let mut table = Table::new(&["mode", "best tuples/s"]);
    table.row(vec!["detached".into(), fmt(best_detached)]);
    table.row(vec!["attached".into(), fmt(best_attached)]);
    table.print();
    println!(
        "\nattached vs detached: {regression_pct:.2}% regression \
         (budget {threshold:.1}%)"
    );

    let doc = bench_doc("obs_overhead")
        .field("edges", Json::num(n as f64))
        .field("probe_updates", Json::num((probe * 2) as f64))
        .field("detached_tuples_per_sec", Json::num(best_detached))
        .field("attached_tuples_per_sec", Json::num(best_attached))
        .field("regression_pct", Json::num(regression_pct))
        .field("threshold_pct", Json::num(threshold));
    ivm_bench::write_bench_json("BENCH_OBS_JSON", "BENCH_obs.json", &doc);

    if regression_pct > threshold {
        eprintln!(
            "FAIL: metrics-attached ingestion is {regression_pct:.2}% slower \
             than detached (budget {threshold:.1}%)"
        );
        std::process::exit(1);
    }
    println!("OK: within budget");
}
