//! Observability overhead guard: the `tri_scaling` dataflow workload run
//! metrics-attached vs detached, measured back to back on the **same
//! engine instance**, best-of-3 pairs.
//!
//! The telemetry layer promises near-zero hot-path cost: relaxed atomic
//! adds on registered handles, nothing at all when detached. This bin
//! holds that promise to a number — if the attached configuration loses
//! more than the acceptance threshold in ingest throughput, it exits
//! nonzero and CI fails.
//!
//! Methodology: separate detached/attached processes (or even separate
//! engine builds) differ by allocator layout and cache history far more
//! than by the few hundred nanoseconds under test — run-to-run spread on
//! a shared box is ±10%. Instead each round builds one engine, warms the
//! probe path, times the hub probe phase detached, *then attaches the
//! registry mid-run* and times the identical phase again. The probe's
//! insert/delete pairs cancel, so both phases start from the same
//! logical state, same tries, same allocations; the only delta is the
//! telemetry. (Phase order slightly favors attached — second pass,
//! warmer caches — which is fine for a regression guard.)
//!
//! Run: `cargo run --release -p ivm-bench --bin obs_overhead`
//! Threshold override: `RIVM_OBS_MAX_REGRESSION_PCT` (default 5.0).
//! Also emits `BENCH_obs.json` (path override: `BENCH_OBS_JSON`).

use ivm_bench::{bench_doc, fmt, per_sec, scaled, time, Json, Table};
use ivm_core::Maintainer;
use ivm_data::ops::lift_one;
use ivm_data::{tup, Database, Update};
use ivm_dataflow::{DataflowEngine, JoinStrategy};
use ivm_obs::{EpochWaterfall, LabelId, MetricsRegistry};
use ivm_workloads::graphs::EdgeStream;
use std::time::{Duration, Instant};

/// `probe` hub insert/delete pairs — tri_scaling's measured phase. The
/// pairs cancel in the ring, so the engine's logical state is unchanged.
fn probe_phase(eng: &mut DataflowEngine<i64>, names: [ivm_data::Sym; 3], probe: usize) -> f64 {
    let hub = 0u64;
    let (_, d) = time(|| {
        for i in 0..probe {
            let r = names[i % 3];
            eng.apply_batch(&[Update::insert(r, tup![hub, hub])])
                .unwrap();
            eng.apply_batch(&[Update::with_payload(r, tup![hub, hub], -1i64)])
                .unwrap();
        }
    });
    per_sec(d, probe * 2)
}

/// The probe phase again, but with every apply under an epoch root
/// span — the full causal-tracing pipeline lit up, so each apply also
/// records a batch child and one span per operator into the ring.
fn traced_phase(
    eng: &mut DataflowEngine<i64>,
    names: [ivm_data::Sym; 3],
    probe: usize,
    registry: &MetricsRegistry,
) -> f64 {
    let hub = 0u64;
    let tracer = registry.tracer().clone();
    let root = tracer.intern("session.ingest");
    let mut epoch = 0u64;
    let (_, d) = time(|| {
        for i in 0..probe {
            let r = names[i % 3];
            let span = tracer.enter(root, epoch);
            eng.apply_batch(&[Update::insert(r, tup![hub, hub])])
                .unwrap();
            span.finish();
            epoch += 1;
            let span = tracer.enter(root, epoch);
            eng.apply_batch(&[Update::with_payload(r, tup![hub, hub], -1i64)])
                .unwrap();
            span.finish();
            epoch += 1;
        }
    });
    per_sec(d, probe * 2)
}

/// One paired measurement: load `edges` (untimed), warm up, time the
/// probe phase detached, attach a registry to the same engine, time it
/// again (metrics only, then with tracing roots). Returns `(detached,
/// attached, traced)` updates/second.
fn run_pair(edges: &[(u64, u64)], probe: usize) -> (f64, f64, f64) {
    let q = ivm_query::examples::triangle_count();
    let names = [q.atoms[0].name, q.atoms[1].name, q.atoms[2].name];
    let mut eng = DataflowEngine::<i64>::new_with_strategy(
        q,
        &Database::new(),
        lift_one,
        JoinStrategy::Multiway,
    )
    .unwrap();
    for &(a, b) in edges {
        for r in names {
            eng.apply_batch(&[Update::insert(r, tup![a, b])]).unwrap();
        }
    }
    probe_phase(&mut eng, names, probe / 4 + 1); // warmup, untimed
    let detached = probe_phase(&mut eng, names, probe);

    let registry = MetricsRegistry::new();
    eng.observe(&registry, "tri");
    let attached = probe_phase(&mut eng, names, probe);
    // The attached phase must actually have been observed — a silently
    // detached registry would make the comparison meaningless. The
    // mirror baselines at attach, so exactly the probe updates count.
    assert_eq!(
        registry.snapshot().counter("tri.updates_in"),
        (probe * 2) as u64,
        "registry must mirror the attached probe phase"
    );
    let traced = traced_phase(&mut eng, names, probe, &registry);
    // The epoch_trace assertion pass: the ring must reconstruct into
    // well-formed waterfalls — a root per retained epoch, every span
    // attached (no orphans), a measured total on each, and the
    // engine's per-operator children actually present under the root.
    let events = registry.tracer().events();
    let falls = EpochWaterfall::from_events(&events);
    assert!(
        !falls.is_empty(),
        "traced phase must leave reconstructible epochs in the ring"
    );
    for w in &falls {
        assert_eq!(w.orphans, 0, "epoch {}: dangling spans", w.epoch);
        assert!(w.total_ns > 0, "epoch {}: unmeasured root", w.epoch);
    }
    assert!(
        falls
            .last()
            .unwrap()
            .stages
            .iter()
            .any(|s| s.label.starts_with("op.")),
        "per-operator spans must nest under the ingest root"
    );
    (detached, attached, traced)
}

/// Hot-path label cost, isolated: record `spans` spans the pre-PR way
/// (a fresh `String` label per span, interned on the spot) vs the
/// interned way (a `LabelId` resolved once at attach, `record_at` per
/// span). Returns `(alloc_ns_per_span, interned_ns_per_span)`.
fn intern_bench(spans: usize) -> (f64, f64) {
    let stages = [
        "ingest",
        "consolidate",
        "partition",
        "queue_wait",
        "apply",
        "advance",
        "notify",
        "flush",
    ];
    let registry = MetricsRegistry::new();
    let tracer = registry.tracer().clone();
    let (_, d_alloc) = time(|| {
        for i in 0..spans {
            let label = format!("stage.{}", stages[i % stages.len()]);
            tracer.span(&label).finish();
        }
    });
    let registry = MetricsRegistry::new();
    let tracer = registry.tracer().clone();
    let ids: Vec<LabelId> = stages
        .iter()
        .map(|s| tracer.intern(&format!("stage.{s}")))
        .collect();
    let t0 = Instant::now();
    let one = Duration::from_nanos(1);
    let (_, d_interned) = time(|| {
        for i in 0..spans {
            tracer.record_at(ids[i % ids.len()], None, 0, t0, one);
        }
    });
    (
        d_alloc.as_secs_f64() * 1e9 / spans as f64,
        d_interned.as_secs_f64() * 1e9 / spans as f64,
    )
}

fn main() {
    let n = scaled(16_000, 2_000);
    let probe = scaled(2_000, 400);
    let stream = EdgeStream::zipf((n / 8).max(32) as u64, n, 0.9, 3);
    let threshold: f64 = std::env::var("RIVM_OBS_MAX_REGRESSION_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    println!(
        "# Observability overhead guard — {n}-edge graph, {probe} hub \
         insert/delete probe pairs (tri_scaling's measured phase), \
         detached-then-attached on one engine, best of 3 pairs\n"
    );

    let mut best_detached = 0.0f64;
    let mut best_attached = 0.0f64;
    let mut best_traced = 0.0f64;
    for _ in 0..3 {
        let (d, a, t) = run_pair(&stream.edges, probe);
        best_detached = best_detached.max(d);
        best_attached = best_attached.max(a);
        best_traced = best_traced.max(t);
    }
    let regression_pct = (1.0 - best_attached / best_detached) * 100.0;
    let traced_pct = (1.0 - best_traced / best_detached) * 100.0;

    let mut table = Table::new(&["mode", "best tuples/s"]);
    table.row(vec!["detached".into(), fmt(best_detached)]);
    table.row(vec!["attached".into(), fmt(best_attached)]);
    table.row(vec!["attached+traced".into(), fmt(best_traced)]);
    table.print();
    println!(
        "\nattached vs detached: {regression_pct:.2}% regression, with \
         epoch tracing {traced_pct:.2}% (budget {threshold:.1}%)"
    );

    // Label-cost isolation: what interning bought the span hot path.
    let (alloc_ns, interned_ns) = intern_bench(scaled(200_000, 20_000));
    println!(
        "per-span label cost: {alloc_ns:.0} ns allocating a String \
         (pre-intern) vs {interned_ns:.0} ns with interned LabelId"
    );

    let doc = bench_doc("obs_overhead")
        .field("edges", Json::num(n as f64))
        .field("probe_updates", Json::num((probe * 2) as f64))
        .field("detached_tuples_per_sec", Json::num(best_detached))
        .field("attached_tuples_per_sec", Json::num(best_attached))
        .field("traced_tuples_per_sec", Json::num(best_traced))
        .field("regression_pct", Json::num(regression_pct))
        .field("traced_regression_pct", Json::num(traced_pct))
        .field("span_alloc_ns", Json::num(alloc_ns))
        .field("span_interned_ns", Json::num(interned_ns))
        .field("threshold_pct", Json::num(threshold));
    ivm_bench::write_bench_json("BENCH_OBS_JSON", "BENCH_obs.json", &doc);

    let worst = regression_pct.max(traced_pct);
    if worst > threshold {
        eprintln!(
            "FAIL: observed ingestion is {worst:.2}% slower than detached \
             (metrics-only {regression_pct:.2}%, with epoch tracing \
             {traced_pct:.2}%; budget {threshold:.1}%)"
        );
        std::process::exit(1);
    }
    println!("OK: within budget");
}
