//! **Fig 7 / Ex 5.1**: the preprocessing/update/delay trade-off for the
//! simplest non-q-hierarchical query `Q(A) = Σ_B R(A,B)·S(B)`.
//!
//! IVMε realizes every point `(preprocessing, update, delay) =
//! (1, ε, 1−ε)` in log_N space. The claims are worst-case, so we measure
//! them on the structures that realize the worst case:
//!
//! * *update*: `δS(b)` on the heaviest light `B`-value — the engine must
//!   touch its ≤ 2θ = O(N^ε) partners in `R`;
//! * *delay*: per-output-tuple work of full enumeration, which pays the
//!   heavy-key join of size O(N^{1−ε});
//! * *preprocessing*: the O(N) build.
//!
//! `R`'s B-degrees follow a 1/i profile so that both the light maximum
//! (≈ 2θ) and the heavy count (≈ N/θ) scale as the theory requires.
//!
//! A second table places the *generic* engines on the same trade-off
//! space through the `ivm_session` front door: the session classifies
//! `Q(A)` as acyclic-but-not-q-hierarchical and stands up the left-deep
//! dataflow engine (and, with `.shards(4)`, a fleet partitioned by `B`).
//! Both maintain a materialized output, so they sit at the eager
//! extreme of the Fig 7 line — O(1) delay, update work growing with the
//! touched key's degree — where IVMε traces every point in between.
//!
//! Run: `cargo run --release -p ivm-bench --bin fig7_tradeoff`

use ivm_bench::{empirical_exponent, fmt, ns_per, scaled, time, Table};
use ivm_core::Maintainer;
use ivm_data::{tup, Database, Update};
use ivm_ivme::QhEpsEngine;
use ivm_session::Session;

struct Point {
    prep_ms: f64,
    upd_work: f64,
    upd_ns: f64,
    delay_work: f64,
    delay_ns: f64,
    heavy: usize,
}

/// Degrees ∝ 1/i over K = n/16 keys, normalized so the total is ≈ n:
/// key `b_i` gets ~C/i distinct A-partners with C = n/H_K. There are then
/// ≈ C/x keys of degree ≥ x — the profile that realizes both worst-case
/// axes simultaneously (heavy count ~ N^{1−ε}/log, light max ~ 2θ).
fn degree_ladder(n: usize) -> Vec<(u64, usize)> {
    let k = (n / 16).max(16);
    let h: f64 = (1..=k).map(|i| 1.0 / i as f64).sum();
    let c = n as f64 / h;
    let mut out = Vec::with_capacity(k);
    let mut total = 0usize;
    for i in 1..=k {
        if total >= n {
            break;
        }
        let d = ((c / i as f64).round() as usize).clamp(1, n - total);
        out.push((i as u64, d));
        total += d;
    }
    out
}

fn run(n: usize, eps: f64) -> Point {
    let ladder = degree_ladder(n);
    let mut eng = QhEpsEngine::new(eps);
    let (_, prep) = time(|| {
        for &(b, d) in &ladder {
            for a in 0..d as u64 {
                eng.apply_r(a, b, 1);
            }
            eng.apply_s(b, 1);
        }
    });

    // Worst-case single-tuple update: δS on the heaviest *light* key.
    let worst_light = ladder
        .iter()
        .filter(|&&(b, _)| !eng.is_heavy_b(b))
        .max_by_key(|&&(b, _)| eng.deg_b(b))
        .map(|&(b, _)| b)
        .unwrap_or(1);
    let rounds = scaled(2_000, 200);
    let w0 = eng.work();
    let (_, upd) = time(|| {
        for _ in 0..rounds {
            eng.apply_s(worst_light, 1);
            eng.apply_s(worst_light, -1);
        }
    });
    let upd_ops = rounds * 2;
    let upd_work = (eng.work() - w0) as f64 / upd_ops as f64;

    // Enumeration delay: per-tuple cost of a full enumeration.
    let w1 = eng.work();
    let mut tuples = 0usize;
    let (_, enum_d) = time(|| {
        eng.enumerate(&mut |_, _| tuples += 1);
    });
    let delay_work = (eng.work() - w1) as f64 / tuples.max(1) as f64;

    Point {
        prep_ms: prep.as_secs_f64() * 1e3,
        upd_work,
        upd_ns: ns_per(upd, upd_ops),
        delay_work,
        delay_ns: ns_per(enum_d, tuples.max(1)),
        heavy: eng.heavy_len(),
    }
}

/// One generic-engine measurement at size `n` (see the module docs).
struct GenericPoint {
    prep_ms: f64,
    /// Propagation work (delta-join probes + emitted delta tuples) per
    /// single-tuple update on the worst-case (max-degree) `B` key.
    upd_work: f64,
    upd_ns: f64,
    delay_ns: f64,
    engine: String,
}

fn run_session(n: usize, shards: Option<usize>) -> GenericPoint {
    let ladder = degree_ladder(n);
    let q = ivm_query::examples::ex51_query();
    let (rn, sn) = (q.atoms[0].name, q.atoms[1].name);
    let mut db: Database<i64> = Database::new();
    db.create(rn, q.atoms[0].schema.clone());
    db.create(sn, q.atoms[1].schema.clone());
    for &(b, d) in &ladder {
        for a in 0..d as i64 {
            db.apply(&Update::insert(rn, tup![a, b as i64]));
        }
        db.apply(&Update::insert(sn, tup![b as i64]));
    }
    let mut builder = Session::<i64>::builder(q);
    if let Some(s) = shards {
        builder = builder.shards(s);
    }
    let (session, prep) = time(|| builder.build(&db).expect("ex51 query"));
    let mut session = session;

    // Worst-case single-tuple update: δS on the max-degree key (ladder
    // head) — the delta join must touch all of its R partners.
    let worst = ladder[0].0 as i64;
    let rounds = scaled(300, 30);
    let w0 = session.stats().expect("dataflow-backed").work();
    let (_, upd) = time(|| {
        for _ in 0..rounds {
            session
                .apply_batch(&[Update::insert(sn, tup![worst])])
                .unwrap();
            session
                .apply_batch(&[Update::delete(sn, tup![worst])])
                .unwrap();
        }
    });
    let upd_ops = rounds * 2;
    let upd_work = (session.stats().expect("dataflow-backed").work() - w0) as f64 / upd_ops as f64;

    // Enumeration: the dataflow engines keep the output materialized, so
    // per-tuple delay is a constant-time map walk.
    let mut tuples = 0usize;
    let (_, enum_d) = time(|| session.for_each_output(&mut |_, _| tuples += 1));

    GenericPoint {
        prep_ms: prep.as_secs_f64() * 1e3,
        upd_work,
        upd_ns: ns_per(upd, upd_ops),
        delay_ns: ns_per(enum_d, tuples.max(1)),
        engine: format!("{} ({})", session.engine_kind(), session.explain().class()),
    }
}

fn main() {
    let n1 = scaled(40_000, 4_000);
    let n2 = n1 * 8;
    println!("# Fig 7 — trade-off space for Q(A) = Σ_B R(A,B)·S(B)\n");
    println!("N1={n1}, N2={n2}; exponents = log(v2/v1)/log(N2/N1)\n");
    let mut table = Table::new(&[
        "eps",
        "prep(N2) ms",
        "upd work N1",
        "upd work N2",
        "upd exp (≈eps)",
        "delay work N1",
        "delay work N2",
        "delay exp (≈1-eps)",
        "heavy N2",
        "upd ns",
        "delay ns",
    ]);
    for &eps in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let p1 = run(n1, eps);
        let p2 = run(n2, eps);
        let ue = empirical_exponent(n1, p1.upd_work, n2, p2.upd_work);
        let de = empirical_exponent(n1, p1.delay_work, n2, p2.delay_work);
        table.row(vec![
            format!("{eps:.2}"),
            format!("{:.1}", p2.prep_ms),
            fmt(p1.upd_work),
            fmt(p2.upd_work),
            format!("{ue:.2}"),
            fmt(p1.delay_work),
            fmt(p2.delay_work),
            format!("{de:.2}"),
            p2.heavy.to_string(),
            fmt(p2.upd_ns),
            fmt(p2.delay_ns),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape (paper): update exponent grows with eps, delay \
         exponent falls as 1-eps; eps=1/2 balances both at ~N^0.5; the \
         (update, delay) pairs trace the Fig 7 line between the eager and \
         lazy extremes."
    );

    // ── The generic engines on the same space, via the session API ──
    println!("\n# Generic engines via ivm::Session (same ladder workload)\n");
    let mut generic = Table::new(&[
        "row",
        "selected engine",
        "prep(N2) ms",
        "upd work N1",
        "upd work N2",
        "upd exp (≈1: max-degree key)",
        "upd ns N2",
        "delay ns/tuple N2 (≈O(1))",
    ]);
    for (row, shards) in [("session auto", None), ("session .shards(4)", Some(4))] {
        let p1 = run_session(n1, shards);
        let p2 = run_session(n2, shards);
        let ue = empirical_exponent(n1, p1.upd_work, n2, p2.upd_work);
        generic.row(vec![
            row.to_string(),
            p2.engine.clone(),
            format!("{:.1}", p2.prep_ms),
            fmt(p1.upd_work),
            fmt(p2.upd_work),
            format!("{ue:.2}"),
            fmt(p2.upd_ns),
            fmt(p2.delay_ns),
        ]);
    }
    generic.print();
    println!(
        "\nThe dataflow rows sit at the eager extreme of the line: \
         materialized output (constant delay) bought with update work \
         proportional to the touched key's degree — the max-degree key \
         costs ~N/log N partner probes, hence an update exponent near 1 \
         where IVMε caps it at eps. Sharding splits each key's partner \
         set by B, so a single-key worst-case update lands on one shard \
         and keeps the same exponent; batches spanning many keys are \
         where the fleet pays off (see shard_scaling)."
    );
}
