//! **Sec 4.2**: cascading q-hierarchical queries.
//!
//! `Q1 = R·S·T` (a 3-path, not hierarchical) is rewritten through the
//! q-hierarchical `Q2 = R·S`. With the protocol "enumerate Q2 before Q1",
//! every update is constant-time and both outputs enumerate with constant
//! delay. Baselines maintaining `Q1` directly must give up one side of
//! the trade-off (Theorem 4.1):
//!
//! * *eager-direct* — first-order deltas into a materialized `Q1` list:
//!   constant delay, but updates pay the delta-output size
//!   (O(fanout²) per update on the path join);
//! * *lazy re-evaluation* — constant-time updates, but the first output
//!   tuple waits for a full join.
//!
//! We report both axes; the cascade should match the best of each.
//!
//! Run: `cargo run --release -p ivm-bench --bin cascade`

use ivm_bench::{fmt, per_sec, scaled, Table};
use ivm_core::cascade::CascadeEngine;
use ivm_core::{LazyListEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, Database, FxHashMap, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// First-order-delta maintenance of the materialized 3-path output,
/// specialized to u64-ish keys for a fair (favorable) baseline.
#[derive(Default)]
struct EagerDirect {
    r: FxHashMap<i64, Vec<i64>>,      // a → b's
    r_by_b: FxHashMap<i64, Vec<i64>>, // b → a's
    s: FxHashMap<i64, Vec<i64>>,      // b → c's
    s_by_c: FxHashMap<i64, Vec<i64>>, // c → b's
    t: FxHashMap<i64, Vec<i64>>,      // c → d's
    t_by_d: FxHashMap<i64, Vec<i64>>,
    out: FxHashMap<(i64, i64, i64, i64), i64>,
}

impl EagerDirect {
    fn insert_r(&mut self, a: i64, b: i64) {
        for &c in self.s.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
            for &d in self.t.get(&c).map(|v| v.as_slice()).unwrap_or(&[]) {
                *self.out.entry((a, b, c, d)).or_insert(0) += 1;
            }
        }
        self.r.entry(a).or_default().push(b);
        self.r_by_b.entry(b).or_default().push(a);
    }
    fn insert_s(&mut self, b: i64, c: i64) {
        for &a in self.r_by_b.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
            for &d in self.t.get(&c).map(|v| v.as_slice()).unwrap_or(&[]) {
                *self.out.entry((a, b, c, d)).or_insert(0) += 1;
            }
        }
        self.s.entry(b).or_default().push(c);
        self.s_by_c.entry(c).or_default().push(b);
    }
    fn insert_t(&mut self, c: i64, d: i64) {
        for &b in self.s_by_c.get(&c).map(|v| v.as_slice()).unwrap_or(&[]) {
            for &a in self.r_by_b.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
                *self.out.entry((a, b, c, d)).or_insert(0) += 1;
            }
        }
        self.t.entry(c).or_default().push(d);
        self.t_by_d.entry(d).or_default().push(c);
    }
}

struct Outcome {
    upd_per_sec: f64,
    avg_first_tuple: Duration,
    tuples: usize,
}

fn report(table: &mut Table, name: &str, o: Outcome) {
    table.row(vec![
        name.into(),
        fmt(o.upd_per_sec),
        format!("{:.3}", o.avg_first_tuple.as_secs_f64() * 1e3),
        o.tuples.to_string(),
    ]);
}

fn main() {
    let n = scaled(60_000, 6_000);
    let enum_every = n / 6;
    let (q1, q2) = ivm_query::examples::ex45_pair();
    let (rn, sn, tn) = (sym("e45_R"), sym("e45_S"), sym("e45_T"));
    let dom = (n / 20).max(10) as i64;
    let gen_stream = || {
        let mut rng = StdRng::seed_from_u64(17);
        (0..n)
            .map(|i| (i % 3, rng.gen_range(0..dom), rng.gen_range(0..dom)))
            .collect::<Vec<_>>()
    };
    let stream = gen_stream();

    println!("# Cascading q-hierarchical queries (Sec 4.2)\n");
    println!("{n} inserts over Q1 = R·S·T; Q1 output consumed every {enum_every} updates\n");
    let mut table = Table::new(&[
        "approach",
        "updates/s",
        "avg first-Q1-tuple ms",
        "Q1 tuples",
    ]);

    // 1. Cascade engine following the protocol.
    {
        let mut eng: CascadeEngine<i64> =
            CascadeEngine::new(q1.clone(), q2.clone(), &Database::new(), lift_one).unwrap();
        let mut firsts = Vec::new();
        let mut tuples = 0usize;
        let mut upd_time = Duration::ZERO;
        for (i, &(rel, a, b)) in stream.iter().enumerate() {
            let relname = [rn, sn, tn][rel];
            let t0 = Instant::now();
            eng.apply(&Update::insert(relname, tup![a, b])).unwrap();
            upd_time += t0.elapsed();
            if (i + 1) % enum_every == 0 {
                // Protocol: Q2 first (piggybacks the refresh), then Q1.
                eng.enumerate_q2(&mut |_, _| {}).unwrap();
                let t0 = Instant::now();
                let mut first = None;
                eng.enumerate_q1(&mut |_, _| {
                    if first.is_none() {
                        first = Some(t0.elapsed());
                    }
                    tuples += 1;
                })
                .unwrap();
                firsts.push(first.unwrap_or_else(|| t0.elapsed()));
            }
        }
        report(
            &mut table,
            "cascade (Q1' via Q2)",
            Outcome {
                upd_per_sec: per_sec(upd_time, n),
                avg_first_tuple: firsts.iter().sum::<Duration>() / firsts.len() as u32,
                tuples,
            },
        );
    }

    // 2. Eager-direct: first-order deltas, materialized Q1.
    {
        let mut eng = EagerDirect::default();
        let mut firsts = Vec::new();
        let mut tuples = 0usize;
        let mut upd_time = Duration::ZERO;
        for (i, &(rel, a, b)) in stream.iter().enumerate() {
            let t0 = Instant::now();
            match rel {
                0 => eng.insert_r(a, b),
                1 => eng.insert_s(a, b),
                _ => eng.insert_t(a, b),
            }
            upd_time += t0.elapsed();
            if (i + 1) % enum_every == 0 {
                let t0 = Instant::now();
                let mut first = None;
                for _ in eng.out.iter().take(usize::MAX) {
                    if first.is_none() {
                        first = Some(t0.elapsed());
                    }
                    tuples += 1;
                }
                firsts.push(first.unwrap_or_else(|| t0.elapsed()));
            }
        }
        report(
            &mut table,
            "eager-direct (1st-order deltas)",
            Outcome {
                upd_per_sec: per_sec(upd_time, n),
                avg_first_tuple: firsts.iter().sum::<Duration>() / firsts.len().max(1) as u32,
                tuples,
            },
        );
    }

    // 3. Lazy re-evaluation.
    {
        let mut eng: LazyListEngine<i64> =
            LazyListEngine::new(q1.clone(), &Database::new(), lift_one).unwrap();
        let mut firsts = Vec::new();
        let mut tuples = 0usize;
        let mut upd_time = Duration::ZERO;
        for (i, &(rel, a, b)) in stream.iter().enumerate() {
            let relname = [rn, sn, tn][rel];
            let t0 = Instant::now();
            eng.apply(&Update::insert(relname, tup![a, b])).unwrap();
            upd_time += t0.elapsed();
            if (i + 1) % enum_every == 0 {
                let t0 = Instant::now();
                let mut first = None;
                eng.for_each_output(&mut |_, _| {
                    if first.is_none() {
                        first = Some(t0.elapsed());
                    }
                    tuples += 1;
                });
                firsts.push(first.unwrap_or_else(|| t0.elapsed()));
            }
        }
        report(
            &mut table,
            "lazy re-evaluation",
            Outcome {
                upd_per_sec: per_sec(upd_time, n),
                avg_first_tuple: firsts.iter().sum::<Duration>() / firsts.len() as u32,
                tuples,
            },
        );
    }

    table.print();
    println!(
        "\nExpected shape (paper/[38]): the cascade matches the lazy \
         baseline's cheap updates AND the eager baseline's instant first \
         tuple; each baseline loses badly on one axis."
    );
}
