//! **Sec 4.6**: insert-only versus insert-delete maintenance.
//!
//! The α-acyclic (non-q-hierarchical) 3-path full join cannot have both
//! constant updates and delay under insert-delete streams (Theorem 4.1),
//! but under insert-only streams amortized O(1) per insert is possible:
//! buffer inserts and rebuild the factorized output on demand. We compare
//! against lazy re-evaluation (which materializes the full output on every
//! enumeration) and report time-to-first-output-tuple, where the
//! factorized representation shines.
//!
//! Run: `cargo run --release -p ivm-bench --bin insert_only`

use ivm_bench::{fmt, per_sec, scaled, time, Table};
use ivm_core::acyclic::InsertOnlyEngine;
use ivm_core::{LazyListEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, Database, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let n = scaled(100_000, 10_000);
    let enum_every = n / 5;
    println!("# Insert-only maintenance of the 3-path full join (Sec 4.6)\n");
    println!(
        "{n} inserts; enumeration every {enum_every} (consuming only the first 1000 tuples)\n"
    );

    let q = ivm_query::examples::path3_query();
    let (rn, sn, tn) = (sym("p3_R"), sym("p3_S"), sym("p3_T"));
    let dom = (n / 20).max(10) as i64;
    let mut rng = StdRng::seed_from_u64(13);
    let stream: Vec<Update<i64>> = (0..n)
        .map(|i| {
            let x = rng.gen_range(0..dom);
            let y = rng.gen_range(0..dom);
            match i % 3 {
                0 => Update::insert(rn, tup![x, y]),
                1 => Update::insert(sn, tup![x, y]),
                _ => Update::insert(tn, tup![x, y]),
            }
        })
        .collect();

    let mut table = Table::new(&["engine", "inserts/s", "avg first-tuple ms", "rebuilds"]);

    {
        let mut eng: InsertOnlyEngine<i64> = InsertOnlyEngine::new(q.clone()).unwrap();
        let mut first_tuple = Vec::new();
        let (_, d) = time(|| {
            for (i, u) in stream.iter().enumerate() {
                eng.insert(u).unwrap();
                if (i + 1) % enum_every == 0 {
                    let t0 = Instant::now();
                    let mut k = 0usize;
                    let mut first = None;
                    eng.for_each_output(&mut |_, _| {
                        if first.is_none() {
                            first = Some(t0.elapsed());
                        }
                        k += 1;
                        // Consume only a prefix: factorized enumeration can
                        // stop anytime. (Callback API: we simply count on.)
                    })
                    .unwrap();
                    first_tuple.push(first.unwrap_or_else(|| t0.elapsed()));
                }
            }
        });
        let avg_first =
            first_tuple.iter().map(|d| d.as_secs_f64()).sum::<f64>() / first_tuple.len() as f64;
        table.row(vec![
            "insert-only factorized".into(),
            fmt(per_sec(d, n)),
            format!("{:.2}", avg_first * 1e3),
            eng.rebuilds().to_string(),
        ]);
    }

    {
        let mut eng: LazyListEngine<i64> =
            LazyListEngine::new(q.clone(), &Database::new(), lift_one).unwrap();
        let mut first_tuple = Vec::new();
        let (_, d) = time(|| {
            for (i, u) in stream.iter().enumerate() {
                eng.apply(u).unwrap();
                if (i + 1) % enum_every == 0 {
                    let t0 = Instant::now();
                    let mut first = None;
                    eng.for_each_output(&mut |_, _| {
                        if first.is_none() {
                            first = Some(t0.elapsed());
                        }
                    });
                    first_tuple.push(first.unwrap_or_else(|| t0.elapsed()));
                }
            }
        });
        let avg_first =
            first_tuple.iter().map(|d| d.as_secs_f64()).sum::<f64>() / first_tuple.len() as f64;
        table.row(vec![
            "lazy re-evaluation".into(),
            fmt(per_sec(d, n)),
            format!("{:.2}", avg_first * 1e3),
            "-".into(),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape (paper): the factorized engine's first tuple \
         arrives after an O(N) reduce (no output materialization), the lazy \
         baseline pays O(N + |output|) with |output| ≫ N."
    );
}
