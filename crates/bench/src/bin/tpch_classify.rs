//! **Sec 4.4**: the TPC-H classification study.
//!
//! The paper reports (from the SPROUT study \[35\]) that 8 Boolean / 13
//! non-Boolean TPC-H queries are hierarchical, and that the schema's
//! functional dependencies rescue 4 more of each. We run our classifier
//! over join-structure encodings of all 22 queries, with and without the
//! schema FDs. Encodings flatten outer joins and nested subqueries, so
//! exact counts can differ from \[35\]; the *shape* — FDs rescue a
//! substantial block of the workload — is the claim under test.
//!
//! Run: `cargo run --release -p ivm-bench --bin tpch_classify`

use ivm_bench::Table;
use ivm_query::tpch::{classify_tpch, tpch_fds, tpch_queries};

fn main() {
    let fds = tpch_fds();
    println!("# TPC-H classification (hierarchical / q-hierarchical), with and without FDs\n");
    let mut table = Table::new(&["query", "atoms", "bool", "bool+FDs", "full", "full+FDs"]);
    let mut counts = [0usize; 4];
    for (name, q) in tpch_queries() {
        let v = classify_tpch(&q, &fds);
        counts[0] += usize::from(v.bool_plain);
        counts[1] += usize::from(v.bool_fds);
        counts[2] += usize::from(v.full_plain);
        counts[3] += usize::from(v.full_fds);
        let tick = |b: bool| if b { "yes" } else { "-" }.to_string();
        table.row(vec![
            name,
            q.atoms.len().to_string(),
            tick(v.bool_plain),
            tick(v.bool_fds),
            tick(v.full_plain),
            tick(v.full_fds),
        ]);
    }
    table.print();
    println!(
        "\ntotals over 22 queries: Boolean hierarchical {} → {} with FDs; \
         full q-hierarchical {} → {} with FDs",
        counts[0], counts[1], counts[2], counts[3]
    );
    println!(
        "Paper ([35], Sec 4.4): Boolean 8 → 12, non-Boolean 13 → 17. Our \
         encodings flatten subqueries/outer joins, so absolute counts may \
         shift; the FD rescue block is the reproduced effect."
    );
}
