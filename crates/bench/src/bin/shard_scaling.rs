//! Shard-count sweep of the `ivm-shard` parallel engine: 1/2/4/8 shards
//! on (a) the Retailer star join under its Inventory insert stream (fully
//! partitioned by `locn` — the no-replication fast path) and (b) the
//! 3-relation triangle count under a Zipf edge stream (cyclic: two
//! relations partitioned by `a`, one broadcast).
//!
//! Two throughput figures per row:
//!
//! * `wall` — tuples per second of wall-clock time for
//!   enqueue-everything-then-drain on *this* machine. Only exceeds the
//!   1-shard row when real cores back the shard threads.
//! * `scalable` — tuples per second of the **busiest shard's** CPU time
//!   (per-thread CPU clock): the fleet's critical path, i.e. the
//!   sustained throughput once each shard owns a core (the deployment
//!   model). Because it counts CPU work rather than wall time, it stays
//!   truthful when the shards time-slice a smaller machine; with a
//!   perfect split it grows linearly in the shard count, minus the
//!   routing/replication tax.
//!
//! `balance` (mean busy / max busy, 1.0 = even) shows how well the hash
//! partition spread the work.
//!
//! Run: `cargo run --release -p ivm-bench --bin shard_scaling`
//! Also emits `BENCH_shard.json` (path override: `BENCH_SHARD_JSON`) so
//! CI records the scaling trajectory run over run.

use ivm_bench::{bench_doc, fmt, per_sec, ratio, scaled, Json, Table};
use ivm_data::ops::lift_one;
use ivm_data::{tup, Database, Update};
use ivm_shard::ShardedEngine;
use ivm_workloads::graphs::EdgeStream;
use ivm_workloads::RetailerGen;
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Row {
    workload: &'static str,
    shards: usize,
    wall_tps: f64,
    scalable_tps: f64,
    balance: f64,
    broadcast_copies: u64,
}

/// Drive `batches` through the engine pipelined (enqueue everything, then
/// drain once) and measure both throughput figures.
fn run(
    workload: &'static str,
    shards: usize,
    mut engine: ShardedEngine<i64>,
    batches: &[Vec<Update<i64>>],
) -> (Row, i64) {
    let tuples: usize = batches.iter().map(|b| b.len()).sum();
    let start = Instant::now();
    for b in batches {
        engine.enqueue_batch(b).expect("valid batch");
    }
    engine.drain().expect("drain");
    let wall = start.elapsed();
    let stats = engine.sharded_stats();
    let checksum = engine
        .output_relation()
        .iter()
        .map(|(_, p)| *p)
        .sum::<i64>();
    (
        Row {
            workload,
            shards,
            wall_tps: per_sec(wall, tuples),
            scalable_tps: per_sec(stats.max_busy(), tuples),
            balance: stats.balance(),
            broadcast_copies: stats.router.broadcast_copies,
        },
        checksum,
    )
}

fn retailer_rows(rows: &mut Vec<Row>) {
    let n_batches = scaled(60, 10);
    let mut reference = None;
    for shards in SHARD_COUNTS {
        // Fresh generator per fleet size so every run sees the identical
        // initial database and update stream.
        let mut gen = RetailerGen::new(48, 6, 48, 7);
        let db = gen.initial_db(scaled(60_000, 6_000));
        let q = gen.query().clone();
        let batches: Vec<Vec<Update<i64>>> =
            (0..n_batches).map(|_| gen.inventory_batch(1000)).collect();
        let engine = ShardedEngine::new(q, &db, lift_one, shards).unwrap();
        assert_eq!(engine.plan().broadcast_count(), 0, "retailer shards fully");
        let (row, checksum) = run("retailer", shards, engine, &batches);
        match reference {
            None => reference = Some(checksum),
            Some(r) => assert_eq!(r, checksum, "outputs must agree across fleet sizes"),
        }
        rows.push(row);
    }
}

fn triangle_rows(rows: &mut Vec<Row>) {
    let q = ivm_query::examples::triangle_count();
    let names = [q.atoms[0].name, q.atoms[1].name, q.atoms[2].name];
    let stream = EdgeStream::zipf(2_000, scaled(30_000, 3_000), 0.8, 5);
    let batches: Vec<Vec<Update<i64>>> = stream
        .edges
        .chunks(512)
        .map(|chunk| {
            chunk
                .iter()
                .flat_map(|&(a, b)| names.map(|r| Update::insert(r, tup![a, b])))
                .collect()
        })
        .collect();
    let mut reference = None;
    for shards in SHARD_COUNTS {
        let engine = ShardedEngine::new(q.clone(), &Database::new(), lift_one, shards).unwrap();
        assert!(!engine.plan().is_degenerate(), "R/S/T triangle shards");
        // The checksum is the maintained triangle count — it must be
        // identical at every fleet size.
        let (row, count) = run("triangle", shards, engine, &batches);
        match reference {
            None => reference = Some(count),
            Some(r) => assert_eq!(r, count, "triangle counts must agree across fleet sizes"),
        }
        rows.push(row);
    }
}

fn emit_json(rows: &[Row]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = bench_doc("shard_scaling")
        .field("cores", Json::num(cores as f64))
        .field(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        // Speedups are vs. the same workload's 1-shard row.
                        let base = rows
                            .iter()
                            .find(|b| b.workload == r.workload && b.shards == 1)
                            .expect("1-shard baseline present");
                        Json::obj()
                            .field("workload", Json::str(r.workload))
                            .field("shards", Json::num(r.shards as f64))
                            .field("wall_tuples_per_sec", Json::num(r.wall_tps))
                            .field("scalable_tuples_per_sec", Json::num(r.scalable_tps))
                            .field(
                                "wall_speedup_vs_1shard",
                                Json::num(ratio(r.wall_tps, base.wall_tps)),
                            )
                            .field(
                                "scalable_speedup_vs_1shard",
                                Json::num(ratio(r.scalable_tps, base.scalable_tps)),
                            )
                            .field("balance", Json::num(r.balance))
                            .field("broadcast_copies", Json::num(r.broadcast_copies as f64))
                    })
                    .collect(),
            ),
        );
    ivm_bench::write_bench_json("BENCH_SHARD_JSON", "BENCH_shard.json", &doc);
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# Shard scaling — pipelined ingestion, {cores} core(s) visible\n");

    let mut rows = Vec::new();
    retailer_rows(&mut rows);
    triangle_rows(&mut rows);

    let mut table = Table::new(&[
        "workload",
        "shards",
        "wall tuples/s",
        "scalable tuples/s",
        "x vs 1-shard (scalable)",
        "balance",
        "broadcast copies",
    ]);
    for r in &rows {
        let base = rows
            .iter()
            .find(|b| b.workload == r.workload && b.shards == 1)
            .unwrap();
        table.row(vec![
            r.workload.to_string(),
            r.shards.to_string(),
            fmt(r.wall_tps),
            fmt(r.scalable_tps),
            fmt(ratio(r.scalable_tps, base.scalable_tps)),
            format!("{:.2}", r.balance),
            r.broadcast_copies.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: `scalable` grows with the shard count (the \
         critical path shrinks as the hash partition splits the work); \
         `wall` follows only when ≥shards cores exist. The triangle rows \
         pay a broadcast tax for the replicated relation."
    );
    emit_json(&rows);
}
