//! **Sec 4.4 / Ex 4.12**: maintenance under functional dependencies.
//!
//! The chain query `Q(Z,Y,X,W) = R(X,W)·S(X,Y)·T(Y,Z)` is not
//! hierarchical, but with Σ = {X→Y, Y→Z} its Σ-reduct is q-hierarchical
//! and the FD-aware view tree gives constant-time updates (Theorem 4.11).
//! The baseline re-evaluates lazily. Update cost should stay flat for the
//! FD engine as N grows, and grow for the baseline's enumerations.
//!
//! Run: `cargo run --release -p ivm-bench --bin fd_reduct`

use ivm_bench::{fmt, per_sec, scaled, time, Table};
use ivm_core::fd::FdEngine;
use ivm_core::{LazyListEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, Database, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stream(n: usize, dom: i64, seed: u64) -> Vec<Update<i64>> {
    // FD-satisfying: y = f(x), z = g(y) fixed functions.
    let (rn, sn, tn) = (sym("e412_R"), sym("e412_S"), sym("e412_T"));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        match rng.gen_range(0..4) {
            0 => {
                let x = rng.gen_range(0..dom);
                out.push(Update::insert(sn, tup![x, x * 10 + 1]));
            }
            1 => {
                let y = rng.gen_range(0..dom) * 10 + 1;
                out.push(Update::insert(tn, tup![y, y * 10 + 3]));
            }
            _ => {
                let x = rng.gen_range(0..dom);
                let w = rng.gen_range(0..dom);
                out.push(Update::insert(rn, tup![x, w]));
            }
        }
    }
    out
}

fn main() {
    let base = scaled(20_000, 2_000);
    let sizes = [base, base * 4, base * 16];
    let enum_every = 10_000.max(base / 8);
    println!("# FD-aware maintenance of the Ex 4.12 chain query\n");
    let mut table = Table::new(&["N", "engine", "updates/s", "enumerated"]);
    for &n in &sizes {
        let (q, sigma) = ivm_query::examples::ex412_query();
        let dom = (n / 10).max(10) as i64;
        let updates = stream(n, dom, 23);

        let mut fd_eng: FdEngine<i64> =
            FdEngine::new(q.clone(), &sigma, &Database::new(), lift_one).unwrap();
        let mut enumerated = 0usize;
        let (_, d) = time(|| {
            for (i, u) in updates.iter().enumerate() {
                fd_eng.apply(u).unwrap();
                if (i + 1) % enum_every == 0 {
                    fd_eng.for_each_output(&mut |_, _| enumerated += 1);
                }
            }
        });
        table.row(vec![
            n.to_string(),
            "fd-viewtree".into(),
            fmt(per_sec(d, n)),
            enumerated.to_string(),
        ]);

        let mut lazy: LazyListEngine<i64> =
            LazyListEngine::new(q, &Database::new(), lift_one).unwrap();
        let mut enumerated = 0usize;
        let (_, d) = time(|| {
            for (i, u) in updates.iter().enumerate() {
                lazy.apply(u).unwrap();
                if (i + 1) % enum_every == 0 {
                    lazy.for_each_output(&mut |_, _| enumerated += 1);
                }
            }
        });
        table.row(vec![
            n.to_string(),
            "lazy re-eval".into(),
            fmt(per_sec(d, n)),
            enumerated.to_string(),
        ]);
    }
    table.print();
    println!("\nExpected shape (paper): fd-viewtree throughput stays roughly flat with N; lazy re-evaluation degrades.");
}
