//! **Theorem 3.4**: the OuMv → dynamic-triangle reduction, run for real.
//!
//! Algorithm B encodes the matrix as `S`, each round's vectors as `R` and
//! `T`, and answers with the maintained Boolean triangle query. We verify
//! the reduction against the naive bitset solver on *balanced* instances
//! (dense vectors, matrix density tuned so answers split ~50/50 and the
//! naive solver cannot early-exit half the time), and check the theorem's
//! accounting: reduction time ≈ (#updates) × (per-update cost of the
//! triangle engine) + (#rounds) × (one detection).
//!
//! The theorem's *point* is the direction of the inequality: a triangle
//! engine with O(N^{1/2−γ}) worst-case updates would make the total
//! O(n^{3−2γ}), refuting the OuMv conjecture. Our IVMε engine adapts to
//! the instance (sparse `S` rows make its updates cheap), so the measured
//! totals sit well below the worst-case envelope — which is allowed; the
//! conjecture only forbids beating n³ on *all* instances.
//!
//! Run: `cargo run --release -p ivm-bench --bin oumv_reduction`

use ivm_bench::{empirical_exponent, fmt, scaled, time, Table};
use ivm_oumv::bitvec::BitVec;
use ivm_oumv::{solve, NaiveOuMv, OuMvInstance, ReductionOuMv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A balanced instance: u, v dense (p = ½), M density ≈ 2.8/n² so
/// P[uᵀMv = 1] ≈ ½.
fn balanced(n: usize, seed: u64) -> OuMvInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let m_density = 2.8 / (n as f64 * n as f64);
    let mut m = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = BitVec::new(n);
        for j in 0..n {
            if rng.gen_bool(m_density.min(1.0)) {
                row.set(j);
            }
        }
        m.push(row);
    }
    let dense = |rng: &mut StdRng| {
        let mut v = BitVec::new(n);
        for i in 0..n {
            if rng.gen_bool(0.5) {
                v.set(i);
            }
        }
        v
    };
    let pairs = (0..n).map(|_| (dense(&mut rng), dense(&mut rng))).collect();
    OuMvInstance { n, m, pairs }
}

fn main() {
    let base = scaled(128, 32);
    let sizes = [base, base * 2, base * 4];
    println!("# OuMv: naive bitset vs. the Theorem 3.4 triangle reduction\n");
    let mut table = Table::new(&[
        "n",
        "naive ms",
        "reduction ms",
        "upd count",
        "work/upd",
        "answers equal",
        "true rounds",
    ]);
    let mut naive_ms = Vec::new();
    let mut red_ms = Vec::new();
    for &n in &sizes {
        let inst = balanced(n, 42);
        let mut naive = NaiveOuMv::default();
        let (a1, d1) = time(|| solve(&mut naive, &inst));
        let mut red = ReductionOuMv::default();
        let (a2, d2) = time(|| solve(&mut red, &inst));
        // #updates ≈ n² (matrix load) + Σ_r 2(|u_r|+|v_r|) ≈ n² + 2n².
        let upds: usize = inst
            .pairs
            .iter()
            .map(|(u, v)| 2 * (u.count_ones() + v.count_ones()))
            .sum::<usize>()
            + inst.m.iter().map(|r| r.count_ones()).sum::<usize>();
        let trues = a1.iter().filter(|&&b| b).count();
        table.row(vec![
            n.to_string(),
            format!("{:.2}", d1.as_secs_f64() * 1e3),
            format!("{:.2}", d2.as_secs_f64() * 1e3),
            upds.to_string(),
            fmt(red.work() as f64 / upds as f64),
            (a1 == a2).to_string(),
            format!("{trues}/{n}"),
        ]);
        naive_ms.push(d1.as_secs_f64());
        red_ms.push(d2.as_secs_f64());
    }
    table.print();
    let e_naive = empirical_exponent(sizes[0], naive_ms[0], sizes[2], naive_ms[2]);
    let e_red = empirical_exponent(sizes[0], red_ms[0], sizes[2], red_ms[2]);
    println!(
        "\nempirical exponents: naive ≈ n^{}, reduction ≈ n^{}",
        fmt(e_naive),
        fmt(e_red)
    );
    println!(
        "Expected shape (paper): naive ≈ n³/word-size on balanced instances; \
         reduction = Θ(n²) updates × per-update cost, with answers identical. \
         A worst-case o(√N)-update engine would make the reduction subcubic \
         on every instance — that is the lower-bound argument."
    );
}
