//! **Sec 4.5 / Ex 4.14**: static versus dynamic relations.
//!
//! `Q(A,B,C) = Σ_D R(A,D)·S(A,B)·T(B,C)` is not q-hierarchical, so
//! all-dynamic maintenance cannot have constant updates. Declaring `T`
//! static makes the query tractable: updates to `R` and `S` are O(1)
//! regardless of `|T|`. The all-dynamic baseline re-evaluates lazily.
//!
//! Run: `cargo run --release -p ivm-bench --bin static_dynamic`

use ivm_bench::{fmt, per_sec, scaled, time, Table};
use ivm_core::{EagerFactEngine, LazyListEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, Database, Relation, Update};
use ivm_query::varorder::find_tractable_order;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let base = scaled(10_000, 1_000);
    let t_sizes = [base, base * 4, base * 16];
    let updates = scaled(50_000, 5_000);
    let enum_every = updates / 4;
    println!("# Static vs dynamic relations (Ex 4.14)\n");
    println!(
        "{updates} updates to R/S; enumeration every {enum_every}; static T of growing size\n"
    );
    let mut table = Table::new(&["|T|", "engine", "updates/s"]);

    for &tn in &t_sizes {
        let q = ivm_query::examples::ex414_query();
        let (rn, sn, tname) = (sym("e414_R"), sym("e414_S"), sym("e414_T"));
        let bdom = (tn / 8).max(8) as i64;
        let mut rng = StdRng::seed_from_u64(31);
        let mut t_rel = Relation::<i64>::new(q.atoms[2].schema.clone());
        for _ in 0..tn {
            t_rel.apply(tup![rng.gen_range(0..bdom), rng.gen_range(0..bdom)], &1);
        }
        let mut db: Database<i64> = Database::new();
        db.add(tname, t_rel);

        let stream: Vec<Update<i64>> = (0..updates)
            .map(|i| {
                let a = rng.gen_range(0..1000i64);
                let v = rng.gen_range(0..bdom);
                if i % 2 == 0 {
                    Update::insert(rn, tup![a, v])
                } else {
                    Update::insert(sn, tup![a, v])
                }
            })
            .collect();

        // Static-aware view tree.
        {
            let vo = find_tractable_order(&q).expect("Ex 4.14 is tractable");
            let mut eng = EagerFactEngine::with_order(q.clone(), vo, &db, lift_one).unwrap();
            let mut outputs = 0usize;
            let (_, d) = time(|| {
                for (i, u) in stream.iter().enumerate() {
                    eng.apply(u).unwrap();
                    if (i + 1) % enum_every == 0 {
                        // Count outputs without materializing (first 10k).
                        let mut k = 0usize;
                        eng.for_each_output(&mut |_, _| k += 1);
                        outputs += k.min(10_000);
                    }
                }
            });
            let _ = outputs;
            table.row(vec![
                tn.to_string(),
                "static-T viewtree".into(),
                fmt(per_sec(d, updates)),
            ]);
        }

        // All-dynamic baseline: lazy re-evaluation.
        {
            let mut eng = LazyListEngine::new(q.clone(), &db, lift_one).unwrap();
            let (_, d) = time(|| {
                for (i, u) in stream.iter().enumerate() {
                    eng.apply(u).unwrap();
                    if (i + 1) % enum_every == 0 {
                        eng.for_each_output(&mut |_, _| {});
                    }
                }
            });
            table.row(vec![
                tn.to_string(),
                "all-dynamic lazy".into(),
                fmt(per_sec(d, updates)),
            ]);
        }
    }
    table.print();
    println!("\nExpected shape (paper): the static-T engine's throughput is independent of |T|; the baseline degrades with |T|.");
}
