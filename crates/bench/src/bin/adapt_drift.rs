//! Adaptive replanning under mid-stream drift: a skew-flip workload on
//! the 3-relation triangle count, where the relation-size landscape (and
//! the join-friendly plan) inverts halfway through the stream.
//!
//! Every row is one `ivm::Session` built on an **empty** database — the
//! common streaming pattern, and exactly the case where build-time cost
//! snapshots are all-zero noise:
//!
//! * `static-leftdeep` / `static-multiway` — forced plans, lowered once
//!   from the empty snapshot and never reconsidered;
//! * `adaptive` — auto-selection plus `.adaptive(ReplanPolicy::default())`:
//!   the session mirrors the base state, learns live cardinalities, and
//!   re-lowers when the policy fires (first non-empty batch, observed
//!   binary blowup, or a predicted cost ratio from learned counts).
//!
//! The stream's two halves pull in opposite directions. The first half is
//! *sparse*: edges over a wide domain, R receiving the bulk — few
//! triangles close, so the left-deep chain's cheap hash probes beat the
//! multiway join's trie bookkeeping. The second half *flips the skew*:
//! the first half's R edges drain away while S and T (and a trickle of R)
//! concentrate onto a small hub set — relation sizes invert, and the now
//! dense closures make every delta match many partners, which blows the
//! left-deep chain's binary intermediates past what the worst-case-
//! optimal plan ever materializes. Neither static plan should win both
//! halves; the adaptive session should replan (visibly, in `explain()`)
//! and land within range of the better static plan on each side.
//!
//! Run: `cargo run --release -p ivm-bench --bin adapt_drift`
//! Also emits `BENCH_adapt.json` (path override: `BENCH_ADAPT_JSON`) so
//! CI records the adaptivity trajectory run over run.

use ivm_bench::{bench_doc, fmt, per_sec, ratio, scaled, Json, Table};
use ivm_core::Maintainer;
use ivm_data::{sym, tup, vars, Database, Update};
use ivm_query::{Atom, Query};
use ivm_session::{EngineKind, ReplanPolicy, Session};
use std::time::{Duration, Instant};

/// Triangle count Q() = Σ R(a,b)·S(b,c)·T(c,a) over three distinct
/// relations (cyclic: auto-selection resolves to the multiway plan).
fn triangle() -> Query {
    let [a, b, c] = vars(["adr_A", "adr_B", "adr_C"]);
    Query::new(
        "adr_tri",
        [],
        vec![
            Atom::new(sym("adr_R"), [a, b]),
            Atom::new(sym("adr_S"), [b, c]),
            Atom::new(sym("adr_T"), [c, a]),
        ],
    )
}

/// Deterministic splitmix-style generator so every row sees the
/// identical stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> i64 {
        (self.next() % n) as i64
    }
}

/// The full two-half stream: `(batches, flip_index)`.
///
/// **Half A** (sparse, wide domain): T receives the bulk of the inserts,
/// S almost none — `|S| ≪ |R| ≪ |T|`. Deltas rarely find join partners,
/// so the left-deep chain's cheap hash probes shine while the multiway
/// join pays its per-seed search machinery.
///
/// **Half B** (skew flip): half A's T edges drain away while S and R
/// densify onto a small hub set — `|T|` collapses, `|S|` explodes (the
/// sizes of S and T invert). Now every δS finds ~|R_b| partners and
/// every δR finds ~|S_b|: the left-deep chain materializes all of them
/// as binary intermediates only for the nearly-empty T to filter them
/// out, while the multiway search intersects against T *first* (its
/// candidate list is the smallest) and never materializes a thing.
fn skew_flip_stream() -> (Vec<Vec<Update<i64>>>, usize) {
    let (rn, sn, tn) = (sym("adr_R"), sym("adr_S"), sym("adr_T"));
    let half = scaled(140, 30);
    let wide = 4_000u64;
    let hubs = 48u64;
    let mut rng = Rng(0x5eed_ad47);
    let mut batches = Vec::with_capacity(2 * half);
    let mut t_backlog: Vec<(i64, i64)> = Vec::new();

    // Half A: wide sparse domain; T-heavy, S tiny (the asymmetry makes
    // the informed variable order differ from the blind tie-break on the
    // very first batch).
    for _ in 0..half {
        let mut b = Vec::new();
        for _ in 0..128 {
            let e = (rng.below(wide), rng.below(wide));
            t_backlog.push(e);
            b.push(Update::insert(tn, tup![e.0, e.1]));
        }
        for _ in 0..32 {
            b.push(Update::insert(rn, tup![rng.below(wide), rng.below(wide)]));
        }
        for _ in 0..4 {
            b.push(Update::insert(sn, tup![rng.below(wide), rng.below(wide)]));
        }
        batches.push(b);
    }
    // Half B: drain T fast while S (and R) concentrate on the hubs.
    let drain_per_batch = t_backlog.len() * 3 / half;
    for _ in 0..half {
        let mut b = Vec::new();
        for _ in 0..drain_per_batch {
            if let Some((x, y)) = t_backlog.pop() {
                b.push(Update::delete(tn, tup![x, y]));
            }
        }
        for _ in 0..2 {
            b.push(Update::insert(tn, tup![rng.below(hubs), rng.below(hubs)]));
        }
        for _ in 0..96 {
            b.push(Update::insert(rn, tup![rng.below(hubs), rng.below(hubs)]));
        }
        for _ in 0..128 {
            b.push(Update::insert(sn, tup![rng.below(hubs), rng.below(hubs)]));
        }
        batches.push(b);
    }
    (batches, half)
}

struct Row {
    engine: &'static str,
    half_a_tps: f64,
    half_b_tps: f64,
    replans: usize,
    checksum: i64,
}

fn run(
    engine: &'static str,
    mut session: Session<i64>,
    batches: &[Vec<Update<i64>>],
    flip: usize,
) -> Row {
    let mut halves = [Duration::ZERO, Duration::ZERO];
    let mut tuples = [0usize, 0usize];
    for (i, b) in batches.iter().enumerate() {
        let half = usize::from(i >= flip);
        let start = Instant::now();
        session.apply_batch(b).expect("valid batch");
        halves[half] += start.elapsed();
        tuples[half] += b.len();
    }
    let checksum = session.output().iter().map(|(_, p)| *p).sum::<i64>();
    let replans = session.explain().replans.len();
    if replans > 0 {
        println!("## {engine} replan events\n");
        for ev in &session.explain().replans {
            println!("* {ev}");
        }
        println!();
    }
    Row {
        engine,
        half_a_tps: per_sec(halves[0], tuples[0]),
        half_b_tps: per_sec(halves[1], tuples[1]),
        replans,
        checksum,
    }
}

fn emit_json(rows: &[Row], flip: usize) {
    let doc = bench_doc("adapt_drift")
        .field("flip_batch", Json::num(flip as f64))
        .field(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("engine", Json::str(r.engine))
                            .field("half_a_tuples_per_sec", Json::num(r.half_a_tps))
                            .field("half_b_tuples_per_sec", Json::num(r.half_b_tps))
                            .field("replans", Json::num(r.replans as f64))
                    })
                    .collect(),
            ),
        );
    ivm_bench::write_bench_json("BENCH_ADAPT_JSON", "BENCH_adapt.json", &doc);
}

fn main() {
    let (batches, flip) = skew_flip_stream();
    let total: usize = batches.iter().map(|b| b.len()).sum();
    println!("# Adaptive replanning under a mid-stream skew flip\n");
    println!(
        "{} batches x ~{} updates; sizes invert at batch {flip}; every \
         session built on an EMPTY database (all-zero cost snapshot)\n",
        batches.len(),
        total / batches.len(),
    );

    let q = triangle();
    let mut rows = Vec::new();
    for (name, kind, adaptive) in [
        ("static-leftdeep", Some(EngineKind::DataflowLeftDeep), false),
        ("static-multiway", Some(EngineKind::DataflowMultiway), false),
        ("adaptive", None, true),
    ] {
        let mut builder = Session::<i64>::builder(q.clone());
        if let Some(k) = kind {
            builder = builder.engine(k);
        }
        if adaptive {
            builder = builder.adaptive(ReplanPolicy::default());
        }
        let session = builder.build(&Database::new()).expect("triangle query");
        rows.push(run(name, session, &batches, flip));
    }

    // Every plan maintains the same view — this is an equivalence check,
    // not a sampled measurement, so assert it.
    assert!(
        rows.windows(2).all(|w| w[0].checksum == w[1].checksum),
        "engines disagree on the maintained triangle count"
    );
    let adaptive = &rows[2];
    assert!(
        adaptive.replans >= 1,
        "the adaptive session must record at least one replan on the \
         skew-flip stream"
    );

    let mut table = Table::new(&[
        "engine",
        "half A tuples/s (sparse)",
        "half B tuples/s (post-flip)",
        "replans",
    ]);
    for r in &rows {
        table.row(vec![
            r.engine.to_string(),
            fmt(r.half_a_tps),
            fmt(r.half_b_tps),
            r.replans.to_string(),
        ]);
    }
    table.print();

    let best_static_b = rows[0].half_b_tps.max(rows[1].half_b_tps);
    println!(
        "\nPost-flip: adaptive at {} of the better static plan's \
         throughput (acceptance bar: ≥ 1/1.5).",
        fmt(ratio(adaptive.half_b_tps, best_static_b)),
    );
    println!(
        "Expected shape: static-leftdeep leads the sparse half, \
         static-multiway the dense post-flip half (neither wins both); \
         the adaptive row replans at the first non-empty batch and again \
         around the flip, tracking the better plan."
    );
    emit_json(&rows, flip);
}
