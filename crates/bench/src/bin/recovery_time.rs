//! Durability economics: what a restart costs with and without the
//! store, and what the journal's group commit buys.
//!
//! **Part 1 — journal append throughput.** The same record stream is
//! appended twice: once fsyncing after every record (commit-per-append)
//! and once buffering everything behind a single group commit. The gap
//! is the whole argument for `Journal::commit` covering many epochs
//! with one fsync.
//!
//! **Part 2 — warm vs cold time-to-first-delta.** One durable session
//! ingests a fixed history of `H` updates, snapshotting so that a tail
//! of `T ∈ {0, 1k, 10k}` updates stays in the journal, then dies. The
//! **warm** restart is `SessionBuilder::recover` (snapshot load + tail
//! replay) followed by one probe batch; the **cold** baseline rebuilds
//! a fresh session and replays the entire raw history from scratch
//! before the same probe. Acceptance: warm beats cold at every tail,
//! and warm restart time tracks the *tail* — the fixed-tail rows at
//! half and full history land within noise of each other, while cold
//! grows with history.
//!
//! Run: `cargo run --release -p ivm-bench --bin recovery_time`
//! Also emits `BENCH_store.json` (path override: `BENCH_STORE_JSON`).

use ivm_bench::{bench_doc, fmt, per_sec, ratio, scaled, Json, Table};
use ivm_core::Maintainer;
use ivm_data::{sym, tup, vars, Database, Update};
use ivm_query::{Atom, Query};
use ivm_session::Session;
use ivm_store::Journal;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The cyclic triangle count `Q() = Σ E(a,b)·E(b,c)·E(c,a)` — the WCOJ
/// dataflow engine, where every replayed batch pays real multiway join
/// work, so the cold rebuild's cost is honest incremental maintenance
/// over the whole history rather than deferred evaluation.
fn triangle() -> Query {
    let [a, b, c] = vars(["rt_A", "rt_B", "rt_C"]);
    let e = sym("rt_E");
    Query::new(
        "rt_tri",
        [],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    )
}

/// Deterministic splitmix-style generator: every scenario replays the
/// identical stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// `n` churning edge updates over a small node domain: half inserts,
/// half deletes of the same distribution, so multiplicities cancel and
/// the *consolidated* base stays far smaller than the history. This is
/// the stream shape snapshots exist for — a cold rebuild replays every
/// insert-then-deleted edge, a warm restart loads only what survived.
fn history(n: usize, seed: u64) -> Vec<Update<i64>> {
    let e = sym("rt_E");
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| {
            let a = rng.next() % 60;
            let b = rng.next() % 60;
            let m = if rng.next().is_multiple_of(2) { 1 } else { -1 };
            Update::with_payload(e, tup![a, b], m)
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ivm-bench-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct TailRow {
    label: String,
    history: usize,
    tail: usize,
    warm: Duration,
    replayed_updates: u64,
    cold: Duration,
}

/// One kill-and-recover scenario: ingest `updates` in batches of
/// `batch`, snapshot so `tail` updates stay journaled, kill, then time
/// warm recovery + probe vs a cold from-scratch rebuild + probe.
fn run_scenario(label: &str, updates: &[Update<i64>], batch: usize, tail: usize) -> TailRow {
    let q = triangle();
    let empty = Database::<i64>::new();
    let dir = scratch(label);
    let probe: Vec<Update<i64>> = history(batch, 0xdead_beef);

    let mut first = Session::<i64>::builder(q.clone())
        .durable(&dir)
        .build(&empty)
        .expect("durable build");
    let snap_at = updates.len() - tail;
    let mut fed = 0usize;
    let mut snapped = tail == updates.len();
    if snapped {
        // Tail == whole history: snapshot immediately (an empty base),
        // so recovery replays every journaled epoch.
        first.snapshot().expect("snapshot");
    }
    for chunk in updates.chunks(batch) {
        first.apply_batch(chunk).expect("ingest");
        fed += chunk.len();
        if !snapped && fed >= snap_at {
            first.snapshot().expect("snapshot");
            snapped = true;
        }
    }
    let expect_len = {
        let mut s = first;
        let out = s.output().len();
        drop(s); // the kill
        out
    };

    // Warm: recover from the store, then first delta, view visible.
    let warm_started = Instant::now();
    let mut warm = Session::<i64>::builder(q.clone())
        .recover(&dir, &empty)
        .expect("recover");
    warm.apply_batch(&probe).expect("probe");
    std::hint::black_box(warm.output().len());
    let warm_time = warm_started.elapsed();
    let note = warm.explain().recovered.clone().unwrap_or_default();
    let replayed_updates = note
        .split('(')
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(
        warm.output().len() >= expect_len,
        "{label}: recovery lost view tuples ({} < {expect_len})",
        warm.output().len()
    );
    drop(warm);

    // Cold: rebuild from nothing and replay the raw history, then the
    // same first delta, view visible.
    let cold_started = Instant::now();
    let mut cold = Session::<i64>::builder(q)
        .build(&empty)
        .expect("cold build");
    for chunk in updates.chunks(batch) {
        cold.apply_batch(chunk).expect("cold replay");
    }
    cold.apply_batch(&probe).expect("cold probe");
    std::hint::black_box(cold.output().len());
    let cold_time = cold_started.elapsed();

    let _ = std::fs::remove_dir_all(&dir);
    TailRow {
        label: label.to_string(),
        history: updates.len(),
        tail,
        warm: warm_time,
        replayed_updates,
        cold: cold_time,
    }
}

fn main() {
    // ----------------------------------------------------------------
    // Part 1: journal append throughput, fsync-per-record vs group
    // commit.
    // ----------------------------------------------------------------
    let records = scaled(2_000, 200);
    let batch: Vec<Update<i64>> = history(10, 7);
    let dir = scratch("journal");
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let per_record = {
        let mut j = Journal::create(dir.join("per-record.ivm")).expect("journal");
        let started = Instant::now();
        for epoch in 0..records as u64 {
            j.append(epoch + 1, &batch);
            j.commit().expect("commit");
        }
        started.elapsed()
    };
    let grouped = {
        let mut j = Journal::create(dir.join("grouped.ivm")).expect("journal");
        let started = Instant::now();
        for epoch in 0..records as u64 {
            j.append(epoch + 1, &batch);
        }
        j.commit().expect("commit");
        started.elapsed()
    };
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "journal append ({records} records of {} updates):",
        batch.len()
    );
    let mut t = Table::new(&["mode", "records/s", "speedup"]);
    t.row(vec![
        "fsync per record".into(),
        fmt(per_sec(per_record, records)),
        "1.0".into(),
    ]);
    t.row(vec![
        "one group commit".into(),
        fmt(per_sec(grouped, records)),
        fmt(ratio(
            per_sec(grouped, records),
            per_sec(per_record, records),
        )),
    ]);
    t.print();

    // ----------------------------------------------------------------
    // Part 2: warm vs cold time-to-first-delta across journal tails,
    // plus a fixed-tail half-history row isolating what warm restart
    // actually scales with.
    // ----------------------------------------------------------------
    let h = scaled(20_000, 2_000);
    let tail_1k = (h / 20).max(10);
    let tail_10k = (h / 2).max(20);
    let ingest_batch = 100;
    let full = history(h, 42);
    let half = &full[..h / 2];

    let rows = vec![
        run_scenario("tail 0", &full, ingest_batch, 0),
        run_scenario("tail 1k", &full, ingest_batch, tail_1k),
        run_scenario("tail 10k", &full, ingest_batch, tail_10k),
        run_scenario(
            "tail 1k, half history",
            half,
            ingest_batch,
            tail_1k.min(h / 2),
        ),
    ];

    println!("\nwarm vs cold time-to-first-delta (history {h} updates):");
    let mut t = Table::new(&[
        "scenario",
        "history",
        "tail",
        "replayed",
        "warm ms",
        "cold ms",
        "cold/warm",
    ]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            r.history.to_string(),
            r.tail.to_string(),
            r.replayed_updates.to_string(),
            fmt(r.warm.as_secs_f64() * 1e3),
            fmt(r.cold.as_secs_f64() * 1e3),
            fmt(ratio(r.cold.as_secs_f64(), r.warm.as_secs_f64())),
        ]);
    }
    t.print();

    // Acceptance: warm beats cold wherever a snapshot consolidated
    // meaningful history (at the full-history tails, cold replays ≥ 2×
    // the updates recovery touches).
    for r in &rows[..3] {
        assert!(
            r.warm < r.cold,
            "{}: warm restart ({:?}) must beat the cold rebuild ({:?})",
            r.label,
            r.warm,
            r.cold
        );
    }
    // Acceptance: recovery work is the tail, not the history — the
    // fixed-tail rows replayed identical update counts at half and full
    // history.
    assert_eq!(
        rows[1].replayed_updates, rows[3].replayed_updates,
        "fixed tail must replay the same updates whatever the history"
    );

    let doc = bench_doc("recovery_time")
        .field(
            "journal",
            Json::obj()
                .field("records", Json::num(records as f64))
                .field(
                    "fsync_per_record_per_sec",
                    Json::num(per_sec(per_record, records)),
                )
                .field("group_commit_per_sec", Json::num(per_sec(grouped, records)))
                .field(
                    "group_commit_speedup",
                    Json::num(ratio(
                        per_sec(grouped, records),
                        per_sec(per_record, records),
                    )),
                ),
        )
        .field(
            "recovery",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("scenario", Json::str(&r.label))
                            .field("history_updates", Json::num(r.history as f64))
                            .field("tail_updates", Json::num(r.tail as f64))
                            .field("replayed_updates", Json::num(r.replayed_updates as f64))
                            .field("warm_ms", Json::num(r.warm.as_secs_f64() * 1e3))
                            .field("cold_ms", Json::num(r.cold.as_secs_f64() * 1e3))
                            .field(
                                "cold_over_warm",
                                Json::num(ratio(r.cold.as_secs_f64(), r.warm.as_secs_f64())),
                            )
                    })
                    .collect(),
            ),
        );
    ivm_bench::write_bench_json("BENCH_STORE_JSON", "BENCH_store.json", &doc);
}
