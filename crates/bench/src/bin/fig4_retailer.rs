//! **Fig 4**: throughput of the maintenance strategies on the
//! q-hierarchical 5-relation Retailer join, under batches of single-tuple
//! inserts with a full-output enumeration every INTVAL batches.
//!
//! Paper's shape to reproduce: the factorized engines dominate whenever
//! enumeration is frequent; lazy-list (full re-evaluation) is orders of
//! magnitude slower and "does not finish" at the highest enumeration
//! frequency (we mark engines exceeding a time budget as DNF).
//!
//! Every row is one `ivm_session::Session` and ingests through the same
//! two calls — `enqueue_batch` + `drain` — whatever engine is behind it:
//! the four specialized engines of the paper (forced via
//! `SessionBuilder::engine`, since Fig 4 compares them against each
//! other), the generic dataflow engine applying each 1000-insert batch as
//! one consolidated delta, and a 4-shard fleet (the Retailer join shards
//! fully by `locn`) using its native pipelined ingestion. The hand-rolled
//! per-engine-kind `apply_batch` dispatch this file used to carry is
//! gone: batch ingestion is a trait method now.
//!
//! Run: `cargo run --release -p ivm-bench --bin fig4_retailer`
//! (`RIVM_SCALE=0.2` for a quick pass).

use ivm_bench::{fmt, per_sec, scaled, Table};
use ivm_core::Maintainer;
use ivm_session::{EngineKind, Session};
use ivm_workloads::RetailerGen;
use std::time::{Duration, Instant};

fn main() {
    let batch_size = 1000usize;
    let total_batches = scaled(120, 12);
    let budget = Duration::from_secs(60);
    let intervals = [10usize, 30, 120];

    println!("# Fig 4 — Retailer throughput (tuples/sec)\n");
    println!(
        "batches={total_batches} x {batch_size} inserts; enumeration every \
         INTVAL batches; DNF = exceeded {budget:?}\n"
    );
    let mut table = Table::new(&[
        "INTVAL",
        "#ENUM",
        "engine",
        "throughput (tuples/s)",
        "enum tuples",
    ]);

    for &intval in &intervals {
        let n_enum = total_batches / intval;
        for (engine_name, kind, shards) in [
            ("eager-fact", Some(EngineKind::EagerFact), None),
            ("eager-list", Some(EngineKind::EagerList), None),
            ("lazy-fact", Some(EngineKind::LazyFact), None),
            ("lazy-list", Some(EngineKind::LazyList), None),
            ("dataflow", Some(EngineKind::DataflowLeftDeep), None),
            ("sharded-4", None, Some(4usize)),
        ] {
            // 48·6·48 ≈ 14k fact-key combos with ~9 Sales rows each: the
            // output fans out like the paper's Retailer join.
            let mut gen = RetailerGen::new(48, 6, 48, 7);
            let db = gen.initial_db(scaled(120_000, 12_000));
            let mut builder = Session::<i64>::builder(gen.query().clone());
            if let Some(k) = kind {
                builder = builder.engine(k);
            }
            if let Some(n) = shards {
                builder = builder.shards(n);
            }
            let mut session = builder.build(&db).expect("retailer query");
            let start = Instant::now();
            let mut tuples = 0usize;
            let mut enumerated = 0usize;
            let mut dnf = false;
            for b in 1..=total_batches {
                // Pipelined where the engine supports it (the fleet),
                // synchronous everywhere else — one spelling either way.
                session
                    .enqueue_batch(&gen.inventory_batch(batch_size))
                    .expect("valid batch");
                tuples += batch_size;
                if b % intval == 0 {
                    // for_each_output drains in-flight work implicitly.
                    session.for_each_output(&mut |_, _| enumerated += 1);
                }
                if start.elapsed() > budget {
                    dnf = true;
                    break;
                }
            }
            // Settle any in-flight work so the wall clock covers it.
            session.drain().expect("drain");
            let thr = if dnf {
                "DNF".to_string()
            } else {
                fmt(per_sec(start.elapsed(), tuples))
            };
            table.row(vec![
                intval.to_string(),
                n_enum.to_string(),
                engine_name.to_string(),
                thr,
                enumerated.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape (paper): fact > list for frequent enumeration; \
         lazy-list slowest / DNF at INTVAL=10. The generic dataflow row \
         amortizes via batch consolidation; sharded-4 adds parallel \
         shards (wall-clock gains need >1 core; see shard_scaling for \
         the per-shard accounting)."
    );
}
