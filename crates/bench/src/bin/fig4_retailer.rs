//! **Fig 4**: throughput of the maintenance strategies on the
//! q-hierarchical 5-relation Retailer join, under batches of single-tuple
//! inserts with a full-output enumeration every INTVAL batches.
//!
//! Paper's shape to reproduce: the factorized engines dominate whenever
//! enumeration is frequent; lazy-list (full re-evaluation) is orders of
//! magnitude slower and "does not finish" at the highest enumeration
//! frequency (we mark engines exceeding a time budget as DNF).
//!
//! On top of the paper's four specialized engines, two generic rows run
//! the same workload end to end: `dataflow` (the `ivm-dataflow` engine,
//! applying each 1000-insert batch as one consolidated delta) and
//! `sharded-4` (`ivm-shard` with 4 hash-partitioned workers — the
//! Retailer join shards fully by `locn` — using pipelined ingestion and
//! draining at each enumeration point). Single-tuple engines pay one
//! delta propagation per insert; the batched rows show what consolidation
//! and sharding buy on the same stream.
//!
//! Run: `cargo run --release -p ivm-bench --bin fig4_retailer`
//! (`RIVM_SCALE=0.2` for a quick pass).

use ivm_bench::{fmt, per_sec, scaled, Table};
use ivm_core::{EagerFactEngine, EagerListEngine, LazyFactEngine, LazyListEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_data::Update;
use ivm_dataflow::DataflowEngine;
use ivm_shard::ShardedEngine;
use ivm_workloads::RetailerGen;
use std::time::{Duration, Instant};

/// One competitor: the specialized single-tuple engines behind the
/// `Maintainer` facade, or a batch-capable generic engine.
enum Engine {
    Single(Box<dyn Maintainer<i64>>),
    Dataflow(DataflowEngine<i64>),
    Sharded(ShardedEngine<i64>),
}

impl Engine {
    fn apply_batch(&mut self, batch: &[Update<i64>]) {
        match self {
            Engine::Single(e) => {
                for upd in batch {
                    e.apply(upd).expect("valid update");
                }
            }
            Engine::Dataflow(e) => {
                e.apply_batch(batch).expect("valid batch");
            }
            // Pipelined: enqueue and keep streaming; deltas settle in the
            // background and are drained at the next enumeration.
            Engine::Sharded(e) => {
                e.enqueue_batch(batch).expect("valid batch");
            }
        }
    }

    fn enumerate(&mut self) -> usize {
        let mut count = 0usize;
        match self {
            Engine::Single(e) => e.for_each_output(&mut |_, _| count += 1),
            Engine::Dataflow(e) => e.for_each_output(&mut |_, _| count += 1),
            Engine::Sharded(e) => e.for_each_output(&mut |_, _| count += 1),
        }
        count
    }

    /// Settle any in-flight work so the wall clock covers it.
    fn finish(&mut self) {
        if let Engine::Sharded(e) = self {
            e.drain().expect("drain");
        }
    }
}

fn main() {
    let batch_size = 1000usize;
    let total_batches = scaled(120, 12);
    let budget = Duration::from_secs(60);
    let intervals = [10usize, 30, 120];

    println!("# Fig 4 — Retailer throughput (tuples/sec)\n");
    println!(
        "batches={total_batches} x {batch_size} inserts; enumeration every \
         INTVAL batches; DNF = exceeded {budget:?}\n"
    );
    let mut table = Table::new(&[
        "INTVAL",
        "#ENUM",
        "engine",
        "throughput (tuples/s)",
        "enum tuples",
    ]);

    for &intval in &intervals {
        let n_enum = total_batches / intval;
        for engine_name in [
            "eager-fact",
            "eager-list",
            "lazy-fact",
            "lazy-list",
            "dataflow",
            "sharded-4",
        ] {
            // 48·6·48 ≈ 14k fact-key combos with ~9 Sales rows each: the
            // output fans out like the paper's Retailer join.
            let mut gen = RetailerGen::new(48, 6, 48, 7);
            let db = gen.initial_db(scaled(120_000, 12_000));
            let q = gen.query().clone();
            let mut engine = match engine_name {
                "eager-fact" => {
                    Engine::Single(Box::new(EagerFactEngine::new(q, &db, lift_one).unwrap()))
                }
                "eager-list" => {
                    Engine::Single(Box::new(EagerListEngine::new(q, &db, lift_one).unwrap()))
                }
                "lazy-fact" => {
                    Engine::Single(Box::new(LazyFactEngine::new(q, &db, lift_one).unwrap()))
                }
                "lazy-list" => {
                    Engine::Single(Box::new(LazyListEngine::new(q, &db, lift_one).unwrap()))
                }
                "dataflow" => Engine::Dataflow(DataflowEngine::new(q, &db, lift_one).unwrap()),
                _ => Engine::Sharded(ShardedEngine::new(q, &db, lift_one, 4).unwrap()),
            };
            let start = Instant::now();
            let mut tuples = 0usize;
            let mut enumerated = 0usize;
            let mut dnf = false;
            for b in 1..=total_batches {
                engine.apply_batch(&gen.inventory_batch(batch_size));
                tuples += batch_size;
                if b % intval == 0 {
                    enumerated += engine.enumerate();
                }
                if start.elapsed() > budget {
                    dnf = true;
                    break;
                }
            }
            engine.finish();
            let thr = if dnf {
                "DNF".to_string()
            } else {
                fmt(per_sec(start.elapsed(), tuples))
            };
            table.row(vec![
                intval.to_string(),
                n_enum.to_string(),
                engine_name.to_string(),
                thr,
                enumerated.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape (paper): fact > list for frequent enumeration; \
         lazy-list slowest / DNF at INTVAL=10. The generic dataflow row \
         amortizes via batch consolidation; sharded-4 adds parallel \
         shards (wall-clock gains need >1 core; see shard_scaling for \
         the per-shard accounting)."
    );
}
