//! **Fig 4**: throughput of the four maintenance strategies on the
//! q-hierarchical 5-relation Retailer join, under batches of single-tuple
//! inserts with a full-output enumeration every INTVAL batches.
//!
//! Paper's shape to reproduce: the factorized engines dominate whenever
//! enumeration is frequent; lazy-list (full re-evaluation) is orders of
//! magnitude slower and "does not finish" at the highest enumeration
//! frequency (we mark engines exceeding a time budget as DNF).
//!
//! Run: `cargo run --release -p ivm-bench --bin fig4_retailer`
//! (`RIVM_SCALE=0.2` for a quick pass).

use ivm_bench::{fmt, per_sec, scaled, Table};
use ivm_core::{EagerFactEngine, EagerListEngine, LazyFactEngine, LazyListEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_workloads::RetailerGen;
use std::time::{Duration, Instant};

fn main() {
    let batch_size = 1000usize;
    let total_batches = scaled(120, 12);
    let budget = Duration::from_secs(60);
    let intervals = [10usize, 30, 120];

    println!("# Fig 4 — Retailer throughput (tuples/sec)\n");
    println!(
        "batches={total_batches} x {batch_size} inserts; enumeration every \
         INTVAL batches; DNF = exceeded {budget:?}\n"
    );
    let mut table = Table::new(&[
        "INTVAL",
        "#ENUM",
        "engine",
        "throughput (tuples/s)",
        "enum tuples",
    ]);

    for &intval in &intervals {
        let n_enum = total_batches / intval;
        for engine_name in ["eager-fact", "eager-list", "lazy-fact", "lazy-list"] {
            // 48·6·48 ≈ 14k fact-key combos with ~9 Sales rows each: the
            // output fans out like the paper's Retailer join.
            let mut gen = RetailerGen::new(48, 6, 48, 7);
            let db = gen.initial_db(scaled(120_000, 12_000));
            let q = gen.query().clone();
            let mut engine: Box<dyn Maintainer<i64>> = match engine_name {
                "eager-fact" => Box::new(EagerFactEngine::new(q, &db, lift_one).unwrap()),
                "eager-list" => Box::new(EagerListEngine::new(q, &db, lift_one).unwrap()),
                "lazy-fact" => Box::new(LazyFactEngine::new(q, &db, lift_one).unwrap()),
                _ => Box::new(LazyListEngine::new(q, &db, lift_one).unwrap()),
            };
            let start = Instant::now();
            let mut tuples = 0usize;
            let mut enumerated = 0usize;
            let mut dnf = false;
            for b in 1..=total_batches {
                for upd in gen.inventory_batch(batch_size) {
                    engine.apply(&upd).expect("valid update");
                }
                tuples += batch_size;
                if b % intval == 0 {
                    let mut count = 0usize;
                    engine.for_each_output(&mut |_, _| count += 1);
                    enumerated += count;
                }
                if start.elapsed() > budget {
                    dnf = true;
                    break;
                }
            }
            let thr = if dnf {
                "DNF".to_string()
            } else {
                fmt(per_sec(start.elapsed(), tuples))
            };
            table.row(vec![
                intval.to_string(),
                n_enum.to_string(),
                engine_name.to_string(),
                thr,
                enumerated.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape (paper): fact > list for frequent enumeration; \
         lazy-list slowest / DNF at INTVAL=10."
    );
}
