//! Batching throughput of the generic delta-dataflow engine.
//!
//! Two sweeps:
//!
//! 1. batch sizes (1, 32, 1k, 32k) on the retailer-style star join,
//!    comparing one consolidated `apply_batch` per batch against
//!    single-tuple `apply` calls — ring payloads make batch effects
//!    order-independent (Sec. 2), so both paths reach identical states
//!    and batching wins by consolidating same-tuple churn;
//! 2. the cyclic triangle query through both planner strategies
//!    (left-deep `DeltaJoin` chain vs. the worst-case-optimal
//!    `MultiwayJoin`), showing the binary intermediates the WCOJ plan
//!    never materializes.
//!
//! Run: `cargo run --release -p ivm-bench --bin dataflow_batch`
//! (`RIVM_SCALE=0.2` for a quick pass).

use ivm_bench::{fmt, per_sec, scaled, Table};
use ivm_core::Maintainer;
use ivm_data::ops::lift_one;
use ivm_data::{tup, Database, Update};
use ivm_dataflow::{DataflowEngine, JoinStrategy};
use ivm_workloads::graphs::EdgeStream;
use ivm_workloads::RetailerGen;
use std::time::Instant;

fn main() {
    let total = scaled(131_072, 4_096);
    let batch_sizes = [1usize, 32, 1_024, 32_768];

    // How much headroom consolidation has on this stream overall. The
    // probe generator mirrors the measured runs (same seed, same initial
    // database draw) so it sees the identical update stream.
    let distinct = {
        let mut probe = RetailerGen::new(48, 6, 48, 7);
        probe.initial_db(scaled(60_000, 6_000));
        ivm_data::consolidated_len(&probe.inventory_batch(total))
    };

    println!("# Dataflow batching — retailer star join (tuples/sec)\n");
    println!(
        "{total} Inventory inserts ({distinct} distinct keys) through \
         DataflowEngine::apply_batch at each batch size; batch=1 is the \
         single-tuple baseline\n"
    );
    let mut table = Table::new(&[
        "batch",
        "throughput (tuples/s)",
        "propagated deltas",
        "sink deltas",
        "output size",
    ]);

    for &batch in &batch_sizes {
        let mut gen = RetailerGen::new(48, 6, 48, 7);
        let db = gen.initial_db(scaled(60_000, 6_000));
        let q = gen.query().clone();
        let mut engine = DataflowEngine::<i64>::new(q, &db, lift_one).expect("lowerable query");
        let base = engine.stats();

        let updates = gen.inventory_batch(total);
        let start = Instant::now();
        for chunk in updates.chunks(batch) {
            engine.apply_batch(chunk).expect("valid update");
        }
        let elapsed = start.elapsed();

        let stats = engine.stats();
        table.row(vec![
            batch.to_string(),
            fmt(per_sec(elapsed, total)),
            (stats.deltas_in - base.deltas_in).to_string(),
            (stats.output_delta_tuples - base.output_delta_tuples).to_string(),
            engine.output_relation().len().to_string(),
        ]);
    }
    table.print();
    triangle_strategy_sweep();
}

/// Stream a skewed edge set into the cyclic triangle query under both
/// planner strategies. The left-deep chain pays for every binary
/// intermediate delta; the multiway plan's work is seeds + index probes
/// and its `binary-join tuples` column is zero by construction.
fn triangle_strategy_sweep() {
    let edges = scaled(24_576, 2_048);
    let batch_sizes = [1usize, 64, 4_096];
    println!("\n# Dataflow planner strategies — cyclic triangle query\n");
    println!(
        "{edges} zipf edge inserts into each of R, S, T; left-deep vs \
         worst-case-optimal multiway at each batch size\n"
    );
    let mut table = Table::new(&[
        "strategy",
        "batch",
        "throughput (tuples/s)",
        "binary-join tuples",
        "multiway seeds",
        "multiway probes",
        "triangles",
    ]);
    let q = ivm_query::examples::triangle_count();
    let stream = EdgeStream::zipf((edges / 8).max(32) as u64, edges, 0.8, 11);
    let updates: Vec<Update<i64>> = stream
        .edges
        .iter()
        .flat_map(|&(a, b)| {
            q.atoms
                .iter()
                .map(move |atom| Update::insert(atom.name, tup![a, b]))
        })
        .collect();
    for strategy in [JoinStrategy::LeftDeep, JoinStrategy::Multiway] {
        for &batch in &batch_sizes {
            let mut engine = DataflowEngine::<i64>::new_with_strategy(
                q.clone(),
                &Database::new(),
                lift_one,
                strategy,
            )
            .expect("lowerable query");
            let start = Instant::now();
            for chunk in updates.chunks(batch) {
                engine.apply_batch(chunk).expect("valid update");
            }
            let elapsed = start.elapsed();
            let stats = engine.stats();
            table.row(vec![
                format!("{strategy:?}"),
                batch.to_string(),
                fmt(per_sec(elapsed, updates.len())),
                stats.binary_join_tuples.to_string(),
                stats.multiway_seeds.to_string(),
                stats.multiway_probes.to_string(),
                engine
                    .output_relation()
                    .get(&ivm_data::Tuple::empty())
                    .to_string(),
            ]);
        }
    }
    table.print();
}
