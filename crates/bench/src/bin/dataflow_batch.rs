//! Batching throughput of the generic delta-dataflow engine.
//!
//! Sweeps batch sizes (1, 32, 1k, 32k) on the retailer-style star join and
//! compares one consolidated `apply_batch` per batch against single-tuple
//! `apply` calls. Ring payloads make batch effects order-independent
//! (Sec. 2), so both paths reach identical states; batching wins by
//! consolidating same-tuple churn before propagation and amortizing
//! per-propagation overheads.
//!
//! Run: `cargo run --release -p ivm-bench --bin dataflow_batch`
//! (`RIVM_SCALE=0.2` for a quick pass).

use ivm_bench::{fmt, per_sec, scaled, Table};
use ivm_data::ops::lift_one;
use ivm_dataflow::DataflowEngine;
use ivm_workloads::RetailerGen;
use std::time::Instant;

fn main() {
    let total = scaled(131_072, 4_096);
    let batch_sizes = [1usize, 32, 1_024, 32_768];

    // How much headroom consolidation has on this stream overall. The
    // probe generator mirrors the measured runs (same seed, same initial
    // database draw) so it sees the identical update stream.
    let distinct = {
        let mut probe = RetailerGen::new(48, 6, 48, 7);
        probe.initial_db(scaled(60_000, 6_000));
        ivm_data::consolidated_len(&probe.inventory_batch(total))
    };

    println!("# Dataflow batching — retailer star join (tuples/sec)\n");
    println!(
        "{total} Inventory inserts ({distinct} distinct keys) through \
         DataflowEngine::apply_batch at each batch size; batch=1 is the \
         single-tuple baseline\n"
    );
    let mut table = Table::new(&[
        "batch",
        "throughput (tuples/s)",
        "propagated deltas",
        "sink deltas",
        "output size",
    ]);

    for &batch in &batch_sizes {
        let mut gen = RetailerGen::new(48, 6, 48, 7);
        let db = gen.initial_db(scaled(60_000, 6_000));
        let q = gen.query().clone();
        let mut engine = DataflowEngine::<i64>::new(q, &db, lift_one).expect("lowerable query");
        let base = engine.stats();

        let updates = gen.inventory_batch(total);
        let start = Instant::now();
        for chunk in updates.chunks(batch) {
            engine.apply_batch(chunk).expect("valid update");
        }
        let elapsed = start.elapsed();

        let stats = engine.stats();
        table.row(vec![
            batch.to_string(),
            fmt(per_sec(elapsed, total)),
            (stats.deltas_in - base.deltas_in).to_string(),
            (stats.output_delta_tuples - base.output_delta_tuples).to_string(),
            engine.output_relation().len().to_string(),
        ]);
    }
    table.print();
}
