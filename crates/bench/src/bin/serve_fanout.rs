//! Fan-out scaling of the serving layer: one [`ServeNode`] ingesting a
//! skewed mixed-sign stream while N ∈ {1, 8, 64, 256} subscribers hold
//! live views, versus the obvious baseline of **N independent
//! `Session`s**, each with its own private base mirror and engine, fed
//! the same per-view filtered stream.
//!
//! Subscribers cycle through a 4-entry query catalog over shared
//! relations — the triangle count, an α-renamed atom-rotated copy of it
//! (canonically equal: the fabric must collapse the two onto one
//! engine), the triangle *listing* (same base relation, different free
//! set — a second engine, but its trie store is hub-shared with the
//! count's), and the 4-cycle. So the fabric's two sharing levers are
//! both on the critical path: engine dedup (256 subscribers → 3
//! engines) and cross-engine store sharing (the triangle relation
//! resident once, not once per engine).
//!
//! Reported per N: ingest throughput for both sides, the fabric's
//! per-delivery fan-out latency (p50/p99 pooled over every subscriber's
//! `ivm.serve.sub{id}.notify_ns` series) and per-epoch ingest latency,
//! and the resident-tuple census of both sides (the acceptance bar:
//! shared state strictly beats N sessions from N = 8 up). Outputs are
//! cross-checked tuple-for-tuple against the independent sessions
//! before anything is reported.
//!
//! Run: `cargo run --release -p ivm-bench --bin serve_fanout`
//! Also emits `BENCH_serve.json` (path override: `BENCH_SERVE_JSON`).

use ivm_bench::{bench_doc, fmt, per_sec, ratio, scaled, Json, Table};
use ivm_core::Maintainer;
use ivm_data::{sym, tup, vars, Database, FxHashSet, Relation, Sym, Update};
use ivm_obs::{HistogramSnapshot, MetricsRegistry};
use ivm_query::{Atom, Query};
use ivm_serve::ServeNode;
use ivm_session::Session;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// The subscriber catalog (entries 0 and 1 canonicalize identically).
fn catalog(i: usize) -> Query {
    let e = sym("svf_E");
    match i % 4 {
        0 => {
            let [a, b, c] = vars(["svf_A", "svf_B", "svf_C"]);
            Query::new(
                "svf_tri",
                [],
                vec![
                    Atom::new(e, [a, b]),
                    Atom::new(e, [b, c]),
                    Atom::new(e, [c, a]),
                ],
            )
        }
        1 => {
            // α-renamed and rotated: same canonical key as entry 0.
            let [x, y, z] = vars(["svf_X", "svf_Y", "svf_Z"]);
            Query::new(
                "svf_tri_renamed",
                [],
                vec![
                    Atom::new(e, [y, z]),
                    Atom::new(e, [z, x]),
                    Atom::new(e, [x, y]),
                ],
            )
        }
        2 => {
            // Same relation, different free set: second engine, shared
            // trie store.
            let [a, b, c] = vars(["svf_LA", "svf_LB", "svf_LC"]);
            Query::new(
                "svf_tri_listing",
                [a, b, c],
                vec![
                    Atom::new(e, [a, b]),
                    Atom::new(e, [b, c]),
                    Atom::new(e, [c, a]),
                ],
            )
        }
        _ => {
            let [a, b, c, d] = vars(["svf_4A", "svf_4B", "svf_4C", "svf_4D"]);
            Query::new(
                "svf_cycle4",
                [],
                vec![
                    Atom::new(sym("svf_4R"), [a, b]),
                    Atom::new(sym("svf_4S"), [b, c]),
                    Atom::new(sym("svf_4T"), [c, d]),
                    Atom::new(sym("svf_4U"), [d, a]),
                ],
            )
        }
    }
}

/// Deterministic splitmix-style generator so every row sees the
/// identical stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> i64 {
        (self.next() % n) as i64
    }
}

/// The skewed stream over every catalog relation: most edges land on a
/// small hub set (dense closures — real fan-out work per delta), a
/// minority on a wide sparse tail, with periodic deletes so payloads
/// churn in both directions.
fn stream() -> Vec<Vec<Update<i64>>> {
    let e = sym("svf_E");
    let cyc = ["svf_4R", "svf_4S", "svf_4T", "svf_4U"].map(sym);
    let mut rng = Rng(0x5eed_fa40);
    let n_batches = scaled(20, 5);
    let mut batches = Vec::with_capacity(n_batches);
    let mut backlog: Vec<(i64, i64)> = Vec::new();
    for bi in 0..n_batches {
        let mut b = Vec::new();
        for j in 0..96 {
            // 3:1 hub-to-tail skew.
            let (x, y) = if j % 4 != 0 {
                (rng.below(24), rng.below(24))
            } else {
                (rng.below(4_000), rng.below(4_000))
            };
            if j % 2 == 0 {
                backlog.push((x, y));
                b.push(Update::insert(e, tup![x, y]));
            } else {
                b.push(Update::insert(cyc[j % 4], tup![x, y]));
            }
        }
        // Late batches drain early edges: deletes on the critical path.
        if bi * 3 > n_batches {
            for _ in 0..16 {
                if let Some((x, y)) = backlog.pop() {
                    b.push(Update::delete(e, tup![x, y]));
                }
            }
        }
        batches.push(b);
    }
    batches
}

/// Pool per-subscriber histogram snapshots into one (bucket-wise merge).
fn pool(histograms: impl Iterator<Item = HistogramSnapshot>) -> HistogramSnapshot {
    let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
    let (mut count, mut sum_ns) = (0u64, 0u64);
    for h in histograms {
        count += h.count;
        sum_ns += h.sum_ns;
        for (upper, n) in h.buckets {
            *buckets.entry(upper).or_default() += n;
        }
    }
    HistogramSnapshot {
        buckets: buckets.into_iter().collect(),
        count,
        sum_ns,
    }
}

struct Row {
    subscribers: usize,
    groups: usize,
    fabric_tps: f64,
    baseline_tps: f64,
    notify_p50_ns: u64,
    notify_p99_ns: u64,
    ingest_p50_ns: u64,
    ingest_p99_ns: u64,
    fabric_resident: usize,
    baseline_resident: usize,
    dedup_hits: u64,
    store_dedup_hits: u64,
}

fn run(n: usize, batches: &[Vec<Update<i64>>]) -> Row {
    // --- the fabric ---
    let registry = MetricsRegistry::new();
    let mut node = ServeNode::<i64>::new();
    node.observe(&registry);
    // Each callback subscriber tallies deliveries and a payload
    // checksum — the cheapest realistic consumer.
    let tallies: Vec<Rc<Cell<(u64, i64)>>> = (0..n).map(|_| Rc::default()).collect();
    let ids: Vec<u64> = (0..n)
        .map(|i| {
            let tally = Rc::clone(&tallies[i]);
            node.subscribe_with(catalog(i), move |vd| {
                let (deliveries, sum) = tally.get();
                let d: i64 = vd.delta.iter().map(|(_, p)| *p).sum();
                tally.set((deliveries + 1, sum + d));
            })
            .expect("catalog queries build")
        })
        .collect();

    // Only relations some subscriber declared may appear in the stream.
    let known: FxHashSet<Sym> = (0..n)
        .flat_map(|i| catalog(i).atoms.iter().map(|a| a.name).collect::<Vec<_>>())
        .collect();
    let filtered: Vec<Vec<Update<i64>>> = batches
        .iter()
        .map(|b| {
            b.iter()
                .filter(|u| known.contains(&u.relation))
                .cloned()
                .collect()
        })
        .collect();
    let total: usize = filtered.iter().map(|b| b.len()).sum();

    let t0 = Instant::now();
    for b in &filtered {
        node.apply_batch(b).expect("declared relations only");
    }
    let fabric_elapsed = t0.elapsed();
    for (i, tally) in tallies.iter().enumerate() {
        assert_eq!(
            tally.get().0,
            filtered.len() as u64,
            "subscriber {i} missed an epoch"
        );
    }

    // --- the baseline: N independent sessions ---
    let mut mirrors: Vec<Database<i64>> = Vec::with_capacity(n);
    let mut sessions: Vec<Session<i64>> = Vec::with_capacity(n);
    for i in 0..n {
        let q = catalog(i);
        let mut db = Database::<i64>::new();
        for atom in &q.atoms {
            if db.get(atom.name).is_none() {
                db.create(atom.name, atom.schema.clone());
            }
        }
        sessions.push(Session::<i64>::builder(q).build(&db).expect("builds"));
        mirrors.push(db);
    }
    let rels: Vec<Vec<Sym>> = (0..n)
        .map(|i| catalog(i).atoms.iter().map(|a| a.name).collect())
        .collect();
    let t0 = Instant::now();
    for b in &filtered {
        for i in 0..n {
            let sub: Vec<Update<i64>> = b
                .iter()
                .filter(|u| rels[i].contains(&u.relation))
                .cloned()
                .collect();
            sessions[i].apply_batch(&sub).expect("valid batch");
            mirrors[i].apply_batch(&sub);
        }
    }
    let baseline_elapsed = t0.elapsed();

    // Equivalence gate: every fabric view matches its independent twin.
    for i in 0..n {
        let got = node.view(ids[i]).expect("subscriber is live");
        let expect: Relation<i64> = sessions[i].output();
        assert_eq!(got.len(), expect.len(), "subscriber {i} view size");
        for (t, p) in expect.iter() {
            assert_eq!(&got.get(t), p, "subscriber {i} at {t:?}");
        }
    }

    let m = registry.snapshot();
    let notify = pool(ids.iter().filter_map(|id| {
        m.histogram(&format!("ivm.serve.sub{id}.notify_ns"))
            .cloned()
    }));
    let ingest = m
        .histogram("ivm.serve.ingest_ns")
        .cloned()
        .unwrap_or_default();
    let baseline_resident = (0..n)
        .map(|i| mirrors[i].size() + sessions[i].resident_tuples().unwrap_or(0))
        .sum();
    Row {
        subscribers: n,
        groups: node.group_count(),
        fabric_tps: per_sec(fabric_elapsed, total),
        baseline_tps: per_sec(baseline_elapsed, total),
        notify_p50_ns: notify.quantile_ns(0.50),
        notify_p99_ns: notify.quantile_ns(0.99),
        ingest_p50_ns: ingest.quantile_ns(0.50),
        ingest_p99_ns: ingest.quantile_ns(0.99),
        fabric_resident: node.resident_tuples(),
        baseline_resident,
        dedup_hits: m.counter("ivm.serve.dedup_hits"),
        store_dedup_hits: m.counter("ivm.serve.store_dedup_hits"),
    }
}

fn emit_json(rows: &[Row]) {
    let doc = bench_doc("serve_fanout").field(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj()
                        .field("subscribers", Json::num(r.subscribers as f64))
                        .field("groups", Json::num(r.groups as f64))
                        .field("fabric_tuples_per_sec", Json::num(r.fabric_tps))
                        .field("baseline_tuples_per_sec", Json::num(r.baseline_tps))
                        .field(
                            "speedup_vs_n_sessions",
                            Json::num(ratio(r.fabric_tps, r.baseline_tps)),
                        )
                        .field("notify_p50_ns", Json::num(r.notify_p50_ns as f64))
                        .field("notify_p99_ns", Json::num(r.notify_p99_ns as f64))
                        .field("ingest_p50_ns", Json::num(r.ingest_p50_ns as f64))
                        .field("ingest_p99_ns", Json::num(r.ingest_p99_ns as f64))
                        .field(
                            "fabric_resident_tuples",
                            Json::num(r.fabric_resident as f64),
                        )
                        .field(
                            "baseline_resident_tuples",
                            Json::num(r.baseline_resident as f64),
                        )
                        .field("dedup_hits", Json::num(r.dedup_hits as f64))
                        .field("store_dedup_hits", Json::num(r.store_dedup_hits as f64))
                })
                .collect(),
        ),
    );
    ivm_bench::write_bench_json("BENCH_SERVE_JSON", "BENCH_serve.json", &doc);
}

fn main() {
    let batches = stream();
    println!("# Serving fan-out: one ServeNode vs N independent sessions\n");
    println!(
        "{} batches x ~{} updates, skewed onto a 24-value hub set; \
         subscribers cycle 4 catalog queries collapsing onto 3 deduped \
         engines; every fabric view is asserted equal to its independent \
         twin before a number is reported\n",
        batches.len(),
        batches.iter().map(|b| b.len()).sum::<usize>() / batches.len(),
    );

    let rows: Vec<Row> = [1usize, 8, 64, 256]
        .into_iter()
        .map(|n| run(n, &batches))
        .collect();

    for r in &rows {
        if r.subscribers >= 8 {
            // The acceptance bar: the whole point of shared state.
            assert!(
                r.fabric_resident < r.baseline_resident,
                "at N={} the fabric holds {} resident tuples but N \
                 sessions hold {}",
                r.subscribers,
                r.fabric_resident,
                r.baseline_resident
            );
            assert_eq!(r.groups, 3, "4 catalog queries dedup onto 3 engines");
        }
    }

    let mut table = Table::new(&[
        "subs",
        "groups",
        "fabric tuples/s",
        "N-sessions tuples/s",
        "speedup",
        "notify p50/p99 ns",
        "resident (fabric vs N)",
    ]);
    for r in &rows {
        table.row(vec![
            r.subscribers.to_string(),
            r.groups.to_string(),
            fmt(r.fabric_tps),
            fmt(r.baseline_tps),
            fmt(ratio(r.fabric_tps, r.baseline_tps)),
            format!("{}/{}", r.notify_p50_ns, r.notify_p99_ns),
            format!("{} vs {}", r.fabric_resident, r.baseline_resident),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: near parity at N=1 (one subscriber cannot \
         dedup anything), then a widening gap as N grows — engine count \
         stays at 3 while the baseline pays N full engines and N private \
         base copies."
    );
    emit_json(&rows);
}
