//! **Sec 4.3**: queries with free access patterns.
//!
//! The tractable CQAP "triangle detection given three nodes" (Ex 4.6) is
//! maintained with O(1) updates and answered with O(1) accesses,
//! regardless of graph size — we verify both by measuring at increasing
//! scales (flat lines = constant).
//!
//! Run: `cargo run --release -p ivm-bench --bin cqap_access`

use ivm_bench::{fmt, ns_per, scaled, time, Table};
use ivm_core::cqap::CqapEngine;
use ivm_core::Maintainer;
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, Update};
use ivm_workloads::graphs::EdgeStream;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let base = scaled(20_000, 2_000);
    let sizes = [base, base * 4, base * 16];
    println!("# CQAP: triangle detection Q(·|A,B,C) — update and access cost vs. graph size\n");
    let mut table = Table::new(&["edges", "ns/update", "ns/access", "hits"]);
    for &n in &sizes {
        let q = ivm_query::examples::triangle_detect_cqap();
        let mut eng: CqapEngine<i64> = CqapEngine::new(q, lift_one).unwrap();
        let e = sym("tdc_E");
        let stream = EdgeStream::zipf((n / 8).max(64) as u64, n, 0.7, 9);
        let probe = scaled(20_000, 2_000);
        // Load.
        for &(a, b) in &stream.edges {
            eng.apply(&Update::insert(e, tup![a, b])).unwrap();
        }
        // Updates.
        let (_, ud) = time(|| {
            for i in 0..probe {
                let (a, b) = stream.edges[i % stream.edges.len()];
                eng.apply(&Update::delete(e, tup![a, b])).unwrap();
                eng.apply(&Update::insert(e, tup![a, b])).unwrap();
            }
        });
        // Accesses: random triples biased toward real wedges.
        let mut rng = StdRng::seed_from_u64(4);
        let mut hits = 0usize;
        let (_, ad) = time(|| {
            for i in 0..probe {
                let (a, b) = stream.edges[i % stream.edges.len()];
                let c = stream.edges[rng.gen_range(0..stream.edges.len())].1;
                if eng.probe(&tup![a, b, c]) > 0 {
                    hits += 1;
                }
            }
        });
        table.row(vec![
            n.to_string(),
            fmt(ns_per(ud, probe * 2)),
            fmt(ns_per(ad, probe)),
            hits.to_string(),
        ]);
    }
    table.print();
    println!("\nExpected shape (paper): both columns stay flat as the graph grows (O(1) update, O(1) access).");
}
