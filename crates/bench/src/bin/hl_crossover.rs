//! **Sec 3.3**: the dataflow ↔ heavy-light crossover on skewed triangle
//! update streams, measured at the engine layer and exercised end to end
//! through the adaptive session.
//!
//! Two engine rows ingest the same Zipf-skewed base and are then probed
//! with hub-edge insert/delete pairs — the worst case the heavy-light
//! partition exists for. `dataflow-wcoj` pays the delta pass: each hub
//! update intersects two Θ(N)-sized lists, so its per-update work grows
//! ~N on these probes. `heavy-light` answers the same deltas in
//! O(N^max(ε,1−ε)) amortized — O(√N) at ε = ½ — so the gap between the
//! rows *widens* with N: that widening is the crossover the adaptive
//! session's family comparison is calibrated against.
//!
//! The last section drives a `Session` that was *forced* onto the
//! worst-case-optimal dataflow plan with an adaptive policy armed, then
//! streams a flat prefix followed by a hub burst. The policy's learned
//! degree sketch must spot the skew and swap the engine family
//! mid-stream (≥ 1 `FamilyShift` in `explain().replans`), and the final
//! maintained count must equal a from-scratch oracle over the mirrored
//! base — the end-to-end acceptance that re-selection is not just fast
//! but *invisible* in the output.
//!
//! Run: `cargo run --release -p ivm-bench --bin hl_crossover`
//! Also emits `BENCH_hl.json` (path override: `BENCH_HL_JSON`) so CI
//! records the crossover trajectory run over run.

use ivm_bench::{bench_doc, fmt, ns_per, ratio, scaled, time, Json, Table};
use ivm_core::Maintainer;
use ivm_data::ops::{eval_join_aggregate, lift_one};
use ivm_data::{tup, Database, Relation, Sym, Tuple, Update};
use ivm_dataflow::{DataflowEngine, JoinStrategy};
use ivm_hl::HeavyLightEngine;
use ivm_ivme::{Rel, TriangleMaintainer};
use ivm_query::examples;
use ivm_session::{EngineKind, ReplanPolicy, ReplanTrigger, Session};
use ivm_workloads::graphs::EdgeStream;

/// The three triangle relations of `examples::triangle_count()`, in
/// atom order.
fn names() -> [Sym; 3] {
    let q = examples::triangle_count();
    [q.atoms[0].name, q.atoms[1].name, q.atoms[2].name]
}

/// The worst-case-optimal dataflow plan behind the kernel bench
/// interface; work is its delta-pass counters.
struct Wcoj {
    eng: DataflowEngine<i64>,
    names: [Sym; 3],
}

impl TriangleMaintainer for Wcoj {
    fn apply(&mut self, rel: Rel, x: u64, y: u64, m: i64) {
        self.eng
            .apply_batch(&[Update::with_payload(self.names[rel.index()], tup![x, y], m)])
            .unwrap();
    }

    fn count(&self) -> i64 {
        self.eng.output_relation().get(&Tuple::empty())
    }

    fn work(&self) -> u64 {
        let s = self.eng.stats();
        s.deltas_in + s.multiway_seeds + s.multiway_probes + s.output_delta_tuples
    }

    fn name(&self) -> &'static str {
        "dataflow-wcoj"
    }
}

/// The generic heavy-light engine behind the same interface.
struct Hl {
    eng: HeavyLightEngine<i64>,
    names: [Sym; 3],
}

impl TriangleMaintainer for Hl {
    fn apply(&mut self, rel: Rel, x: u64, y: u64, m: i64) {
        self.eng
            .apply_batch(&[Update::with_payload(self.names[rel.index()], tup![x, y], m)])
            .unwrap();
    }

    fn count(&self) -> i64 {
        *self.eng.count()
    }

    fn work(&self) -> u64 {
        self.eng.stats().work
    }

    fn name(&self) -> &'static str {
        "heavy-light"
    }
}

/// Load a Zipf-skewed base of `n` edges, then probe with hub-edge
/// insert/delete pairs; returns (probe work/update, probe ns/update).
fn probe_hub(eng: &mut dyn TriangleMaintainer, n: usize, probes: usize) -> (f64, f64) {
    let stream = EdgeStream::zipf((n / 8).max(32) as u64, n, 0.9, 3);
    for &(a, b) in &stream.edges {
        eng.apply(Rel::R, a, b, 1);
        eng.apply(Rel::S, a, b, 1);
        eng.apply(Rel::T, a, b, 1);
    }
    let w0 = eng.work();
    let (_, d) = time(|| {
        for i in 0..probes {
            let rel = Rel::ALL[i % 3];
            eng.apply(rel, 0, 0, 1);
            eng.apply(rel, 0, 0, -1);
        }
    });
    let ops = probes * 2;
    (
        eng.work().saturating_sub(w0) as f64 / ops as f64,
        ns_per(d, ops),
    )
}

struct Row {
    engine: &'static str,
    works: Vec<f64>,
    ns: Vec<f64>,
}

fn main() {
    let q = examples::triangle_count();
    let rels = names();
    let sizes = [
        scaled(2_000, 250),
        scaled(8_000, 1_000),
        scaled(32_000, 4_000),
    ];
    let probes = scaled(400, 40);

    println!(
        "# Heavy-light vs WCOJ-delta crossover on hub updates (work = inner-loop ops/update)\n"
    );
    let mut table = Table::new(&[
        "engine", "N1 work", "N2 work", "N3 work", "N1 ns", "N2 ns", "N3 ns",
    ]);

    let mut rows: Vec<Row> = Vec::new();
    for label in ["dataflow-wcoj", "heavy-light"] {
        let mut works = Vec::new();
        let mut ns = Vec::new();
        for &n in &sizes {
            let mut eng: Box<dyn TriangleMaintainer> = match label {
                "dataflow-wcoj" => Box::new(Wcoj {
                    eng: DataflowEngine::new_with_strategy(
                        q.clone(),
                        &Database::new(),
                        lift_one,
                        JoinStrategy::Multiway,
                    )
                    .unwrap(),
                    names: rels,
                }),
                _ => Box::new(Hl {
                    eng: HeavyLightEngine::new(q.clone(), &Database::new(), lift_one).unwrap(),
                    names: rels,
                }),
            };
            let (w, t) = probe_hub(eng.as_mut(), n, probes);
            works.push(w);
            ns.push(t);
        }
        table.row(vec![
            label.to_string(),
            fmt(works[0]),
            fmt(works[1]),
            fmt(works[2]),
            fmt(ns[0]),
            fmt(ns[1]),
            fmt(ns[2]),
        ]);
        rows.push(Row {
            engine: label,
            works,
            ns,
        });
    }
    table.print();

    let work_speedup = ratio(rows[0].works[2], rows[1].works[2]);
    let ns_speedup = ratio(rows[0].ns[2], rows[1].ns[2]);
    println!(
        "\nhub-probe speedup @N3 (wcoj / heavy-light): {}x work, {}x wall",
        fmt(work_speedup),
        fmt(ns_speedup)
    );
    assert!(
        work_speedup > 1.0,
        "heavy-light must beat the WCOJ delta pass on skewed hub updates \
         (got {work_speedup}x)"
    );

    // ---------------------------------------------------------------
    // Adaptive end-to-end: forced dataflow, hub burst, family shift.
    // ---------------------------------------------------------------
    let hub_partners = scaled(600, 80) as i64;
    let anchor = 1_000_000i64;
    let mut session = Session::<i64>::builder(q.clone())
        .engine(EngineKind::DataflowMultiway)
        .adaptive(ReplanPolicy {
            min_batches_between: 2,
            min_replay_fraction: 0.01,
            family_cost_ratio: 2.0,
            ..ReplanPolicy::default()
        })
        .build(&Database::new())
        .unwrap();
    let mut mirror: Database<i64> = Database::new();
    for atom in &q.atoms {
        if mirror.get(atom.name).is_none() {
            mirror.create(atom.name, atom.schema.clone());
        }
    }
    let ingest = |s: &mut Session<i64>, mirror: &mut Database<i64>, batch: Vec<Update<i64>>| {
        s.apply_batch(&batch).unwrap();
        for u in &batch {
            mirror.apply(u);
        }
    };
    // Flat prefix: no skew, the dataflow plan is fine where it is.
    let flat = EdgeStream::zipf(512, scaled(1_200, 150), 0.0, 7);
    for chunk in flat.edges.chunks(64) {
        let batch: Vec<Update<i64>> = chunk
            .iter()
            .flat_map(|&(a, b)| (0..3).map(move |r| Update::with_payload(rels[r], tup![a, b], 1)))
            .collect();
        ingest(&mut session, &mut mirror, batch);
    }
    // Hub burst: every wedge R(0,v)·S(v,anchor)·T(anchor,0) closes a
    // triangle through one hub key, driving d_max past the family bound.
    let (_, burst_d) = time(|| {
        for v in 1..=hub_partners {
            let batch = vec![
                Update::with_payload(rels[0], tup![0i64, v], 1),
                Update::with_payload(rels[1], tup![v, anchor], 1),
                Update::with_payload(rels[2], tup![anchor, 0i64], 1),
            ];
            ingest(&mut session, &mut mirror, batch);
        }
    });

    let shifts: Vec<u64> = session
        .explain()
        .replans
        .iter()
        .filter(|e| e.trigger == ReplanTrigger::FamilyShift)
        .map(|e| e.batch_index)
        .collect();
    assert!(
        !shifts.is_empty(),
        "the hub burst must trigger at least one mid-stream family shift; \
         replans: {:?}",
        session.explain().replans
    );
    assert_eq!(
        session.engine_kind(),
        EngineKind::HeavyLight,
        "the session must end on the heavy-light family"
    );

    // From-scratch oracle over the mirrored base.
    let per_atom: Vec<&Relation<i64>> = q.atoms.iter().map(|a| mirror.relation(a.name)).collect();
    let expect = eval_join_aggregate(&per_atom, &q.free, lift_one);
    let got = session.output();
    assert_eq!(
        got.get(&Tuple::empty()),
        expect.get(&Tuple::empty()),
        "post-shift view must equal the from-scratch oracle"
    );

    println!(
        "\nadaptive session: {} family shift(s) at batch indices {:?}; \
         final count {} ≡ oracle; hub burst of {} wedges ingested in {} ns",
        shifts.len(),
        shifts,
        got.get(&Tuple::empty()),
        hub_partners,
        fmt(burst_d.as_nanos() as f64),
    );

    let doc = bench_doc("hl_crossover")
        .field(
            "sizes",
            Json::Arr(sizes.iter().map(|&n| Json::num(n as f64)).collect()),
        )
        .field("probe_updates", Json::num((probes * 2) as f64))
        .field(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("engine", Json::str(r.engine))
                            .field(
                                "work_per_update",
                                Json::Arr(r.works.iter().map(|&w| Json::num(w)).collect()),
                            )
                            .field(
                                "ns_per_update",
                                Json::Arr(r.ns.iter().map(|&v| Json::num(v)).collect()),
                            )
                    })
                    .collect(),
            ),
        )
        .field("hub_probe_work_speedup_at_n3", Json::num(work_speedup))
        .field("hub_probe_ns_speedup_at_n3", Json::num(ns_speedup))
        .field(
            "adaptive",
            Json::obj()
                .field("family_shifts", Json::num(shifts.len() as f64))
                .field(
                    "shift_batch_indices",
                    Json::Arr(shifts.iter().map(|&b| Json::num(b as f64)).collect()),
                )
                .field("final_engine", Json::str("HeavyLight"))
                .field("final_count_matches_oracle", Json::Bool(true)),
        );
    ivm_bench::write_bench_json("BENCH_HL_JSON", "BENCH_hl.json", &doc);
}
