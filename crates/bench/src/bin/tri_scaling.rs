//! **Sec 3.1–3.3**: single-tuple update cost of the four triangle
//! maintainers as the database grows.
//!
//! Paper's claims (worst-case): recomputation O(N^{3/2}), first-order
//! delta O(N), pairwise materialized views O(N) time / O(N²) space, IVMε
//! O(√N) amortized at ε = ½. Worst cases are realized by *hub* updates:
//! we probe with insert/delete of edges incident to the Zipf hub, where
//! the delta query must intersect two Θ(N)-sized lists.
//!
//! Run: `cargo run --release -p ivm-bench --bin tri_scaling`

use ivm_bench::{empirical_exponent, fmt, ns_per, scaled, time, Table};
use ivm_ivme::{
    Rel, TriangleDelta, TriangleIvmEps, TriangleMaintainer, TrianglePairwiseMv, TriangleRecount,
};
use ivm_workloads::graphs::EdgeStream;

/// Load a skewed graph of `n` edges, then probe with hub-edge updates.
fn run(engine: &mut dyn TriangleMaintainer, n: usize, probe: usize) -> (f64, f64) {
    let hub = 0u64;
    let stream = EdgeStream::zipf((n / 8).max(32) as u64, n, 0.9, 3);
    for &(a, b) in &stream.edges {
        engine.apply(Rel::R, a, b, 1);
        engine.apply(Rel::S, a, b, 1);
        engine.apply(Rel::T, a, b, 1);
    }
    let w0 = engine.work();
    let (_, d) = time(|| {
        for i in 0..probe {
            // δR(hub, hub): the delta query intersects S's hub row with
            // T's hub column — both Θ(N) under the Zipf skew.
            let rel = Rel::ALL[i % 3];
            engine.apply(rel, hub, hub, 1);
            engine.apply(rel, hub, hub, -1);
        }
    });
    let ops = probe * 2;
    ((engine.work() - w0) as f64 / ops as f64, ns_per(d, ops))
}

fn main() {
    let sizes = [
        scaled(4_000, 500),
        scaled(16_000, 2_000),
        scaled(64_000, 8_000),
    ];
    let probe = scaled(500, 50);
    println!("# Triangle update-cost scaling on hub updates (work = inner-loop ops/update)\n");
    let mut table = Table::new(&[
        "engine",
        "N1 work",
        "N2 work",
        "N3 work",
        "exp (N1→N3)",
        "ns/upd @N3",
        "paper",
    ]);

    for name in ["recount", "delta", "pairwise-mv", "ivm-eps(0.5)"] {
        let mut works = Vec::new();
        let mut last_ns = 0.0;
        for (si, &n) in sizes.iter().enumerate() {
            // Recount is Θ(N^{3/2}) per update: cap its sizes and probes.
            if name == "recount" && si > 1 {
                works.push(f64::NAN);
                continue;
            }
            let mut eng: Box<dyn TriangleMaintainer> = match name {
                "recount" => Box::new(TriangleRecount::new()),
                "delta" => Box::new(TriangleDelta::new()),
                "pairwise-mv" => Box::new(TrianglePairwiseMv::new()),
                _ => Box::new(TriangleIvmEps::new(0.5)),
            };
            let p = if name == "recount" { 10 } else { probe };
            let (w, ns) = run(eng.as_mut(), n, p);
            works.push(w);
            last_ns = ns;
        }
        let exp = if works[2].is_nan() {
            empirical_exponent(sizes[0], works[0], sizes[1], works[1])
        } else {
            empirical_exponent(sizes[0], works[0], sizes[2], works[2])
        };
        let expected = match name {
            "recount" => "N^1.5",
            "delta" => "N^1",
            "pairwise-mv" => "N^1",
            _ => "N^0.5",
        };
        table.row(vec![
            name.to_string(),
            fmt(works[0]),
            fmt(works[1]),
            if works[2].is_nan() {
                "-".into()
            } else {
                fmt(works[2])
            },
            format!("{exp:.2}"),
            fmt(last_ns),
            expected.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape (paper): ivm-eps grows ~N^0.5 on hub updates; \
         delta and pairwise-mv grow ~N^1; recount fastest-growing."
    );
}
