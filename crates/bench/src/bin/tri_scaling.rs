//! **Sec 3.1–3.3**: single-tuple update cost of the triangle maintainers
//! as the database grows.
//!
//! Paper's claims (worst-case): recomputation O(N^{3/2}), first-order
//! delta O(N), pairwise materialized views O(N) time / O(N²) space, IVMε
//! O(√N) amortized at ε = ½. Worst cases are realized by *hub* updates:
//! we probe with insert/delete of edges incident to the Zipf hub, where
//! the delta query must intersect two Θ(N)-sized lists.
//!
//! On top of the four specialized kernels, two generic `ivm-dataflow`
//! rows run the same workload through the planner's two plans:
//! `dataflow-leftdeep` (binary `DeltaJoin` chain — materializes the
//! pairwise intermediate, the Sec. 3.2 blow-up, so it is capped at the
//! small sizes like `recount`) and `dataflow-wcoj` (the worst-case-optimal
//! `MultiwayJoin`, whose per-update work is the intersection of the two
//! hub lists — visibly sublinear in the intermediate the left-deep plan
//! would build).
//!
//! Run: `cargo run --release -p ivm-bench --bin tri_scaling`
//! Also emits `BENCH_tri.json` (path override: `BENCH_TRI_JSON`) so CI
//! records the perf trajectory run over run.
//!
//! The dataflow rows run with a metrics registry attached by default (the
//! instrumented configuration is the honest one to report); their `work`
//! counters are then read back *from the registry snapshot*, so the bench
//! doubles as an end-to-end check that the telemetry mirrors the engine's
//! own stats. Set `RIVM_METRICS=0` to run them detached (the
//! `obs_overhead` bin quantifies the difference).
//!
//! [`MultiwayJoin`]: ivm_dataflow::Dataflow::add_multiway_join

use ivm_bench::{bench_doc, empirical_exponent, fmt, ns_per, scaled, time, Json, Table};
use ivm_core::Maintainer;
use ivm_data::ops::lift_one;
use ivm_data::{tup, Database, Update};
use ivm_dataflow::{DataflowEngine, JoinStrategy};
use ivm_hl::HeavyLightEngine;
use ivm_ivme::{
    Rel, TriangleDelta, TriangleIvmEps, TriangleMaintainer, TrianglePairwiseMv, TriangleRecount,
};
use ivm_obs::MetricsRegistry;
use ivm_workloads::graphs::EdgeStream;

/// Whether the dataflow rows attach a metrics registry (default yes;
/// `RIVM_METRICS=0` opts out).
fn metrics_enabled() -> bool {
    std::env::var("RIVM_METRICS").map_or(true, |v| v != "0")
}

/// `DataflowEngine` on the 3-relation triangle query, adapted to the
/// kernel benchmark interface. Work is the engine's machine-independent
/// counters: propagated deltas plus materialized binary-join tuples
/// (left-deep) or seeded tuples plus index probes (multiway).
struct DataflowTriangle {
    eng: DataflowEngine<i64>,
    names: [ivm_data::Sym; 3],
    label: &'static str,
    /// Attached unless `RIVM_METRICS=0`; when present, `work()` reads the
    /// registry instead of the engine, exercising the telemetry path.
    registry: Option<MetricsRegistry>,
}

impl DataflowTriangle {
    fn new(strategy: JoinStrategy, label: &'static str) -> Self {
        let q = ivm_query::examples::triangle_count();
        let names = [q.atoms[0].name, q.atoms[1].name, q.atoms[2].name];
        let mut eng =
            DataflowEngine::new_with_strategy(q, &Database::new(), lift_one, strategy).unwrap();
        let registry = metrics_enabled().then(MetricsRegistry::new);
        if let Some(reg) = &registry {
            eng.observe(reg, label);
        }
        DataflowTriangle {
            eng,
            names,
            label,
            registry,
        }
    }
}

impl TriangleMaintainer for DataflowTriangle {
    fn apply(&mut self, rel: Rel, x: u64, y: u64, m: i64) {
        self.eng
            .apply_batch(&[Update::with_payload(self.names[rel.index()], tup![x, y], m)])
            .unwrap();
    }

    fn count(&self) -> i64 {
        self.eng.output_relation().get(&ivm_data::Tuple::empty())
    }

    fn work(&self) -> u64 {
        match &self.registry {
            // Registry counters are synced at every batch boundary, so
            // between applies they agree with the engine's own stats.
            Some(reg) => {
                let m = reg.snapshot();
                let c = |k: &str| m.counter(&format!("{}.{k}", self.label));
                c("deltas_in")
                    + c("binary_join_tuples")
                    + c("multiway_seeds")
                    + c("multiway_probes")
                    + c("output_delta_tuples")
            }
            None => {
                let s = self.eng.stats();
                s.deltas_in
                    + s.binary_join_tuples
                    + s.multiway_seeds
                    + s.multiway_probes
                    + s.output_delta_tuples
            }
        }
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

/// The generic heavy-light engine (`ivm-hl`) on the same 3-relation
/// triangle: the `Value`-keyed, ring-generic reimplementation of the
/// `ivm-eps(0.5)` kernel. Its `work` counter uses the same
/// inner-loop-operations convention, so the kernel row is the ceiling
/// this row chases — the gap between the two is pure genericity tax
/// (`Value` hashing and ring dispatch), not asymptotics.
struct HlTriangle {
    eng: HeavyLightEngine<i64>,
    names: [ivm_data::Sym; 3],
    label: &'static str,
    registry: Option<MetricsRegistry>,
}

impl HlTriangle {
    fn new(eps: f64, label: &'static str) -> Self {
        let q = ivm_query::examples::triangle_count();
        let names = [q.atoms[0].name, q.atoms[1].name, q.atoms[2].name];
        let mut eng = HeavyLightEngine::new_with_eps(q, &Database::new(), lift_one, eps).unwrap();
        let registry = metrics_enabled().then(MetricsRegistry::new);
        if let Some(reg) = &registry {
            eng.observe(reg, label);
        }
        HlTriangle {
            eng,
            names,
            label,
            registry,
        }
    }
}

impl TriangleMaintainer for HlTriangle {
    fn apply(&mut self, rel: Rel, x: u64, y: u64, m: i64) {
        self.eng
            .apply_batch(&[Update::with_payload(self.names[rel.index()], tup![x, y], m)])
            .unwrap();
    }

    fn count(&self) -> i64 {
        *self.eng.count()
    }

    fn work(&self) -> u64 {
        match &self.registry {
            Some(reg) => reg.snapshot().counter(&format!("{}.work", self.label)),
            None => self.eng.stats().work,
        }
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

/// Load a skewed graph of `n` edges, then probe with hub-edge updates.
fn run(engine: &mut dyn TriangleMaintainer, n: usize, probe: usize) -> (f64, f64) {
    let hub = 0u64;
    let stream = EdgeStream::zipf((n / 8).max(32) as u64, n, 0.9, 3);
    for &(a, b) in &stream.edges {
        engine.apply(Rel::R, a, b, 1);
        engine.apply(Rel::S, a, b, 1);
        engine.apply(Rel::T, a, b, 1);
    }
    let w0 = engine.work();
    let (_, d) = time(|| {
        for i in 0..probe {
            // δR(hub, hub): the delta query intersects S's hub row with
            // T's hub column — both Θ(N) under the Zipf skew.
            let rel = Rel::ALL[i % 3];
            engine.apply(rel, hub, hub, 1);
            engine.apply(rel, hub, hub, -1);
        }
    });
    let ops = probe * 2;
    // Saturating: `work` may be rebased (e.g. counters reset by an engine
    // replan) between the two reads; a wrapped subtraction would turn
    // that into an absurd ~2^64 work figure instead of a visible zero.
    (
        engine.work().saturating_sub(w0) as f64 / ops as f64,
        ns_per(d, ops),
    )
}

/// One bench row, also serialized into `BENCH_tri.json`.
struct Row {
    engine: String,
    works: Vec<f64>,
    exponent: f64,
    ns_per_update: f64,
    /// Measured updates per size for this engine (capped engines probe
    /// fewer times than the default).
    probe_updates: usize,
    paper: String,
    /// The specialized-kernel row this generic row chases: same
    /// asymptotics, so `work_per_update` should track it within a
    /// constant factor. `None` for the kernels themselves.
    ceiling: Option<String>,
}

fn emit_json(sizes: &[usize], rows: &[Row]) {
    let doc = bench_doc("tri_scaling")
        .field("metrics_attached", Json::Bool(metrics_enabled()))
        .field(
            "sizes",
            Json::Arr(sizes.iter().map(|&n| Json::num(n as f64)).collect()),
        )
        .field(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("engine", Json::str(r.engine.as_str()))
                            .field(
                                "work_per_update",
                                Json::Arr(r.works.iter().map(|&w| Json::num(w)).collect()),
                            )
                            .field("empirical_exponent", Json::num(r.exponent))
                            .field("ns_per_update", Json::num(r.ns_per_update))
                            .field("probe_updates", Json::num(r.probe_updates as f64))
                            .field("paper", Json::str(r.paper.as_str()))
                            .field(
                                "ceiling",
                                r.ceiling.as_deref().map_or(Json::Null, Json::str),
                            )
                    })
                    .collect(),
            ),
        );
    ivm_bench::write_bench_json("BENCH_TRI_JSON", "BENCH_tri.json", &doc);
}

fn main() {
    let sizes = [
        scaled(4_000, 500),
        scaled(16_000, 2_000),
        scaled(64_000, 8_000),
    ];
    let probe = scaled(500, 50);
    println!("# Triangle update-cost scaling on hub updates (work = inner-loop ops/update)\n");
    let mut table = Table::new(&[
        "engine",
        "N1 work",
        "N2 work",
        "N3 work",
        "exp (N1→N3)",
        "ns/upd @N3",
        "paper",
    ]);

    let engines = [
        "recount",
        "delta",
        "pairwise-mv",
        "ivm-eps(0.5)",
        "hl-generic(0.5)",
        "dataflow-leftdeep",
        "dataflow-wcoj",
    ];
    let mut rows: Vec<Row> = Vec::new();
    for name in engines {
        // Quadratic-intermediate engines get capped at the small sizes:
        // recount is Θ(N^{3/2}) per update, and the left-deep dataflow
        // chain materializes the Θ(N²)-sized pairwise intermediate.
        let capped = matches!(name, "recount" | "dataflow-leftdeep");
        let mut works = Vec::new();
        let mut last_ns = 0.0;
        for (si, &n) in sizes.iter().enumerate() {
            if capped && si > 1 {
                works.push(f64::NAN);
                continue;
            }
            let mut eng: Box<dyn TriangleMaintainer> = match name {
                "recount" => Box::new(TriangleRecount::new()),
                "delta" => Box::new(TriangleDelta::new()),
                "pairwise-mv" => Box::new(TrianglePairwiseMv::new()),
                "dataflow-leftdeep" => Box::new(DataflowTriangle::new(
                    JoinStrategy::LeftDeep,
                    "dataflow-leftdeep",
                )),
                "dataflow-wcoj" => Box::new(DataflowTriangle::new(
                    JoinStrategy::Multiway,
                    "dataflow-wcoj",
                )),
                "hl-generic(0.5)" => Box::new(HlTriangle::new(0.5, "hl-generic(0.5)")),
                _ => Box::new(TriangleIvmEps::new(0.5)),
            };
            let p = if capped { 10 } else { probe };
            let (w, ns) = run(eng.as_mut(), n, p);
            works.push(w);
            last_ns = ns;
        }
        let exp = if works[2].is_nan() {
            empirical_exponent(sizes[0], works[0], sizes[1], works[1])
        } else {
            empirical_exponent(sizes[0], works[0], sizes[2], works[2])
        };
        let expected = match name {
            "recount" => "N^1.5",
            "delta" => "N^1",
            "pairwise-mv" => "N^1",
            "dataflow-leftdeep" => "N^1 (binary intermediates)",
            "dataflow-wcoj" => "sublinear in intermediate",
            "hl-generic(0.5)" => "N^0.5 (chases ivm-eps)",
            _ => "N^0.5",
        };
        let ceiling = (name == "hl-generic(0.5)").then(|| "ivm-eps(0.5)".to_string());
        table.row(vec![
            name.to_string(),
            fmt(works[0]),
            fmt(works[1]),
            if works[2].is_nan() {
                "-".into()
            } else {
                fmt(works[2])
            },
            format!("{exp:.2}"),
            fmt(last_ns),
            expected.to_string(),
        ]);
        rows.push(Row {
            engine: name.to_string(),
            works: works.clone(),
            exponent: exp,
            ns_per_update: last_ns,
            probe_updates: if capped { 10 } else { probe } * 2,
            paper: expected.to_string(),
            ceiling,
        });
    }
    table.print();
    println!(
        "\nExpected shape (paper): ivm-eps grows ~N^0.5 on hub updates; \
         delta and pairwise-mv grow ~N^1; recount fastest-growing. \
         dataflow-wcoj should sit well below dataflow-leftdeep at equal N. \
         hl-generic chases the ivm-eps kernel ceiling: same exponent, \
         constant-factor genericity tax."
    );
    emit_json(&sizes, &rows);
}
