//! **Sec 4.4 / Ex 4.13**: amortized maintenance under PK–FK constraints.
//!
//! Valid out-of-order batches over Title ⋈ MovieCompanies ⋈ CompanyName:
//! individual updates spike to O(n) (a company insert fixing up n waiting
//! movies), but the amortized cost per update stays constant as fanout
//! grows — each fixed-up fact pays O(1) against its own insertion.
//!
//! Run: `cargo run --release -p ivm-bench --bin pkfk`

use ivm_bench::{fmt, scaled, Table};
use ivm_core::pkfk::PkFkEngine;
use ivm_data::{sym, tup, Schema, Update};
use ivm_workloads::pkfk::{PkFkGen, PkFkOp};

fn main() {
    println!("# PK-FK amortized maintenance (Ex 4.13)\n");
    let mut table = Table::new(&[
        "fanout",
        "updates",
        "amortized cost",
        "max spike",
        "consistent at commit",
        "total",
    ]);
    for &fanout in &[10usize, 100, 1000] {
        let [m, c] = ivm_data::vars(["pkb_movie", "pkb_company"]);
        let mut eng: PkFkEngine<i64> = PkFkEngine::new(
            sym("pkb_MC"),
            Schema::from([m, c]),
            vec![(sym("pkb_Title"), m), (sym("pkb_Company"), c)],
        )
        .unwrap();
        let mut gen = PkFkGen::new(3);
        let rounds = scaled(3_000_000 / fanout.max(1), 100) / fanout.max(1);
        let mut updates = 0usize;
        let mut max_spike = 0usize;
        let mut consistent = true;
        for r in 0..rounds.max(10) {
            let batch = if r % 4 == 3 {
                gen.shrink_batch().unwrap_or_default()
            } else {
                gen.grow_batch(fanout)
            };
            for op in batch {
                let upd = match op {
                    PkFkOp::Title(mm, d) => {
                        Update::with_payload(sym("pkb_Title"), tup![mm as i64], d)
                    }
                    PkFkOp::Company(cc, d) => {
                        Update::with_payload(sym("pkb_Company"), tup![cc as i64], d)
                    }
                    PkFkOp::MovieCompany(mm, cc, d) => {
                        Update::with_payload(sym("pkb_MC"), tup![mm as i64, cc as i64], d)
                    }
                };
                eng.apply(&upd).unwrap();
                updates += 1;
                max_spike = max_spike.max(eng.last_cost());
            }
            // Commit point: the batch is valid, so the database must be
            // consistent here.
            if r % 10 == 0 {
                consistent &= eng.is_consistent();
            }
        }
        table.row(vec![
            fanout.to_string(),
            updates.to_string(),
            fmt(eng.amortized_cost()),
            max_spike.to_string(),
            consistent.to_string(),
            eng.total().to_string(),
        ]);
    }
    table.print();
    println!("\nExpected shape (paper): max spike grows ~linearly with fanout; amortized cost stays ~constant (< 2).");
}
