//! Criterion microbenchmarks for the hot paths: relation/index updates,
//! view-tree single-tuple maintenance, factorized enumeration, and the
//! triangle kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ivm_core::{EagerFactEngine, Maintainer};
use ivm_data::ops::lift_one;
use ivm_data::{sym, tup, Database, GroupedIndex, Relation, Schema, Update};
use ivm_ivme::{QhEpsEngine, Rel, TriangleDelta, TriangleIvmEps, TriangleMaintainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_relation_ops(c: &mut Criterion) {
    let schema = Schema::from(ivm_data::vars(["mb_a", "mb_b"]));
    c.bench_function("relation_apply_insert_delete", |b| {
        let mut rel: Relation<i64> = Relation::new(schema.clone());
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            let t = tup![i % 1000, i % 97];
            rel.apply(black_box(t.clone()), &1);
            rel.apply(black_box(t), &-1);
        });
    });

    c.bench_function("grouped_index_apply", |b| {
        let key = Schema::from([schema.vars()[0]]);
        let mut idx: GroupedIndex<i64> = GroupedIndex::new(schema.clone(), key);
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            let t = tup![i % 1000, i % 97];
            idx.apply(black_box(&t), &1);
            idx.apply(black_box(&t), &-1);
        });
    });
}

fn bench_viewtree(c: &mut Criterion) {
    let q = ivm_query::examples::fig3_query();
    let (rn, sn) = (sym("f3_R"), sym("f3_S"));

    c.bench_function("viewtree_apply_fig3", |b| {
        let mut eng = EagerFactEngine::<i64>::new(q.clone(), &Database::new(), lift_one).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // Preload.
        for _ in 0..50_000 {
            let y = rng.gen_range(0..5000i64);
            let v = rng.gen_range(0..5000i64);
            eng.apply(&Update::insert(rn, tup![y, v])).unwrap();
            eng.apply(&Update::insert(sn, tup![y, v])).unwrap();
        }
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            let t = tup![i % 5000, i % 4999];
            eng.apply(&Update::insert(rn, black_box(t.clone())))
                .unwrap();
            eng.apply(&Update::delete(rn, black_box(t))).unwrap();
        });
    });

    c.bench_function("viewtree_enumerate_1k", |b| {
        let mut eng = EagerFactEngine::<i64>::new(q.clone(), &Database::new(), lift_one).unwrap();
        for y in 0..1000i64 {
            eng.apply(&Update::insert(rn, tup![y, y])).unwrap();
            eng.apply(&Update::insert(sn, tup![y, y + 1])).unwrap();
        }
        b.iter(|| {
            let mut n = 0usize;
            eng.for_each_output(&mut |_, _| n += 1);
            black_box(n)
        });
    });
}

fn bench_triangles(c: &mut Criterion) {
    for (name, build) in [
        ("triangle_delta_update", true),
        ("triangle_ivmeps_update", false),
    ] {
        c.bench_function(name, |b| {
            let mut delta = TriangleDelta::new();
            let mut eps = TriangleIvmEps::new(0.5);
            let eng: &mut dyn TriangleMaintainer = if build { &mut delta } else { &mut eps };
            let mut rng = StdRng::seed_from_u64(2);
            for _ in 0..30_000 {
                let a = rng.gen_range(0..2000u64);
                let bb = rng.gen_range(0..2000u64);
                eng.apply(Rel::R, a, bb, 1);
                eng.apply(Rel::S, a, bb, 1);
                eng.apply(Rel::T, a, bb, 1);
            }
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                eng.apply(Rel::R, i % 2000, (i * 7) % 2000, 1);
                eng.apply(Rel::R, i % 2000, (i * 7) % 2000, -1);
                black_box(eng.count())
            });
        });
    }
}

fn bench_qh(c: &mut Criterion) {
    c.bench_function("qh_eps_update", |b| {
        let mut eng = QhEpsEngine::new(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50_000 {
            eng.apply_r(rng.gen_range(0..5000), rng.gen_range(0..5000), 1);
        }
        for bb in 0..5000u64 {
            eng.apply_s(bb, 1);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            eng.apply_r(i % 5000, (i * 13) % 5000, 1);
            eng.apply_r(i % 5000, (i * 13) % 5000, -1);
        });
    });
}

criterion_group!(
    benches,
    bench_relation_ops,
    bench_viewtree,
    bench_triangles,
    bench_qh
);
criterion_main!(benches);
