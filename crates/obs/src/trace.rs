//! Batch-lifecycle tracing: named [`Span`]s append to a bounded
//! ring-buffer event log. Unlike the metric atomics this takes a short
//! mutex per *span* (not per tuple) — spans wrap whole batch phases, so
//! contention is proportional to batch rate, and the ring discards the
//! oldest events instead of growing without bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One completed span.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// What happened, e.g. `enqueue seq=3` or `drain`.
    pub label: String,
    /// Start offset from the tracer's creation instant.
    pub start: Duration,
    /// Wall-clock length of the span.
    pub elapsed: Duration,
}

#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

/// Bounded event log. Cloning shares the buffer.
#[derive(Clone, Debug)]
pub struct Tracer(Arc<TracerInner>);

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(1024)
    }
}

impl Tracer {
    /// A tracer retaining at most `capacity` most-recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer(Arc::new(TracerInner {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            dropped: AtomicU64::new(0),
        }))
    }

    /// Open a span; it records itself on drop (or [`Span::finish`]).
    pub fn span(&self, label: impl Into<String>) -> Span {
        Span {
            tracer: self.clone(),
            label: label.into(),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Record a completed event directly (spans use this internally).
    pub fn record(&self, label: String, start: Instant, elapsed: Duration) {
        let mut events = self.0.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() >= self.0.capacity {
            events.pop_front();
            self.0.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(TraceEvent {
            label,
            start: start.saturating_duration_since(self.0.epoch),
            elapsed,
        });
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// How many events the ring has discarded since creation.
    pub fn dropped(&self) -> u64 {
        self.0.dropped.load(Ordering::Relaxed)
    }

    /// Discard all retained events (the dropped count keeps its total).
    pub fn clear(&self) {
        self.0
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// RAII guard measuring one phase: created by [`Tracer::span`], logs
/// its wall time when finished or dropped.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    label: String,
    start: Instant,
    armed: bool,
}

impl Span {
    /// End the span now and log it (otherwise `Drop` does).
    pub fn finish(mut self) {
        self.record();
    }

    /// End without logging — for phases that turned out to be no-ops.
    pub fn cancel(mut self) {
        self.armed = false;
    }

    fn record(&mut self) {
        if self.armed {
            self.armed = false;
            self.tracer.record(
                std::mem::take(&mut self.label),
                self.start,
                self.start.elapsed(),
            );
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let t = Tracer::with_capacity(8);
        {
            let _a = t.span("first");
        }
        t.span("second").finish();
        t.span("cancelled").cancel();
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].label, "first");
        assert_eq!(ev[1].label, "second");
        assert!(ev[1].start >= ev[0].start);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.span(format!("e{i}")).finish();
        }
        let ev = t.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].label, "e6");
        assert_eq!(ev[3].label, "e9");
        assert_eq!(t.dropped(), 6);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 6);
    }
}
