//! Epoch-causal tracing: spans with ids, parent ids, and an epoch tag,
//! appended to a bounded ring-buffer event log.
//!
//! Unlike the metric atomics this takes a short mutex per *span* (not
//! per tuple) — spans wrap whole batch phases, so contention is
//! proportional to batch rate, and the ring discards the oldest events
//! instead of growing without bound.
//!
//! # Causality model
//!
//! Each ingestion epoch opens one **root** span ([`Tracer::enter`] at
//! the outermost observed layer — the session or the serve node), and
//! every pipeline stage underneath — router consolidate/partition,
//! per-shard queue wait and worker apply, per-operator engine time, hub
//! advance, per-subscriber notify — records a **child** span carrying
//! the root's epoch. Parentage flows through a thread-local ambient
//! context: opening a span installs it as the current parent for the
//! thread, and restores the previous one when it finishes, so nested
//! stages link up without threading ids through every call signature.
//! Worker threads join an epoch explicitly via [`Tracer::enter_at`]
//! with the context the router shipped alongside the job.
//!
//! Labels are **interned** ([`Tracer::intern`] → [`LabelId`]): the hot
//! path records a `Copy` id, never allocates a `String` per span. The
//! [`crate::EpochWaterfall`] reconstructor turns the flat ring back
//! into per-epoch latency trees.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// An interned span label: a dense index into the owning tracer's label
/// table. Intern once at attach/setup time, record with the `Copy` id on
/// the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelId(u32);

/// One completed span, with its label resolved back to text.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Unique id within this tracer (never reused; ids start at 1).
    pub id: u64,
    /// The enclosing span's id, `None` for an epoch root.
    pub parent: Option<u64>,
    /// The ingestion epoch this span belongs to.
    pub epoch: u64,
    /// What happened, e.g. `session.ingest` or `shard2.apply`.
    pub label: String,
    /// Start offset from the tracer's creation instant.
    pub start: Duration,
    /// Wall-clock length of the span.
    pub elapsed: Duration,
}

impl TraceEvent {
    /// Start offset in nanoseconds (saturating).
    pub fn start_ns(&self) -> u64 {
        self.start.as_nanos().min(u64::MAX as u128) as u64
    }

    /// Duration in nanoseconds (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed.as_nanos().min(u64::MAX as u128) as u64
    }
}

/// Compact ring entry: label as an interned id, parent 0 = none.
#[derive(Clone, Copy, Debug)]
struct SpanRecord {
    id: u64,
    parent: u64,
    epoch: u64,
    label: LabelId,
    start: Duration,
    elapsed: Duration,
}

/// The thread's current (tracer identity, open span, epoch). Tracer
/// identity keeps two registries in one thread (common in tests) from
/// adopting each other's parents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct AmbientCtx {
    tracer: usize,
    span: u64,
    epoch: u64,
}

thread_local! {
    static CTX: Cell<Option<AmbientCtx>> = const { Cell::new(None) };
}

#[derive(Debug)]
struct TracerInner {
    origin: Instant,
    capacity: usize,
    events: Mutex<VecDeque<SpanRecord>>,
    /// Interned labels; a `LabelId` indexes here. Bounded by the number
    /// of distinct pipeline stages (a few dozen), so linear-scan intern
    /// is fine — and it only runs on setup paths anyway.
    labels: Mutex<Vec<Arc<str>>>,
    dropped: AtomicU64,
    next_id: AtomicU64,
}

/// Bounded causal event log. Cloning shares the buffer.
#[derive(Clone, Debug)]
pub struct Tracer(Arc<TracerInner>);

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(4096)
    }
}

impl Tracer {
    /// A tracer retaining at most `capacity` most-recent spans.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer(Arc::new(TracerInner {
            origin: Instant::now(),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            dropped: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            labels: Mutex::new(Vec::new()),
        }))
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    fn next_id(&self) -> u64 {
        self.0.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Intern `label`, returning its stable id. Idempotent; meant for
    /// setup paths (attach/observe), not per-span.
    pub fn intern(&self, label: &str) -> LabelId {
        let mut labels = self.0.labels.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = labels.iter().position(|l| &**l == label) {
            return LabelId(i as u32);
        }
        labels.push(Arc::from(label));
        LabelId((labels.len() - 1) as u32)
    }

    /// The text behind an interned id (empty if the id is foreign).
    pub fn label(&self, id: LabelId) -> String {
        let labels = self.0.labels.lock().unwrap_or_else(|e| e.into_inner());
        labels
            .get(id.0 as usize)
            .map(|l| l.to_string())
            .unwrap_or_default()
    }

    /// This thread's open (span id, epoch) on *this* tracer, if any —
    /// what a router captures to ship alongside a cross-thread job.
    pub fn current_ctx(&self) -> Option<(u64, u64)> {
        CTX.with(|c| c.get())
            .filter(|ctx| ctx.tracer == self.identity())
            .map(|ctx| (ctx.span, ctx.epoch))
    }

    /// Open the span for one observed layer: a **child** of the thread's
    /// ambient span when one is open on this tracer (e.g. a session
    /// ingest running under a serve-node root), otherwise an epoch
    /// **root** tagged `epoch`. Installs itself as the ambient parent
    /// until finished.
    pub fn enter(&self, label: LabelId, epoch: u64) -> Span {
        match self.current_ctx() {
            Some((parent, ambient_epoch)) => self.open(label, Some(parent), ambient_epoch),
            None => self.open(label, None, epoch),
        }
    }

    /// Open a span under an explicit parent and epoch — how a worker
    /// thread joins an epoch whose root lives on the caller thread.
    /// Installs itself as the ambient parent until finished.
    pub fn enter_at(&self, label: LabelId, parent: u64, epoch: u64) -> Span {
        self.open(label, Some(parent), epoch)
    }

    /// Open a child span iff this thread has an ambient span open on
    /// this tracer; `None` otherwise. The gate for interior stages
    /// (engine, hub, notify) that should only trace under a root.
    pub fn child_span(&self, label: LabelId) -> Option<Span> {
        self.current_ctx()
            .map(|(parent, epoch)| self.open(label, Some(parent), epoch))
    }

    /// Convenience for ad-hoc spans: interns `label` (setup-path cost)
    /// and opens via [`Self::enter`] with epoch 0.
    pub fn span(&self, label: &str) -> Span {
        let id = self.intern(label);
        self.enter(id, 0)
    }

    fn open(&self, label: LabelId, parent: Option<u64>, epoch: u64) -> Span {
        let id = self.next_id();
        let prev_ctx = CTX.with(|c| {
            c.replace(Some(AmbientCtx {
                tracer: self.identity(),
                span: id,
                epoch,
            }))
        });
        Span {
            tracer: self.clone(),
            id,
            parent,
            epoch,
            label,
            start: Instant::now(),
            prev_ctx,
            armed: true,
        }
    }

    /// Record a completed span directly from measurements the caller
    /// already took (no extra clock reads): the post-hoc path for
    /// queue-wait gaps and per-operator running-clock segments.
    /// Returns the span's id.
    pub fn record_at(
        &self,
        label: LabelId,
        parent: Option<u64>,
        epoch: u64,
        start: Instant,
        elapsed: Duration,
    ) -> u64 {
        let id = self.next_id();
        self.push(SpanRecord {
            id,
            parent: parent.unwrap_or(0),
            epoch,
            label,
            start: start.saturating_duration_since(self.0.origin),
            elapsed,
        });
        id
    }

    fn push(&self, rec: SpanRecord) {
        let mut events = self.0.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() >= self.0.capacity {
            events.pop_front();
            self.0.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(rec);
    }

    /// Copy of the retained spans, oldest first, labels resolved.
    pub fn events(&self) -> Vec<TraceEvent> {
        let labels: Vec<Arc<str>> = self
            .0
            .labels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        self.0
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|r| TraceEvent {
                id: r.id,
                parent: (r.parent != 0).then_some(r.parent),
                epoch: r.epoch,
                label: labels
                    .get(r.label.0 as usize)
                    .map(|l| l.to_string())
                    .unwrap_or_default(),
                start: r.start,
                elapsed: r.elapsed,
            })
            .collect()
    }

    /// How many spans the ring has discarded since creation.
    pub fn dropped(&self) -> u64 {
        self.0.dropped.load(Ordering::Relaxed)
    }

    /// Discard all retained spans (the dropped count keeps its total).
    pub fn clear(&self) {
        self.0
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// RAII guard measuring one phase: created by [`Tracer::enter`] /
/// [`Tracer::enter_at`] / [`Tracer::child_span`], logs its wall time
/// when finished or dropped, and keeps the thread's ambient parent
/// pointing at itself meanwhile.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    epoch: u64,
    label: LabelId,
    start: Instant,
    prev_ctx: Option<AmbientCtx>,
    armed: bool,
}

impl Span {
    /// This span's id — the parent for children recorded post hoc.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The epoch this span is tagged with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// End the span now and log it (otherwise `Drop` does).
    pub fn finish(mut self) {
        self.record(None);
    }

    /// End the span logging exactly `elapsed` instead of the measured
    /// wall time — so a stage whose latency is *also* recorded into a
    /// histogram can log the identical value to both.
    pub fn finish_with(mut self, elapsed: Duration) {
        self.record(Some(elapsed));
    }

    /// End without logging — for phases that turned out to be no-ops.
    pub fn cancel(mut self) {
        self.restore_ctx();
        self.armed = false;
    }

    fn restore_ctx(&mut self) {
        CTX.with(|c| c.set(self.prev_ctx.take()));
    }

    fn record(&mut self, elapsed: Option<Duration>) {
        if self.armed {
            self.armed = false;
            self.restore_ctx();
            self.tracer.push(SpanRecord {
                id: self.id,
                parent: self.parent.unwrap_or(0),
                epoch: self.epoch,
                label: self.label,
                start: self.start.saturating_duration_since(self.tracer.0.origin),
                elapsed: elapsed.unwrap_or_else(|| self.start.elapsed()),
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let t = Tracer::with_capacity(8);
        {
            let _a = t.span("first");
        }
        t.span("second").finish();
        t.span("cancelled").cancel();
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].label, "first");
        assert_eq!(ev[1].label, "second");
        assert!(ev[1].start >= ev[0].start);
        assert!(ev[0].parent.is_none(), "top-level spans are roots");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.span(&format!("e{i}")).finish();
        }
        let ev = t.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev[0].label, "e6");
        assert_eq!(ev[3].label, "e9");
        assert_eq!(t.dropped(), 6);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn interning_is_idempotent_and_resolves() {
        let t = Tracer::default();
        let a = t.intern("router.partition");
        let b = t.intern("router.partition");
        let c = t.intern("router.consolidate");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.label(a), "router.partition");
        assert_eq!(t.label(c), "router.consolidate");
    }

    #[test]
    fn nesting_links_parents_and_inherits_epoch() {
        let t = Tracer::default();
        let root_l = t.intern("root");
        let mid_l = t.intern("mid");
        let leaf_l = t.intern("leaf");
        {
            let root = t.enter(root_l, 7);
            assert_eq!(t.current_ctx(), Some((root.id(), 7)));
            {
                let mid = t.child_span(mid_l).expect("root is ambient");
                assert_eq!(mid.epoch(), 7);
                t.child_span(leaf_l).expect("mid is ambient").finish();
                mid.finish();
            }
            // Ambient context restored to the root after the children.
            assert_eq!(t.current_ctx(), Some((root.id(), 7)));
        }
        assert_eq!(t.current_ctx(), None, "root restored an empty context");
        let ev = t.events();
        assert_eq!(ev.len(), 3, "finish order: leaf, mid, root");
        let (leaf, mid, root) = (&ev[0], &ev[1], &ev[2]);
        assert_eq!(root.parent, None);
        assert_eq!(mid.parent, Some(root.id));
        assert_eq!(leaf.parent, Some(mid.id));
        assert!(ev.iter().all(|e| e.epoch == 7));
    }

    #[test]
    fn enter_at_joins_a_foreign_epoch_and_record_at_is_post_hoc() {
        let t = Tracer::default();
        let root_l = t.intern("root");
        let apply_l = t.intern("apply");
        let wait_l = t.intern("wait");
        let root = t.enter(root_l, 3);
        let (root_id, epoch) = (root.id(), root.epoch());
        let enqueued = Instant::now();
        let handle = {
            let t2 = t.clone();
            std::thread::spawn(move || {
                t2.record_at(
                    wait_l,
                    Some(root_id),
                    epoch,
                    enqueued,
                    Duration::from_micros(5),
                );
                let span = t2.enter_at(apply_l, root_id, epoch);
                span.finish();
            })
        };
        handle.join().unwrap();
        root.finish();
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert!(ev
            .iter()
            .filter(|e| e.label != "root")
            .all(|e| e.parent == Some(root_id) && e.epoch == 3));
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_adopt_each_other() {
        let a = Tracer::default();
        let b = Tracer::default();
        let ra = a.intern("a.root");
        let sb = b.intern("b.span");
        let _root = a.enter(ra, 1);
        assert_eq!(b.current_ctx(), None);
        assert!(b.child_span(sb).is_none(), "foreign ambient ctx ignored");
        let span = b.enter(sb, 9);
        assert_eq!(span.epoch(), 9, "b opens its own root, not a's child");
        span.finish();
        let ev = b.events();
        assert_eq!(ev[0].parent, None);
    }

    #[test]
    fn finish_with_logs_the_given_elapsed_exactly() {
        let t = Tracer::default();
        let l = t.intern("ingest");
        t.enter(l, 0).finish_with(Duration::from_nanos(12345));
        assert_eq!(t.events()[0].elapsed, Duration::from_nanos(12345));
    }
}
