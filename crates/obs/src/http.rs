//! A dependency-free scrape endpoint over `std::net::TcpListener`.
//!
//! One background thread accepts connections and answers three routes
//! from the attached [`MetricsRegistry`]:
//!
//! | route            | body                                           |
//! |------------------|------------------------------------------------|
//! | `/metrics`       | Prometheus text exposition of the snapshot     |
//! | `/snapshot.json` | the full [`MetricsSnapshot`] as JSON           |
//! | `/epochs.json`   | recent [`EpochWaterfall`]s from the trace ring |
//!
//! Each response is built from a fresh snapshot at request time, so a
//! scraper always sees a consistent point-in-time view regardless of
//! ingest concurrency. The server speaks just enough HTTP/1.x for
//! `curl` and Prometheus: it reads the request line, answers with
//! `Content-Length`, and closes. Bind to port 0 in tests and read the
//! real port back from [`MetricsServer::addr`].
//!
//! [`MetricsSnapshot`]: crate::MetricsSnapshot

use crate::json::Json;
use crate::registry::MetricsRegistry;
use crate::waterfall::EpochWaterfall;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many recent epochs `/epochs.json` returns at most.
const EPOCHS_LIMIT: usize = 32;

/// A live exposition endpoint. Dropping it stops the accept loop and
/// joins the server thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`, or `"127.0.0.1:0"` for an
    /// ephemeral port) and serve `registry` until dropped.
    pub fn start(addr: &str, registry: &MetricsRegistry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            let registry = registry.clone();
            std::thread::Builder::new()
                .name("ivm-obs-http".into())
                .spawn(move || accept_loop(listener, registry, stop))?
        };
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it awake with a
        // throwaway connection so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, registry: MetricsRegistry, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        // A stalled client must not wedge the (single-threaded) loop.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle(&mut stream, &registry);
    }
}

fn handle(stream: &mut TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    // Read the complete header block before answering — closing with
    // unread request bytes in the socket makes the kernel RST the
    // connection under the client's feet. Headers themselves are
    // ignored (every route is a parameterless GET).
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let line = buf
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                registry.snapshot().to_prometheus(),
            ),
            "/snapshot.json" => (
                "200 OK",
                "application/json",
                registry.snapshot().render_json(),
            ),
            "/epochs.json" => ("200 OK", "application/json", epochs_body(registry)),
            "/" => (
                "200 OK",
                "text/plain",
                "ivm-obs exposition endpoint\nroutes: /metrics /snapshot.json /epochs.json\n"
                    .to_string(),
            ),
            _ => ("404 Not Found", "text/plain", "unknown route\n".to_string()),
        }
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn epochs_body(registry: &MetricsRegistry) -> String {
    let events = registry.tracer().events();
    let mut falls = EpochWaterfall::from_events(&events);
    if falls.len() > EPOCHS_LIMIT {
        falls.drain(..falls.len() - EPOCHS_LIMIT);
    }
    Json::obj()
        .field(
            "dropped_spans",
            Json::num(registry.tracer().dropped() as f64),
        )
        .field(
            "epochs",
            Json::Arr(falls.iter().map(|w| w.to_json()).collect()),
        )
        .render()
}

/// Issue a bare HTTP GET against `addr` and return the response body.
/// Test helper for this crate and downstream integration tests (we have
/// no HTTP client dependency); also handy in examples to print a
/// curl-equivalent transcript.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    // One write: a request split across segments could race the
    // server's response-and-close.
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no header/body separator in response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn live_registry() -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry.counter("ivm.session.batches").add(3);
        registry.gauge("ivm.fleet.queue_depth").set(2);
        registry.histogram("ivm.session.ingest_ns").record(4096);
        let t = registry.tracer();
        let root = t.intern("session.ingest");
        let stage = t.intern("shard0.apply");
        for epoch in 0..2 {
            let s = t.enter(root, epoch);
            t.record_at(
                stage,
                Some(s.id()),
                epoch,
                Instant::now(),
                Duration::from_micros(2),
            );
            s.finish();
        }
        registry
    }

    #[test]
    fn serves_metrics_snapshot_and_epochs() {
        let registry = live_registry();
        let srv = MetricsServer::start("127.0.0.1:0", &registry).unwrap();
        let addr = srv.addr();

        let metrics = http_get(addr, "/metrics").unwrap();
        assert_eq!(metrics, registry.snapshot().to_prometheus());
        assert!(metrics.contains("ivm_session_batches 3"));

        let snap = http_get(addr, "/snapshot.json").unwrap();
        let parsed = Json::parse(&snap).expect("snapshot.json parses");
        assert!(parsed.get("counters").is_some());

        let epochs = http_get(addr, "/epochs.json").unwrap();
        let parsed = Json::parse(&epochs).expect("epochs.json parses");
        assert_eq!(parsed.get("epochs").unwrap().as_arr().unwrap().len(), 2);

        assert!(http_get(addr, "/nope").unwrap().contains("unknown route"));
        assert!(http_get(addr, "/").unwrap().contains("/metrics"));
    }

    #[test]
    fn drop_stops_the_server_and_frees_the_port() {
        let registry = MetricsRegistry::new();
        let srv = MetricsServer::start("127.0.0.1:0", &registry).unwrap();
        let addr = srv.addr();
        drop(srv);
        // The listener is closed: either connect fails outright or the
        // connection is never answered.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                let _ = s.set_read_timeout(Some(Duration::from_millis(300)));
                let _ = write!(s, "GET /metrics HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                assert!(
                    s.read_to_string(&mut out).is_err() || out.is_empty(),
                    "a dropped server must not answer"
                );
            }
        }
    }
}
