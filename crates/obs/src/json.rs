//! A tiny self-contained JSON value — the offline build environment has
//! no serde, and the telemetry surface only needs *emission*, never
//! parsing. Object fields keep insertion order so snapshot and bench
//! output stay diffable run-to-run.

use std::fmt::Write as _;

/// A JSON document fragment. Build with the constructors below, render
/// with [`Json::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (duplicate keys are the caller's bug).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number, mapping non-finite values to `null` (JSON has no
    /// NaN/Inf; an unstarted benchmark's `0/0` must not poison a file).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Empty object to push fields into.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object; panics on non-objects (construction
    /// bug, not data-dependent).
    pub fn field(mut self, key: impl Into<String>, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Json::obj()
            .field("name", Json::str("tri\"angle"))
            .field("n", Json::num(42.0))
            .field("frac", Json::num(0.5))
            .field("bad", Json::num(f64::NAN))
            .field("rows", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(
            doc.render(),
            r#"{"name":"tri\"angle","n":42,"frac":0.5,"bad":null,"rows":[true,null]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\u{1}"), "a\\nb\\u0001");
    }

    #[test]
    fn integral_floats_render_without_decimal_point() {
        assert_eq!(Json::num(1e6).render(), "1000000");
        assert_eq!(Json::num(1e16).render(), "10000000000000000");
    }
}
