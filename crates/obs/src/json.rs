//! A tiny self-contained JSON value — the offline build environment has
//! no serde. Emission is the primary surface; [`Json::parse`] exists so
//! tests can round-trip flight-recorder dumps and endpoint responses
//! without a dependency. Object fields keep insertion order so snapshot
//! and bench output stay diffable run-to-run.

use std::fmt::Write as _;

/// A JSON document fragment. Build with the constructors below, render
/// with [`Json::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (duplicate keys are the caller's bug).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number, mapping non-finite values to `null` (JSON has no
    /// NaN/Inf; an unstarted benchmark's `0/0` must not poison a file).
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Empty object to push fields into.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object; panics on non-objects (construction
    /// bug, not data-dependent).
    pub fn field(mut self, key: impl Into<String>, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse a complete JSON document; `None` on any syntax error or
    /// trailing garbage. Strict enough for round-trip tests (strings
    /// support the escapes [`escape`] emits plus `\/`, `\b`, `\f`, and
    /// `\uXXXX` including surrogate pairs).
    pub fn parse(s: &str) -> Option<Json> {
        let b = s.as_bytes();
        let (v, mut i) = parse_value(b, skip_ws(b, 0))?;
        i = skip_ws(b, i);
        if i == b.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn parse_value(b: &[u8], i: usize) -> Option<(Json, usize)> {
    match *b.get(i)? {
        b'n' => b
            .get(i..i + 4)
            .filter(|s| *s == b"null")
            .map(|_| (Json::Null, i + 4)),
        b't' => b
            .get(i..i + 4)
            .filter(|s| *s == b"true")
            .map(|_| (Json::Bool(true), i + 4)),
        b'f' => b
            .get(i..i + 5)
            .filter(|s| *s == b"false")
            .map(|_| (Json::Bool(false), i + 5)),
        b'"' => parse_string(b, i).map(|(s, j)| (Json::Str(s), j)),
        b'[' => {
            let mut items = Vec::new();
            let mut j = skip_ws(b, i + 1);
            if b.get(j) == Some(&b']') {
                return Some((Json::Arr(items), j + 1));
            }
            loop {
                let (v, k) = parse_value(b, j)?;
                items.push(v);
                j = skip_ws(b, k);
                match b.get(j)? {
                    b',' => j = skip_ws(b, j + 1),
                    b']' => return Some((Json::Arr(items), j + 1)),
                    _ => return None,
                }
            }
        }
        b'{' => {
            let mut fields = Vec::new();
            let mut j = skip_ws(b, i + 1);
            if b.get(j) == Some(&b'}') {
                return Some((Json::Obj(fields), j + 1));
            }
            loop {
                let (key, k) = parse_string(b, j)?;
                j = skip_ws(b, k);
                if b.get(j) != Some(&b':') {
                    return None;
                }
                let (v, k) = parse_value(b, skip_ws(b, j + 1))?;
                fields.push((key, v));
                j = skip_ws(b, k);
                match b.get(j)? {
                    b',' => j = skip_ws(b, j + 1),
                    b'}' => return Some((Json::Obj(fields), j + 1)),
                    _ => return None,
                }
            }
        }
        b'-' | b'0'..=b'9' => {
            let mut j = i + 1;
            while j < b.len() && matches!(b[j], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                j += 1;
            }
            std::str::from_utf8(&b[i..j])
                .ok()?
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .map(|v| (Json::Num(v), j))
        }
        _ => None,
    }
}

fn parse_string(b: &[u8], i: usize) -> Option<(String, usize)> {
    if b.get(i) != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut j = i + 1;
    loop {
        match *b.get(j)? {
            b'"' => return Some((out, j + 1)),
            b'\\' => {
                j += 1;
                match *b.get(j)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(j + 1..j + 5)?).ok()?;
                        let cp = u32::from_str_radix(hex, 16).ok()?;
                        j += 4;
                        // Surrogate pair: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let cp = if (0xD800..0xDC00).contains(&cp) {
                            if b.get(j + 1..j + 3)? != b"\\u" {
                                return None;
                            }
                            let hex2 = std::str::from_utf8(b.get(j + 3..j + 7)?).ok()?;
                            let lo = u32::from_str_radix(hex2, 16).ok()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return None;
                            }
                            j += 6;
                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            cp
                        };
                        out.push(char::from_u32(cp)?);
                    }
                    _ => return None,
                }
                j += 1;
            }
            c if c < 0x20 => return None,
            _ => {
                // Consume one UTF-8 scalar (input is a &str, so bytes
                // are valid UTF-8 — find the next char boundary).
                let start = j;
                j += 1;
                while j < b.len() && (b[j] & 0xC0) == 0x80 {
                    j += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..j]).ok()?);
            }
        }
    }
}

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Json::obj()
            .field("name", Json::str("tri\"angle"))
            .field("n", Json::num(42.0))
            .field("frac", Json::num(0.5))
            .field("bad", Json::num(f64::NAN))
            .field("rows", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(
            doc.render(),
            r#"{"name":"tri\"angle","n":42,"frac":0.5,"bad":null,"rows":[true,null]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\u{1}"), "a\\nb\\u0001");
    }

    #[test]
    fn integral_floats_render_without_decimal_point() {
        assert_eq!(Json::num(1e6).render(), "1000000");
        assert_eq!(Json::num(1e16).render(), "10000000000000000");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj()
            .field("name", Json::str("tri\"an\\gle\nμ"))
            .field("n", Json::num(42.0))
            .field("frac", Json::num(-0.5))
            .field("exp", Json::num(1.5e3))
            .field("rows", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .field("empty_obj", Json::obj())
            .field("empty_arr", Json::Arr(vec![]));
        let back = Json::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("é😀"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"\\x\"",
            "{\"a\" 1}",
            "\"\\ud800\"",
            "[1]]",
        ] {
            assert!(Json::parse(bad).is_none(), "should reject {bad:?}");
        }
    }
}
