//! Per-epoch latency waterfalls reconstructed from the trace ring.
//!
//! The tracer stores a flat bounded ring of spans; this module folds it
//! back into one tree per epoch — root at the observed ingest call,
//! children at each pipeline stage — and derives the questions the
//! paper's update-time framing actually asks: where did this epoch's
//! wall time go (self vs. child time), what chain of stages determined
//! the end ([`EpochWaterfall::critical_path`]), and how much of the
//! latency was queue wait rather than compute.

use crate::json::Json;
use crate::trace::TraceEvent;

/// One stage row of a waterfall, in pre-order (root first, children
/// sorted by start time).
#[derive(Clone, Debug)]
pub struct StageRow {
    /// The span's id (unique within the tracer).
    pub id: u64,
    /// Parent span id; `None` only for the root row.
    pub parent: Option<u64>,
    /// Tree depth: 0 for the root.
    pub depth: usize,
    /// The stage label, e.g. `shard2.queue_wait`.
    pub label: String,
    /// Start offset from the tracer origin, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock length, nanoseconds.
    pub elapsed_ns: u64,
    /// Time not covered by this stage's direct children (interval
    /// union, clipped to the stage window) — where concurrent children
    /// overlap, the overlap is counted once, so `self_ns` stays a true
    /// "unattributed" residue even over a fork-join fan-out.
    pub self_ns: u64,
}

impl StageRow {
    fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.elapsed_ns)
    }

    /// Whether this stage is queue wait rather than work.
    pub fn is_queue_wait(&self) -> bool {
        self.label.contains("queue_wait")
    }
}

/// One epoch's latency breakdown: the root ingest span and every child
/// stage recorded under it, as a tree flattened in pre-order.
#[derive(Clone, Debug)]
pub struct EpochWaterfall {
    /// The epoch the root span was tagged with.
    pub epoch: u64,
    /// The root span's label (`session.ingest`, `serve.ingest`, …).
    pub root_label: String,
    /// The root span's start offset from the tracer origin, ns.
    pub start_ns: u64,
    /// The epoch's total wall time — the root span's length, ns.
    pub total_ns: u64,
    /// All stages, root first, children ordered by start time.
    pub stages: Vec<StageRow>,
    /// Spans of this epoch whose parent was not found (evicted from the
    /// ring, or recorded out of band). They are excluded from the tree.
    pub orphans: usize,
}

/// Merge intervals and return the union length clipped to `[lo, hi]`.
fn union_within(mut iv: Vec<(u64, u64)>, lo: u64, hi: u64) -> u64 {
    iv.retain(|&(s, e)| e > lo && s < hi);
    for (s, e) in iv.iter_mut() {
        *s = (*s).max(lo);
        *e = (*e).min(hi);
    }
    iv.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in iv {
        match &mut cur {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur.take() {
                    covered += ce - cs;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        covered += ce - cs;
    }
    covered
}

impl EpochWaterfall {
    /// Reconstruct one waterfall per epoch from the tracer's retained
    /// spans, oldest epoch first. Epochs whose root span is missing
    /// (truncated out of the ring, or still open) are skipped — a
    /// waterfall without its total would be unanchored.
    pub fn from_events(events: &[TraceEvent]) -> Vec<EpochWaterfall> {
        let mut epochs: Vec<u64> = events.iter().map(|e| e.epoch).collect();
        epochs.sort_unstable();
        epochs.dedup();
        epochs
            .into_iter()
            .filter_map(|epoch| Self::for_epoch(events, epoch))
            .collect()
    }

    /// The waterfall of the most recent complete epoch, if any.
    pub fn latest(events: &[TraceEvent]) -> Option<EpochWaterfall> {
        Self::from_events(events).pop()
    }

    /// Reconstruct one epoch's waterfall; `None` if the epoch has no
    /// root span in `events`.
    pub fn for_epoch(events: &[TraceEvent], epoch: u64) -> Option<EpochWaterfall> {
        let in_epoch: Vec<&TraceEvent> = events.iter().filter(|e| e.epoch == epoch).collect();
        let root = in_epoch.iter().find(|e| e.parent.is_none())?;

        // Pre-order emission over parent links, children by start time.
        let mut stages: Vec<StageRow> = Vec::with_capacity(in_epoch.len());
        stages.push(StageRow {
            id: root.id,
            parent: None,
            depth: 0,
            label: root.label.clone(),
            start_ns: root.start_ns(),
            elapsed_ns: root.elapsed_ns(),
            self_ns: root.elapsed_ns(),
        });
        fn emit(in_epoch: &[&TraceEvent], pid: u64, depth: usize, stages: &mut Vec<StageRow>) {
            let mut kids: Vec<&&TraceEvent> =
                in_epoch.iter().filter(|e| e.parent == Some(pid)).collect();
            kids.sort_by_key(|e| (e.start, e.id));
            for kid in kids {
                stages.push(StageRow {
                    id: kid.id,
                    parent: kid.parent,
                    depth,
                    label: kid.label.clone(),
                    start_ns: kid.start_ns(),
                    elapsed_ns: kid.elapsed_ns(),
                    self_ns: kid.elapsed_ns(),
                });
                emit(in_epoch, kid.id, depth + 1, stages);
            }
        }
        emit(&in_epoch, root.id, 1, &mut stages);
        let placed = stages.len();

        // Self time: stage window minus the union of its direct
        // children's windows (clipped).
        for i in 0..stages.len() {
            let (lo, hi) = (stages[i].start_ns, stages[i].end_ns());
            let child_iv: Vec<(u64, u64)> = stages
                .iter()
                .filter(|s| s.parent == Some(stages[i].id))
                .map(|s| (s.start_ns, s.end_ns()))
                .collect();
            if !child_iv.is_empty() {
                let covered = union_within(child_iv, lo, hi);
                stages[i].self_ns = stages[i].elapsed_ns.saturating_sub(covered);
            }
        }

        Some(EpochWaterfall {
            epoch,
            root_label: root.label.clone(),
            start_ns: root.start_ns(),
            total_ns: root.elapsed_ns(),
            stages,
            orphans: in_epoch.len() - placed,
        })
    }

    /// Fraction of the epoch's wall time attributed to traced child
    /// stages: the interval union of the root's direct children,
    /// clipped to the root window, over the root's length. 1.0 means
    /// every nanosecond of the ingest call is accounted to a stage.
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 1.0;
        }
        let root_id = self.stages[0].id;
        let covered = self.total_ns - // root self = uncovered residue
            self
                .stages
                .iter()
                .find(|s| s.id == root_id)
                .map_or(self.total_ns, |s| s.self_ns);
        covered as f64 / self.total_ns as f64
    }

    /// The chain of stages that determined when the epoch ended: from
    /// the root, repeatedly descend into the child whose window ends
    /// last. Returns the labels, root excluded.
    pub fn critical_path(&self) -> Vec<&StageRow> {
        let mut path = Vec::new();
        let mut pid = self.stages[0].id;
        while let Some(next) = self
            .stages
            .iter()
            .filter(|s| s.parent == Some(pid))
            .max_by_key(|s| (s.end_ns(), s.elapsed_ns))
        {
            path.push(next);
            pid = next.id;
        }
        path
    }

    /// Total nanoseconds spent in queue-wait stages this epoch.
    pub fn queue_wait_ns(&self) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.is_queue_wait())
            .map(|s| s.elapsed_ns)
            .sum()
    }

    /// Total self-time of non-root, non-queue-wait stages — the
    /// epoch's attributed compute.
    pub fn compute_ns(&self) -> u64 {
        self.stages
            .iter()
            .skip(1)
            .filter(|s| !s.is_queue_wait())
            .map(|s| s.self_ns)
            .sum()
    }

    /// Render an ASCII waterfall: one bar per stage, positioned and
    /// scaled within the root window.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        const WIDTH: usize = 40;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "epoch {} · {} · {} (stage coverage {:.1}%, queue wait {})",
            self.epoch,
            self.root_label,
            fmt_ns(self.total_ns),
            self.coverage() * 100.0,
            fmt_ns(self.queue_wait_ns()),
        );
        let label_w = self
            .stages
            .iter()
            .skip(1)
            .map(|s| s.label.len() + 2 * s.depth.saturating_sub(1))
            .max()
            .unwrap_or(8)
            .max(8);
        let total = self.total_ns.max(1);
        for s in self.stages.iter().skip(1) {
            let indent = "  ".repeat(s.depth.saturating_sub(1));
            let off = ((s.start_ns.saturating_sub(self.start_ns)) as u128 * WIDTH as u128
                / total as u128) as usize;
            let off = off.min(WIDTH - 1);
            let len = (s.elapsed_ns as u128 * WIDTH as u128).div_ceil(total as u128) as usize;
            let len = len.clamp(1, WIDTH - off);
            let bar_ch = if s.is_queue_wait() { '~' } else { '#' };
            let bar: String = std::iter::repeat_n(' ', off)
                .chain(std::iter::repeat_n(bar_ch, len))
                .chain(std::iter::repeat_n(' ', WIDTH - off - len))
                .collect();
            let _ = writeln!(
                out,
                "  {indent}{:<w$} |{bar}| {:>9}",
                s.label,
                fmt_ns(s.elapsed_ns),
                w = label_w - indent.len(),
            );
        }
        out
    }

    /// The waterfall as a JSON document (for `/epochs.json` and the
    /// flight recorder).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("epoch", Json::num(self.epoch as f64))
            .field("root", Json::str(self.root_label.clone()))
            .field("total_ns", Json::num(self.total_ns as f64))
            .field("coverage", Json::num(self.coverage()))
            .field("queue_wait_ns", Json::num(self.queue_wait_ns() as f64))
            .field("compute_ns", Json::num(self.compute_ns() as f64))
            .field(
                "critical_path",
                Json::Arr(
                    self.critical_path()
                        .iter()
                        .map(|s| Json::str(s.label.clone()))
                        .collect(),
                ),
            )
            .field(
                "stages",
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::obj()
                                .field("id", Json::num(s.id as f64))
                                .field(
                                    "parent",
                                    s.parent.map_or(Json::Null, |p| Json::num(p as f64)),
                                )
                                .field("depth", Json::num(s.depth as f64))
                                .field("label", Json::str(s.label.clone()))
                                .field("start_ns", Json::num(s.start_ns as f64))
                                .field("elapsed_ns", Json::num(s.elapsed_ns as f64))
                                .field("self_ns", Json::num(s.self_ns as f64))
                        })
                        .collect(),
                ),
            )
            .field("orphans", Json::num(self.orphans as f64))
    }
}

/// Human-readable nanoseconds (`412 ns`, `3.1 µs`, `2.45 ms`, `1.20 s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use std::time::{Duration, Instant};

    fn ev(
        id: u64,
        parent: Option<u64>,
        epoch: u64,
        label: &str,
        start_ns: u64,
        elapsed_ns: u64,
    ) -> TraceEvent {
        TraceEvent {
            id,
            parent,
            epoch,
            label: label.into(),
            start: Duration::from_nanos(start_ns),
            elapsed: Duration::from_nanos(elapsed_ns),
        }
    }

    #[test]
    fn rebuilds_tree_self_time_and_coverage() {
        // root [0,1000]; consolidate [0,100]; two concurrent shard
        // applies [100,600] and [200,900]; merge [900,1000].
        let events = vec![
            ev(1, None, 5, "session.ingest", 0, 1000),
            ev(2, Some(1), 5, "router.consolidate", 0, 100),
            ev(3, Some(1), 5, "shard0.apply", 100, 500),
            ev(4, Some(1), 5, "shard1.apply", 200, 700),
            ev(5, Some(1), 5, "fleet.merge", 900, 100),
        ];
        let w = EpochWaterfall::latest(&events).unwrap();
        assert_eq!(w.epoch, 5);
        assert_eq!(w.total_ns, 1000);
        assert_eq!(w.stages.len(), 5);
        // Children cover [0,100] ∪ [100,600] ∪ [200,900] ∪ [900,1000] =
        // the whole window; overlap counted once.
        assert_eq!(w.stages[0].self_ns, 0);
        assert!((w.coverage() - 1.0).abs() < 1e-9);
        // Critical path: the child ending last is fleet.merge.
        let path: Vec<&str> = w.critical_path().iter().map(|s| s.label.as_str()).collect();
        assert_eq!(path, ["fleet.merge"]);
    }

    #[test]
    fn partial_coverage_and_queue_wait_classification() {
        let events = vec![
            ev(1, None, 0, "session.ingest", 0, 1000),
            ev(2, Some(1), 0, "shard0.queue_wait", 0, 300),
            ev(3, Some(1), 0, "shard0.apply", 300, 200),
        ];
        let w = EpochWaterfall::latest(&events).unwrap();
        assert!((w.coverage() - 0.5).abs() < 1e-9);
        assert_eq!(w.queue_wait_ns(), 300);
        assert_eq!(w.compute_ns(), 200);
        let r = w.render();
        assert!(r.contains("shard0.queue_wait"), "render lists stages:\n{r}");
        assert!(r.contains('~'), "queue wait bars are visually distinct");
    }

    #[test]
    fn epochs_split_and_rootless_epochs_are_skipped() {
        let events = vec![
            ev(1, None, 1, "ingest", 0, 10),
            ev(2, Some(1), 1, "a", 0, 5),
            // epoch 2 lost its root to ring truncation:
            ev(3, Some(99), 2, "b", 20, 5),
            ev(4, None, 3, "ingest", 40, 10),
        ];
        let falls = EpochWaterfall::from_events(&events);
        assert_eq!(
            falls.iter().map(|w| w.epoch).collect::<Vec<_>>(),
            vec![1, 3]
        );
    }

    #[test]
    fn orphans_are_counted_not_attached() {
        let events = vec![
            ev(1, None, 0, "ingest", 0, 10),
            ev(2, Some(42), 0, "lost", 0, 5),
        ];
        let w = EpochWaterfall::latest(&events).unwrap();
        assert_eq!(w.stages.len(), 1);
        assert_eq!(w.orphans, 1);
    }

    #[test]
    fn from_live_tracer_round_trips() {
        let t = Tracer::default();
        let root_l = t.intern("ingest");
        let a_l = t.intern("stage.a");
        let b_l = t.intern("stage.b");
        for epoch in 0..3u64 {
            let root = t.enter(root_l, epoch);
            t.child_span(a_l).unwrap().finish();
            t.record_at(
                b_l,
                Some(root.id()),
                epoch,
                Instant::now(),
                Duration::from_micros(1),
            );
            root.finish();
        }
        let falls = EpochWaterfall::from_events(&t.events());
        assert_eq!(falls.len(), 3);
        for (i, w) in falls.iter().enumerate() {
            assert_eq!(w.epoch, i as u64);
            assert_eq!(w.stages.len(), 3);
            assert_eq!(w.orphans, 0);
            let json = w.to_json().render();
            assert!(json.contains("\"critical_path\""));
        }
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(412), "412 ns");
        assert_eq!(fmt_ns(3_100), "3.1 µs");
        assert_eq!(fmt_ns(2_450_000), "2.45 ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20 s");
    }
}
