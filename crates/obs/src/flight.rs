//! Crash flight recorder: a JSON post-mortem for the moments the
//! pipeline dies mid-epoch.
//!
//! When a shard is poisoned, a worker panics, or a subscriber is
//! evicted, the metrics alone say *that* something failed; the flight
//! recorder says *where in the epoch* — it folds the last K epochs of
//! spans into waterfalls and staples a full [`MetricsSnapshot`] to
//! them, all as one self-contained JSON document written through the
//! crate's own [`Json`] writer (no serialization dependency).
//!
//! Dumps land under `$RIVM_FLIGHT_DIR` (default `target/flight/`) as
//! `flight-<reason>-<pid>-<n>.json`; writing is best-effort and never
//! takes the failure path down with it.

use crate::json::Json;
use crate::registry::MetricsRegistry;
use crate::waterfall::EpochWaterfall;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of trailing epochs retained in a dump.
pub const DEFAULT_KEEP_EPOCHS: usize = 8;

/// Distinguishes dumps within one process even when reasons repeat.
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Captures post-mortem documents from a [`MetricsRegistry`] — spans,
/// waterfalls, and the full snapshot — and writes them to disk on the
/// pipeline's failure paths.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    registry: MetricsRegistry,
    keep_epochs: usize,
    dir: PathBuf,
}

impl FlightRecorder {
    /// A recorder over `registry`, keeping [`DEFAULT_KEEP_EPOCHS`]
    /// trailing epochs, dumping to `$RIVM_FLIGHT_DIR` or
    /// `target/flight/`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        let dir = std::env::var_os("RIVM_FLIGHT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/flight"));
        FlightRecorder {
            registry: registry.clone(),
            keep_epochs: DEFAULT_KEEP_EPOCHS,
            dir,
        }
    }

    /// Keep the last `k` epochs of spans per dump (minimum 1).
    pub fn keep_epochs(mut self, k: usize) -> Self {
        self.keep_epochs = k.max(1);
        self
    }

    /// Override the dump directory.
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = dir.into();
        self
    }

    /// Build the post-mortem document without touching the filesystem:
    /// reason and detail, the last K epochs as waterfalls, the raw
    /// retained spans of those epochs, and a full metrics snapshot.
    pub fn document(&self, reason: &str, detail: &str) -> Json {
        let tracer = self.registry.tracer();
        let events = tracer.events();
        let mut falls = EpochWaterfall::from_events(&events);
        if falls.len() > self.keep_epochs {
            falls.drain(..falls.len() - self.keep_epochs);
        }
        let kept: std::collections::BTreeSet<u64> = falls.iter().map(|w| w.epoch).collect();
        let spans: Vec<Json> = events
            .iter()
            .filter(|e| kept.contains(&e.epoch))
            .map(|e| {
                Json::obj()
                    .field("id", Json::num(e.id as f64))
                    .field(
                        "parent",
                        e.parent.map_or(Json::Null, |p| Json::num(p as f64)),
                    )
                    .field("epoch", Json::num(e.epoch as f64))
                    .field("label", Json::str(e.label.clone()))
                    .field("start_ns", Json::num(e.start_ns() as f64))
                    .field("elapsed_ns", Json::num(e.elapsed_ns() as f64))
            })
            .collect();
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as f64)
            .unwrap_or(0.0);
        Json::obj()
            .field("reason", Json::str(reason))
            .field("detail", Json::str(detail))
            .field("unix_ms", Json::num(unix_ms))
            .field("keep_epochs", Json::num(self.keep_epochs as f64))
            .field("dropped_spans", Json::num(tracer.dropped() as f64))
            .field(
                "epochs",
                Json::Arr(falls.iter().map(|w| w.to_json()).collect()),
            )
            .field("spans", Json::Arr(spans))
            .field("snapshot", self.registry.snapshot().to_json())
    }

    /// Write the post-mortem to the dump directory and return its path.
    /// Best-effort: any I/O error returns `None` — the recorder must
    /// never make a failure path worse.
    pub fn dump(&self, reason: &str, detail: &str) -> Option<PathBuf> {
        let doc = self.document(reason, detail);
        let slug: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let name = format!(
            "flight-{slug}-{}-{}.json",
            std::process::id(),
            DUMP_SEQ.fetch_add(1, Ordering::Relaxed),
        );
        let path = self.dir.join(name);
        self.write(&path, &doc.render()).ok()?;
        Some(path)
    }

    fn write(&self, path: &Path, body: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        std::fs::write(path, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn traced_registry(epochs: u64) -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        registry.counter("ivm.test.batches").add(epochs);
        let t = registry.tracer();
        let root = t.intern("ingest");
        let stage = t.intern("shard0.apply");
        for epoch in 0..epochs {
            let s = t.enter(root, epoch);
            t.record_at(
                stage,
                Some(s.id()),
                epoch,
                Instant::now(),
                Duration::from_micros(3),
            );
            s.finish();
        }
        registry
    }

    #[test]
    fn document_keeps_last_k_epochs_and_snapshot() {
        let registry = traced_registry(6);
        let fr = FlightRecorder::new(&registry).keep_epochs(2);
        let doc = fr.document("unit-test", "synthetic failure");
        let text = doc.render();
        assert!(text.contains("\"reason\":\"unit-test\""));
        assert!(text.contains("\"snapshot\""));
        // Only epochs 4 and 5 survive the K=2 window.
        assert!(text.contains("\"epoch\":5"));
        assert!(!text.contains("\"epoch\":1,"));
        let parsed = Json::parse(&text).expect("dump is parseable JSON");
        match &parsed {
            Json::Obj(fields) => {
                let epochs = fields
                    .iter()
                    .find(|(k, _)| k == "epochs")
                    .map(|(_, v)| v)
                    .expect("has epochs array");
                match epochs {
                    Json::Arr(a) => assert_eq!(a.len(), 2),
                    other => panic!("epochs should be an array, got {other:?}"),
                }
            }
            other => panic!("dump should be an object, got {other:?}"),
        }
    }

    #[test]
    fn dump_writes_a_file_best_effort() {
        let registry = traced_registry(3);
        let dir = std::env::temp_dir().join(format!("rivm-flight-test-{}", std::process::id()));
        let fr = FlightRecorder::new(&registry).dir(&dir);
        let path = fr.dump("shard poisoned!", "worker 2 hung up").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&body).is_some());
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("flight-shard-poisoned-"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
