//! Unified telemetry for the IVM stack.
//!
//! The paper frames IVM quality as a preprocessing/update-time/delay
//! trade-off, and the adaptive layer makes runtime decisions from
//! observed counters — so measurement is part of the system, not an
//! afterthought. This crate is the substrate everything reports into:
//!
//! - [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed latency [`Histogram`]s. Registration is mutex-guarded
//!   (setup path); the handles are shared atomics, so hot-path updates
//!   are single relaxed RMW instructions. Engines hold `Option`al
//!   handles: with no registry attached they pay nothing at all.
//! - [`Tracer`] / [`Span`] — causal span log in a bounded ring buffer
//!   (oldest spans drop; [`Tracer::dropped`] counts them). Spans carry
//!   an id, a parent id, and an *epoch* tag; labels are interned
//!   ([`LabelId`]) so the hot path never allocates. An ambient
//!   thread-local context links nested spans automatically, and
//!   explicit `(parent, epoch)` handoff joins worker threads into the
//!   same epoch tree.
//! - [`EpochWaterfall`] — folds the span ring back into one latency
//!   tree per epoch: self vs. child time, critical path, queue wait vs.
//!   compute, and an ASCII rendering.
//! - [`FlightRecorder`] — on a failure path (shard poisoning, worker
//!   panic, subscriber eviction), dumps the last K epochs of spans plus
//!   a full snapshot as one JSON post-mortem document.
//! - [`MetricsServer`] — a dependency-free `TcpListener` endpoint
//!   serving `/metrics` (Prometheus text), `/snapshot.json`, and
//!   `/epochs.json` from a live registry.
//! - [`MetricsSnapshot`] — frozen copy with two exporters reading the
//!   same data: Prometheus text exposition
//!   ([`MetricsSnapshot::to_prometheus`]) and a JSON document
//!   ([`MetricsSnapshot::to_json`]). The bench binaries emit their
//!   `BENCH_*.json` through the same [`Json`] path.
//!
//! Naming convention used by the stack: dotted hierarchies like
//! `ivm.dataflow.op.3.apply_ns` or `ivm.fleet.shard2.queue_depth`
//! (dots become `_` in the Prometheus exposition).

mod flight;
mod http;
mod json;
mod ns;
mod registry;
mod snapshot;
mod trace;
mod waterfall;

pub use flight::{FlightRecorder, DEFAULT_KEEP_EPOCHS};
pub use http::{http_get, MetricsServer};
pub use json::{escape as json_escape, Json};
pub use ns::Namespace;
pub use registry::{
    bucket_index, bucket_upper, Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use snapshot::{prometheus_name, HistogramSnapshot, MetricsSnapshot};
pub use trace::{LabelId, Span, TraceEvent, Tracer};
pub use waterfall::{fmt_ns, EpochWaterfall, StageRow};
