//! Dotted metric-name namespaces.
//!
//! The stack's metric names are dotted hierarchies (`ivm.serve.sub3.
//! notify_ns`, `ivm.fleet.shard2.queue_depth`), and until now every
//! layer `format!`ed them ad hoc. A [`Namespace`] is a cheap builder for
//! one level of that hierarchy: `child` descends, `metric` renders a
//! leaf name, and indexed fan-out layers (subscribers, shards) get
//! stable per-member prefixes via [`Namespace::indexed`].
//!
//! Only name *construction* lives here; registration stays on
//! [`MetricsRegistry`](crate::MetricsRegistry), so a namespace can be
//! built and passed around long before any registry is attached.

use crate::registry::{Counter, Gauge, Histogram, MetricsRegistry};

/// A dotted metric-name prefix, e.g. `ivm.serve.sub3`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Namespace {
    prefix: String,
}

impl Namespace {
    /// A root namespace. `root` must be non-empty; it becomes the first
    /// dotted segment.
    pub fn new(root: impl Into<String>) -> Self {
        let prefix = root.into();
        assert!(!prefix.is_empty(), "namespace root must be non-empty");
        Namespace { prefix }
    }

    /// Descend one level: `ns("ivm").child("serve")` prints as
    /// `ivm.serve`.
    pub fn child(&self, segment: &str) -> Namespace {
        assert!(!segment.is_empty(), "namespace segment must be non-empty");
        Namespace {
            prefix: format!("{}.{segment}", self.prefix),
        }
    }

    /// Descend into the `i`-th member of a fan-out layer:
    /// `serve.indexed("sub", 3)` prints as `…serve.sub3`. Using the
    /// member's *stable* id (not its current position) keeps series
    /// identities intact across churn.
    pub fn indexed(&self, kind: &str, i: u64) -> Namespace {
        self.child(&format!("{kind}{i}"))
    }

    /// Render a leaf metric name under this namespace.
    pub fn metric(&self, leaf: &str) -> String {
        assert!(!leaf.is_empty(), "metric leaf must be non-empty");
        format!("{}.{leaf}", self.prefix)
    }

    /// The dotted prefix itself.
    pub fn as_str(&self) -> &str {
        &self.prefix
    }

    /// Resolve a counter handle for `leaf` under this namespace.
    pub fn counter(&self, registry: &MetricsRegistry, leaf: &str) -> Counter {
        registry.counter(&self.metric(leaf))
    }

    /// Resolve a gauge handle for `leaf` under this namespace.
    pub fn gauge(&self, registry: &MetricsRegistry, leaf: &str) -> Gauge {
        registry.gauge(&self.metric(leaf))
    }

    /// Resolve a histogram handle for `leaf` under this namespace.
    pub fn histogram(&self, registry: &MetricsRegistry, leaf: &str) -> Histogram {
        registry.histogram(&self.metric(leaf))
    }
}

impl std::fmt::Display for Namespace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_dotted_names() {
        let serve = Namespace::new("ivm").child("serve");
        assert_eq!(serve.as_str(), "ivm.serve");
        assert_eq!(serve.metric("subscribers"), "ivm.serve.subscribers");
        let sub = serve.indexed("sub", 7);
        assert_eq!(sub.metric("notify_ns"), "ivm.serve.sub7.notify_ns");
        assert_eq!(format!("{sub}"), "ivm.serve.sub7");
    }

    #[test]
    fn handles_resolve_against_a_registry() {
        let reg = MetricsRegistry::new();
        let ns = Namespace::new("nst").child("layer");
        ns.counter(&reg, "events").add(3);
        ns.gauge(&reg, "depth").set(-2);
        ns.histogram(&reg, "lat_ns").record(1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("nst.layer.events"), 3);
        assert_eq!(snap.gauge("nst.layer.depth"), -2);
        assert_eq!(snap.histogram("nst.layer.lat_ns").unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_segment_rejected() {
        let _ = Namespace::new("x").child("");
    }
}
