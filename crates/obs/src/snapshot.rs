//! Point-in-time metric snapshots and their two export formats:
//! Prometheus text exposition and a JSON document. Both render from the
//! same [`MetricsSnapshot`], so a scrape endpoint and a `BENCH_*.json`
//! file can never disagree about what the counters said.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen histogram state: non-empty `(inclusive_upper_bound_ns, count)`
/// buckets in ascending bound order, plus totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<(u64, u64)>,
    pub count: u64,
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile
    /// sample, `q` in `[0, 1]`. Log-bucketed, so this is an upper
    /// estimate within a factor of 2; 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper;
            }
        }
        self.buckets.last().map(|&(u, _)| u).unwrap_or(0)
    }
}

/// A frozen copy of a [`MetricsRegistry`](crate::MetricsRegistry):
/// plain maps, no atomics — compare, serialize, or diff freely.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else
/// (the registry's dotted hierarchy included) maps to `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

impl MetricsSnapshot {
    /// True when nothing was ever registered (e.g. a detached session).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter value by exact name, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by exact name, 0 if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram by exact name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Names (with values) under a dotted prefix — handy for dashboards
    /// iterating e.g. every `ivm.fleet.shard3.` metric.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Prometheus text exposition format (version 0.0.4). Histograms
    /// emit cumulative `_bucket{le=...}` series over the non-empty
    /// bounds plus `+Inf`, `_sum`, and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0;
            for &(upper, count) in &h.buckets {
                cumulative += count;
                if upper == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(out, "{n}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum_ns);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }

    /// The snapshot as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {"count", "sum_ns", "mean_ns", "p99_upper_ns", "buckets": [[le,
    /// n], ...]}}}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::num(*v as f64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::num(*v as f64)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Json::Arr(
                        h.buckets
                            .iter()
                            .filter(|&&(u, _)| u != u64::MAX)
                            .map(|&(u, n)| {
                                Json::Arr(vec![Json::num(u as f64), Json::num(n as f64)])
                            })
                            .collect(),
                    );
                    (
                        k.clone(),
                        Json::obj()
                            .field("count", Json::num(h.count as f64))
                            .field("sum_ns", Json::num(h.sum_ns as f64))
                            .field("mean_ns", Json::num(h.mean_ns()))
                            .field("p99_upper_ns", Json::num(h.quantile_ns(0.99) as f64))
                            .field("buckets", buckets),
                    )
                })
                .collect(),
        );
        Json::obj()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }

    /// [`to_json`](Self::to_json) rendered to a string.
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn scrape_value(prom: &str, series: &str) -> Option<f64> {
        prom.lines()
            .find(|l| l.split_whitespace().next() == Some(series))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(
            prometheus_name("ivm.shard0.queue-depth"),
            "ivm_shard0_queue_depth"
        );
        assert_eq!(prometheus_name("4shard"), "_4shard");
    }

    #[test]
    fn quantiles_upper_bound_the_samples() {
        let h = crate::registry::Histogram::default();
        for ns in [10u64, 20, 30, 40, 1000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert!(s.quantile_ns(0.5) >= 20);
        assert!(s.quantile_ns(1.0) >= 1000);
        assert!((s.mean_ns() - 220.0).abs() < 1e-9);
    }

    /// The acceptance contract: the Prometheus exposition and the JSON
    /// document must agree — same counters, same gauge levels, same
    /// histogram totals — because they render from one snapshot.
    #[test]
    fn prometheus_and_json_agree() {
        let reg = MetricsRegistry::new();
        reg.counter("ivm.dataflow.updates_in").add(1234);
        reg.gauge("ivm.fleet.shard0.queue_depth").set(-2);
        let h = reg.histogram("ivm.session.ingest_ns");
        h.record(700);
        h.record(90_000);

        let snap = reg.snapshot();
        let prom = snap.to_prometheus();
        let json = snap.render_json();

        assert_eq!(
            scrape_value(&prom, "ivm_dataflow_updates_in"),
            Some(snap.counter("ivm.dataflow.updates_in") as f64)
        );
        assert_eq!(
            scrape_value(&prom, "ivm_fleet_shard0_queue_depth"),
            Some(snap.gauge("ivm.fleet.shard0.queue_depth") as f64)
        );
        assert_eq!(
            scrape_value(&prom, "ivm_session_ingest_ns_count"),
            Some(2.0)
        );
        assert_eq!(
            scrape_value(&prom, "ivm_session_ingest_ns_sum"),
            Some(90_700.0)
        );
        assert!(json.contains(r#""ivm.dataflow.updates_in":1234"#));
        assert!(json.contains(r#""ivm.fleet.shard0.queue_depth":-2"#));
        assert!(json.contains(r#""count":2,"sum_ns":90700"#));
        // Cumulative bucket counts: the 700ns sample is ≤ 1024.
        assert!(prom.contains("ivm_session_ingest_ns_bucket{le=\"1024\"} 1"));
        assert!(prom.contains("ivm_session_ingest_ns_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.to_prometheus(), "");
        assert_eq!(
            snap.render_json(),
            r#"{"counters":{},"gauges":{},"histograms":{}}"#
        );
    }
}
