//! Lock-free metric handles behind a named registry.
//!
//! Registration (name → handle) takes a mutex and is meant for setup
//! paths: engines resolve their handles once when a registry is
//! attached. The handles themselves are `Arc`-shared atomics — updating
//! a counter on the hot path is a single relaxed `fetch_add`, and an
//! engine with no registry attached carries `None` and pays nothing.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use crate::trace::{Span, Tracer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `(2^(i-1), 2^i]` nanoseconds (bucket 0 is `[0, 1]`). 40 buckets reach
/// `2^39 ns ≈ 9.2 min`, far beyond any batch this system applies.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Monotone event count. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn add(&self, v: u64) {
        // Skipping zero saves the atomic RMW on the (common) untouched
        // operators of a batch without changing any observable value.
        if v != 0 {
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite with an externally maintained cumulative value (e.g. a
    /// worker report that already carries totals). The value must be
    /// monotone for Prometheus semantics to hold; that is the caller's
    /// contract, not enforced here.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depths, in-flight batches).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Log-bucketed latency histogram over nanosecond samples. Recording is
/// two relaxed `fetch_add`s plus one on the bucket — no locks, no
/// allocation.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Bucket index for a nanosecond sample: smallest `i` with `v <= 2^i`,
/// clamped to the last bucket.
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` in nanoseconds (`u64::MAX` for
/// the overflow bucket).
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Record one sample in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.0.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum_ns(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (bucket_upper(i), b.load(Ordering::Relaxed)))
                .filter(|&(_, n)| n > 0)
                .collect(),
            count: self.count(),
            sum_ns: self.sum_ns(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    tracer: Tracer,
}

/// A named registry of metrics. Cheap to clone (one `Arc`); every clone
/// sees the same metrics, so attach the same registry to a session, its
/// shard workers, and an exporter thread freely.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry(Arc<Inner>);

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking shard worker must not wedge the exporter: recover the
    // guard — metric maps are always structurally valid.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-register a counter. Cold path (mutex + map); resolve once
    /// and keep the handle.
    pub fn counter(&self, name: &str) -> Counter {
        locked(&self.0.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get-or-register a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        locked(&self.0.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get-or-register a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        locked(&self.0.histograms)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Adopt an externally created counter handle under `name`, so a
    /// series that started counting before any registry was attached can
    /// be published retroactively with its history intact (the serving
    /// layer backfills per-subscriber handles this way). Replaces any
    /// same-name handle — name uniqueness is the caller's contract.
    pub fn register_counter(&self, name: &str, handle: &Counter) {
        locked(&self.0.counters).insert(name.to_string(), handle.clone());
    }

    /// Adopt an externally created gauge handle under `name` (see
    /// [`Self::register_counter`]).
    pub fn register_gauge(&self, name: &str, handle: &Gauge) {
        locked(&self.0.gauges).insert(name.to_string(), handle.clone());
    }

    /// Adopt an externally created histogram handle under `name` (see
    /// [`Self::register_counter`]).
    pub fn register_histogram(&self, name: &str, handle: &Histogram) {
        locked(&self.0.histograms).insert(name.to_string(), handle.clone());
    }

    /// The registry's batch-lifecycle tracer (bounded ring buffer).
    pub fn tracer(&self) -> &Tracer {
        &self.0.tracer
    }

    /// Open a [`Span`] on the registry's tracer; its wall time is logged
    /// when dropped or [`Span::finish`]ed. Interns the label on every
    /// call — hot paths should intern once via [`Tracer::intern`] and
    /// use the tracer directly.
    pub fn span(&self, label: &str) -> Span {
        self.0.tracer.span(label)
    }

    /// Drop every series whose name starts with `prefix`, across
    /// counters, gauges, and histograms; returns how many were removed.
    /// Live handles held elsewhere keep working — they just stop being
    /// exported. This is how churned per-entity series (an evicted
    /// subscriber's `…sub{id}.*`) are kept from growing the export
    /// without bound.
    pub fn prune_prefix(&self, prefix: &str) -> usize {
        let mut removed = 0;
        {
            let mut m = locked(&self.0.counters);
            let before = m.len();
            m.retain(|k, _| !k.starts_with(prefix));
            removed += before - m.len();
        }
        {
            let mut m = locked(&self.0.gauges);
            let before = m.len();
            m.retain(|k, _| !k.starts_with(prefix));
            removed += before - m.len();
        }
        {
            let mut m = locked(&self.0.histograms);
            let before = m.len();
            m.retain(|k, _| !k.starts_with(prefix));
            removed += before - m.len();
        }
        removed
    }

    /// A point-in-time copy of every metric, safe to take while writers
    /// are live (each cell is read atomically; cross-metric skew is
    /// bounded by the scrape duration, as in any metrics system).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: locked(&self.0.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: locked(&self.0.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: locked(&self.0.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_across_clones_and_lookups() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter("x").get(), 7);

        let g = reg.gauge("depth");
        g.add(5);
        g.dec();
        assert_eq!(reg.gauge("depth").get(), 4);
    }

    #[test]
    fn prune_prefix_removes_matching_series_only() {
        let reg = MetricsRegistry::new();
        reg.counter("ivm.serve.sub3.notify_ns");
        reg.gauge("ivm.serve.sub3.queue_depth");
        reg.histogram("ivm.serve.sub3.lag");
        reg.gauge("ivm.serve.sub30.queue_depth");
        reg.counter("ivm.serve.epochs").add(7);
        // The trailing dot keeps sub30 out of sub3's blast radius.
        assert_eq!(reg.prune_prefix("ivm.serve.sub3."), 3);
        let m = reg.snapshot();
        assert!(!m.counters.contains_key("ivm.serve.sub3.notify_ns"));
        assert!(!m.gauges.contains_key("ivm.serve.sub3.queue_depth"));
        assert!(m.gauges.contains_key("ivm.serve.sub30.queue_depth"));
        assert_eq!(m.counter("ivm.serve.epochs"), 7);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_accumulates() {
        let h = Histogram::default();
        h.record(1);
        h.record(100);
        h.record(100);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 201);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        // 100ns lands in bucket upper-bound 128.
        assert!(snap.buckets.contains(&(128, 2)));
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
