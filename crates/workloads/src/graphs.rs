//! Graph edge streams for the triangle experiments (Sec. 3).
//!
//! The triangle query's three relations `R`, `S`, `T` are loaded from the
//! same directed edge set (the standard encoding: one graph, three roles).
//! Skewed streams (Zipf-distributed endpoints) are what separate IVMε from
//! the first-order delta baseline: hubs make `O(min degree)` intersections
//! expensive.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated edge stream.
#[derive(Clone, Debug)]
pub struct EdgeStream {
    /// Edge list (directed, possibly with repeats).
    pub edges: Vec<(u64, u64)>,
}

impl EdgeStream {
    /// Uniform random edges over `nodes` vertices.
    pub fn uniform(nodes: u64, count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = (0..count)
            .map(|_| (rng.gen_range(0..nodes), rng.gen_range(0..nodes)))
            .collect();
        EdgeStream { edges }
    }

    /// Zipf-skewed edges: both endpoints drawn from Zipf(θ), so low ids
    /// are hubs.
    pub fn zipf(nodes: u64, count: usize, theta: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let z = Zipf::new(nodes as usize, theta);
        let edges = (0..count)
            .map(|_| (z.sample(&mut rng) as u64, z.sample(&mut rng) as u64))
            .collect();
        EdgeStream { edges }
    }

    /// A sliding-window update stream over this edge list: the first
    /// `window` edges are inserts; afterwards every step deletes the
    /// oldest live edge and inserts the next one. Exercises the
    /// insert-delete path and heavy/light migrations.
    pub fn sliding_window(&self, window: usize) -> Vec<(u64, u64, i64)> {
        let mut out = Vec::with_capacity(self.edges.len() * 2);
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            if i >= window {
                let (oa, ob) = self.edges[i - window];
                out.push((oa, ob, -1));
            }
            out.push((a, b, 1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape() {
        let s = EdgeStream::uniform(10, 100, 1);
        assert_eq!(s.edges.len(), 100);
        assert!(s.edges.iter().all(|&(a, b)| a < 10 && b < 10));
    }

    #[test]
    fn zipf_has_hub() {
        let s = EdgeStream::zipf(1000, 5000, 1.1, 2);
        let hub_edges = s.edges.iter().filter(|&&(a, b)| a == 0 || b == 0).count();
        assert!(hub_edges > 250, "node 0 should be a hub, got {hub_edges}");
    }

    #[test]
    fn sliding_window_balances() {
        let s = EdgeStream::uniform(5, 50, 3);
        let ops = s.sliding_window(10);
        let net: i64 = ops.iter().map(|&(_, _, m)| m).sum();
        assert_eq!(net, 10, "window size live at the end");
        assert_eq!(ops.len(), 50 + 40);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            EdgeStream::zipf(50, 100, 0.9, 7).edges,
            EdgeStream::zipf(50, 100, 0.9, 7).edges
        );
    }
}
