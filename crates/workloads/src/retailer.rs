//! The Retailer-style workload behind Fig 4.
//!
//! The paper's Fig 4 runs a q-hierarchical 5-relation join over the
//! (proprietary) Retailer dataset; we generate a synthetic equivalent with
//! the same join shape and realistic fan-outs (DESIGN.md §2):
//!
//! * `Inventory(locn, dateid, ksn)` — the streamed fact relation;
//! * `Sales(locn, dateid, ksn, units)`;
//! * `Weather(locn, dateid, rain)`;
//! * `Location(locn, zip)`;
//! * `Census(locn, zip, population)` — the Σ-reduct of
//!   `Census(zip, population)` under `zip → locn` (Ex 4.10): the
//!   FD-implied `locn` column is materialized so the join is
//!   q-hierarchical, exactly as Theorem 4.11 prescribes.

use ivm_data::{tup, Database, Relation, Tuple, Update};
use ivm_query::examples::{retailer_query, RetailerNames};
use ivm_query::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters and state.
pub struct RetailerGen {
    /// Number of locations.
    pub locations: u64,
    /// Number of date ids.
    pub dates: u64,
    /// Number of SKUs (`ksn`).
    pub items: u64,
    rng: StdRng,
    query: Query,
    names: RetailerNames,
}

impl RetailerGen {
    /// A generator with the given dimension cardinalities.
    pub fn new(locations: u64, dates: u64, items: u64, seed: u64) -> Self {
        let (query, names) = retailer_query();
        RetailerGen {
            locations,
            dates,
            items,
            rng: StdRng::seed_from_u64(seed),
            query,
            names,
        }
    }

    /// The Fig 4 query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Relation names.
    pub fn names(&self) -> &RetailerNames {
        &self.names
    }

    /// The initial database: full dimension tables (Location, Census,
    /// Weather) plus `sales_rows` Sales facts. Inventory starts empty and
    /// is driven by the update stream.
    pub fn initial_db(&mut self, sales_rows: usize) -> Database<i64> {
        let mut db: Database<i64> = Database::new();
        let q = self.query.clone();
        let schema_of = |name| {
            q.atoms
                .iter()
                .find(|a| a.name == name)
                .expect("retailer atom")
                .schema
                .clone()
        };

        let mut location = Relation::new(schema_of(self.names.location));
        let mut census = Relation::new(schema_of(self.names.census));
        for locn in 0..self.locations {
            let zip = locn / 4; // several stores per zip: zip → locn is
                                // one-to-many in this direction only
            location.insert(tup![locn, zip]);
            let pop = 1_000 + self.rng.gen_range(0..9_000i64);
            census.insert(tup![locn, zip, pop]);
        }

        let mut weather = Relation::new(schema_of(self.names.weather));
        for locn in 0..self.locations {
            for dateid in 0..self.dates {
                let rain = i64::from(self.rng.gen_bool(0.3));
                weather.insert(tup![locn, dateid, rain]);
            }
        }

        let mut sales = Relation::new(schema_of(self.names.sales));
        for _ in 0..sales_rows {
            let t = self.sales_tuple();
            sales.insert(t);
        }

        db.add(self.names.location, location);
        db.add(self.names.census, census);
        db.add(self.names.weather, weather);
        db.add(self.names.sales, sales);
        db.create(self.names.inventory, schema_of(self.names.inventory));
        db
    }

    fn sales_tuple(&mut self) -> Tuple {
        let locn = self.rng.gen_range(0..self.locations);
        let dateid = self.rng.gen_range(0..self.dates);
        let ksn = self.rng.gen_range(0..self.items);
        let units = self.rng.gen_range(1..20i64);
        tup![locn, dateid, ksn, units]
    }

    /// One batch of `size` single-tuple Inventory inserts (the Fig 4
    /// stream: "a batch has 1000 single-tuple inserts").
    pub fn inventory_batch(&mut self, size: usize) -> Vec<Update<i64>> {
        (0..size)
            .map(|_| {
                let locn = self.rng.gen_range(0..self.locations);
                let dateid = self.rng.gen_range(0..self.dates);
                let ksn = self.rng.gen_range(0..self.items);
                Update::insert(self.names.inventory, tup![locn, dateid, ksn])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_query::is_q_hierarchical;

    #[test]
    fn query_is_q_hierarchical() {
        let gen = RetailerGen::new(16, 4, 8, 1);
        assert!(is_q_hierarchical(gen.query()));
    }

    #[test]
    fn initial_db_shapes() {
        let mut gen = RetailerGen::new(16, 4, 8, 1);
        let db = gen.initial_db(100);
        assert_eq!(db.relation(gen.names().location).len(), 16);
        assert_eq!(db.relation(gen.names().census).len(), 16);
        assert_eq!(db.relation(gen.names().weather).len(), 16 * 4);
        assert!(db.relation(gen.names().sales).len() <= 100);
        assert_eq!(db.relation(gen.names().inventory).len(), 0);
    }

    #[test]
    fn batches_are_inventory_inserts() {
        let mut gen = RetailerGen::new(16, 4, 8, 2);
        let batch = gen.inventory_batch(50);
        assert_eq!(batch.len(), 50);
        for u in &batch {
            assert_eq!(u.relation, gen.names().inventory);
            assert_eq!(u.payload, 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g1 = RetailerGen::new(8, 2, 4, 42);
        let mut g2 = RetailerGen::new(8, 2, 4, 42);
        assert_eq!(g1.inventory_batch(10), g2.inventory_batch(10));
    }
}
