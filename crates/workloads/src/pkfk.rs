//! Valid out-of-order PK–FK batches (Ex 4.13).
//!
//! The generator emits batches over the JOB-style schema
//! `Title(m) ⋈ MovieCompanies(m, c) ⋈ CompanyName(c)` that are *valid* —
//! the database is consistent before and after each batch — while the
//! updates inside a batch may arrive out of order, traversing transiently
//! inconsistent states (fact tuples before their dimension keys, or
//! dimension deletes before the dependent fact deletes).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One update of the PK–FK stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PkFkOp {
    /// Insert/delete a movie key.
    Title(u64, i64),
    /// Insert/delete a company key.
    Company(u64, i64),
    /// Insert/delete a fact tuple (movie, company).
    MovieCompany(u64, u64, i64),
}

/// Generator state: tracks the live keys so batches stay valid.
pub struct PkFkGen {
    rng: StdRng,
    next_movie: u64,
    next_company: u64,
    /// Live companies with their movie lists.
    companies: Vec<(u64, Vec<u64>)>,
}

impl PkFkGen {
    /// A fresh generator.
    pub fn new(seed: u64) -> Self {
        PkFkGen {
            rng: StdRng::seed_from_u64(seed),
            next_movie: 0,
            next_company: 0,
            companies: Vec::new(),
        }
    }

    /// A valid batch that inserts a new company with `fanout` movies,
    /// *out of order*: all fact tuples first (each O(1) to maintain,
    /// inconsistent in-between), then the company key (the O(n) fix-up
    /// spike).
    pub fn grow_batch(&mut self, fanout: usize) -> Vec<PkFkOp> {
        let c = self.next_company;
        self.next_company += 1;
        let mut ops = Vec::with_capacity(2 * fanout + 1);
        let mut movies = Vec::with_capacity(fanout);
        for _ in 0..fanout {
            let m = self.next_movie;
            self.next_movie += 1;
            movies.push(m);
            ops.push(PkFkOp::Title(m, 1));
            ops.push(PkFkOp::MovieCompany(m, c, 1));
        }
        ops.push(PkFkOp::Company(c, 1));
        self.companies.push((c, movies));
        ops
    }

    /// A valid batch that removes a random live company, again out of
    /// order: the company key first (O(n) spike, inconsistent), then its
    /// fact tuples and movies (each O(1)). Returns `None` when empty.
    pub fn shrink_batch(&mut self) -> Option<Vec<PkFkOp>> {
        if self.companies.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.companies.len());
        let (c, movies) = self.companies.swap_remove(idx);
        let mut ops = Vec::with_capacity(2 * movies.len() + 1);
        ops.push(PkFkOp::Company(c, -1));
        for m in movies {
            ops.push(PkFkOp::MovieCompany(m, c, -1));
            ops.push(PkFkOp::Title(m, -1));
        }
        Some(ops)
    }

    /// Number of live companies.
    pub fn live_companies(&self) -> usize {
        self.companies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn check_consistent(
        state: &HashMap<(u64, u64), i64>,
        titles: &HashMap<u64, i64>,
        comps: &HashMap<u64, i64>,
    ) -> bool {
        state.iter().all(|(&(m, c), &mult)| {
            mult == 0
                || (titles.get(&m).copied().unwrap_or(0) > 0
                    && comps.get(&c).copied().unwrap_or(0) > 0)
        })
    }

    /// Batches are valid: consistent before and after, though not
    /// necessarily in between.
    #[test]
    fn batches_are_valid() {
        let mut gen = PkFkGen::new(5);
        let mut facts: HashMap<(u64, u64), i64> = HashMap::new();
        let mut titles: HashMap<u64, i64> = HashMap::new();
        let mut comps: HashMap<u64, i64> = HashMap::new();
        let apply = |ops: &[PkFkOp],
                     facts: &mut HashMap<(u64, u64), i64>,
                     titles: &mut HashMap<u64, i64>,
                     comps: &mut HashMap<u64, i64>| {
            for op in ops {
                match *op {
                    PkFkOp::Title(m, d) => *titles.entry(m).or_insert(0) += d,
                    PkFkOp::Company(c, d) => *comps.entry(c).or_insert(0) += d,
                    PkFkOp::MovieCompany(m, c, d) => *facts.entry((m, c)).or_insert(0) += d,
                }
            }
            facts.retain(|_, v| *v != 0);
            titles.retain(|_, v| *v != 0);
            comps.retain(|_, v| *v != 0);
        };
        for round in 0..20 {
            let ops = if round % 3 == 2 {
                gen.shrink_batch().unwrap_or_default()
            } else {
                gen.grow_batch(round + 1)
            };
            apply(&ops, &mut facts, &mut titles, &mut comps);
            assert!(
                check_consistent(&facts, &titles, &comps),
                "inconsistent after batch {round}"
            );
        }
    }

    /// Grow batches put the dimension insert last (the spike).
    #[test]
    fn grow_is_out_of_order() {
        let mut gen = PkFkGen::new(1);
        let ops = gen.grow_batch(3);
        assert!(matches!(ops.last(), Some(PkFkOp::Company(_, 1))));
        assert_eq!(ops.len(), 7);
    }

    /// Shrink batches put the dimension delete first.
    #[test]
    fn shrink_is_out_of_order() {
        let mut gen = PkFkGen::new(1);
        gen.grow_batch(4);
        let ops = gen.shrink_batch().unwrap();
        assert!(matches!(ops.first(), Some(PkFkOp::Company(_, -1))));
    }
}
