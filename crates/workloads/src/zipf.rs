//! A seedable Zipf(θ) sampler over `{0, …, n−1}` via inverse-CDF binary
//! search (exact, O(log n) per draw).

use rand::Rng;

/// Zipf distribution with exponent `theta` over `n` items; item `i` has
/// probability proportional to `1/(i+1)^theta`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF. `theta = 0` is uniform; `theta ≈ 1` is the
    /// classic heavy skew.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one item.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn skewed_when_theta_large() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut zero = 0usize;
        let draws = 10_000;
        for _ in 0..draws {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        assert!(zero > draws / 10, "item 0 should dominate, got {zero}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }
}
