//! Synthetic workload generators for the reproduction experiments.
//!
//! Substitutes for the paper's datasets (see DESIGN.md §2):
//!
//! * [`retailer`] — the 5-relation Retailer-style star schema behind
//!   Fig 4, with the FD `zip → locn` materialized per Theorem 4.11;
//! * [`graphs`] — uniform and Zipf-skewed edge streams for the triangle
//!   experiments (skew is what heavy/light partitioning exploits);
//! * [`pkfk`] — JOB-style valid out-of-order update batches for Ex 4.13;
//! * [`zipf`] — a seedable Zipf sampler.

pub mod graphs;
pub mod pkfk;
pub mod retailer;
pub mod zipf;

pub use retailer::RetailerGen;
pub use zipf::Zipf;
