//! Choosing *how* to split a query's data across shards.
//!
//! Delta rules over ring payloads are linear, so a batch's effect on a
//! view is the ⊎-sum of the effects of any partition of the batch — the
//! property that makes hash sharding sound. The planner's job is to pick a
//! partition under which every output derivation is computed on **exactly
//! one** shard:
//!
//! * If some variable `v` occurs in every atom (star joins, PK–FK chains,
//!   the q-hierarchical Retailer query), hash-partition every relation by
//!   its `v` column: a derivation binding `v = x` only finds matching
//!   tuples on shard `h(x)`, so shards never duplicate or miss work and
//!   nothing is replicated.
//! * Otherwise (cyclic queries like the triangle or the 4-cycle), pick the
//!   shard variable that lets the *most data* be partitioned and
//!   **broadcast** the relations that cannot be: replicated relations
//!   exist on every shard, but each derivation still materializes only on
//!   the one shard holding its partitioned tuples — exactly-once output is
//!   preserved as long as at least one relation is partitioned.
//! * A relation is partitionable by `v` only if *every occurrence* of it
//!   has `v` at the same column (routing is physical, per tuple, and a
//!   tuple cannot live on two shards). Self-join queries whose occurrences
//!   permute columns (the one-relation triangle `E(a,b)E(b,c)E(c,a)`) can
//!   leave no partitionable relation at all; then the plan is *degenerate*
//!   and the router sends everything to shard 0 — correct, but serial.
//!   (Per-occurrence replication schemes that parallelize such self-joins
//!   exist; see ROADMAP follow-ons.)

use ivm_data::{FxHashMap, Sym};
use ivm_dataflow::Cardinalities;
use ivm_query::Query;

/// How the router treats one relation's tuples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelationRoute {
    /// Hash-partition by the value at `column`: a tuple lives only on
    /// shard `hash(t[column]) mod shards`.
    Partition {
        /// Tuple position of the shard variable (identical across all
        /// occurrences of the relation, by construction).
        column: usize,
    },
    /// Replicate: a copy of every tuple goes to every shard.
    Broadcast,
}

/// The sharding decision for one query: the shard variable plus one
/// [`RelationRoute`] per distinct relation.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// The chosen shard variable; `None` for the degenerate single-shard
    /// fallback.
    pub shard_var: Option<Sym>,
    routes: FxHashMap<Sym, RelationRoute>,
}

impl ShardPlan {
    /// The route for `relation`, if the plan knows it (all of the query's
    /// relations when non-degenerate; none when degenerate).
    pub fn route(&self, relation: Sym) -> Option<RelationRoute> {
        self.routes.get(&relation).copied()
    }

    /// Whether the plan falls back to routing everything to shard 0.
    pub fn is_degenerate(&self) -> bool {
        self.shard_var.is_none()
    }

    /// Number of hash-partitioned relations.
    pub fn partitioned_count(&self) -> usize {
        self.routes
            .values()
            .filter(|r| matches!(r, RelationRoute::Partition { .. }))
            .count()
    }

    /// Number of broadcast (replicated) relations.
    pub fn broadcast_count(&self) -> usize {
        self.routes
            .values()
            .filter(|r| matches!(r, RelationRoute::Broadcast))
            .count()
    }

    /// One human-readable line: shard variable and per-relation routes,
    /// sorted by relation name for determinism.
    pub fn describe(&self) -> String {
        match self.shard_var {
            None => "degenerate: all updates -> shard 0".to_string(),
            Some(v) => {
                let mut parts: Vec<String> = self
                    .routes
                    .iter()
                    .map(|(rel, route)| match route {
                        RelationRoute::Partition { column } => {
                            format!("{rel} by col {column}")
                        }
                        RelationRoute::Broadcast => format!("{rel} broadcast"),
                    })
                    .collect();
                parts.sort();
                format!("shard by {v}: {}", parts.join(", "))
            }
        }
    }
}

/// Picks a [`ShardPlan`] for a query from its shape and (optional)
/// relation cardinalities.
pub struct ShardPlanner;

/// How one candidate shard variable scores: full-coverage plans first,
/// then more partitioned atoms, then more partitioned (known) tuples.
/// Ties resolve to the earliest variable in first-occurrence order, so
/// plans are deterministic across runs and platforms.
type Score = (bool, usize, usize);

impl ShardPlanner {
    /// Choose the shard plan for `q`. `cards` biases the choice toward
    /// partitioning the largest relations; [`Cardinalities::none`] falls
    /// back to pure shape-based scoring.
    pub fn plan(q: &Query, cards: &Cardinalities) -> ShardPlan {
        let mut best: Option<(Score, ShardPlan)> = None;
        for &v in q.variables().vars() {
            let Some((score, plan)) = Self::candidate(q, cards, v) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((best_score, _)) => score > *best_score,
            };
            if better {
                best = Some((score, plan));
            }
        }
        best.map(|(_, plan)| plan).unwrap_or(ShardPlan {
            shard_var: None,
            routes: FxHashMap::default(),
        })
    }

    /// The plan sharding by `v`, or `None` when no relation is
    /// partitionable by `v` (sharding would replicate everything and
    /// every shard would recompute — and thus overcount — the output).
    fn candidate(q: &Query, cards: &Cardinalities, v: Sym) -> Option<(Score, ShardPlan)> {
        let mut routes: FxHashMap<Sym, RelationRoute> = FxHashMap::default();
        let mut partitioned_atoms = 0usize;
        let mut partitioned_tuples = 0usize;
        for atom in &q.atoms {
            if routes.contains_key(&atom.name) {
                continue;
            }
            // Partitionable iff every occurrence of the relation has `v`
            // at one common column.
            let occurrences: Vec<&ivm_query::Atom> =
                q.atoms.iter().filter(|a| a.name == atom.name).collect();
            let column = occurrences[0]
                .schema
                .position(v)
                .filter(|&c| occurrences.iter().all(|a| a.schema.position(v) == Some(c)));
            let route = match column {
                Some(column) => {
                    partitioned_atoms += occurrences.len();
                    match cards.get(atom.name) {
                        usize::MAX => {} // unknown size: shape-only score
                        n => partitioned_tuples += n,
                    }
                    RelationRoute::Partition { column }
                }
                None => RelationRoute::Broadcast,
            };
            routes.insert(atom.name, route);
        }
        if partitioned_atoms == 0 {
            return None;
        }
        let full = partitioned_atoms == q.atoms.len();
        Some((
            (full, partitioned_atoms, partitioned_tuples),
            ShardPlan {
                shard_var: Some(v),
                routes,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{sym, vars};
    use ivm_query::{Atom, Query};

    #[test]
    fn star_query_partitions_everything_by_the_shared_variable() {
        let [x, y, z, w] = vars(["shp_X", "shp_Y", "shp_Z", "shp_W"]);
        let q = Query::new(
            "shp_star",
            [x, y, z, w],
            vec![
                Atom::new(sym("shp_R"), [x, y]),
                Atom::new(sym("shp_S"), [x, z]),
                Atom::new(sym("shp_T"), [w, x]), // x at a different column is fine
            ],
        );
        let plan = ShardPlanner::plan(&q, &Cardinalities::none());
        assert_eq!(plan.shard_var, Some(x));
        assert_eq!(plan.partitioned_count(), 3);
        assert_eq!(plan.broadcast_count(), 0);
        assert_eq!(
            plan.route(sym("shp_R")),
            Some(RelationRoute::Partition { column: 0 })
        );
        assert_eq!(
            plan.route(sym("shp_T")),
            Some(RelationRoute::Partition { column: 1 })
        );
    }

    #[test]
    fn retailer_query_is_fully_partitioned() {
        let (q, names) = ivm_query::examples::retailer_query();
        let plan = ShardPlanner::plan(&q, &Cardinalities::none());
        assert!(!plan.is_degenerate());
        assert_eq!(plan.broadcast_count(), 0, "{}", plan.describe());
        assert_eq!(plan.partitioned_count(), 5);
        assert_eq!(
            plan.route(names.inventory),
            Some(RelationRoute::Partition { column: 0 })
        );
    }

    #[test]
    fn triangle_with_distinct_relations_broadcasts_the_odd_one_out() {
        // R(a,b)·S(b,c)·T(c,a): no variable covers all three atoms; each
        // covers two. The tie resolves to `a` (first in occurrence order):
        // R partitioned by col 0, T by col 1, S broadcast.
        let q = ivm_query::examples::triangle_count();
        let plan = ShardPlanner::plan(&q, &Cardinalities::none());
        assert!(!plan.is_degenerate());
        assert_eq!(plan.partitioned_count(), 2, "{}", plan.describe());
        assert_eq!(plan.broadcast_count(), 1);
        assert_eq!(
            plan.route(q.atoms[0].name),
            Some(RelationRoute::Partition { column: 0 })
        );
        assert_eq!(plan.route(q.atoms[1].name), Some(RelationRoute::Broadcast));
        assert_eq!(
            plan.route(q.atoms[2].name),
            Some(RelationRoute::Partition { column: 1 })
        );
    }

    #[test]
    fn cardinalities_steer_the_tie_break() {
        // Same triangle, but S and T are huge: sharding by c (partitions
        // S and T) covers more tuples than sharding by a (R and T).
        let q = ivm_query::examples::triangle_count();
        let (r, s, t) = (q.atoms[0].name, q.atoms[1].name, q.atoms[2].name);
        let mut cards = Cardinalities::none();
        cards.set(r, 10).set(s, 1_000_000).set(t, 1_000_000);
        let plan = ShardPlanner::plan(&q, &cards);
        let c = q.atoms[1].schema.vars()[1];
        assert_eq!(plan.shard_var, Some(c), "{}", plan.describe());
        assert_eq!(plan.route(r), Some(RelationRoute::Broadcast));
        assert_eq!(plan.route(s), Some(RelationRoute::Partition { column: 1 }));
        assert_eq!(plan.route(t), Some(RelationRoute::Partition { column: 0 }));
    }

    #[test]
    fn self_join_triangle_is_degenerate() {
        // One relation in three column-permuted roles: no single physical
        // partition of E serves all occurrences, so the planner must fall
        // back instead of producing an overcounting broadcast-only plan.
        let [a, b, c] = vars(["shp_tA", "shp_tB", "shp_tC"]);
        let e = sym("shp_tE");
        let q = Query::new(
            "shp_tri",
            [],
            vec![
                Atom::new(e, [a, b]),
                Atom::new(e, [b, c]),
                Atom::new(e, [c, a]),
            ],
        );
        let plan = ShardPlanner::plan(&q, &Cardinalities::none());
        assert!(plan.is_degenerate());
        assert_eq!(plan.route(e), None);
        assert!(plan.describe().contains("degenerate"));
    }

    #[test]
    fn consistent_self_join_columns_stay_partitionable() {
        // Q(a) = E(a,b)·E(a,c): both occurrences hold `a` at column 0, so
        // E partitions even though the query self-joins.
        let [a, b, c] = vars(["shp_pA", "shp_pB", "shp_pC"]);
        let e = sym("shp_pE");
        let q = Query::new(
            "shp_pair",
            [a],
            vec![Atom::new(e, [a, b]), Atom::new(e, [a, c])],
        );
        let plan = ShardPlanner::plan(&q, &Cardinalities::none());
        assert_eq!(plan.shard_var, Some(a));
        assert_eq!(plan.route(e), Some(RelationRoute::Partition { column: 0 }));
    }
}
