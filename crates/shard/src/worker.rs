//! Shard worker threads.
//!
//! Each worker owns one independent [`DataflowEngine`] over its slice of
//! the data and drains a **bounded** job queue: the engine thread can keep
//! enqueueing batch `k+1` while workers still process batch `k`
//! (pipelined, asynchronous ingestion), and a worker that falls behind
//! exerts backpressure by letting its queue fill instead of buffering
//! unboundedly. Results flow back over an unbounded channel — workers
//! never block on reporting, so enqueue-side backpressure cannot deadlock
//! against result delivery.

use ivm_core::EngineError;
use ivm_data::{Database, Relation};
use ivm_dataflow::{Cardinalities, DataflowEngine, DataflowStats, DeltaBatch, JoinStrategy};
use ivm_obs::{LabelId, Tracer};
use ivm_ring::Semiring;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many batches a shard's queue holds before `enqueue` blocks —
/// deep enough to pipeline ingestion against processing, shallow enough
/// to bound memory per shard.
pub const QUEUE_DEPTH: usize = 8;

/// Cross-thread trace handoff: the router captures the ambient epoch
/// root at enqueue time and ships it with the job, so the worker's
/// queue-wait and apply spans join the same epoch tree even though they
/// happen on another thread.
#[derive(Clone, Copy)]
pub(crate) struct TraceCtx {
    /// Span id to parent the worker's spans under.
    pub parent: u64,
    /// The epoch the spans belong to.
    pub epoch: u64,
    /// When the job was enqueued — the queue-wait span runs from here
    /// to the moment the worker dequeues the job.
    pub enqueued: Instant,
}

/// One unit of work for a shard.
pub(crate) enum Job<R> {
    /// Apply the sub-batch of sequence number `seq`.
    Batch {
        /// Engine-wide batch sequence number.
        seq: u64,
        /// This shard's routed slice of the batch, already consolidated
        /// by the router (applied without re-consolidation).
        delta: DeltaBatch<R>,
        /// Epoch-trace handoff, present when the enqueue happened under
        /// an observed epoch root.
        ctx: Option<TraceCtx>,
    },
    /// Re-lower this shard's plan from learned cardinalities, replaying
    /// the carried database slice. Broadcast to every shard with the
    /// *same* strategy and cards, so the fleet re-lowers consistently;
    /// because the queue is FIFO, the replan lands exactly between
    /// batches — after everything enqueued before it, before everything
    /// after. Reported like a batch (with an empty delta), so the facade
    /// can await fleet-wide completion and absorb the refreshed stats.
    Replan {
        /// Sequence number, shared by the whole broadcast.
        seq: u64,
        /// The join strategy to lower (typically concrete, from the
        /// replan policy).
        strategy: JoinStrategy,
        /// Learned cardinalities to derive the fresh orders from —
        /// global counts, identical on every shard.
        cards: Cardinalities,
        /// This shard's slice of the current base state, to replay.
        db: Database<R>,
        /// Epoch-trace handoff (replans are traced like batches).
        ctx: Option<TraceCtx>,
    },
    /// Attach a metrics registry to this shard's engine: per-operator
    /// apply time and counter mirrors appear under `{prefix}.*`. Not
    /// reported — it is instantaneous and the facade need not await it
    /// (FIFO ordering already sequences it against batches).
    Observe {
        /// The shared fleet registry (cheap `Arc` clone).
        registry: ivm_obs::MetricsRegistry,
        /// Name prefix for this shard's dataflow series.
        prefix: String,
    },
}

/// A worker's answer to one [`Job`].
pub(crate) struct Report<R> {
    /// The job's sequence number.
    pub seq: u64,
    /// Which shard reports.
    pub shard: usize,
    /// The shard's output delta for the sub-batch (or why it failed).
    pub delta: Result<Relation<R>, EngineError>,
    /// Cumulative engine counters after the job.
    pub stats: DataflowStats,
    /// Cumulative time this worker has spent inside `apply_batch` — the
    /// per-shard busy time behind the scalability accounting. Measured on
    /// the *thread CPU clock* where available (Linux), so it stays a
    /// truthful work measure even when shards are oversubscribed on fewer
    /// cores — the wall clock would count descheduled gaps as busy.
    pub busy: Duration,
}

/// This thread's cumulative CPU time (`CLOCK_THREAD_CPUTIME_ID`), or
/// `None` where unavailable. The symbol comes from the platform libc that
/// `std` already links; no new dependency. Gated to 64-bit Linux: the
/// hand-declared `Timespec` matches the `{i64, i64}` ABI there, while
/// 32-bit targets use a different layout and must take the wall-clock
/// fallback.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn thread_cpu_now() -> Option<Duration> {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` outlives the call and the clock id is valid on Linux.
    if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
        Some(Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32))
    } else {
        None
    }
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
fn thread_cpu_now() -> Option<Duration> {
    None
}

/// A worker's tracing handles, resolved once when the fleet registry
/// arrives via [`Job::Observe`]: the shared tracer plus this shard's
/// interned stage labels — nothing allocates per batch.
struct WorkerTrace {
    tracer: Tracer,
    queue_wait: LabelId,
    apply: LabelId,
    replan: LabelId,
}

/// Time one closure on the thread CPU clock, falling back to wall time.
fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    match thread_cpu_now() {
        Some(c0) => {
            let out = f();
            let spent = thread_cpu_now()
                .map(|c1| c1.saturating_sub(c0))
                .unwrap_or(Duration::ZERO);
            (out, spent)
        }
        None => {
            let start = Instant::now();
            let out = f();
            (out, start.elapsed())
        }
    }
}

/// Handle to a spawned worker: its job queue and join handle.
pub(crate) struct WorkerHandle<R> {
    jobs: Option<SyncSender<Job<R>>>,
    thread: Option<JoinHandle<()>>,
}

impl<R> WorkerHandle<R> {
    /// Send a job, blocking when the shard's queue is full (bounded
    /// pipelining). Errors only if the worker died.
    pub fn send(&self, job: Job<R>) -> Result<(), EngineError> {
        self.jobs
            .as_ref()
            .expect("worker already shut down")
            .send(job)
            .map_err(|_| EngineError::ShardFailure("worker hung up its job queue".into()))
    }
}

impl<R> Drop for WorkerHandle<R> {
    fn drop(&mut self) {
        // Closing the queue is the shutdown signal; then join so worker
        // state (and any panic) is settled before the engine vanishes.
        drop(self.jobs.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawn the worker for `shard`, moving its preprocessed engine onto the
/// thread. Jobs are processed strictly in send order.
pub(crate) fn spawn<R: Semiring>(
    shard: usize,
    mut engine: DataflowEngine<R>,
    results: Sender<Report<R>>,
) -> WorkerHandle<R> {
    let (jobs_tx, jobs_rx): (SyncSender<Job<R>>, Receiver<Job<R>>) =
        std::sync::mpsc::sync_channel(QUEUE_DEPTH);
    let thread = std::thread::Builder::new()
        .name(format!("ivm-shard-{shard}"))
        .spawn(move || {
            let mut busy = Duration::ZERO;
            let mut trace: Option<WorkerTrace> = None;
            while let Ok(job) = jobs_rx.recv() {
                // Catch panics so one poisoned shard reports a failure
                // instead of silently leaving the batch in flight forever
                // (its queue sender would stay alive via the siblings).
                let (seq, outcome) = match job {
                    Job::Observe { registry, prefix } => {
                        engine.observe(&registry, &prefix);
                        let t = registry.tracer();
                        trace = Some(WorkerTrace {
                            queue_wait: t.intern(&format!("shard{shard}.queue_wait")),
                            apply: t.intern(&format!("shard{shard}.apply")),
                            replan: t.intern(&format!("shard{shard}.replan")),
                            tracer: t.clone(),
                        });
                        continue;
                    }
                    Job::Batch { seq, delta, ctx } => {
                        // Join the enqueuing epoch's trace: the gap since
                        // enqueue is this shard's queue wait, and the
                        // apply span (ambient while the engine runs, so
                        // per-operator spans nest under it) covers the
                        // work — even on panic, via the span's Drop.
                        let span = trace.as_ref().zip(ctx).map(|(tr, c)| {
                            tr.tracer.record_at(
                                tr.queue_wait,
                                Some(c.parent),
                                c.epoch,
                                c.enqueued,
                                c.enqueued.elapsed(),
                            );
                            tr.tracer.enter_at(tr.apply, c.parent, c.epoch)
                        });
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            timed(|| engine.apply_delta_batch(&delta))
                        }));
                        drop(span);
                        (seq, outcome)
                    }
                    Job::Replan {
                        seq,
                        strategy,
                        cards,
                        db,
                        ctx,
                    } => {
                        // A replan "delta" is empty by construction: the
                        // replay reproduces the shard's exact state.
                        let free = engine.output_relation().schema().clone();
                        let span = trace.as_ref().zip(ctx).map(|(tr, c)| {
                            tr.tracer.record_at(
                                tr.queue_wait,
                                Some(c.parent),
                                c.epoch,
                                c.enqueued,
                                c.enqueued.elapsed(),
                            );
                            tr.tracer.enter_at(tr.replan, c.parent, c.epoch)
                        });
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            timed(|| {
                                engine
                                    .replan_with_cards(&db, strategy, cards)
                                    .map(|()| Relation::new(free))
                            })
                        }));
                        drop(span);
                        (seq, outcome)
                    }
                };
                let (delta, spent, dead) = match outcome {
                    Ok((delta, spent)) => (delta, spent, false),
                    Err(_) => (
                        Err(EngineError::ShardFailure(format!(
                            "shard {shard} worker panicked mid-batch"
                        ))),
                        Duration::ZERO,
                        true,
                    ),
                };
                busy += spent;
                let report = Report {
                    seq,
                    shard,
                    delta,
                    stats: engine.stats(),
                    busy,
                };
                if results.send(report).is_err() || dead {
                    break; // engine dropped, or this worker is poisoned
                }
            }
        })
        .expect("spawning a shard worker thread");
    WorkerHandle {
        jobs: Some(jobs_tx),
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::lift_one;
    use ivm_data::{sym, tup, vars, Database, Update};
    use ivm_query::{Atom, Query};

    fn tiny_engine() -> (DataflowEngine<i64>, ivm_data::Sym) {
        let [x, y] = vars(["wrk_X", "wrk_Y"]);
        let r = sym("wrk_R");
        let q = Query::new("wrk_q", [x], vec![Atom::new(r, [x, y])]);
        (
            DataflowEngine::new(q, &Database::new(), lift_one).unwrap(),
            r,
        )
    }

    #[test]
    fn worker_processes_jobs_in_order_and_reports_deltas() {
        let (engine, r) = tiny_engine();
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = spawn(3, engine, tx);
        for seq in 0..5u64 {
            handle
                .send(Job::Batch {
                    seq,
                    delta: DeltaBatch::from_updates(&[Update::insert(r, tup![seq as i64, 0i64])]),
                    ctx: None,
                })
                .unwrap();
        }
        for expect_seq in 0..5u64 {
            let rep = rx.recv().unwrap();
            assert_eq!(rep.seq, expect_seq, "FIFO per shard");
            assert_eq!(rep.shard, 3);
            let delta = rep.delta.unwrap();
            assert_eq!(delta.get(&tup![expect_seq as i64]), 1);
            assert_eq!(rep.stats.batches, expect_seq + 2); // +1 preprocessing
        }
        drop(handle); // joins cleanly
    }

    #[test]
    fn worker_reports_errors_instead_of_dying() {
        let (engine, r) = tiny_engine();
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = spawn(0, engine, tx);
        handle
            .send(Job::Batch {
                seq: 0,
                delta: DeltaBatch::from_updates(&[Update::<i64>::insert(
                    sym("wrk_unknown"),
                    tup![1i64],
                )]),
                ctx: None,
            })
            .unwrap();
        let rep = rx.recv().unwrap();
        assert!(matches!(rep.delta, Err(EngineError::UnknownRelation(_))));
        // The worker survives the error and keeps serving.
        handle
            .send(Job::Batch {
                seq: 1,
                delta: DeltaBatch::from_updates(&[Update::insert(r, tup![7i64, 7i64])]),
                ctx: None,
            })
            .unwrap();
        let rep = rx.recv().unwrap();
        assert_eq!(rep.delta.unwrap().get(&tup![7i64]), 1);
        drop(handle);
    }

    #[test]
    fn busy_time_accumulates() {
        let (engine, r) = tiny_engine();
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = spawn(0, engine, tx);
        let mut last = Duration::ZERO;
        for seq in 0..3u64 {
            let updates: Vec<Update<i64>> = (0..256)
                .map(|i| Update::insert(r, tup![i as i64, seq as i64]))
                .collect();
            handle
                .send(Job::Batch {
                    seq,
                    delta: DeltaBatch::from_updates(&updates),
                    ctx: None,
                })
                .unwrap();
            let rep = rx.recv().unwrap();
            assert!(rep.busy >= last, "cumulative busy time is monotone");
            last = rep.busy;
        }
        drop(handle);
    }
}
