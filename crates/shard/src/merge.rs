//! Merging per-shard output deltas back into one view.
//!
//! Because every dataflow operator is linear over the payload ring (the
//! join bilinear, handled by the semi-naive split), the output delta of a
//! batch equals the ⊎-sum of the output deltas of its per-shard
//! sub-batches — no ordering, no coordination, just ring addition per
//! tuple. Entries cancelling to zero vanish, so a view that one shard
//! retracts and another re-derives ends up with the correct net payload.

use ivm_data::Relation;
use ivm_ring::Semiring;

/// ⊎-fold `delta` into `acc` (point-wise ring addition, pruning zeros).
pub fn fold_delta<R: Semiring>(acc: &mut Relation<R>, delta: &Relation<R>) {
    debug_assert_eq!(
        acc.schema(),
        delta.schema(),
        "shard deltas must share the output schema"
    );
    for (t, r) in delta.iter() {
        acc.apply(t.clone(), r);
    }
}

/// ⊎-merge per-shard deltas into one relation over `schema`.
pub fn merge_deltas<R: Semiring>(
    schema: ivm_data::Schema,
    parts: impl IntoIterator<Item = Relation<R>>,
) -> Relation<R> {
    let mut acc = Relation::new(schema);
    for part in parts {
        fold_delta(&mut acc, &part);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{tup, vars, Schema};

    fn schema() -> Schema {
        let [x] = vars(["mrg_X"]);
        Schema::from([x])
    }

    #[test]
    fn merge_sums_and_cancels() {
        let s = schema();
        let a = Relation::from_rows(s.clone(), [(tup![1i64], 2i64), (tup![2i64], 1)]);
        let b = Relation::from_rows(s.clone(), [(tup![1i64], 3i64), (tup![2i64], -1)]);
        let m = merge_deltas(s, [a, b]);
        assert_eq!(m.get(&tup![1i64]), 5);
        assert!(!m.contains(&tup![2i64]), "cancelled across shards");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let m: Relation<i64> = merge_deltas(schema(), []);
        assert!(m.is_empty());
    }

    #[test]
    fn merge_is_order_independent() {
        let s = schema();
        let parts: Vec<Relation<i64>> = (0..4)
            .map(|i| Relation::from_rows(s.clone(), [(tup![i as i64 % 2], (i + 1) as i64)]))
            .collect();
        let forward = merge_deltas(s.clone(), parts.clone());
        let backward = merge_deltas(s, parts.into_iter().rev());
        assert_eq!(forward.len(), backward.len());
        assert_eq!(forward.get(&tup![0i64]), backward.get(&tup![0i64]));
        assert_eq!(forward.get(&tup![1i64]), backward.get(&tup![1i64]));
    }
}
