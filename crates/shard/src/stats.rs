//! Fleet-wide statistics of a sharded engine.

use crate::router::RouterStats;
use ivm_dataflow::DataflowStats;
use std::time::Duration;

/// Counters of a [`ShardedEngine`](crate::ShardedEngine): the routing
/// layer plus the latest cumulative snapshot of every shard's dataflow.
#[derive(Clone, Debug, Default)]
pub struct ShardedStats {
    /// Routing-layer counters (entries routed vs. broadcast copies).
    pub router: RouterStats,
    /// Per-shard dataflow counters (cumulative; index = shard id).
    pub per_shard: Vec<DataflowStats>,
    /// Per-shard cumulative busy time inside `apply_batch` (thread CPU
    /// time on Linux, wall time elsewhere — see `worker::Report::busy`).
    pub busy: Vec<Duration>,
}

impl ShardedStats {
    /// All shards' counters ⊕-merged into one [`DataflowStats`].
    ///
    /// Broadcast entries are counted once per holding shard (they really
    /// are applied that many times); [`RouterStats::broadcast_copies`]
    /// quantifies the replication overhead separately.
    pub fn merged(&self) -> DataflowStats {
        self.per_shard
            .iter()
            .fold(DataflowStats::default(), |acc, s| acc.merged(s))
    }

    /// Total busy time across shards (the work a single core would do).
    pub fn total_busy(&self) -> Duration {
        self.busy.iter().sum()
    }

    /// The busiest shard's time — the critical path of the fleet: with
    /// one core per shard, a drained stream takes max-busy, not
    /// total-busy, of compute time.
    pub fn max_busy(&self) -> Duration {
        self.busy.iter().max().copied().unwrap_or(Duration::ZERO)
    }

    /// Load-balance quality in `(0, 1]`: mean busy over max busy. `1.0`
    /// is a perfectly even split; `1/n` means one shard did everything.
    pub fn balance(&self) -> f64 {
        let max = self.max_busy().as_secs_f64();
        if max == 0.0 || self.busy.is_empty() {
            return 1.0;
        }
        let mean = self.total_busy().as_secs_f64() / self.busy.len() as f64;
        mean / max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_busy(busy_ms: &[u64]) -> ShardedStats {
        ShardedStats {
            router: RouterStats::default(),
            per_shard: busy_ms
                .iter()
                .map(|&b| DataflowStats {
                    batches: b,
                    ..DataflowStats::default()
                })
                .collect(),
            busy: busy_ms.iter().map(|&b| Duration::from_millis(b)).collect(),
        }
    }

    #[test]
    fn merged_sums_shards() {
        let s = stats_with_busy(&[1, 2, 3]);
        assert_eq!(s.merged().batches, 6);
    }

    #[test]
    fn busy_accounting() {
        let s = stats_with_busy(&[10, 30, 20, 40]);
        assert_eq!(s.total_busy(), Duration::from_millis(100));
        assert_eq!(s.max_busy(), Duration::from_millis(40));
        assert!((s.balance() - 0.625).abs() < 1e-9);
    }

    #[test]
    fn empty_fleet_is_balanced() {
        let s = ShardedStats::default();
        assert_eq!(s.max_busy(), Duration::ZERO);
        assert_eq!(s.balance(), 1.0);
        assert_eq!(s.merged(), DataflowStats::default());
    }

    /// An unstarted stream — workers spawned but no batch settled yet —
    /// has non-empty but all-zero busy times; `balance()` must not
    /// divide by the zero `max_busy` (a NaN here used to be able to leak
    /// into `BENCH_shard.json` rows).
    #[test]
    fn unstarted_fleet_balance_is_finite() {
        let s = stats_with_busy(&[0, 0, 0, 0]);
        assert_eq!(s.max_busy(), Duration::ZERO);
        assert_eq!(s.balance(), 1.0);
        assert!(s.balance().is_finite());
    }
}
