//! Hash-partitioned parallel execution over `ivm-dataflow`.
//!
//! The paper's delta rules are linear over the payload ring, so a batch's
//! effect on a view is the ⊎-sum of the effects of *any* partition of the
//! batch (Koch et al., collection programming; the same property DBToaster
//! -style engines exploit). This crate turns that algebra into a parallel
//! runtime:
//!
//! * [`ShardPlanner`] inspects the query and picks a **shard key**: a
//!   variable shared by every atom when one exists (star, PK–FK,
//!   hierarchical queries — everything partitions, nothing replicates);
//!   otherwise the variable partitioning the most data, with the
//!   remaining relations **broadcast** to all shards (triangle and the
//!   other cyclic shapes). Self-joins whose occurrences permute the shard
//!   column degrade to a correct single-shard fallback.
//! * [`Router`] splits each consolidated batch into per-shard sub-batches
//!   by the deterministic hash of the shard column; broadcast entries fan
//!   out to every shard.
//! * One worker thread per shard owns an independent
//!   [`DataflowEngine`](ivm_dataflow::DataflowEngine) — the PR 2 planner
//!   (left-deep or worst-case-optimal multiway) unchanged — fed over a
//!   **bounded** queue, so ingestion is pipelined: the caller enqueues
//!   batch `k+1` while shards still process batch `k`, and backpressure
//!   is per shard.
//! * [`ShardedEngine`] merges the per-shard output deltas by ring
//!   addition into one maintained view, implements
//!   [`Maintainer`](ivm_core::Maintainer), and aggregates per-shard
//!   [`DataflowStats`](ivm_dataflow::DataflowStats) (plus per-shard busy
//!   time — the scalability critical path) into [`ShardedStats`].
//!
//! # Quickstart
//!
//! ```
//! use ivm_data::{ops::lift_one, sym, tup, vars, Database, Update};
//! use ivm_query::{Atom, Query};
//! use ivm_shard::ShardedEngine;
//!
//! // A star join: Q(x,y,z) = R(x,y)·S(x,z). x occurs in every atom, so
//! // both relations hash-partition by x and nothing is replicated.
//! let [x, y, z] = vars(["doc_sX", "doc_sY", "doc_sZ"]);
//! let q = Query::new(
//!     "doc_star",
//!     [x, y, z],
//!     vec![Atom::new(sym("doc_sR"), [x, y]), Atom::new(sym("doc_sS"), [x, z])],
//! );
//! let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 4).unwrap();
//!
//! // Pipelined ingestion: enqueue returns before processing finishes.
//! for i in 0..8i64 {
//!     eng.enqueue_batch(&[
//!         Update::insert(sym("doc_sR"), tup![i, i * 10]),
//!         Update::insert(sym("doc_sS"), tup![i, i * 100]),
//!     ])
//!     .unwrap();
//! }
//! eng.drain().unwrap(); // settle all shard deltas into the view
//! assert_eq!(eng.output_relation().len(), 8);
//! ```

pub mod engine;
pub mod merge;
pub mod planner;
pub mod router;
pub mod stats;
pub mod worker;

pub use engine::ShardedEngine;
pub use merge::{fold_delta, merge_deltas};
pub use planner::{RelationRoute, ShardPlan, ShardPlanner};
pub use router::{Router, RouterStats};
pub use stats::ShardedStats;
pub use worker::QUEUE_DEPTH;
