//! Splitting consolidated batches into per-shard sub-batches.
//!
//! The [`Router`] applies a [`ShardPlan`] to concrete tuples: partitioned
//! relations route by the deterministic hash of their shard column
//! ([`ivm_data::shard_of`], seedless FxHash, so the same value lands on
//! the same shard across runs and machines), broadcast relations fan out
//! to every shard, and the degenerate plan sends everything to shard 0.
//!
//! Routing happens on *consolidated* batches ([`DeltaBatch`]): updates
//! whose net effect cancels disappear before anything is cloned or
//! shipped across a channel.

use crate::planner::{RelationRoute, ShardPlan};
use ivm_data::{shard_of_column, Tuple};
use ivm_dataflow::DeltaBatch;
use ivm_ring::Semiring;

/// Counters of the routing layer, complementing the per-shard
/// [`DataflowStats`](ivm_dataflow::DataflowStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Batches split.
    pub batches: u64,
    /// Consolidated entries examined.
    pub entries: u64,
    /// Entries routed to exactly one shard.
    pub routed: u64,
    /// Entry *copies* produced by broadcasting (an entry broadcast to `n`
    /// shards counts `n`; replication cost is visible, not hidden).
    pub broadcast_copies: u64,
}

/// A stateless-per-batch splitter: plan + shard count + counters.
#[derive(Clone, Debug)]
pub struct Router {
    plan: ShardPlan,
    shards: usize,
    stats: RouterStats,
}

impl Router {
    /// A router over `shards` shards following `plan`.
    pub fn new(plan: ShardPlan, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Router {
            plan,
            shards,
            stats: RouterStats::default(),
        }
    }

    /// The plan this router follows.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Routing counters so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// The shard for one `(relation, tuple)` entry: `Some(s)` for a
    /// partitioned (or degenerate) destination, `None` for broadcast.
    ///
    /// # Panics
    /// Panics if a non-degenerate plan does not know `relation` — the
    /// engine validates updates against the query's relations first, so
    /// an unknown relation here is an internal invariant violation.
    pub fn shard_for(&self, relation: ivm_data::Sym, tuple: &Tuple) -> Option<usize> {
        route_entry(&self.plan, self.shards, relation, tuple)
    }

    /// Split a consolidated batch into one sub-batch per shard.
    pub fn split<R: Semiring>(&mut self, batch: &DeltaBatch<R>) -> Vec<DeltaBatch<R>> {
        self.stats.batches += 1;
        let stats = &mut self.stats;
        let shards = self.shards;
        let plan = &self.plan;
        batch.partition_by(shards, |rel, t| {
            stats.entries += 1;
            let dest = route_entry(plan, shards, rel, t);
            match dest {
                Some(_) => stats.routed += 1,
                None => stats.broadcast_copies += shards as u64,
            }
            dest
        })
    }
}

/// The destination of one `(relation, tuple)` entry under `plan`.
fn route_entry(
    plan: &ShardPlan,
    shards: usize,
    relation: ivm_data::Sym,
    tuple: &Tuple,
) -> Option<usize> {
    if plan.is_degenerate() {
        return Some(0);
    }
    match plan
        .route(relation)
        .expect("router saw a relation the shard plan does not know")
    {
        RelationRoute::Partition { column } => Some(shard_of_column(tuple, column, shards)),
        RelationRoute::Broadcast => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::ShardPlanner;
    use ivm_data::{sym, tup, Update};
    use ivm_dataflow::Cardinalities;

    fn triangle_router(shards: usize) -> (Router, [ivm_data::Sym; 3]) {
        let q = ivm_query::examples::triangle_count();
        let names = [q.atoms[0].name, q.atoms[1].name, q.atoms[2].name];
        let plan = ShardPlanner::plan(&q, &Cardinalities::none());
        (Router::new(plan, shards), names)
    }

    #[test]
    fn partitioned_entries_go_to_one_shard_broadcast_to_all() {
        let (mut router, [r, s, t]) = triangle_router(4);
        let ups: Vec<Update<i64>> = vec![
            Update::insert(r, tup![1i64, 2i64]),
            Update::insert(s, tup![2i64, 3i64]), // broadcast under the a-plan
            Update::insert(t, tup![3i64, 1i64]),
        ];
        let parts = router.split(&DeltaBatch::from_updates(&ups));
        assert_eq!(parts.len(), 4);
        // R(1,2) on exactly one shard; S(2,3) on all four.
        let holding_r: Vec<usize> = (0..4).filter(|&i| parts[i].delta(r).is_some()).collect();
        assert_eq!(holding_r.len(), 1);
        assert!((0..4).all(|i| parts[i].delta(s).is_some()));
        // R shards by a (col 0), T by a (col 1): the tuples above share
        // a = 1, so R(1,2) and T(3,1) land on the same shard — the
        // invariant that keeps each derivation on one shard.
        let holding_t: Vec<usize> = (0..4).filter(|&i| parts[i].delta(t).is_some()).collect();
        assert_eq!(holding_r, holding_t);

        let st = router.stats();
        assert_eq!(st.batches, 1);
        assert_eq!(st.entries, 3);
        assert_eq!(st.routed, 2);
        assert_eq!(st.broadcast_copies, 4);
    }

    #[test]
    fn routing_is_stable_across_shard_counts_for_same_value() {
        let (router2, [r, _, _]) = triangle_router(2);
        let (router4, _) = triangle_router(4);
        // Same tuple, same deterministic hash; only the modulus differs.
        let t = tup![42i64, 7i64];
        let s2 = router2.shard_for(r, &t).unwrap();
        let s4 = router4.shard_for(r, &t).unwrap();
        assert!(s2 < 2 && s4 < 4);
        assert_eq!(s2, router2.shard_for(r, &t).unwrap());
        assert_eq!(s4, router4.shard_for(r, &t).unwrap());
    }

    #[test]
    fn degenerate_plan_routes_everything_to_shard_zero() {
        let [a, b, c] = ivm_data::vars(["shr_A", "shr_B", "shr_C"]);
        let e = sym("shr_E");
        let q = ivm_query::Query::new(
            "shr_tri",
            [],
            vec![
                ivm_query::Atom::new(e, [a, b]),
                ivm_query::Atom::new(e, [b, c]),
                ivm_query::Atom::new(e, [c, a]),
            ],
        );
        let plan = ShardPlanner::plan(&q, &Cardinalities::none());
        let mut router = Router::new(plan, 4);
        let ups: Vec<Update<i64>> = (0..8i64)
            .map(|i| Update::insert(e, tup![i, i + 1]))
            .collect();
        let parts = router.split(&DeltaBatch::from_updates(&ups));
        assert_eq!(parts[0].len(), 8);
        assert!(parts[1..].iter().all(|p| p.is_empty()));
    }
}
