//! The sharded [`Maintainer`]: N independent dataflows behind one facade.
//!
//! Construction plans the shard key ([`ShardPlanner`]), splits the initial
//! database with the [`Router`], and spawns one worker thread per shard,
//! each owning a fully independent [`DataflowEngine`] (same planner as
//! the single-threaded engine — left-deep or worst-case-optimal multiway,
//! untouched). Updates then flow in two modes:
//!
//! * **Synchronous** — [`ShardedEngine::apply_batch`] routes a batch,
//!   waits for every shard's output delta, ⊎-merges them, folds the merge
//!   into the maintained view, and returns it: a drop-in replacement for
//!   `DataflowEngine::apply_batch`.
//! * **Pipelined** — [`ShardedEngine::enqueue_batch`] only routes and
//!   enqueues (bounded per-shard queues give backpressure) and returns the
//!   batch's sequence number immediately; the caller keeps feeding while
//!   shards work, then [`ShardedEngine::drain`] settles everything into
//!   the output view.
//!
//! Merging by ring addition is sound because shard sub-batches partition
//! each batch and delta propagation is linear over the payload ring — the
//! ⊎-sum of the shard deltas *is* the batch's delta, in any arrival order.

use crate::merge::fold_delta;
use crate::planner::{ShardPlan, ShardPlanner};
use crate::router::Router;
use crate::stats::ShardedStats;
use crate::worker::{self, Job, Report, TraceCtx, WorkerHandle};
use ivm_core::{EngineError, Maintainer};
use ivm_data::ops::Lift;
use ivm_data::{Database, FxHashMap, FxHashSet, Relation, Schema, Sym, Tuple, Update};
use ivm_dataflow::{
    resolve_strategy, Cardinalities, DataflowEngine, DataflowStats, DeltaBatch, JoinStrategy,
};
use ivm_obs::{Counter, FlightRecorder, Gauge, Histogram, LabelId, MetricsRegistry, Tracer};
use ivm_query::Query;
use ivm_ring::Semiring;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// A batch whose shard deltas have not all arrived yet.
struct Pending<R> {
    remaining: usize,
    delta: Relation<R>,
    /// When the batch was enqueued — settling records the
    /// enqueue-to-settle latency when a registry is attached.
    enqueued: Instant,
    /// Replan broadcasts settle through the same path but are not
    /// stream batches; their latency is not a batch latency.
    replan: bool,
}

/// Facade-side registry handles of one shard.
struct ShardObs {
    /// Jobs sent to the shard and not yet reported back — the live
    /// depth of its bounded queue (plus the one job being applied).
    queue_depth: Gauge,
    /// Cumulative busy time (thread CPU where available; mirrors
    /// [`ShardedStats::busy`]).
    busy_ns: Counter,
    /// Wall time since attach not spent busy — the shard's idle/skew
    /// indicator, refreshed at every settled report.
    idle_ns: Gauge,
    /// Cumulative per-shard dataflow counters (stored from reports).
    batches: Counter,
    updates_in: Counter,
    deltas_in: Counter,
    output_delta_tuples: Counter,
}

/// Facade-side registry handles of the whole fleet.
struct FleetObs {
    attached: Instant,
    per_shard: Vec<ShardObs>,
    /// Busy baseline at attach, per shard: idle accounting must not
    /// charge pre-attach history.
    busy_base: Vec<Duration>,
    /// Enqueue-to-settle latency of stream batches.
    settle_ns: Histogram,
    /// Router-side time consolidating raw updates into a [`DeltaBatch`].
    router_consolidate_ns: Counter,
    /// Router-side time hash-partitioning a consolidated batch.
    router_partition_ns: Counter,
    routed: Counter,
    broadcast_copies: Counter,
    batches_enqueued: Counter,
    /// Fleet-merged cumulative counters (always Σ of the per-shard
    /// stored values, refreshed together at each settle).
    updates_in: Counter,
    batches: Counter,
    deltas_in: Counter,
    output_delta_tuples: Counter,
    /// The registry's tracer; router stages become children of whatever
    /// epoch root is ambient at enqueue time, and the same (parent,
    /// epoch) pair is shipped to workers in each job's [`TraceCtx`].
    tracer: Tracer,
    consolidate_label: LabelId,
    partition_label: LabelId,
    /// Post-mortem capture for the fleet's failure paths (shard
    /// poisoning, worker panic).
    flight: FlightRecorder,
}

impl FleetObs {
    /// Store one shard's cumulative report values and refresh the
    /// fleet-merged series from the facade's per-shard snapshots.
    fn on_report(
        &self,
        shard: usize,
        stats: &DataflowStats,
        busy: Duration,
        merged: &DataflowStats,
    ) {
        let s = &self.per_shard[shard];
        s.queue_depth.dec();
        s.busy_ns.store(busy.as_nanos() as u64);
        let spent = busy.saturating_sub(self.busy_base[shard]);
        s.idle_ns
            .set(self.attached.elapsed().saturating_sub(spent).as_nanos() as i64);
        s.batches.store(stats.batches);
        s.updates_in.store(stats.updates_in);
        s.deltas_in.store(stats.deltas_in);
        s.output_delta_tuples.store(stats.output_delta_tuples);
        self.batches.store(merged.batches);
        self.updates_in.store(merged.updates_in);
        self.deltas_in.store(merged.deltas_in);
        self.output_delta_tuples.store(merged.output_delta_tuples);
    }

    /// A poisoned fleet has no live queues: a stuck non-zero depth
    /// would read as permanent backlog on an engine that will never
    /// process anything again.
    fn on_poison(&self) {
        for s in &self.per_shard {
            s.queue_depth.set(0);
        }
    }
}

/// Hash-partitioned parallel engine over `ivm-dataflow` worker shards.
pub struct ShardedEngine<R: Semiring> {
    query: Query,
    router: Router,
    workers: Vec<WorkerHandle<R>>,
    results: Receiver<Report<R>>,
    next_seq: u64,
    /// The seq of the most recent batch that routed to zero shards (fully
    /// cancelled), so `wait_for` can answer it without a worker report.
    last_empty: Option<u64>,
    in_flight: FxHashMap<u64, Pending<R>>,
    shard_stats: Vec<DataflowStats>,
    shard_busy: Vec<Duration>,
    output: Relation<R>,
    dynamics: FxHashSet<Sym>,
    statics: FxHashSet<Sym>,
    /// The concrete per-shard join plan in force, recorded at (re)lowering
    /// time — mirrors `DataflowEngine::resolved_strategy` for the fleet.
    resolved: JoinStrategy,
    /// The cardinality snapshot the current fleet plan was ordered by
    /// (global counts; replans broadcast one snapshot to every shard).
    lowered_cards: Cardinalities,
    /// Set once a shard reports a failure (engine error or worker panic):
    /// the fleet's state is no longer trustworthy, so every subsequent
    /// operation fails fast with this error instead of hanging on reports
    /// that will never come.
    poisoned: Option<EngineError>,
    /// Facade-side telemetry handles; `None` (detached) costs nothing.
    obs: Option<FleetObs>,
}

impl<R: Semiring> ShardedEngine<R> {
    /// Shard `query` across `shards` workers with [`JoinStrategy::Auto`]
    /// per shard, preprocessing `db` through the router (each shard sees
    /// only its slice of partitioned relations plus full copies of
    /// broadcast ones).
    pub fn new(
        query: Query,
        db: &Database<R>,
        lift: Lift<R>,
        shards: usize,
    ) -> Result<Self, EngineError> {
        Self::new_with_strategy(query, db, lift, shards, JoinStrategy::Auto)
    }

    /// [`Self::new`] with an explicit per-shard join plan.
    ///
    /// When the plan is degenerate (no partitionable relation — see
    /// [`ShardPlanner`]), the fleet is clamped to one worker: every update
    /// would route to shard 0 anyway, so spawning more threads and
    /// preprocessing more engines would be pure waste.
    pub fn new_with_strategy(
        query: Query,
        db: &Database<R>,
        lift: Lift<R>,
        shards: usize,
        strategy: JoinStrategy,
    ) -> Result<Self, EngineError> {
        assert!(shards > 0, "need at least one shard");
        let cards = Cardinalities::from_db(db, &query);
        let plan = ShardPlanner::plan(&query, &cards);
        let shards = if plan.is_degenerate() { 1 } else { shards };
        let router = Router::new(plan, shards);

        let shard_dbs = split_database(db, &query, &router);
        let (results_tx, results_rx) = std::sync::mpsc::channel();
        let mut workers = Vec::with_capacity(shards);
        let mut shard_stats = Vec::with_capacity(shards);
        let mut output = Relation::new(query.free.clone());
        for (shard, shard_db) in shard_dbs.into_iter().enumerate() {
            let engine =
                DataflowEngine::new_with_strategy(query.clone(), &shard_db, lift, strategy)?;
            // The preprocessing pass already materialized this shard's
            // slice of the initial view and counted its replay; ⊎-merge
            // the view and snapshot the counters before the engine moves
            // onto its thread, so the facade starts equal to the
            // single-threaded engine's view *and* stats (reports then
            // overwrite the snapshots with cumulative values).
            fold_delta(&mut output, engine.output_relation());
            shard_stats.push(engine.stats());
            workers.push(worker::spawn(shard, engine, results_tx.clone()));
        }

        let mut dynamics: FxHashSet<Sym> = FxHashSet::default();
        let mut statics: FxHashSet<Sym> = FxHashSet::default();
        for atom in &query.atoms {
            if atom.dynamic {
                dynamics.insert(atom.name);
            } else {
                statics.insert(atom.name);
            }
        }
        statics.retain(|s| !dynamics.contains(s));

        let resolved = resolve_strategy(&query, strategy);
        Ok(ShardedEngine {
            query,
            router,
            workers,
            results: results_rx,
            next_seq: 0,
            last_empty: None,
            in_flight: FxHashMap::default(),
            shard_stats,
            shard_busy: vec![Duration::ZERO; shards],
            output,
            dynamics,
            statics,
            resolved,
            lowered_cards: cards,
            poisoned: None,
            obs: None,
        })
    }

    /// Attach a metrics registry to the whole fleet under `{prefix}.*`:
    ///
    /// * facade side — per-shard `shard{i}.queue_depth` /
    ///   `shard{i}.busy_ns` / `shard{i}.idle_ns` and counter mirrors,
    ///   fleet-merged counters, the `settle_ns` enqueue-to-settle
    ///   latency histogram, and `router.*` consolidation/partition
    ///   timings;
    /// * worker side — each shard's dataflow attaches under
    ///   `{prefix}.shard{i}.dataflow.*` (per-operator apply time and
    ///   tuple counts), via a broadcast [`Job::Observe`] that FIFO
    ///   ordering lands between batches.
    ///
    /// Counter mirrors are *stored* cumulative values (report-driven),
    /// so they survive replans the same way [`Self::stats`] does.
    pub fn observe(&mut self, registry: &MetricsRegistry, prefix: &str) -> Result<(), EngineError> {
        self.check_poisoned()?;
        let per_shard = (0..self.workers.len())
            .map(|i| {
                let base = format!("{prefix}.shard{i}");
                let s = ShardObs {
                    queue_depth: registry.gauge(&format!("{base}.queue_depth")),
                    busy_ns: registry.counter(&format!("{base}.busy_ns")),
                    idle_ns: registry.gauge(&format!("{base}.idle_ns")),
                    batches: registry.counter(&format!("{base}.batches")),
                    updates_in: registry.counter(&format!("{base}.updates_in")),
                    deltas_in: registry.counter(&format!("{base}.deltas_in")),
                    output_delta_tuples: registry.counter(&format!("{base}.output_delta_tuples")),
                };
                // Seed from the facade's current snapshots so the series
                // start truthful (preprocessing included) even before the
                // first report arrives.
                s.busy_ns.store(self.shard_busy[i].as_nanos() as u64);
                s.batches.store(self.shard_stats[i].batches);
                s.updates_in.store(self.shard_stats[i].updates_in);
                s.deltas_in.store(self.shard_stats[i].deltas_in);
                s.output_delta_tuples
                    .store(self.shard_stats[i].output_delta_tuples);
                s
            })
            .collect();
        let merged = self.stats();
        let obs = FleetObs {
            attached: Instant::now(),
            per_shard,
            busy_base: self.shard_busy.clone(),
            settle_ns: registry.histogram(&format!("{prefix}.settle_ns")),
            router_consolidate_ns: registry.counter(&format!("{prefix}.router.consolidate_ns")),
            router_partition_ns: registry.counter(&format!("{prefix}.router.partition_ns")),
            routed: registry.counter(&format!("{prefix}.router.routed")),
            broadcast_copies: registry.counter(&format!("{prefix}.router.broadcast_copies")),
            batches_enqueued: registry.counter(&format!("{prefix}.batches_enqueued")),
            updates_in: registry.counter(&format!("{prefix}.updates_in")),
            batches: registry.counter(&format!("{prefix}.batches")),
            deltas_in: registry.counter(&format!("{prefix}.deltas_in")),
            output_delta_tuples: registry.counter(&format!("{prefix}.output_delta_tuples")),
            tracer: registry.tracer().clone(),
            consolidate_label: registry.tracer().intern("router.consolidate"),
            partition_label: registry.tracer().intern("router.partition"),
            flight: FlightRecorder::new(registry),
        };
        obs.batches.store(merged.batches);
        obs.updates_in.store(merged.updates_in);
        obs.deltas_in.store(merged.deltas_in);
        obs.output_delta_tuples.store(merged.output_delta_tuples);
        let rs = self.router.stats();
        obs.routed.store(rs.routed);
        obs.broadcast_copies.store(rs.broadcast_copies);
        // Broadcast worker-side attachment (FIFO: lands between batches).
        for (i, w) in self.workers.iter().enumerate() {
            w.send(Job::Observe {
                registry: registry.clone(),
                prefix: format!("{prefix}.shard{i}.dataflow"),
            })?;
        }
        self.obs = Some(obs);
        Ok(())
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The shard plan in force.
    pub fn plan(&self) -> &ShardPlan {
        self.router.plan()
    }

    /// One line describing the fleet: shard count + routing plan.
    pub fn describe(&self) -> String {
        format!("{} shard(s); {}", self.shards(), self.plan().describe())
    }

    /// The concrete per-shard join plan in force — recorded when the
    /// fleet was (re)lowered, never `Auto`.
    pub fn resolved_strategy(&self) -> JoinStrategy {
        self.resolved
    }

    /// The cardinality snapshot the current fleet plan was ordered by.
    pub fn lowered_cards(&self) -> &Cardinalities {
        &self.lowered_cards
    }

    /// Re-lower **every** shard's dataflow onto `strategy` with orders
    /// derived from `cards` (learned counts), replaying `db` — the
    /// current base state the caller owns — through the unchanged router.
    ///
    /// The replan is broadcast through the worker queues, so FIFO puts it
    /// exactly *between* batches on every shard: everything enqueued
    /// before it completes first (and settles into the view along the
    /// way), everything enqueued after runs on the fresh plan. All shards
    /// receive the same strategy and the same global cardinalities, so
    /// the fleet re-lowers consistently even where per-shard slice sizes
    /// would order differently. Carried counters survive exactly as in
    /// `DataflowEngine::replan_with_cards`; only the shard *routing* plan
    /// is fixed at construction and deliberately not revisited (re-keying
    /// would reshuffle every index across the fleet).
    ///
    /// Blocks until every shard has re-lowered; a shard failure poisons
    /// the engine per the usual contract.
    pub fn replan_with_cards(
        &mut self,
        db: &Database<R>,
        strategy: JoinStrategy,
        cards: &Cardinalities,
    ) -> Result<(), EngineError> {
        self.check_poisoned()?;
        let shard_dbs = split_database(db, &self.query, &self.router);
        let seq = self.next_seq;
        self.next_seq += 1;
        let shards = self.workers.len();
        let trace_ctx =
            self.obs
                .as_ref()
                .and_then(|o| o.tracer.current_ctx())
                .map(|(parent, epoch)| TraceCtx {
                    parent,
                    epoch,
                    enqueued: Instant::now(),
                });
        for (shard, shard_db) in shard_dbs.into_iter().enumerate() {
            self.workers[shard].send(Job::Replan {
                seq,
                strategy,
                cards: cards.clone(),
                db: shard_db,
                ctx: trace_ctx.map(|c| TraceCtx {
                    enqueued: Instant::now(),
                    ..c
                }),
            })?;
            if let Some(obs) = &self.obs {
                obs.per_shard[shard].queue_depth.inc();
            }
        }
        self.last_empty = None;
        self.in_flight.insert(
            seq,
            Pending {
                remaining: shards,
                delta: Relation::new(self.query.free.clone()),
                enqueued: Instant::now(),
                replan: true,
            },
        );
        // The replan deltas are empty by construction; waiting here both
        // settles earlier in-flight batches and absorbs the refreshed
        // per-shard stats snapshots.
        self.wait_for(seq)?;
        self.resolved = resolve_strategy(&self.query, strategy);
        self.lowered_cards = cards.clone();
        Ok(())
    }

    /// Route `batch` and enqueue it on the shard queues **without waiting
    /// for processing** — ingestion is pipelined: the call returns as
    /// soon as every sub-batch is accepted (blocking only for
    /// backpressure when a shard's bounded queue is full), so the caller
    /// can assemble and enqueue batch `k+1` while the fleet still
    /// processes batch `k`. Returns the batch's sequence number.
    ///
    /// The maintained view and [`Self::stats`] reflect an enqueued batch
    /// only after it has been settled by [`Self::drain`] (or by a later
    /// synchronous [`Self::apply_batch`]).
    pub fn enqueue_batch(&mut self, batch: &[Update<R>]) -> Result<u64, EngineError> {
        self.check_poisoned()?;
        self.validate(batch)?;
        // Absorb any reports that already arrived, keeping `in_flight`
        // small during long enqueue-only streaks. (Before the new seq is
        // allocated, so this cannot complete the batch being enqueued.)
        self.pump_ready()?;

        let seq = self.next_seq;
        self.next_seq += 1;
        let t0 = self.obs.as_ref().map(|_| Instant::now());
        let consolidated = DeltaBatch::from_updates(batch);
        let t1 = self.obs.as_ref().map(|_| Instant::now());
        let parts = self.router.split(&consolidated);
        if let (Some(obs), Some(t0), Some(t1)) = (&self.obs, t0, t1) {
            obs.router_consolidate_ns
                .add(t1.duration_since(t0).as_nanos() as u64);
            obs.router_partition_ns.add(t1.elapsed().as_nanos() as u64);
            // Under an epoch root, the two router stages become child
            // spans too — recorded post-hoc from the instants the
            // counter timing already took.
            if let Some((parent, epoch)) = obs.tracer.current_ctx() {
                obs.tracer.record_at(
                    obs.consolidate_label,
                    Some(parent),
                    epoch,
                    t0,
                    t1.duration_since(t0),
                );
                obs.tracer
                    .record_at(obs.partition_label, Some(parent), epoch, t1, t1.elapsed());
            }
            let rs = self.router.stats();
            obs.routed.store(rs.routed);
            obs.broadcast_copies.store(rs.broadcast_copies);
            obs.batches_enqueued.inc();
        }
        // The ambient epoch root (if any) rides along to the workers:
        // each job's queue-wait and apply spans join this epoch's tree.
        let trace_ctx =
            self.obs
                .as_ref()
                .and_then(|o| o.tracer.current_ctx())
                .map(|(parent, epoch)| TraceCtx {
                    parent,
                    epoch,
                    enqueued: Instant::now(),
                });
        let mut sent = 0usize;
        for (shard, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.workers[shard].send(Job::Batch {
                seq,
                delta: part,
                ctx: trace_ctx.map(|c| TraceCtx {
                    enqueued: Instant::now(),
                    ..c
                }),
            })?;
            if let Some(obs) = &self.obs {
                obs.per_shard[shard].queue_depth.inc();
            }
            sent += 1;
        }
        if sent == 0 {
            // Fully cancelled batch: nothing was shipped, delta is empty.
            self.last_empty = Some(seq);
        } else {
            self.last_empty = None;
            self.in_flight.insert(
                seq,
                Pending {
                    remaining: sent,
                    delta: Relation::new(self.query.free.clone()),
                    enqueued: Instant::now(),
                    replan: false,
                },
            );
        }
        Ok(seq)
    }

    /// Block until every enqueued batch is processed and folded into the
    /// maintained view.
    pub fn drain(&mut self) -> Result<(), EngineError> {
        self.check_poisoned()?;
        while !self.in_flight.is_empty() {
            let report = self.recv()?;
            self.settle(report, None)?;
        }
        Ok(())
    }

    /// The maintained output view over the settled batches. Call
    /// [`Self::drain`] first when using pipelined ingestion.
    pub fn output_relation(&self) -> &Relation<R> {
        &self.output
    }

    /// Fleet statistics: router counters plus the latest cumulative
    /// per-shard dataflow counters and busy times (as of the last settled
    /// report per shard).
    pub fn sharded_stats(&self) -> ShardedStats {
        ShardedStats {
            router: self.router.stats(),
            per_shard: self.shard_stats.clone(),
            busy: self.shard_busy.clone(),
        }
    }

    /// All shards' dataflow counters merged into one view (see
    /// [`ShardedStats::merged`]).
    pub fn stats(&self) -> DataflowStats {
        self.sharded_stats().merged()
    }

    /// Reject updates to static or unknown relations, exactly like the
    /// single-threaded engine — centrally, before anything is routed.
    fn validate(&self, batch: &[Update<R>]) -> Result<(), EngineError> {
        for u in batch {
            if self.statics.contains(&u.relation) {
                return Err(EngineError::StaticRelation(u.relation));
            }
            if !self.dynamics.contains(&u.relation) {
                return Err(EngineError::UnknownRelation(u.relation));
            }
        }
        Ok(())
    }

    /// Absorb every report that is already waiting, without blocking.
    fn pump_ready(&mut self) -> Result<(), EngineError> {
        while let Ok(report) = self.results.try_recv() {
            self.settle(report, None)?;
        }
        Ok(())
    }

    /// Fail fast once a shard has failed — the in-flight bookkeeping was
    /// discarded, so blocking on further reports could hang forever.
    fn check_poisoned(&self) -> Result<(), EngineError> {
        match &self.poisoned {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Block until batch `seq` is fully settled; return its merged delta.
    fn wait_for(&mut self, seq: u64) -> Result<Relation<R>, EngineError> {
        if self.last_empty == Some(seq) {
            return Ok(Relation::new(self.query.free.clone()));
        }
        loop {
            let report = self.recv()?;
            if let Some(delta) = self.settle(report, Some(seq))? {
                return Ok(delta);
            }
        }
    }

    fn recv(&mut self) -> Result<Report<R>, EngineError> {
        match self.results.recv() {
            Ok(report) => Ok(report),
            Err(_) => {
                let e = EngineError::ShardFailure("all shard workers hung up".into());
                self.poisoned = Some(e.clone());
                self.in_flight.clear();
                if let Some(obs) = &self.obs {
                    obs.on_poison();
                    obs.flight.dump("shard-poisoned", &e.to_string());
                }
                Err(e)
            }
        }
    }

    /// Fold one report into the pending batch; when the batch completes,
    /// fold its merged delta into the output view. Returns the merged
    /// delta iff the completed batch is the one `claim` asks for.
    ///
    /// A failure report **poisons** the engine: the failed batch (and any
    /// behind it) can never complete, so all bookkeeping is dropped and
    /// every later call fails fast instead of waiting on reports that
    /// will not come.
    fn settle(
        &mut self,
        report: Report<R>,
        claim: Option<u64>,
    ) -> Result<Option<Relation<R>>, EngineError> {
        self.shard_stats[report.shard] = report.stats;
        self.shard_busy[report.shard] = report.busy;
        if let Some(obs) = &self.obs {
            let merged = self
                .shard_stats
                .iter()
                .fold(DataflowStats::default(), |acc, s| acc.merged(s));
            obs.on_report(report.shard, &report.stats, report.busy, &merged);
        }
        let delta = match report.delta {
            Ok(d) => d,
            Err(e) => {
                self.poisoned = Some(e.clone());
                self.in_flight.clear();
                if let Some(obs) = &self.obs {
                    obs.on_poison();
                    // The post-mortem carries the failing epoch's spans:
                    // the whole last-K-epochs window plus a snapshot.
                    obs.flight.dump("shard-failure", &e.to_string());
                }
                return Err(e);
            }
        };
        let pending = self
            .in_flight
            .get_mut(&report.seq)
            .expect("report for a batch that is not in flight");
        fold_delta(&mut pending.delta, &delta);
        pending.remaining -= 1;
        if pending.remaining > 0 {
            return Ok(None);
        }
        let done = self
            .in_flight
            .remove(&report.seq)
            .expect("pending entry vanished");
        if let Some(obs) = &self.obs {
            if !done.replan {
                obs.settle_ns.record_duration(done.enqueued.elapsed());
            }
        }
        fold_delta(&mut self.output, &done.delta);
        Ok(if claim == Some(report.seq) {
            Some(done.delta)
        } else {
            None
        })
    }
}

impl<R: Semiring> Maintainer<R> for ShardedEngine<R> {
    fn query(&self) -> &Query {
        &self.query
    }

    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        self.apply_batch(std::slice::from_ref(upd)).map(|_| ())
    }

    /// Apply a batch synchronously: enqueue, wait for all shard deltas of
    /// *this* batch, and return the ⊎-merged output delta (already folded
    /// into [`Self::output_relation`]). Earlier enqueued batches complete
    /// along the way, shard queues being FIFO. This is the fleet's native
    /// batch path — the one trait-level ingestion surface, with
    /// [`Self::enqueue_batch`]/[`Self::drain`] as the pipelined variant.
    ///
    /// Per the trait contract's poisoning clause: once any shard fails,
    /// this method (and `drain`) fails fast with the original error on
    /// every subsequent call.
    fn apply_batch(&mut self, batch: &[Update<R>]) -> Result<Relation<R>, EngineError> {
        let seq = self.enqueue_batch(batch)?;
        self.wait_for(seq)
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        self.drain().expect("sharded engine drain failed");
        for (t, r) in self.output.iter() {
            f(t, r);
        }
    }
}

impl<R: Semiring> std::fmt::Debug for ShardedEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("query", &self.query)
            .field("shards", &self.shards())
            .field("plan", &self.plan().describe())
            .field("in_flight", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}

/// Slice the initial database per shard: partitioned relations split by
/// the shard hash, broadcast relations copied everywhere, and every atom
/// relation present (if empty) so each shard's engine preprocesses the
/// same schema world.
fn split_database<R: Semiring>(
    db: &Database<R>,
    query: &Query,
    router: &Router,
) -> Vec<Database<R>> {
    let shards = router.shards();
    let mut out: Vec<Database<R>> = (0..shards).map(|_| Database::new()).collect();
    let mut seen: FxHashSet<Sym> = FxHashSet::default();
    for atom in &query.atoms {
        if !seen.insert(atom.name) {
            continue;
        }
        let schema: Schema = db
            .get(atom.name)
            .map(|r| r.schema().clone())
            .unwrap_or_else(|| atom.schema.clone());
        for shard_db in &mut out {
            shard_db.create(atom.name, schema.clone());
        }
        if let Some(rel) = db.get(atom.name) {
            for (t, payload) in rel.iter() {
                match router.shard_for(atom.name, t) {
                    Some(s) => out[s]
                        .get_mut(atom.name)
                        .expect("relation created above")
                        .apply(t.clone(), payload),
                    None => {
                        for shard_db in &mut out {
                            shard_db
                                .get_mut(atom.name)
                                .expect("relation created above")
                                .apply(t.clone(), payload);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::{eval_join_aggregate, lift_one};
    use ivm_data::{sym, tup, vars};
    use ivm_query::Atom;

    /// Q(x,y,z) = R(x,y)·S(x,z): fully partitionable by x.
    fn star2() -> Query {
        let [x, y, z] = vars(["she_X", "she_Y", "she_Z"]);
        Query::new(
            "she_star",
            [x, y, z],
            vec![
                Atom::new(sym("she_R"), [x, y]),
                Atom::new(sym("she_S"), [x, z]),
            ],
        )
    }

    #[test]
    fn sharded_matches_single_on_star() {
        let q = star2();
        let (rn, sn) = (q.atoms[0].name, q.atoms[1].name);
        let db = Database::new();
        let mut single = DataflowEngine::<i64>::new(q.clone(), &db, lift_one).unwrap();
        let mut sharded = ShardedEngine::<i64>::new(q, &db, lift_one, 4).unwrap();
        assert_eq!(sharded.shards(), 4);
        assert!(!sharded.plan().is_degenerate());

        for i in 0..40i64 {
            let batch = vec![
                Update::with_payload(rn, tup![i % 7, i], 1),
                Update::with_payload(sn, tup![i % 7, i + 100], if i % 5 == 0 { -1 } else { 1 }),
            ];
            let d1 = single.apply_batch(&batch).unwrap();
            let d2 = sharded.apply_batch(&batch).unwrap();
            assert_eq!(d1.len(), d2.len(), "deltas differ at step {i}");
            for (t, p) in d1.iter() {
                assert_eq!(&d2.get(t), p, "delta at {t:?} step {i}");
            }
        }
        let (a, b) = (single.output_relation(), sharded.output_relation());
        assert_eq!(a.len(), b.len());
        for (t, p) in a.iter() {
            assert_eq!(&b.get(t), p);
        }
    }

    #[test]
    fn preprocessing_routes_the_initial_database() {
        let q = star2();
        let (rn, sn) = (q.atoms[0].name, q.atoms[1].name);
        let mut db: Database<i64> = Database::new();
        db.create(rn, q.atoms[0].schema.clone());
        db.create(sn, q.atoms[1].schema.clone());
        for i in 0..16i64 {
            db.apply(&Update::insert(rn, tup![i, i * 10]));
            db.apply(&Update::insert(sn, tup![i, i * 100]));
        }
        let mut sharded = ShardedEngine::<i64>::new(q.clone(), &db, lift_one, 3).unwrap();
        // Preprocessing is already visible in the fleet stats, before any
        // worker has reported: 16 R + 16 S tuples replayed across shards.
        let pre = sharded.stats();
        assert_eq!(pre.updates_in, 32);
        assert_eq!(pre.batches, 3, "one preprocessing batch per shard");
        // Touch one x to force a delta through the preprocessed state.
        sharded
            .apply_batch(&[Update::insert(sn, tup![3i64, 999i64])])
            .unwrap();
        let r_rel = db.relation(rn).clone();
        let mut s_rel = db.relation(sn).clone();
        s_rel.apply(tup![3i64, 999i64], &1);
        let expect = eval_join_aggregate(&[&r_rel, &s_rel], &q.free, lift_one);
        let got = sharded.output_relation();
        assert_eq!(got.len(), expect.len());
        for (t, p) in expect.iter() {
            assert_eq!(&got.get(t), p, "at {t:?}");
        }
    }

    #[test]
    fn pipelined_enqueue_then_drain_matches_synchronous() {
        let q = star2();
        let (rn, sn) = (q.atoms[0].name, q.atoms[1].name);
        let db = Database::new();
        let mut sync = ShardedEngine::<i64>::new(q.clone(), &db, lift_one, 2).unwrap();
        let mut pipelined = ShardedEngine::<i64>::new(q, &db, lift_one, 2).unwrap();
        let batches: Vec<Vec<Update<i64>>> = (0..30i64)
            .map(|i| {
                vec![
                    Update::insert(rn, tup![i % 4, i]),
                    Update::with_payload(sn, tup![i % 4, i + 50], 2),
                ]
            })
            .collect();
        for b in &batches {
            sync.apply_batch(b).unwrap();
        }
        // Async path: enqueue everything without waiting, then drain once.
        let mut seqs = Vec::new();
        for b in &batches {
            seqs.push(pipelined.enqueue_batch(b).unwrap());
        }
        assert_eq!(seqs.len(), 30);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        pipelined.drain().unwrap();
        let (a, b) = (sync.output_relation(), pipelined.output_relation());
        assert_eq!(a.len(), b.len());
        for (t, p) in a.iter() {
            assert_eq!(&b.get(t), p);
        }
    }

    #[test]
    fn fully_cancelled_batch_completes_without_touching_workers() {
        let q = star2();
        let rn = q.atoms[0].name;
        let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 2).unwrap();
        let delta = eng
            .apply_batch(&[
                Update::insert(rn, tup![1i64, 1i64]),
                Update::delete(rn, tup![1i64, 1i64]),
            ])
            .unwrap();
        assert!(delta.is_empty());
        assert_eq!(eng.sharded_stats().router.routed, 0);
    }

    #[test]
    fn static_and_unknown_relations_rejected_centrally() {
        let [x, y, z] = vars(["she_mX", "she_mY", "she_mZ"]);
        let (rn, sn) = (sym("she_mR"), sym("she_mS"));
        let q = Query::new(
            "she_mixed",
            [x],
            vec![
                Atom::new(rn, [x, y]),
                Atom::new_static(sn, Schema::from([y, z])),
            ],
        );
        let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 2).unwrap();
        assert_eq!(
            eng.apply_batch(&[Update::insert(sn, tup![1i64, 2i64])])
                .unwrap_err(),
            EngineError::StaticRelation(sn)
        );
        assert_eq!(
            eng.apply_batch(&[Update::insert(sym("she_nope"), tup![1i64])])
                .unwrap_err(),
            EngineError::UnknownRelation(sym("she_nope"))
        );
        eng.apply_batch(&[Update::insert(rn, tup![1i64, 2i64])])
            .unwrap();
    }

    #[test]
    fn degenerate_plan_still_maintains_correctly() {
        // Self-join triangle: unshardable, runs serially on shard 0 but
        // behind the same facade.
        let [a, b, c] = vars(["she_tA", "she_tB", "she_tC"]);
        let e = sym("she_tE");
        let q = Query::new(
            "she_tri",
            [],
            vec![
                Atom::new(e, [a, b]),
                Atom::new(e, [b, c]),
                Atom::new(e, [c, a]),
            ],
        );
        let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 4).unwrap();
        assert!(eng.plan().is_degenerate());
        // The fleet is clamped to one worker: extra shards would idle.
        assert_eq!(eng.shards(), 1, "{}", eng.describe());
        for (x, y) in [(1i64, 2i64), (2, 3), (3, 1), (1, 9)] {
            eng.apply(&Update::insert(e, tup![x, y])).unwrap();
        }
        assert_eq!(eng.output_relation().get(&Tuple::empty()), 3);
        let st = eng.sharded_stats();
        assert_eq!(st.per_shard.len(), 1);
        assert!(st.per_shard[0].batches > 0);
    }

    #[test]
    fn shard_failure_poisons_instead_of_hanging() {
        // Force a worker-side failure by bypassing central validation:
        // a delta for a relation the shard engines do not know.
        let q = star2();
        let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 2).unwrap();
        let rogue =
            DeltaBatch::from_updates(&[Update::<i64>::insert(sym("she_rogue"), tup![1i64, 1i64])]);
        eng.workers[0]
            .send(crate::worker::Job::Batch {
                seq: 0,
                delta: rogue,
                ctx: None,
            })
            .unwrap();
        eng.next_seq = 1;
        eng.in_flight.insert(
            0,
            Pending {
                remaining: 1,
                delta: Relation::new(eng.query.free.clone()),
                enqueued: Instant::now(),
                replan: false,
            },
        );
        // The drain surfaces the failure instead of blocking forever...
        assert!(matches!(
            eng.drain().unwrap_err(),
            EngineError::UnknownRelation(_)
        ));
        // ...and the engine stays poisoned: everything fails fast now.
        let rn = eng.query.atoms[0].name;
        assert_eq!(
            eng.apply_batch(&[Update::insert(rn, tup![1i64, 1i64])])
                .unwrap_err(),
            EngineError::UnknownRelation(sym("she_rogue"))
        );
        assert!(eng.drain().is_err());
    }

    /// An observed fleet mirrors its counters into the registry —
    /// per-shard and fleet-merged values agree with `sharded_stats()` —
    /// and queue-depth gauges return to zero once drained.
    #[test]
    fn observed_fleet_mirrors_counters_and_queues_settle_to_zero() {
        let q = star2();
        let (rn, sn) = (q.atoms[0].name, q.atoms[1].name);
        let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 4).unwrap();
        let reg = MetricsRegistry::new();
        eng.observe(&reg, "t.fleet").unwrap();
        for i in 0..12i64 {
            eng.enqueue_batch(&[
                Update::insert(rn, tup![i % 6, i]),
                Update::insert(sn, tup![i % 6, i + 100]),
            ])
            .unwrap();
        }
        eng.drain().unwrap();
        let snap = reg.snapshot();
        let st = eng.sharded_stats();
        let merged = st.merged();
        assert_eq!(snap.counter("t.fleet.updates_in"), merged.updates_in);
        let per_shard_sum: u64 = (0..4)
            .map(|i| snap.counter(&format!("t.fleet.shard{i}.updates_in")))
            .sum();
        assert_eq!(per_shard_sum, merged.updates_in);
        for i in 0..4 {
            assert_eq!(
                snap.gauge(&format!("t.fleet.shard{i}.queue_depth")),
                0,
                "drained shard {i} must have an empty queue"
            );
            assert_eq!(
                snap.counter(&format!("t.fleet.shard{i}.busy_ns")),
                st.busy[i].as_nanos() as u64
            );
        }
        assert_eq!(snap.counter("t.fleet.batches_enqueued"), 12);
        assert_eq!(snap.counter("t.fleet.router.routed"), st.router.routed);
        assert!(snap.counter("t.fleet.router.consolidate_ns") > 0);
        let settle = snap.histogram("t.fleet.settle_ns").unwrap();
        assert_eq!(settle.count, 12, "one latency sample per settled batch");
        // Worker-side dataflow series arrived through Job::Observe.
        assert!(
            snap.counters
                .keys()
                .any(|k| k.starts_with("t.fleet.shard0.dataflow.op.")),
            "expected per-operator series, got: {:?}",
            snap.counters.keys().take(8).collect::<Vec<_>>()
        );
    }

    /// Killing a shard on an observed fleet writes a flight-recorder
    /// post-mortem: parseable JSON that carries the failing epoch's
    /// spans (queue wait and the apply that died) plus a snapshot.
    #[test]
    fn kill_a_shard_dumps_a_parseable_flight_record() {
        let q = star2();
        let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 2).unwrap();
        let reg = MetricsRegistry::new();
        eng.observe(&reg, "t.flight").unwrap();

        // An epoch root on the shared tracer, exactly as a session would
        // open one; the rogue job joins it through its TraceCtx.
        let tracer = reg.tracer().clone();
        let root = tracer.enter(tracer.intern("session.ingest"), 7);
        let ctx = TraceCtx {
            parent: root.id(),
            epoch: 7,
            enqueued: Instant::now(),
        };
        let rogue = DeltaBatch::from_updates(&[Update::<i64>::insert(
            sym("she_rogue_fr"),
            tup![1i64, 1i64],
        )]);
        eng.workers[0]
            .send(crate::worker::Job::Batch {
                seq: 0,
                delta: rogue,
                ctx: Some(ctx),
            })
            .unwrap();
        eng.next_seq = 1;
        eng.in_flight.insert(
            0,
            Pending {
                remaining: 1,
                delta: Relation::new(eng.query.free.clone()),
                enqueued: Instant::now(),
                replan: false,
            },
        );
        root.finish();
        assert!(eng.drain().is_err());

        // The dump names the rogue relation in its detail; find it among
        // whatever other tests dumped (files are pid+seq unique).
        let dir = std::path::Path::new("target/flight");
        let body = std::fs::read_dir(dir)
            .expect("flight dir exists after a poisoning")
            .filter_map(|e| std::fs::read_to_string(e.ok()?.path()).ok())
            .find(|b| b.contains("she_rogue_fr"))
            .expect("a post-mortem for this failure");
        let doc = ivm_obs::Json::parse(&body).expect("dump is parseable JSON");
        assert_eq!(
            doc.get("reason").and_then(|r| r.as_str()),
            Some("shard-failure")
        );
        let spans = doc.get("spans").and_then(|s| s.as_arr()).unwrap();
        let in_epoch7 = |label: &str| {
            spans.iter().any(|s| {
                s.get("epoch").and_then(|e| e.as_f64()) == Some(7.0)
                    && s.get("label").and_then(|l| l.as_str()) == Some(label)
            })
        };
        assert!(in_epoch7("session.ingest"), "failing epoch's root span");
        assert!(in_epoch7("shard0.queue_wait"), "queue-wait span");
        assert!(in_epoch7("shard0.apply"), "the apply that died");
        assert!(
            doc.get("snapshot").is_some(),
            "post-mortem staples the full metrics snapshot"
        );
    }

    /// Satellite: a poisoned shard must not leave gauges stuck non-zero
    /// — the queue depths of a dead fleet read zero, not a phantom
    /// backlog.
    #[test]
    fn poisoned_fleet_zeroes_queue_gauges() {
        let q = star2();
        let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 2).unwrap();
        let reg = MetricsRegistry::new();
        eng.observe(&reg, "t.poison").unwrap();
        let rogue =
            DeltaBatch::from_updates(&[Update::<i64>::insert(sym("she_rogue2"), tup![1i64, 1i64])]);
        eng.workers[0]
            .send(crate::worker::Job::Batch {
                seq: 0,
                delta: rogue,
                ctx: None,
            })
            .unwrap();
        if let Some(obs) = &eng.obs {
            obs.per_shard[0].queue_depth.inc();
        }
        eng.next_seq = 1;
        eng.in_flight.insert(
            0,
            Pending {
                remaining: 1,
                delta: Relation::new(eng.query.free.clone()),
                enqueued: Instant::now(),
                replan: false,
            },
        );
        assert!(eng.drain().is_err());
        let snap = reg.snapshot();
        for i in 0..2 {
            assert_eq!(
                snap.gauge(&format!("t.poison.shard{i}.queue_depth")),
                0,
                "poisoned fleet must zero its queue gauges"
            );
        }
        // And observing a poisoned fleet fails fast like everything else.
        assert!(eng.observe(&reg, "t.poison").is_err());
    }

    #[test]
    fn fleet_replan_preserves_state_and_carried_stats() {
        let q = star2();
        let (rn, sn) = (q.atoms[0].name, q.atoms[1].name);
        let mut db: Database<i64> = Database::new();
        db.create(rn, q.atoms[0].schema.clone());
        db.create(sn, q.atoms[1].schema.clone());
        let mut eng = ShardedEngine::<i64>::new(q.clone(), &db, lift_one, 3).unwrap();
        assert_eq!(eng.resolved_strategy(), JoinStrategy::LeftDeep);
        for i in 0..24i64 {
            let batch = vec![
                Update::insert(rn, tup![i % 5, i]),
                Update::insert(sn, tup![i % 5, i + 100]),
            ];
            eng.apply_batch(&batch).unwrap();
            db.apply_batch(&batch);
        }
        let before = eng.stats();
        let view_before: Vec<_> = {
            let mut v: Vec<_> = eng
                .output_relation()
                .iter()
                .map(|(t, p)| (t.clone(), *p))
                .collect();
            v.sort();
            v
        };

        // Broadcast a consistent re-lowering from learned-style cards.
        let mut cards = Cardinalities::none();
        cards.set(rn, db.relation(rn).len()).set(sn, 1);
        eng.replan_with_cards(&db, JoinStrategy::Multiway, &cards)
            .unwrap();
        assert_eq!(eng.resolved_strategy(), JoinStrategy::Multiway);
        assert_eq!(eng.lowered_cards().get(sn), 1);

        // State reproduced, history carried (monotone counters).
        let mut view_after: Vec<_> = eng
            .output_relation()
            .iter()
            .map(|(t, p)| (t.clone(), *p))
            .collect();
        view_after.sort();
        assert_eq!(view_before, view_after);
        let after = eng.stats();
        assert!(after.batches >= before.batches);
        assert_eq!(after.updates_in, before.updates_in);

        // And the fresh plan keeps maintaining correctly on top.
        let batch = vec![
            Update::insert(rn, tup![2i64, 999i64]),
            Update::delete(sn, tup![2i64, 102i64]),
        ];
        eng.apply_batch(&batch).unwrap();
        db.apply_batch(&batch);
        let expect = {
            let per_atom = [db.relation(rn), db.relation(sn)];
            eval_join_aggregate(&per_atom, &q.free, lift_one)
        };
        let got = eng.output_relation();
        assert_eq!(got.len(), expect.len());
        for (t, p) in expect.iter() {
            assert_eq!(&got.get(t), p, "at {t:?}");
        }
        assert!(eng.stats().updates_in > after.updates_in);
    }

    #[test]
    fn maintainer_facade_enumerates_after_draining() {
        let q = star2();
        let (rn, sn) = (q.atoms[0].name, q.atoms[1].name);
        let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 2).unwrap();
        eng.enqueue_batch(&[
            Update::insert(rn, tup![1i64, 10i64]),
            Update::insert(sn, tup![1i64, 20i64]),
        ])
        .unwrap();
        // for_each_output drains implicitly.
        let mut n = 0;
        eng.for_each_output(&mut |t, p| {
            assert_eq!(t, &tup![1i64, 10i64, 20i64]);
            assert_eq!(*p, 1);
            n += 1;
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let q = star2();
        let (rn, sn) = (q.atoms[0].name, q.atoms[1].name);
        let mut eng = ShardedEngine::<i64>::new(q, &Database::new(), lift_one, 4).unwrap();
        let batch: Vec<Update<i64>> = (0..64i64)
            .flat_map(|i| {
                [
                    Update::insert(rn, tup![i, i]),
                    Update::insert(sn, tup![i, -i]),
                ]
            })
            .collect();
        eng.apply_batch(&batch).unwrap();
        let merged = eng.stats();
        // Every x joins once: 64 output delta tuples across the fleet.
        assert_eq!(merged.output_delta_tuples, 64);
        // Ingestion total survives the consolidated fast path.
        assert_eq!(merged.updates_in, 128);
        // Work spread over more than one shard.
        let st = eng.sharded_stats();
        let active = st.per_shard.iter().filter(|s| s.deltas_in > 0).count();
        assert!(active > 1, "expected multiple active shards, got {active}");
        assert_eq!(st.router.routed, 128);
        assert_eq!(st.router.broadcast_copies, 0);
    }
}
