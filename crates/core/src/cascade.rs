//! Cascading q-hierarchical queries (Sec. 4.2, Fig 5).
//!
//! The non-q-hierarchical `Q1` is rewritten as `Q1' = Q2 · rest` where `Q2`
//! is q-hierarchical (Ex 4.5). `Q2` is maintained eagerly with constant
//! update time. `Q1'`'s view tree treats `Q2`'s output as a base relation
//! (`V_Q2` in Fig 5) that is refreshed only *during* enumerations of `Q2`:
//! while the output tuples of `Q2` stream out (which the client asked for
//! anyway), the engine diffs them against the previous materialization and
//! pushes the per-tuple deltas — each in constant time — into `Q1'`'s tree.
//! The refresh is thus piggybacked: constant overhead per enumerated tuple.
//!
//! Protocol (paper conditions (i) and (ii)): enumerate `Q2` before `Q1`.
//! Enumerating `Q1` with pending `Q2` changes forces a refresh, which the
//! engine performs correctly but counts in
//! [`CascadeEngine::forced_refreshes`] so benchmarks can expose the cost.
//!
//! Deletes require diffing payloads, so the engine needs ring payloads.

use crate::engine::Maintainer;
use crate::engines::EagerFactEngine;
use crate::error::EngineError;
use crate::viewtree::ViewTree;
use ivm_data::ops::Lift;
use ivm_data::{Database, FxHashSet, Relation, Sym, Tuple, Update};
use ivm_query::cascade::rewrite_with;
use ivm_query::Query;
use ivm_ring::Ring;

/// Maintains a pair of cascading queries `(Q1, Q2)`.
pub struct CascadeEngine<R> {
    q1: Query,
    q2_engine: EagerFactEngine<R>,
    /// `V_Q2`: Q2's output as of the last refresh, the upper tree's leaf.
    q2_materialized: Relation<R>,
    upper: ViewTree<R>,
    q2_relations: FxHashSet<Sym>,
    rest_relations: FxHashSet<Sym>,
    q2_atom_name: Sym,
    q2_dirty: bool,
    forced: usize,
}

impl<R: Ring> CascadeEngine<R> {
    /// Build from the pair; fails when no valid rewriting exists
    /// (see [`ivm_query::cascade::rewrite_with`]).
    pub fn new(q1: Query, q2: Query, db: &Database<R>, lift: Lift<R>) -> Result<Self, EngineError> {
        let rw = rewrite_with(&q1, &q2).ok_or_else(|| {
            EngineError::NotSupported(format!(
                "{} has no q-hierarchical rewriting through {}",
                q1.name, q2.name
            ))
        })?;
        let q2_relations: FxHashSet<Sym> = q2.atoms.iter().map(|a| a.name).collect();
        let rest_relations: FxHashSet<Sym> = rw.rest.iter().map(|a| a.name).collect();
        if q2_relations.intersection(&rest_relations).next().is_some() {
            return Err(EngineError::NotSupported(
                "a relation occurs both inside and outside Q2".into(),
            ));
        }
        let mut q2_engine = EagerFactEngine::new(q2.clone(), db, lift)?;
        let mut upper = ViewTree::new(rw.rewritten.clone(), lift)?;
        // Preprocess the upper tree: rest relations from the database, the
        // Q2 leaf from Q2's current output.
        let q2_materialized = q2_engine.output();
        let mut upper_db: Database<R> = Database::new();
        for a in &rw.rest {
            if let Some(r) = db.get(a.name) {
                upper_db.add(a.name, r.clone());
            }
        }
        upper_db.add(q2.name, q2_materialized.clone());
        upper.preprocess(&upper_db)?;
        Ok(CascadeEngine {
            q1,
            q2_engine,
            q2_materialized,
            upper,
            q2_relations,
            rest_relations,
            q2_atom_name: q2.name,
            q2_dirty: false,
            forced: 0,
        })
    }

    /// The outer query `Q1`.
    pub fn q1(&self) -> &Query {
        &self.q1
    }

    /// The subquery `Q2`.
    pub fn q2(&self) -> &Query {
        self.q2_engine.query()
    }

    /// How many `Q1` enumerations had to refresh `Q2` themselves because
    /// the protocol (enumerate `Q2` first) was not followed.
    pub fn forced_refreshes(&self) -> usize {
        self.forced
    }

    /// Whether `Q2` changed since its last enumeration.
    pub fn q2_dirty(&self) -> bool {
        self.q2_dirty
    }

    /// Apply a single-tuple update. Constant time: updates to `Q2`'s
    /// relations stay inside `Q2`'s tree; updates to the rest go straight
    /// into `Q1'`'s tree.
    pub fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        if self.q2_relations.contains(&upd.relation) {
            self.q2_engine.apply(upd)?;
            self.q2_dirty = true;
            Ok(())
        } else if self.rest_relations.contains(&upd.relation) {
            self.upper.apply(upd)
        } else {
            Err(EngineError::UnknownRelation(upd.relation))
        }
    }

    /// Refresh `V_Q2` and the upper tree by streaming `Q2`'s output,
    /// calling `f` on each output tuple of `Q2`.
    fn refresh_q2(&mut self, f: &mut dyn FnMut(&Tuple, &R)) -> Result<(), EngineError> {
        let mut fresh = Relation::new(self.q2().free.clone());
        self.q2_engine.for_each_output(&mut |t, r| {
            f(t, r);
            fresh.apply(t.clone(), r);
        });
        // Diff fresh against the previous materialization; each delta is a
        // constant-time update to the upper tree. Cost O(|old| + |new|),
        // piggybacked on the Θ(|new|) enumeration above.
        let mut deltas: Vec<Update<R>> = Vec::new();
        for (t, new) in fresh.iter() {
            let d = new.minus(&self.q2_materialized.get(t));
            if !d.is_zero() {
                deltas.push(Update::with_payload(self.q2_atom_name, t.clone(), d));
            }
        }
        for (t, old) in self.q2_materialized.iter() {
            if !fresh.contains(t) {
                deltas.push(Update::with_payload(
                    self.q2_atom_name,
                    t.clone(),
                    old.neg(),
                ));
            }
        }
        for d in deltas {
            self.upper.apply(&d)?;
        }
        self.q2_materialized = fresh;
        self.q2_dirty = false;
        Ok(())
    }

    /// Enumerate `Q2`'s output (piggybacking the upper-tree refresh).
    pub fn enumerate_q2(&mut self, f: &mut dyn FnMut(&Tuple, &R)) -> Result<(), EngineError> {
        self.refresh_q2(f)
    }

    /// Enumerate `Q1`'s output. Requires `Q2` to be clean; otherwise the
    /// engine refreshes first (and counts the protocol violation).
    pub fn enumerate_q1(&mut self, f: &mut dyn FnMut(&Tuple, &R)) -> Result<(), EngineError> {
        if self.q2_dirty {
            self.forced += 1;
            self.refresh_q2(&mut |_, _| {})?;
        }
        self.upper.for_each_output(f);
        Ok(())
    }

    /// Materialized `Q1` output (test helper).
    pub fn q1_output(&mut self) -> Result<Relation<R>, EngineError> {
        let mut out = Relation::new(self.q1.free.clone());
        self.enumerate_q1(&mut |t, r| out.apply(t.clone(), r))?;
        Ok(out)
    }

    /// Materialized `Q2` output (test helper; refreshes).
    pub fn q2_output(&mut self) -> Result<Relation<R>, EngineError> {
        let mut out = Relation::new(self.q2().free.clone());
        self.enumerate_q2(&mut |t, r| out.apply(t.clone(), r))?;
        Ok(out)
    }
}

impl<R: ivm_ring::Ring> std::fmt::Debug for CascadeEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CascadeEngine").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::{eval_join_aggregate, lift_one};
    use ivm_data::{sym, tup};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> CascadeEngine<i64> {
        let (q1, q2) = ivm_query::examples::ex45_pair();
        CascadeEngine::new(q1, q2, &Database::new(), lift_one).unwrap()
    }

    #[test]
    fn basic_cascade_flow() {
        let mut eng = engine();
        let (r, s, t) = (sym("e45_R"), sym("e45_S"), sym("e45_T"));
        eng.apply(&Update::insert(r, tup![1i64, 2i64])).unwrap();
        eng.apply(&Update::insert(s, tup![2i64, 3i64])).unwrap();
        eng.apply(&Update::insert(t, tup![3i64, 4i64])).unwrap();
        assert!(eng.q2_dirty());

        // Enumerate Q2 first (the protocol), then Q1.
        let q2_out = eng.q2_output().unwrap();
        assert_eq!(q2_out.get(&tup![1i64, 2i64, 3i64]), 1);
        assert!(!eng.q2_dirty());
        assert_eq!(eng.forced_refreshes(), 0);

        let q1_out = eng.q1_output().unwrap();
        assert_eq!(q1_out.get(&tup![1i64, 2i64, 3i64, 4i64]), 1);
        assert_eq!(q1_out.len(), 1);
    }

    #[test]
    fn protocol_violation_counted_but_correct() {
        let mut eng = engine();
        let (r, s, t) = (sym("e45_R"), sym("e45_S"), sym("e45_T"));
        eng.apply(&Update::insert(r, tup![1i64, 2i64])).unwrap();
        eng.apply(&Update::insert(s, tup![2i64, 3i64])).unwrap();
        eng.apply(&Update::insert(t, tup![3i64, 4i64])).unwrap();
        // Enumerate Q1 without enumerating Q2 first.
        let q1_out = eng.q1_output().unwrap();
        assert_eq!(q1_out.len(), 1);
        assert_eq!(eng.forced_refreshes(), 1);
    }

    #[test]
    fn deletes_propagate_through_the_cascade() {
        let mut eng = engine();
        let (r, s, t) = (sym("e45_R"), sym("e45_S"), sym("e45_T"));
        eng.apply(&Update::insert(r, tup![1i64, 2i64])).unwrap();
        eng.apply(&Update::insert(s, tup![2i64, 3i64])).unwrap();
        eng.apply(&Update::insert(t, tup![3i64, 4i64])).unwrap();
        let _ = eng.q2_output().unwrap();
        assert_eq!(eng.q1_output().unwrap().len(), 1);

        eng.apply(&Update::delete(s, tup![2i64, 3i64])).unwrap();
        let _ = eng.q2_output().unwrap();
        assert_eq!(eng.q1_output().unwrap().len(), 0);
    }

    /// Random stream: Q1 output always matches the from-scratch oracle
    /// when the protocol is followed.
    #[test]
    fn random_stream_matches_oracle() {
        let (q1, _) = ivm_query::examples::ex45_pair();
        let mut eng = engine();
        let (rn, sn, tn) = (sym("e45_R"), sym("e45_S"), sym("e45_T"));
        let mut r_rel = Relation::<i64>::new(q1.atoms[0].schema.clone());
        let mut s_rel = Relation::<i64>::new(q1.atoms[1].schema.clone());
        let mut t_rel = Relation::<i64>::new(q1.atoms[2].schema.clone());
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..150 {
            let a = rng.gen_range(0..3i64);
            let b = rng.gen_range(0..3i64);
            // Valid streams only (Sec. 2): delete only present tuples.
            let (rel, oracle) = match rng.gen_range(0..3) {
                0 => (rn, &mut r_rel),
                1 => (sn, &mut s_rel),
                _ => (tn, &mut t_rel),
            };
            let m: i64 = if rng.gen_bool(0.25) && oracle.get(&tup![a, b]) > 0 {
                -1
            } else {
                1
            };
            eng.apply(&Update::with_payload(rel, tup![a, b], m))
                .unwrap();
            oracle.apply(tup![a, b], &m);
            if step % 29 == 0 {
                let _ = eng.q2_output().unwrap();
                let got = eng.q1_output().unwrap();
                let expect = eval_join_aggregate(&[&r_rel, &s_rel, &t_rel], &q1.free, lift_one);
                assert_eq!(got.len(), expect.len(), "step {step}");
                for (t, p) in expect.iter() {
                    assert_eq!(&got.get(t), p, "step {step} at {t:?}");
                }
            }
        }
    }

    #[test]
    fn rejects_pairs_without_rewriting() {
        let (q1, _) = ivm_query::examples::ex45_pair();
        let err =
            CascadeEngine::<i64>::new(q1.clone(), q1, &Database::new(), lift_one).unwrap_err();
        assert!(matches!(err, EngineError::NotSupported(_)));
    }
}
