//! Maintenance of queries with free access patterns (Sec. 4.3).
//!
//! A tractable CQAP's *fracture* (Def. 4.7) splits the query into
//! connected components, each hierarchical with inputs dominating outputs.
//! The engine builds one view tree per component. Because input variables
//! are free and on top, an access request binds them at the roots; the
//! outputs are then enumerated with constant delay, and the overall answer
//! is the cross product of the per-component answers with multiplied
//! payloads.
//!
//! Self-joins are supported (the triangle detection CQAP mentions `E`
//! three times): each atom occurrence gets its own leaf relation in its
//! component, and one base-relation update fans out to every occurrence —
//! a constant number.

use crate::bindings::Bindings;
use crate::engine::Maintainer;
use crate::error::EngineError;
use crate::viewtree::ViewTree;
use ivm_data::ops::Lift;
use ivm_data::{sym, FxHashMap, Relation, Schema, Sym, Tuple, Update};
use ivm_query::cqap::{fracture, is_tractable_cqap, Fracture};
use ivm_query::{Atom, Query};
use ivm_ring::Semiring;

/// Routing entry: one atom occurrence of a base relation.
struct Route {
    /// Component index.
    component: usize,
    /// The leaf's unique relation name inside the component tree.
    leaf_name: Sym,
    /// For each column of the (deduplicated) fractured schema, the column
    /// of the original tuple it comes from.
    keep: Vec<usize>,
    /// Column pairs of the original tuple that must be equal (repeated
    /// variables collapsed by the fracture).
    eq_checks: Vec<(usize, usize)>,
}

/// A maintenance engine for a tractable CQAP.
pub struct CqapEngine<R> {
    query: Query,
    fracture: Fracture,
    components: Vec<ViewTree<R>>,
    /// Per component: its input variables (fresh syms) with, for each, the
    /// position in the original input tuple.
    comp_inputs: Vec<Vec<(Sym, usize)>>,
    /// Per component: its output variables (original syms they map to,
    /// fresh syms in the tree).
    comp_outputs: Vec<Vec<(Sym, Sym)>>,
    routes: FxHashMap<Sym, Vec<Route>>,
}

impl<R: Semiring> CqapEngine<R> {
    /// Build the engine; fails when the CQAP is not tractable (Thm 4.8).
    pub fn new(query: Query, lift: Lift<R>) -> Result<Self, EngineError> {
        if !is_tractable_cqap(&query) {
            return Err(EngineError::NotSupported(format!(
                "{} is not a tractable CQAP (Theorem 4.8)",
                query.name
            )));
        }
        let fr = fracture(&query);
        let n_comps = fr.component.iter().copied().max().map_or(0, |m| m + 1);

        // Build one subquery per component, with unique leaf names.
        let mut comp_atoms: Vec<Vec<Atom>> = vec![Vec::new(); n_comps];
        let mut routes: FxHashMap<Sym, Vec<Route>> = FxHashMap::default();
        for (i, atom) in fr.query.atoms.iter().enumerate() {
            let cid = fr.component[i];
            let orig_atom = &query.atoms[i];
            let leaf_name = sym(&format!("{}◊{}", orig_atom.name, i));
            // Column mapping original → fractured (dedup aware): for each
            // fractured column, the first original column with the same
            // target variable; extra original columns with that variable
            // become equality checks.
            let frac_schema = &atom.schema;
            let orig_schema = &orig_atom.schema;
            // Original column → fractured variable: recompute the same way
            // the fracture did: input occurrences map per atom, others id.
            let orig_to_frac: Vec<Sym> = orig_schema
                .vars()
                .iter()
                .map(|&v| {
                    if query.is_input(v) {
                        // Find the fresh input var of this component that
                        // originates from v.
                        *frac_schema
                            .vars()
                            .iter()
                            .find(|&&fv| fr.origin.get(&fv) == Some(&v))
                            .expect("fracture maps every input occurrence")
                    } else {
                        v
                    }
                })
                .collect();
            let mut keep = Vec::with_capacity(frac_schema.arity());
            let mut eq_checks = Vec::new();
            for &fv in frac_schema.vars() {
                let first = orig_to_frac
                    .iter()
                    .position(|&m| m == fv)
                    .expect("fractured var has an origin column");
                keep.push(first);
                for (j, &m) in orig_to_frac.iter().enumerate().skip(first + 1) {
                    if m == fv {
                        eq_checks.push((first, j));
                    }
                }
            }
            comp_atoms[cid].push(Atom {
                name: leaf_name,
                schema: frac_schema.clone(),
                dynamic: orig_atom.dynamic,
            });
            routes.entry(orig_atom.name).or_default().push(Route {
                component: cid,
                leaf_name,
                keep,
                eq_checks,
            });
        }

        let mut components = Vec::with_capacity(n_comps);
        let mut comp_inputs = Vec::with_capacity(n_comps);
        let mut comp_outputs = Vec::with_capacity(n_comps);
        for (cid, atoms) in comp_atoms.into_iter().enumerate() {
            let mut vars = Schema::empty();
            for a in &atoms {
                vars = vars.union(&a.schema);
            }
            // Free variables of this component, inputs first (they must be
            // on top of the variable order; input-dominance makes the
            // canonical order put them there).
            let inputs: Vec<Sym> = fr
                .query
                .input
                .vars()
                .iter()
                .copied()
                .filter(|&v| vars.contains(v))
                .collect();
            let outputs: Vec<Sym> = fr
                .query
                .output()
                .vars()
                .iter()
                .copied()
                .filter(|&v| vars.contains(v))
                .collect();
            let mut free: Vec<Sym> = inputs.clone();
            free.extend(outputs.iter().copied());
            let subq = Query {
                name: sym(&format!("{}◊c{}", query.name, cid)),
                free: Schema::new(free),
                input: Schema::new(inputs.iter().copied()),
                atoms,
            };
            components.push(ViewTree::new(subq, lift)?);
            comp_inputs.push(
                inputs
                    .iter()
                    .map(|&v| {
                        let orig = fr.origin[&v];
                        let pos = query.input.position(orig).expect("input var position");
                        (v, pos)
                    })
                    .collect(),
            );
            comp_outputs.push(outputs.iter().map(|&v| (fr.origin[&v], v)).collect());
        }
        Ok(CqapEngine {
            query,
            fracture: fr,
            components,
            comp_inputs,
            comp_outputs,
            routes,
        })
    }

    /// The fracture (for inspection).
    pub fn fracture(&self) -> &Fracture {
        &self.fracture
    }

    /// Answer an access request: bind the input variables to `input`
    /// (a tuple over `query.input`), and enumerate the output tuples
    /// (over `query.output()`) with their payloads, with constant delay.
    pub fn access(&self, input: &Tuple, f: &mut dyn FnMut(&Tuple, &R)) {
        assert_eq!(
            input.arity(),
            self.query.input.arity(),
            "access tuple must bind all input variables"
        );
        let out_schema = self.query.output();
        let mut out_bindings: FxHashMap<Sym, ivm_data::Value> = FxHashMap::default();
        self.access_rec(0, input, &mut out_bindings, R::one(), &out_schema, f);
    }

    fn access_rec(
        &self,
        cid: usize,
        input: &Tuple,
        out_bindings: &mut FxHashMap<Sym, ivm_data::Value>,
        acc: R,
        out_schema: &Schema,
        f: &mut dyn FnMut(&Tuple, &R),
    ) {
        if acc.is_zero() {
            return;
        }
        if cid == self.components.len() {
            let t = Tuple::new(out_schema.vars().iter().map(|v| out_bindings[v].clone()));
            f(&t, &acc);
            return;
        }
        let mut pre = Bindings::new();
        for &(v, pos) in &self.comp_inputs[cid] {
            pre.set(v, input.at(pos).clone());
        }
        let comp_free = self.components[cid].query().free.clone();
        self.components[cid].for_each_output_bound(&pre, &mut |t, r| {
            // Record this component's output variable values.
            for (orig, fresh) in &self.comp_outputs[cid] {
                let pos = comp_free.position(*fresh).expect("output var in free");
                out_bindings.insert(*orig, t.at(pos).clone());
            }
            self.access_rec(cid + 1, input, out_bindings, acc.times(r), out_schema, f);
        });
    }

    /// Detection-style convenience: the scalar answer for an access with
    /// no output variables (zero when the pattern is absent).
    pub fn probe(&self, input: &Tuple) -> R {
        let mut acc = R::zero();
        self.access(input, &mut |_, r| acc.add_assign(r));
        acc
    }

    /// Materialize all answers for an access (test helper).
    pub fn access_output(&self, input: &Tuple) -> Relation<R> {
        let mut out = Relation::new(self.query.output());
        self.access(input, &mut |t, r| out.apply(t.clone(), r));
        out
    }

    /// Full enumeration over `query.free` (output ∪ input): walk the
    /// components in order, joining them on the *original* variables their
    /// fresh fracture copies originate from. Unlike [`Self::access`] this
    /// is **not** constant-delay — cross-component origin equality is a
    /// join the fracture deliberately severed (that is what buys O(1)
    /// access) — but it makes the engine a full [`Maintainer`], so the
    /// session layer can expose the same `output()`/`for_each_output`
    /// surface for every engine kind.
    fn enumerate_free(
        &self,
        cid: usize,
        orig: &mut FxHashMap<Sym, ivm_data::Value>,
        acc: R,
        free: &Schema,
        f: &mut dyn FnMut(&Tuple, &R),
    ) {
        if acc.is_zero() {
            return;
        }
        if cid == self.components.len() {
            let t = Tuple::new(free.vars().iter().map(|v| orig[v].clone()));
            f(&t, &acc);
            return;
        }
        // Pre-bind the fresh input copies whose origins earlier components
        // already fixed, so the tree only enumerates consistent rows.
        let mut pre = Bindings::new();
        for &(fresh, _) in &self.comp_inputs[cid] {
            if let Some(v) = orig.get(&self.fracture.origin[&fresh]) {
                pre.set(fresh, v.clone());
            }
        }
        let comp_free = self.components[cid].query().free.clone();
        self.components[cid].for_each_output_bound(&pre, &mut |t, r| {
            let mut added: Vec<Sym> = Vec::new();
            let mut consistent = true;
            // Two fresh copies of the same origin inside one component are
            // enumerated independently by the tree; equate them here.
            for &(fresh, _) in &self.comp_inputs[cid] {
                let o = self.fracture.origin[&fresh];
                let pos = comp_free.position(fresh).expect("input var is free");
                let val = t.at(pos);
                match orig.get(&o) {
                    Some(existing) if existing == val => {}
                    Some(_) => {
                        consistent = false;
                        break;
                    }
                    None => {
                        orig.insert(o, val.clone());
                        added.push(o);
                    }
                }
            }
            if consistent {
                for &(o, fresh) in &self.comp_outputs[cid] {
                    let pos = comp_free.position(fresh).expect("output var is free");
                    orig.insert(o, t.at(pos).clone());
                    added.push(o);
                }
                self.enumerate_free(cid + 1, orig, acc.times(r), free, f);
            }
            for o in added {
                orig.remove(&o);
            }
        });
    }
}

impl<R: Semiring> Maintainer<R> for CqapEngine<R> {
    fn query(&self) -> &Query {
        &self.query
    }

    /// Apply a single-tuple update to a base relation; it fans out to
    /// every atom occurrence (a constant number), each in O(1).
    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        let routes = self
            .routes
            .get(&upd.relation)
            .ok_or(EngineError::UnknownRelation(upd.relation))?;
        for route in routes {
            // Repeated-variable occurrences only match diagonal tuples.
            if route
                .eq_checks
                .iter()
                .any(|&(i, j)| upd.tuple.at(i) != upd.tuple.at(j))
            {
                continue;
            }
            let t = upd.tuple.project(&route.keep);
            self.components[route.component].apply(&Update::with_payload(
                route.leaf_name,
                t,
                upd.payload.clone(),
            ))?;
        }
        Ok(())
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        let free = self.query.free.clone();
        let mut orig: FxHashMap<Sym, ivm_data::Value> = FxHashMap::default();
        self.enumerate_free(0, &mut orig, R::one(), &free, f);
    }
}

impl<R: ivm_ring::Semiring> std::fmt::Debug for CqapEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CqapEngine").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::lift_one;
    use ivm_data::tup;

    /// Ex 4.6: triangle detection — given (a,b,c), is there a triangle?
    #[test]
    fn triangle_detection_probe() {
        let q = ivm_query::examples::triangle_detect_cqap();
        let mut eng: CqapEngine<i64> = CqapEngine::new(q, lift_one).unwrap();
        let e = sym("tdc_E");
        eng.apply(&Update::insert(e, tup![1i64, 2i64])).unwrap();
        eng.apply(&Update::insert(e, tup![2i64, 3i64])).unwrap();
        eng.apply(&Update::insert(e, tup![3i64, 1i64])).unwrap();

        assert_eq!(eng.probe(&tup![1i64, 2i64, 3i64]), 1);
        assert_eq!(eng.probe(&tup![2i64, 3i64, 1i64]), 1);
        assert_eq!(eng.probe(&tup![1i64, 3i64, 2i64]), 0, "orientation matters");
        assert_eq!(eng.probe(&tup![1i64, 2i64, 4i64]), 0);

        eng.apply(&Update::delete(e, tup![2i64, 3i64])).unwrap();
        assert_eq!(eng.probe(&tup![1i64, 2i64, 3i64]), 0);
    }

    /// Payloads multiply across the three edge occurrences.
    #[test]
    fn probe_multiplies_multiplicities() {
        let q = ivm_query::examples::triangle_detect_cqap();
        let mut eng: CqapEngine<i64> = CqapEngine::new(q, lift_one).unwrap();
        let e = sym("tdc_E");
        eng.apply(&Update::with_payload(e, tup![1i64, 2i64], 2))
            .unwrap();
        eng.apply(&Update::with_payload(e, tup![2i64, 3i64], 3))
            .unwrap();
        eng.apply(&Update::with_payload(e, tup![3i64, 1i64], 5))
            .unwrap();
        assert_eq!(eng.probe(&tup![1i64, 2i64, 3i64]), 30);
    }

    /// Ex 4.6: Q(A|B) = S(A,B)·T(B) — outputs enumerate per input B.
    #[test]
    fn lookup_cqap_access() {
        let q = ivm_query::examples::lookup_cqap();
        let mut eng: CqapEngine<i64> = CqapEngine::new(q, lift_one).unwrap();
        let (s, t) = (sym("lk_S"), sym("lk_T"));
        eng.apply(&Update::insert(s, tup![10i64, 1i64])).unwrap();
        eng.apply(&Update::insert(s, tup![11i64, 1i64])).unwrap();
        eng.apply(&Update::insert(s, tup![12i64, 2i64])).unwrap();
        eng.apply(&Update::insert(t, tup![1i64])).unwrap();

        let out = eng.access_output(&tup![1i64]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.get(&tup![10i64]), 1);
        assert_eq!(out.get(&tup![11i64]), 1);
        // B=2 is not in T: no outputs.
        assert_eq!(eng.access_output(&tup![2i64]).len(), 0);
    }

    /// Intractable CQAPs are rejected.
    #[test]
    fn rejects_edge_triangle_listing() {
        let q = ivm_query::examples::edge_triangle_listing_cqap();
        let err = CqapEngine::<i64>::new(q, lift_one).unwrap_err();
        assert!(matches!(err, EngineError::NotSupported(_)));
    }

    /// Full enumeration (the `Maintainer` surface) joins the fracture's
    /// components back together on their origin variables: for triangle
    /// detection the output over free = (A,B,C) is exactly the directed
    /// triangle list, with payloads multiplied across the occurrences.
    #[test]
    fn full_enumeration_joins_components_on_origins() {
        let q = ivm_query::examples::triangle_detect_cqap();
        let mut eng: CqapEngine<i64> = CqapEngine::new(q, lift_one).unwrap();
        let e = sym("tdc_E");
        for (a, b) in [(1i64, 2i64), (2, 3), (3, 1), (2, 4), (4, 1), (1, 9)] {
            eng.apply(&Update::insert(e, tup![a, b])).unwrap();
        }
        let out = eng.output();
        // Triangles 1→2→3→1 and 1→2→4→1, each listed from every corner.
        assert_eq!(out.len(), 6, "{out:?}");
        for t in [
            tup![1i64, 2i64, 3i64],
            tup![2i64, 3i64, 1i64],
            tup![3i64, 1i64, 2i64],
            tup![1i64, 2i64, 4i64],
            tup![2i64, 4i64, 1i64],
            tup![4i64, 1i64, 2i64],
        ] {
            assert_eq!(out.get(&t), 1, "missing {t:?}");
        }
        // The `Maintainer` batch surface reaches the same state.
        let q = ivm_query::examples::lookup_cqap();
        let mut eng: CqapEngine<i64> = CqapEngine::new(q, lift_one).unwrap();
        let (s, t) = (sym("lk_S"), sym("lk_T"));
        eng.apply_batch(&[
            Update::insert(s, tup![10i64, 1i64]),
            Update::insert(s, tup![12i64, 2i64]),
            Update::insert(t, tup![1i64]),
        ])
        .unwrap();
        // free = (A, B); only B=1 survives the T join.
        let out = eng.output();
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(&tup![10i64, 1i64]), 1);
    }

    /// A CQAP access agrees with brute-force evaluation on random graphs.
    #[test]
    fn triangle_probe_matches_bruteforce() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let q = ivm_query::examples::triangle_detect_cqap();
        let mut eng: CqapEngine<i64> = CqapEngine::new(q, lift_one).unwrap();
        let e = sym("tdc_E");
        let mut edges = std::collections::HashSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..60 {
            let a = rng.gen_range(0..6i64);
            let b = rng.gen_range(0..6i64);
            if edges.insert((a, b)) {
                eng.apply(&Update::insert(e, tup![a, b])).unwrap();
            }
        }
        for a in 0..6i64 {
            for b in 0..6i64 {
                for c in 0..6i64 {
                    let expect = i64::from(
                        edges.contains(&(a, b))
                            && edges.contains(&(b, c))
                            && edges.contains(&(c, a)),
                    );
                    assert_eq!(eng.probe(&tup![a, b, c]), expect, "({a},{b},{c})");
                }
            }
        }
    }
}
