//! Factorized view trees (F-IVM [33, 22], Sec. 4.1 and Fig 3 of the paper).
//!
//! A view tree follows a variable order: each variable node `X` maintains a
//! *grouped view* keyed by its dependency set `dep(X)`; a group holds one
//! entry per `X`-value with payload `Π_children` (the product of the
//! children's interface lookups) plus a running *total*
//! `Σ_x g_X(x)·entry(x)` (the lifting `g_X` applies when `X` is bound).
//! Parents read children through their totals, so:
//!
//! * a single-tuple update walks the leaf-to-root path, doing one constant
//!   time sibling lookup per step — O(1) per update when every view key on
//!   the path is covered by the updated atom's schema (guaranteed for
//!   q-hierarchical queries under the canonical order);
//! * the output is never materialized: it is *factorized over the views*,
//!   and enumerated with constant delay by descending from the roots
//!   (possible exactly when the free variables sit on top of the order).
//!
//! The same structure covers the mixed static-dynamic trees of Sec. 4.5
//! (static subtrees are built during preprocessing and never touched
//! again) and, with *FD fetchers* attached, the Σ-reduct trees of Sec. 4.4
//! (missing FD-implied values are fetched from sibling relations).
//!
//! # Validity assumption
//!
//! Like the paper (Sec. 2), enumeration assumes the database is *valid* at
//! enumeration time: all input (and hence output) tuples have non-negative
//! multiplicities. Updates may arrive in any order and pass through
//! transiently inconsistent states — the tree's final state depends only
//! on the multiset of updates — but if multiplicities are mixed-sign *at
//! enumeration time*, a group total can cancel to zero while individual
//! entries are non-zero, and the factorized enumeration will prune that
//! branch even though the flat output contains (mutually cancelling but
//! individually non-zero) tuples. See
//! `tests::mixed_sign_multiplicities_caveat`.

use crate::bindings::Bindings;
use crate::error::EngineError;
use ivm_data::ops::Lift;
use ivm_data::{Database, FxHashMap, GroupedIndex, Relation, Schema, Sym, Tuple, Value};
use ivm_query::varorder::Node;
use ivm_query::{Query, VarOrder};
use ivm_ring::Semiring;

/// One group of a grouped view: the `X`-values compatible with a `dep(X)`
/// key, plus their lifted total.
#[derive(Clone, Debug)]
struct VGroup<R> {
    /// `Σ_x g_X(x) · entries[x]` (or `Σ_x entries[x]` for free `X`).
    total: R,
    /// Per-`X`-value payload `Π_children interface`.
    entries: FxHashMap<Value, R>,
}

/// The grouped view of one variable node.
#[derive(Clone, Debug, Default)]
struct View<R> {
    groups: FxHashMap<Tuple, VGroup<R>>,
}

/// An FD *fetcher* (Sec. 4.4): completes update bindings with the value of
/// `var`, functionally determined by `lhs` through the `provider` atom's
/// relation (e.g. fetch the unique `Y` paired with `x` in `S` under
/// `X → Y`).
#[derive(Clone, Debug)]
pub struct Fetcher {
    /// The variable to complete.
    pub var: Sym,
    /// Its determinant set (must be bound before fetching).
    pub lhs: Schema,
    /// Atom index of the providing relation.
    pub provider: usize,
}

/// A factorized view tree over a query and a variable order.
pub struct ViewTree<R> {
    query: Query,
    vo: VarOrder,
    /// Grouped views, indexed by node id (`None` for atom leaves).
    views: Vec<Option<View<R>>>,
    /// Leaf storage, per atom index, over `storage_schema`.
    relations: Vec<Relation<R>>,
    /// Schema of the stored tuples per atom (the original schema for FD
    /// engines; the atom schema otherwise).
    storage_schema: Vec<Schema>,
    /// Relation name → atom index (unique names required).
    rel_atom: FxHashMap<Sym, usize>,
    /// Lifting applied when marginalizing bound variables.
    lift: Lift<R>,
    /// FD fetchers and their provider indexes.
    fetchers: Vec<Fetcher>,
    fetch_indexes: Vec<GroupedIndex<R>>,
    /// Per node: whether its subtree contains only static atoms.
    static_complete: Vec<bool>,
    /// Per node: whether its subtree contains a free variable.
    subtree_free: Vec<bool>,
    parents: Vec<Option<usize>>,
    /// Flattened enumeration plan (see `build_plan`).
    plan: Vec<PlanStep>,
    /// Scratch bindings buffer reused across updates.
    scratch: Bindings,
}

/// A step of the flattened enumeration plan: nested loops over free
/// variable nodes, with scalar factors folded in from bound subtrees.
#[derive(Clone, Debug)]
enum PlanStep {
    /// Iterate the entries of this free variable node (its dep set is
    /// bound by earlier steps).
    Free(usize),
    /// Multiply in the total of a bound root.
    ScalarRoot(usize),
}

impl<R: Semiring> ViewTree<R> {
    /// Build a view tree for `query` under the canonical variable order.
    ///
    /// Fails when the query is not hierarchical, when free variables are
    /// not on top (not q-hierarchical), or when some dynamic atom would
    /// not have constant-time updates.
    pub fn new(query: Query, lift: Lift<R>) -> Result<Self, EngineError> {
        let vo = VarOrder::canonical(&query)?;
        Self::with_order(query, vo, lift)
    }

    /// Build with an explicit variable order (Ex 4.14-style trees).
    pub fn with_order(query: Query, vo: VarOrder, lift: Lift<R>) -> Result<Self, EngineError> {
        let storage = query.atoms.iter().map(|a| a.schema.clone()).collect();
        Self::with_order_and_storage(query, vo, lift, storage, Vec::new())
    }

    /// Full-control constructor: explicit order, per-atom storage schemas,
    /// and FD fetchers (Theorem 4.11 trees, built by `FdEngine`).
    pub fn with_order_and_storage(
        query: Query,
        vo: VarOrder,
        lift: Lift<R>,
        storage_schema: Vec<Schema>,
        fetchers: Vec<Fetcher>,
    ) -> Result<Self, EngineError> {
        // Unique relation names (tree-local self-join-freeness).
        let mut rel_atom: FxHashMap<Sym, usize> = FxHashMap::default();
        for (i, a) in query.atoms.iter().enumerate() {
            if rel_atom.insert(a.name, i).is_some() {
                return Err(EngineError::DuplicateRelation(a.name));
            }
        }
        // Free variables must be upward-closed for enumeration.
        if !vo.free_top(&query) {
            return Err(EngineError::NotSupported(format!(
                "free variables of {} are not on top of the variable order \
                 (query is not q-hierarchical)",
                query.name
            )));
        }

        let parents = vo.parents();
        let static_complete = compute_static_complete(&query, &vo);
        let subtree_free = compute_subtree_free(&query, &vo);

        // Constant-update validation per atom: along the leaf-to-root path
        // (stopping where static propagation stops), every view key
        // dep(X) ∪ {X} must be derivable from the stored tuple, possibly
        // through FD fetchers.
        for (i, atom) in query.atoms.iter().enumerate() {
            let mut known = storage_schema[i].clone();
            // FD closure over the fetchers.
            loop {
                let mut grown = false;
                for f in &fetchers {
                    if f.lhs.subset_of(&known) && !known.contains(f.var) {
                        known = known.union(&Schema::from([f.var]));
                        grown = true;
                    }
                }
                if !grown {
                    break;
                }
            }
            let leaf = vo.atom_leaf(i).expect("validated order");
            for node in vo.path_to_root(leaf).into_iter().skip(1) {
                if !atom.dynamic && !static_complete[node] {
                    break; // static propagation stops here (Sec. 4.5)
                }
                if let Node::Var { var, dep, .. } = &vo.nodes[node] {
                    let needed = dep.union(&Schema::from([*var]));
                    if !needed.subset_of(&known) {
                        return Err(EngineError::NonConstantUpdate {
                            relation: atom.name,
                            detail: format!(
                                "view key {needed:?} at {var} not covered by \
                                 {known:?}"
                            ),
                        });
                    }
                }
            }
        }

        let views = vo
            .nodes
            .iter()
            .map(|n| match n {
                Node::Var { .. } => Some(View {
                    groups: FxHashMap::default(),
                }),
                Node::Atom { .. } => None,
            })
            .collect();
        let relations = storage_schema
            .iter()
            .map(|s| Relation::new(s.clone()))
            .collect();
        let fetch_indexes = fetchers
            .iter()
            .map(|f| GroupedIndex::new(storage_schema[f.provider].clone(), f.lhs.clone()))
            .collect();
        let plan = build_plan(&query, &vo, &subtree_free);
        Ok(ViewTree {
            query,
            vo,
            views,
            relations,
            storage_schema,
            rel_atom,
            lift,
            fetchers,
            fetch_indexes,
            static_complete,
            subtree_free,
            parents,
            plan,
            scratch: Bindings::new(),
        })
    }

    /// The query this tree maintains.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The variable order.
    pub fn order(&self) -> &VarOrder {
        &self.vo
    }

    /// The stored relation of an atom (by relation name).
    pub fn relation(&self, name: Sym) -> Option<&Relation<R>> {
        self.rel_atom.get(&name).map(|&i| &self.relations[i])
    }

    /// Total number of view entries across all nodes (space accounting).
    pub fn view_entries(&self) -> usize {
        self.views
            .iter()
            .flatten()
            .map(|v| v.groups.values().map(|g| g.entries.len()).sum::<usize>())
            .sum()
    }

    /// Load an initial database: static relations first (their propagation
    /// stops at the static-region boundary), then dynamic ones. O(|D|) for
    /// constant-update trees.
    pub fn preprocess(&mut self, db: &Database<R>) -> Result<(), EngineError> {
        let mut phases: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for (i, a) in self.query.atoms.iter().enumerate() {
            phases[usize::from(a.dynamic)].push(i);
        }
        for phase in phases {
            for atom_idx in phase {
                let name = self.query.atoms[atom_idx].name;
                let Some(rel) = db.get(name) else { continue };
                assert_eq!(
                    rel.schema(),
                    &self.storage_schema[atom_idx],
                    "initial relation {name} schema mismatch"
                );
                let rows: Vec<(Tuple, R)> =
                    rel.iter().map(|(t, r)| (t.clone(), r.clone())).collect();
                for (t, r) in rows {
                    self.apply_internal(atom_idx, &t, &r);
                }
            }
        }
        Ok(())
    }

    /// Apply a single-tuple update to a dynamic relation. O(1) for
    /// constant-update trees.
    pub fn apply(&mut self, upd: &ivm_data::Update<R>) -> Result<(), EngineError> {
        let &atom_idx = self
            .rel_atom
            .get(&upd.relation)
            .ok_or(EngineError::UnknownRelation(upd.relation))?;
        if !self.query.atoms[atom_idx].dynamic {
            return Err(EngineError::StaticRelation(upd.relation));
        }
        self.apply_internal(atom_idx, &upd.tuple, &upd.payload);
        Ok(())
    }

    /// Shared update path (also used for static tuples at preprocessing).
    fn apply_internal(&mut self, atom_idx: usize, tuple: &Tuple, payload: &R) {
        if payload.is_zero() {
            return;
        }
        // 1. Update leaf storage and any fetch indexes on this relation.
        self.relations[atom_idx].apply(tuple.clone(), payload);
        for (f, idx) in self.fetchers.iter().zip(self.fetch_indexes.iter_mut()) {
            if f.provider == atom_idx {
                idx.apply(tuple, payload);
            }
        }

        // 2. Bindings from the stored tuple, completed through fetchers.
        let mut bindings = std::mem::take(&mut self.scratch);
        bindings.clear();
        bindings.bind_tuple(&self.storage_schema[atom_idx], tuple);
        self.complete_bindings(&mut bindings);

        // 3. Propagate the delta along the leaf-to-root path.
        let is_static = !self.query.atoms[atom_idx].dynamic;
        let mut delta = payload.clone();
        let mut node = self.vo.atom_leaf(atom_idx).expect("validated");
        while let Some(parent) = self.parents[node] {
            if is_static && !self.static_complete[parent] {
                break; // dynamic views above are driven by dynamic deltas
            }
            let Node::Var { var, dep, children } = &self.vo.nodes[parent] else {
                unreachable!("parents are variable nodes")
            };
            let (var, dep) = (*var, dep.clone());
            // Sibling lookups: all keys are covered by the (completed)
            // bindings for validated trees; a fetch miss (FD case) stops
            // the propagation — the missing tuple's own insertion will
            // carry the contribution later.
            let mut ok = true;
            for &c in &children.clone() {
                if c == node {
                    continue;
                }
                match self.interface(c, &bindings) {
                    Some(m) => {
                        delta = delta.times(&m);
                        if delta.is_zero() {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break;
            }
            let (Some(key), Some(x)) = (bindings.project(&dep), bindings.get(var).cloned()) else {
                break; // FD fetch miss on the view key
            };
            // Lift when marginalizing a bound variable.
            let total_delta = if self.query.is_free(var) {
                delta.clone()
            } else {
                delta.times(&(self.lift)(var, &x))
            };
            let view = self.views[parent].as_mut().expect("var node");
            let group = view.groups.entry(key.clone()).or_insert_with(|| VGroup {
                total: R::zero(),
                entries: FxHashMap::default(),
            });
            group.total.add_assign(&total_delta);
            match group.entries.entry(x) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().add_assign(&delta);
                    if e.get().is_zero() {
                        e.remove();
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(delta.clone());
                }
            }
            if group.entries.is_empty() {
                view.groups.remove(&key);
            }
            delta = total_delta;
            if delta.is_zero() {
                break;
            }
            node = parent;
        }
        self.scratch = bindings;
    }

    /// Complete bindings with FD-implied values (Sec. 4.4): fetch the
    /// unique `var` value paired with the bound `lhs` values in the
    /// provider relation. Loops to a fixpoint so FD chains (X→Y, Y→Z)
    /// resolve.
    fn complete_bindings(&self, bindings: &mut Bindings) {
        if self.fetchers.is_empty() {
            return;
        }
        loop {
            let mut grown = false;
            for (f, idx) in self.fetchers.iter().zip(self.fetch_indexes.iter()) {
                if bindings.get(f.var).is_some() || !bindings.covers(&f.lhs) {
                    continue;
                }
                let key = bindings.project(&f.lhs).expect("covered");
                if let Some(group) = idx.group(&key) {
                    let residual_schema = idx.residual_schema();
                    let pos = residual_schema
                        .position(f.var)
                        .expect("fetcher var in provider residual");
                    if let Some((res, _)) = group.iter().next() {
                        bindings.set(f.var, res.at(pos).clone());
                        grown = true;
                    }
                }
            }
            if !grown {
                return;
            }
        }
    }

    /// The interface value of a child node under the current bindings:
    /// leaf payload for atoms, group total for variable nodes. `None` when
    /// a key variable is unbound (possible only on FD fetch misses).
    fn interface(&self, node: usize, bindings: &Bindings) -> Option<R> {
        match &self.vo.nodes[node] {
            Node::Atom { atom } => {
                let key = bindings.project(&self.storage_schema[*atom])?;
                Some(self.relations[*atom].get(&key))
            }
            Node::Var { dep, .. } => {
                let key = bindings.project(dep)?;
                Some(
                    self.views[node]
                        .as_ref()
                        .expect("var node")
                        .groups
                        .get(&key)
                        .map(|g| g.total.clone())
                        .unwrap_or_else(R::zero),
                )
            }
        }
    }

    /// Enumerate the query output with constant delay, calling `f` for
    /// each `(tuple over query.free, payload)`.
    pub fn for_each_output(&self, f: &mut dyn FnMut(&Tuple, &R)) {
        let mut bindings = Bindings::new();
        self.enumerate_plan(0, &mut bindings, R::one(), &None, f);
    }

    /// Enumerate with some free variables pre-bound (CQAP access requests,
    /// Sec. 4.3): only outputs agreeing with `prebound` are produced.
    pub fn for_each_output_bound(&self, prebound: &Bindings, f: &mut dyn FnMut(&Tuple, &R)) {
        let mut bindings = prebound.clone();
        self.enumerate_plan(0, &mut bindings, R::one(), &Some(prebound.clone()), f);
    }

    fn enumerate_plan(
        &self,
        step: usize,
        bindings: &mut Bindings,
        acc: R,
        prebound: &Option<Bindings>,
        f: &mut dyn FnMut(&Tuple, &R),
    ) {
        if acc.is_zero() {
            return;
        }
        if step == self.plan.len() {
            let t = bindings
                .project(&self.query.free)
                .expect("all free vars bound by plan");
            f(&t, &acc);
            return;
        }
        match &self.plan[step] {
            PlanStep::ScalarRoot(node) => {
                if let Some(m) = self.interface(*node, bindings) {
                    self.enumerate_plan(step + 1, bindings, acc.times(&m), prebound, f);
                }
            }
            PlanStep::Free(node) => {
                let Node::Var { var, dep, children } = &self.vo.nodes[*node] else {
                    unreachable!()
                };
                let key = bindings.project(dep).expect("deps bound by plan order");
                let Some(group) = self.views[*node]
                    .as_ref()
                    .expect("var node")
                    .groups
                    .get(&key)
                else {
                    return;
                };
                let fixed = prebound.as_ref().and_then(|p| p.get(*var)).cloned();
                let visit = |x: &Value, bindings: &mut Bindings, f: &mut dyn FnMut(&Tuple, &R)| {
                    bindings.set(*var, x.clone());
                    // Scalar contributions of bound children.
                    let mut m = acc.clone();
                    for &c in children {
                        if !self.subtree_free[c] {
                            match self.interface(c, bindings) {
                                Some(v) => m = m.times(&v),
                                None => m = R::zero(),
                            }
                            if m.is_zero() {
                                break;
                            }
                        }
                    }
                    self.enumerate_plan(step + 1, bindings, m, prebound, f);
                    bindings.unset(*var);
                };
                match fixed {
                    Some(x) => {
                        if group.entries.contains_key(&x) {
                            visit(&x, bindings, f);
                        }
                    }
                    None => {
                        for x in group.entries.keys() {
                            visit(x, bindings, f);
                        }
                    }
                }
            }
        }
    }

    /// Enumerate the *delta output* of a single-tuple update before it is
    /// applied: the set of output tuples whose payload changes, with their
    /// payload deltas. Used by the eager-list engine (Sec. 3.2 style) to
    /// maintain a materialized output; costs O(|δQ|).
    pub fn delta_for_each(
        &self,
        upd: &ivm_data::Update<R>,
        f: &mut dyn FnMut(&Tuple, &R),
    ) -> Result<(), EngineError> {
        let &atom_idx = self
            .rel_atom
            .get(&upd.relation)
            .ok_or(EngineError::UnknownRelation(upd.relation))?;
        let mut bindings = Bindings::new();
        bindings.bind_tuple(&self.storage_schema[atom_idx], &upd.tuple);
        self.complete_bindings(&mut bindings);

        // Walk the path: accumulate scalar sibling contributions, collect
        // free sibling subtrees for expansion.
        let mut scalar = upd.payload.clone();
        let mut expansions: Vec<usize> = Vec::new();
        let mut node = self.vo.atom_leaf(atom_idx).expect("validated");
        let mut path_nodes = vec![node];
        while let Some(parent) = self.parents[node] {
            let Node::Var { var, children, .. } = &self.vo.nodes[parent] else {
                unreachable!()
            };
            for &c in children {
                if c == node {
                    continue;
                }
                if self.subtree_free[c] {
                    expansions.push(c);
                } else {
                    match self.interface(c, &bindings) {
                        Some(m) => scalar = scalar.times(&m),
                        None => scalar = R::zero(),
                    }
                }
            }
            // Lift bound path variables into the delta.
            if !self.query.is_free(*var) {
                let x = bindings
                    .get(*var)
                    .ok_or_else(|| EngineError::NonConstantUpdate {
                        relation: upd.relation,
                        detail: format!("unbound path variable {var}"),
                    })?;
                scalar = scalar.times(&(self.lift)(*var, x));
            }
            node = parent;
            path_nodes.push(node);
        }
        // Other roots (disconnected components) multiply in too.
        for &r in &self.vo.roots {
            if r == node || path_nodes.contains(&r) {
                continue;
            }
            if self.subtree_free[r] {
                expansions.push(r);
            } else if let Some(m) = self.interface(r, &bindings) {
                scalar = scalar.times(&m);
            } else {
                scalar = R::zero();
            }
        }
        if scalar.is_zero() {
            return Ok(());
        }
        self.expand_delta(&expansions, 0, &mut bindings, scalar, f);
        Ok(())
    }

    /// Nested enumeration over free sibling subtrees of a delta.
    fn expand_delta(
        &self,
        expansions: &[usize],
        i: usize,
        bindings: &mut Bindings,
        acc: R,
        f: &mut dyn FnMut(&Tuple, &R),
    ) {
        if acc.is_zero() {
            return;
        }
        if i == expansions.len() {
            if let Some(t) = bindings.project(&self.query.free) {
                f(&t, &acc);
            }
            return;
        }
        self.for_each_subtree(
            expansions[i],
            bindings,
            acc,
            &mut |bs, m, f2| self.expand_delta(expansions, i + 1, bs, m, f2),
            f,
        );
    }

    /// Enumerate the free assignments within one subtree, threading the
    /// multiplied payload through `k`.
    #[allow(clippy::type_complexity)]
    fn for_each_subtree(
        &self,
        node: usize,
        bindings: &mut Bindings,
        acc: R,
        k: &mut dyn FnMut(&mut Bindings, R, &mut dyn FnMut(&Tuple, &R)),
        f: &mut dyn FnMut(&Tuple, &R),
    ) {
        debug_assert!(self.subtree_free[node]);
        let Node::Var { var, dep, children } = &self.vo.nodes[node] else {
            unreachable!("free subtrees are rooted at variable nodes")
        };
        let Some(key) = bindings.project(dep) else {
            return;
        };
        let Some(group) = self.views[node]
            .as_ref()
            .expect("var node")
            .groups
            .get(&key)
        else {
            return;
        };
        let free_children: Vec<usize> = children
            .iter()
            .copied()
            .filter(|&c| self.subtree_free[c])
            .collect();
        for x in group.entries.keys() {
            bindings.set(*var, x.clone());
            let mut m = acc.clone();
            for &c in children {
                if !self.subtree_free[c] {
                    match self.interface(c, bindings) {
                        Some(v) => m = m.times(&v),
                        None => m = R::zero(),
                    }
                    if m.is_zero() {
                        break;
                    }
                }
            }
            if !m.is_zero() {
                self.chain_children(&free_children, 0, bindings, m, k, f);
            }
            bindings.unset(*var);
        }
    }

    #[allow(clippy::type_complexity)]
    fn chain_children(
        &self,
        free_children: &[usize],
        i: usize,
        bindings: &mut Bindings,
        acc: R,
        k: &mut dyn FnMut(&mut Bindings, R, &mut dyn FnMut(&Tuple, &R)),
        f: &mut dyn FnMut(&Tuple, &R),
    ) {
        if i == free_children.len() {
            k(bindings, acc, f);
            return;
        }
        self.for_each_subtree(
            free_children[i],
            bindings,
            acc,
            &mut |bs, m, f2| self.chain_children(free_children, i + 1, bs, m, k, f2),
            f,
        );
    }

    /// Materialize the current output (test/oracle helper; O(|output|)).
    pub fn output(&self) -> Relation<R> {
        let mut out = Relation::new(self.query.free.clone());
        self.for_each_output(&mut |t, r| out.apply(t.clone(), r));
        out
    }
}

impl<R: Semiring> std::fmt::Debug for ViewTree<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewTree")
            .field("query", &self.query)
            .field("view_entries", &self.view_entries())
            .finish_non_exhaustive()
    }
}

/// Per node: subtree contains only static atoms.
fn compute_static_complete(q: &Query, vo: &VarOrder) -> Vec<bool> {
    let mut out = vec![true; vo.nodes.len()];
    fn rec(q: &Query, vo: &VarOrder, id: usize, out: &mut Vec<bool>) -> bool {
        let v = match &vo.nodes[id] {
            Node::Atom { atom } => !q.atoms[*atom].dynamic,
            Node::Var { children, .. } => {
                let mut all = true;
                for &c in children.clone().iter() {
                    all &= rec(q, vo, c, out);
                }
                all
            }
        };
        out[id] = v;
        v
    }
    for &r in &vo.roots {
        rec(q, vo, r, &mut out);
    }
    out
}

/// Per node: subtree contains a free variable node.
fn compute_subtree_free(q: &Query, vo: &VarOrder) -> Vec<bool> {
    let mut out = vec![false; vo.nodes.len()];
    fn rec(q: &Query, vo: &VarOrder, id: usize, out: &mut Vec<bool>) -> bool {
        let v = match &vo.nodes[id] {
            Node::Atom { .. } => false,
            Node::Var { var, children, .. } => {
                let mut any = q.is_free(*var);
                for &c in children.clone().iter() {
                    any |= rec(q, vo, c, out);
                }
                any
            }
        };
        out[id] = v;
        v
    }
    for &r in &vo.roots {
        rec(q, vo, r, &mut out);
    }
    out
}

/// DFS linearization of the free region: parents before children, so each
/// step's dep set is bound by earlier steps; bound roots become scalar
/// steps.
fn build_plan(_q: &Query, vo: &VarOrder, subtree_free: &[bool]) -> Vec<PlanStep> {
    let mut plan = Vec::new();
    fn rec(vo: &VarOrder, id: usize, subtree_free: &[bool], plan: &mut Vec<PlanStep>) {
        if !subtree_free[id] {
            return; // handled as a scalar factor by the parent step
        }
        if let Node::Var { children, .. } = &vo.nodes[id] {
            plan.push(PlanStep::Free(id));
            for &c in children {
                rec(vo, c, subtree_free, plan);
            }
        }
    }
    for &r in &vo.roots {
        if subtree_free[r] {
            rec(vo, r, subtree_free, &mut plan);
        } else {
            plan.push(PlanStep::ScalarRoot(r));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::{eval_join_aggregate, lift_one};
    use ivm_data::{sym, tup, vars, Update};
    use ivm_query::Atom;

    fn fig3_setup() -> (Query, ViewTree<i64>) {
        let q = ivm_query::examples::fig3_query();
        let tree = ViewTree::new(q.clone(), lift_one).unwrap();
        (q, tree)
    }

    #[test]
    fn fig3_insert_enumerate() {
        let (_, mut tree) = fig3_setup();
        let (r, s) = (sym("f3_R"), sym("f3_S"));
        // R(Y,X), S(Y,Z)
        tree.apply(&Update::insert(r, tup![1i64, 10i64])).unwrap();
        tree.apply(&Update::insert(r, tup![1i64, 11i64])).unwrap();
        tree.apply(&Update::insert(s, tup![1i64, 20i64])).unwrap();
        tree.apply(&Update::insert(s, tup![2i64, 21i64])).unwrap();
        let out = tree.output();
        // Q(Y,X,Z): y=1 joins (10,20) and (11,20); y=2 has no R partner.
        assert_eq!(out.len(), 2);
        assert_eq!(out.get(&tup![1i64, 10i64, 20i64]), 1);
        assert_eq!(out.get(&tup![1i64, 11i64, 20i64]), 1);
    }

    #[test]
    fn fig3_delete_restores() {
        let (_, mut tree) = fig3_setup();
        let (r, s) = (sym("f3_R"), sym("f3_S"));
        tree.apply(&Update::insert(r, tup![1i64, 10i64])).unwrap();
        tree.apply(&Update::insert(s, tup![1i64, 20i64])).unwrap();
        assert_eq!(tree.output().len(), 1);
        tree.apply(&Update::delete(r, tup![1i64, 10i64])).unwrap();
        assert_eq!(tree.output().len(), 0);
        // Only the S-side entry (z=20 under y=1) survives: the X-node
        // group and the root's y-entry are pruned on cancellation.
        assert_eq!(tree.view_entries(), 1);
    }

    #[test]
    fn maintained_equals_recompute_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let q = ivm_query::examples::fig3_query();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut tree: ViewTree<i64> = ViewTree::new(q.clone(), lift_one).unwrap();
        let mut r_rel = Relation::<i64>::new(q.atoms[0].schema.clone());
        let mut s_rel = Relation::<i64>::new(q.atoms[1].schema.clone());
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let y = rng.gen_range(0..5i64);
            let v = rng.gen_range(0..5i64);
            // Valid streams only (Sec. 2): deletes target present tuples,
            // so multiplicities stay non-negative.
            let (rel, oracle) = if rng.gen_bool(0.5) {
                (rn, &mut r_rel)
            } else {
                (sn, &mut s_rel)
            };
            let m: i64 = if rng.gen_bool(0.3) && oracle.get(&tup![y, v]) > 0 {
                -1
            } else {
                1
            };
            tree.apply(&Update::with_payload(rel, tup![y, v], m))
                .unwrap();
            oracle.apply(tup![y, v], &m);
        }
        let expect = eval_join_aggregate(&[&r_rel, &s_rel], &q.free, lift_one);
        let got = tree.output();
        assert_eq!(got.len(), expect.len());
        for (t, p) in expect.iter() {
            assert_eq!(&got.get(t), p, "mismatch at {t:?}");
        }
    }

    #[test]
    fn boolean_query_counts_via_totals() {
        // Q() = Σ_{X,Y} R(X,Y)·S(Y): Boolean (no free vars) — output is
        // the single empty tuple with the full count.
        let [x, y] = vars(["vt_X", "vt_Y"]);
        let (rn, sn) = (sym("vt_R"), sym("vt_S"));
        let q = Query::new(
            "vt_bool",
            [],
            vec![Atom::new(rn, [x, y]), Atom::new(sn, [y])],
        );
        let mut tree: ViewTree<i64> = ViewTree::new(q, lift_one).unwrap();
        tree.apply(&Update::insert(rn, tup![1i64, 5i64])).unwrap();
        tree.apply(&Update::insert(rn, tup![2i64, 5i64])).unwrap();
        tree.apply(&Update::with_payload(sn, tup![5i64], 3))
            .unwrap();
        let out = tree.output();
        assert_eq!(out.get(&Tuple::empty()), 6);
    }

    #[test]
    fn rejects_non_q_hierarchical() {
        let q = ivm_query::examples::ex51_query();
        let err = ViewTree::<i64>::new(q, lift_one).unwrap_err();
        assert!(matches!(err, EngineError::NotSupported(_)));
    }

    #[test]
    fn rejects_self_join() {
        let q = ivm_query::examples::triangle_count();
        let err = ViewTree::<i64>::new(q, lift_one).unwrap_err();
        // Triangle has duplicate relation names AND is non-hierarchical;
        // the canonical order fails first.
        assert!(matches!(
            err,
            EngineError::VarOrder(_) | EngineError::DuplicateRelation(_)
        ));
    }

    #[test]
    fn static_updates_rejected() {
        let q = ivm_query::examples::ex414_query();
        let vo = ivm_query::varorder::find_tractable_order(&q).unwrap();
        let mut tree: ViewTree<i64> = ViewTree::with_order(q, vo, lift_one).unwrap();
        let err = tree
            .apply(&Update::insert(sym("e414_T"), tup![1i64, 2i64]))
            .unwrap_err();
        assert_eq!(err, EngineError::StaticRelation(sym("e414_T")));
    }

    #[test]
    fn ex414_static_dynamic_maintenance() {
        // Q(A,B,C) = Σ_D R(A,D)·S(A,B)·T(B,C), T static.
        let q = ivm_query::examples::ex414_query();
        let vo = ivm_query::varorder::find_tractable_order(&q).unwrap();
        let mut tree: ViewTree<i64> = ViewTree::with_order(q.clone(), vo, lift_one).unwrap();
        // Preprocess the static relation.
        let mut db: Database<i64> = Database::new();
        let t_schema = q.atoms[2].schema.clone();
        let mut t_rel = Relation::new(t_schema.clone());
        t_rel.insert(tup![7i64, 70i64]);
        t_rel.insert(tup![7i64, 71i64]);
        t_rel.insert(tup![8i64, 80i64]);
        db.add(sym("e414_T"), t_rel.clone());
        tree.preprocess(&db).unwrap();

        let (rn, sn) = (sym("e414_R"), sym("e414_S"));
        tree.apply(&Update::insert(rn, tup![1i64, 100i64])).unwrap();
        tree.apply(&Update::insert(sn, tup![1i64, 7i64])).unwrap();
        let out = tree.output();
        // Q(A,B,C): a=1, b=7, c ∈ {70, 71}.
        assert_eq!(out.len(), 2);
        assert_eq!(out.get(&tup![1i64, 7i64, 70i64]), 1);
        assert_eq!(out.get(&tup![1i64, 7i64, 71i64]), 1);

        // Against the oracle.
        let mut r_rel = Relation::<i64>::new(q.atoms[0].schema.clone());
        r_rel.insert(tup![1i64, 100i64]);
        let mut s_rel = Relation::<i64>::new(q.atoms[1].schema.clone());
        s_rel.insert(tup![1i64, 7i64]);
        let expect = eval_join_aggregate(&[&r_rel, &s_rel, &t_rel], &q.free, lift_one);
        assert_eq!(out.len(), expect.len());
        for (t, p) in expect.iter() {
            assert_eq!(&out.get(t), p);
        }
    }

    #[test]
    fn delta_enumeration_matches_output_diff() {
        let (q, mut tree) = fig3_setup();
        let (r, s) = (sym("f3_R"), sym("f3_S"));
        tree.apply(&Update::insert(r, tup![1i64, 10i64])).unwrap();
        tree.apply(&Update::insert(s, tup![1i64, 20i64])).unwrap();
        tree.apply(&Update::insert(s, tup![1i64, 21i64])).unwrap();

        let before = tree.output();
        let upd = Update::insert(r, tup![1i64, 11i64]);
        let mut delta = Relation::<i64>::new(q.free.clone());
        tree.delta_for_each(&upd, &mut |t, m| delta.apply(t.clone(), m))
            .unwrap();
        tree.apply(&upd).unwrap();
        let after = tree.output();

        // after = before ⊎ delta
        let merged = ivm_data::ops::union(&before, &delta);
        assert_eq!(merged.len(), after.len());
        for (t, p) in after.iter() {
            assert_eq!(&merged.get(t), p);
        }
        assert_eq!(delta.len(), 2, "one new X pairs with two Z values");
    }

    #[test]
    fn disconnected_query_cross_product() {
        let [a, b] = vars(["vt_A2", "vt_B2"]);
        let (rn, sn) = (sym("vt_R2"), sym("vt_S2"));
        let q = Query::new(
            "vt_disc",
            [a, b],
            vec![Atom::new(rn, [a]), Atom::new(sn, [b])],
        );
        let mut tree: ViewTree<i64> = ViewTree::new(q, lift_one).unwrap();
        tree.apply(&Update::insert(rn, tup![1i64])).unwrap();
        tree.apply(&Update::insert(rn, tup![2i64])).unwrap();
        tree.apply(&Update::insert(sn, tup![7i64])).unwrap();
        let out = tree.output();
        assert_eq!(out.len(), 2);
        assert_eq!(out.get(&tup![1i64, 7i64]), 1);
        assert_eq!(out.get(&tup![2i64, 7i64]), 1);
    }

    #[test]
    fn bound_enumeration_filters() {
        let (_, mut tree) = fig3_setup();
        let (r, s) = (sym("f3_R"), sym("f3_S"));
        for y in 0..3i64 {
            tree.apply(&Update::insert(r, tup![y, 10i64])).unwrap();
            tree.apply(&Update::insert(s, tup![y, 20i64])).unwrap();
        }
        let [yv] = vars(["f3_Y"]);
        let mut pre = Bindings::new();
        pre.set(yv, Value::from(1i64));
        let mut seen = Vec::new();
        tree.for_each_output_bound(&pre, &mut |t, _| seen.push(t.clone()));
        assert_eq!(seen, vec![tup![1i64, 10i64, 20i64]]);
    }

    /// The documented caveat: with mixed-sign multiplicities at
    /// enumeration time (an *invalid* database per Sec. 2), marginal
    /// totals can cancel and factorized enumeration prunes branches that
    /// the flat output keeps. Valid databases never hit this.
    #[test]
    fn mixed_sign_multiplicities_caveat() {
        let (q, mut tree) = fig3_setup();
        let (r, s) = (sym("f3_R"), sym("f3_S"));
        // Two R tuples under y=1 with multiplicities +1 and −1: the
        // X-marginal for y=1 cancels to zero.
        tree.apply(&Update::with_payload(r, tup![1i64, 10i64], 1))
            .unwrap();
        tree.apply(&Update::with_payload(r, tup![1i64, 11i64], -1))
            .unwrap();
        tree.apply(&Update::insert(s, tup![1i64, 20i64])).unwrap();
        // The flat output would have two tuples (payloads +1 and −1); the
        // factorized enumeration sees a zero root marginal and emits none.
        assert_eq!(tree.output().len(), 0);
        let mut r_rel = Relation::<i64>::new(q.atoms[0].schema.clone());
        r_rel.apply(tup![1i64, 10i64], &1);
        r_rel.apply(tup![1i64, 11i64], &-1);
        let mut s_rel = Relation::<i64>::new(q.atoms[1].schema.clone());
        s_rel.insert(tup![1i64, 20i64]);
        let flat = eval_join_aggregate(&[&r_rel, &s_rel], &q.free, lift_one);
        assert_eq!(flat.len(), 2, "the flat oracle keeps both tuples");
        // Restoring validity (delete the negative tuple) re-synchronizes.
        tree.apply(&Update::with_payload(r, tup![1i64, 11i64], 1))
            .unwrap();
        assert_eq!(tree.output().len(), 1);
    }

    #[test]
    fn lifting_applies_to_bound_vars() {
        // Q(X) = Σ_Y R(X,Y) with g_Y(y) = y: payload = Σ y per X.
        let [x, y] = vars(["vt_X3", "vt_Y3"]);
        let rn = sym("vt_R3");
        let q = Query::new("vt_lift", [x], vec![Atom::new(rn, [x, y])]);
        fn lift_val(_: Sym, v: &Value) -> i64 {
            v.as_int().unwrap()
        }
        let mut tree: ViewTree<i64> = ViewTree::new(q, lift_val).unwrap();
        tree.apply(&Update::insert(rn, tup![1i64, 10i64])).unwrap();
        tree.apply(&Update::insert(rn, tup![1i64, 20i64])).unwrap();
        let out = tree.output();
        assert_eq!(out.get(&tup![1i64]), 30);
    }
}
