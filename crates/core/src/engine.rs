//! The common maintenance interface (Fig 1 of the paper): preprocess,
//! update, enumerate.

use crate::error::EngineError;
use ivm_data::{consolidate, Relation, Tuple, Update};
use ivm_query::Query;
use ivm_ring::Semiring;

/// A maintenance engine for one query.
///
/// The trait mirrors the paper's cost decomposition: construction +
/// [`Maintainer::apply_batch`] cover preprocessing and update time, while
/// [`Maintainer::for_each_output`] exposes enumeration (the callback is
/// invoked once per output tuple; delay is the gap between invocations).
///
/// The trait is **batch-first**: [`Maintainer::apply_batch`] is the one
/// ingestion surface every engine shares — specialized view-tree engines,
/// the generic dataflow engine, and the sharded fleet all accept the same
/// `&[Update<R>]` slice, so callers (and the session layer) never branch
/// on the engine kind. [`Maintainer::apply`] remains as the single-tuple
/// primitive the provided batch path loops over.
///
/// `for_each_output` takes `&mut self` because lazy engines refresh their
/// state on an enumeration request.
pub trait Maintainer<R: Semiring> {
    /// The maintained query.
    fn query(&self) -> &Query;

    /// Apply a single-tuple update.
    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError>;

    /// Apply a whole batch of updates in one call and return the **output
    /// delta this call propagated**.
    ///
    /// The batch is first consolidated per `(relation, tuple)` — sound
    /// because ring payloads make batch effects order-independent
    /// (Sec. 2) — so mutually cancelling updates cost nothing. The final
    /// state always equals applying the updates one at a time.
    ///
    /// Return-value contract: engines with a native batched delta path
    /// return exactly the change of the maintained output caused by this
    /// batch (`DataflowEngine` and `ShardedEngine` from delta propagation,
    /// `EagerListEngine` from delta enumeration). Engines whose update
    /// path deliberately avoids materializing output deltas — eager-fact's
    /// O(1) view-tree updates, the lazy engines' deferred queues — return
    /// an **empty relation**: computing a delta generically would need
    /// `Ring` subtraction the `Semiring` bound does not grant, and would
    /// silently forfeit those engines' complexity guarantees. The default
    /// implementation (consolidate, then loop [`Maintainer::apply`])
    /// therefore returns an empty relation.
    ///
    /// Failure granularity: an `Err` may leave a prefix of the
    /// consolidated batch applied; engines that validate the whole batch
    /// up front (dataflow, sharded) reject it atomically instead.
    /// `ShardedEngine` goes further: a shard failure **poisons** the
    /// engine — the fleet's partitioned state is no longer trustworthy,
    /// so every subsequent `apply_batch`/`drain` fails fast with the
    /// original error rather than hanging on worker reports that will
    /// never arrive.
    fn apply_batch(&mut self, batch: &[Update<R>]) -> Result<Relation<R>, EngineError> {
        let free = self.query().free.clone();
        for upd in consolidate(batch) {
            self.apply(&upd)?;
        }
        Ok(Relation::new(free))
    }

    /// Enumerate the current output, one `(tuple, payload)` per call.
    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R));

    /// Materialize the output (convenience for tests and oracles).
    fn output(&mut self) -> Relation<R> {
        let free = self.query().free.clone();
        let mut out = Relation::new(free);
        self.for_each_output(&mut |t, r| out.apply(t.clone(), r));
        out
    }
}
