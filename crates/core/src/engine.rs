//! The common maintenance interface (Fig 1 of the paper): preprocess,
//! update, enumerate.

use crate::error::EngineError;
use ivm_data::{Relation, Tuple, Update};
use ivm_query::Query;
use ivm_ring::Semiring;

/// A maintenance engine for one query.
///
/// The trait mirrors the paper's cost decomposition: construction +
/// [`Maintainer::apply`] cover preprocessing and update time, while
/// [`Maintainer::for_each_output`] exposes enumeration (the callback is
/// invoked once per output tuple; delay is the gap between invocations).
///
/// `for_each_output` takes `&mut self` because lazy engines refresh their
/// state on an enumeration request.
pub trait Maintainer<R: Semiring> {
    /// The maintained query.
    fn query(&self) -> &Query;

    /// Apply a single-tuple update.
    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError>;

    /// Enumerate the current output, one `(tuple, payload)` per call.
    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R));

    /// Materialize the output (convenience for tests and oracles).
    fn output(&mut self) -> Relation<R> {
        let free = self.query().free.clone();
        let mut out = Relation::new(free);
        self.for_each_output(&mut |t, r| out.apply(t.clone(), r));
        out
    }
}
