//! α-acyclic joins: join trees, the Yannakakis full reducer, factorized
//! enumeration, and insert-only maintenance (Sec. 4.6).
//!
//! Every α-acyclic full join admits amortized constant time per insert in
//! the insert-only setting: buffer the inserts in the base relations and
//! (re)build the factorized output — semijoin-reduced relations plus
//! parent-to-child indexes — in time O(|D|) when needed; the build cost
//! amortizes to O(1) per insert (the paper's simplified argument). With
//! deletes allowed, Theorem 4.1's lower bound kicks in for the
//! non-q-hierarchical acyclic queries, so this engine rejects deletes.

use crate::bindings::Bindings;
use crate::error::EngineError;
use ivm_data::{FxHashSet, GroupedIndex, Relation, Tuple, Update};
use ivm_query::Query;
use ivm_ring::Semiring;

/// A join tree over a query's atoms: `parent[i]` is the atom index `i`
/// hangs under (`None` for the root).
#[derive(Clone, Debug)]
pub struct JoinTree {
    /// Parent atom per atom index.
    pub parent: Vec<Option<usize>>,
    /// Atom indices in elimination order (ears first, root last).
    pub order: Vec<usize>,
}

/// Build a join tree by GYO ear removal with witness tracking; `None` for
/// cyclic queries.
///
/// Cyclicity itself is decided by the vertex/edge GYO reduction in
/// [`ivm_query::acyclic`] — the same check the `ivm-dataflow` planner uses
/// to route cyclic queries to its worst-case-optimal multiway join — so
/// every layer agrees on one definition of "acyclic"; the ear removal
/// below then only runs to *construct* the tree, never to decide.
pub fn join_tree(q: &Query) -> Option<JoinTree> {
    if !ivm_query::acyclic::is_acyclic(q) {
        return None;
    }
    let n = q.atoms.len();
    let mut removed = vec![false; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n.saturating_sub(1) {
        // Find an ear: an atom i whose variables shared with other
        // remaining atoms are all contained in a single remaining atom j.
        let mut found = None;
        'outer: for i in 0..n {
            if removed[i] {
                continue;
            }
            let shared: Vec<_> = q.atoms[i]
                .schema
                .vars()
                .iter()
                .copied()
                .filter(|&v| (0..n).any(|k| k != i && !removed[k] && q.atoms[k].schema.contains(v)))
                .collect();
            #[allow(clippy::needless_range_loop)]
            for j in 0..n {
                if j == i || removed[j] {
                    continue;
                }
                if shared.iter().all(|&v| q.atoms[j].schema.contains(v)) {
                    found = Some((i, j));
                    break 'outer;
                }
            }
        }
        let (i, j) = found?;
        removed[i] = true;
        parent[i] = Some(j);
        order.push(i);
    }
    // The last remaining atom is the root.
    if let Some(root) = (0..n).find(|&i| !removed[i]) {
        order.push(root);
    }
    Some(JoinTree { parent, order })
}

/// A factorized representation of an α-acyclic full join: semijoin-reduced
/// relations plus per-child indexes, supporting constant-delay enumeration.
pub struct FactorizedJoin<R> {
    query: Query,
    jt: JoinTree,
    /// Reduced relation per atom.
    reduced: Vec<Relation<R>>,
    /// Per atom: index keyed by the variables shared with its parent.
    child_index: Vec<Option<GroupedIndex<R>>>,
    /// Children lists.
    children: Vec<Vec<usize>>,
}

impl<R: Semiring> FactorizedJoin<R> {
    /// Build from base relations (must align with `q.atoms` order);
    /// requires `q` to be an α-acyclic full join (all variables free).
    pub fn build(q: &Query, relations: &[Relation<R>]) -> Result<Self, EngineError> {
        if q.free != q.variables() {
            return Err(EngineError::NotSupported(
                "factorized join requires a full join (all variables free)".into(),
            ));
        }
        let jt = join_tree(q)
            .ok_or_else(|| EngineError::NotSupported(format!("{} is cyclic", q.name)))?;
        let n = q.atoms.len();
        let mut reduced: Vec<Relation<R>> = relations.to_vec();

        // Upward pass (elimination order): parent ⋉ child.
        for &i in &jt.order {
            if let Some(p) = jt.parent[i] {
                semijoin(&mut reduced, p, i);
            }
        }
        // Downward pass (reverse order): child ⋉ parent.
        for &i in jt.order.iter().rev() {
            if let Some(p) = jt.parent[i] {
                semijoin(&mut reduced, i, p);
            }
        }

        // Indexes for enumeration: each non-root atom keyed by the
        // variables shared with its parent.
        let mut child_index = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            child_index.push(jt.parent[i].map(|p| {
                let key = q.atoms[i].schema.intersect(&q.atoms[p].schema);
                GroupedIndex::from_relation(&reduced[i], key)
            }));
        }
        let mut children = vec![Vec::new(); n];
        for i in 0..n {
            if let Some(p) = jt.parent[i] {
                children[p].push(i);
            }
        }
        Ok(FactorizedJoin {
            query: q.clone(),
            jt,
            reduced,
            child_index,
            children,
        })
    }

    /// The root atom index.
    fn root(&self) -> usize {
        *self.jt.order.last().expect("non-empty query")
    }

    /// Enumerate the full join output with constant delay: DFS from the
    /// root, extending bindings through the per-child indexes (every probe
    /// succeeds thanks to the full reduction).
    pub fn for_each(&self, f: &mut dyn FnMut(&Tuple, &R)) {
        if self.reduced.iter().any(|r| r.is_empty()) {
            return;
        }
        let mut bindings = Bindings::new();
        let root = self.root();
        let free = &self.query.free;
        for (t, p) in self.reduced[root].iter() {
            bindings.bind_tuple(&self.query.atoms[root].schema, t);
            self.descend_rec(
                root,
                0,
                &mut bindings,
                p.clone(),
                &mut |bs, m, f2| {
                    if let Some(out) = bs.project(free) {
                        f2(&out, &m);
                    }
                },
                f,
            );
        }
    }

    #[allow(clippy::type_complexity)]
    fn descend_rec(
        &self,
        node: usize,
        ci: usize,
        bindings: &mut Bindings,
        acc: R,
        k: &mut dyn FnMut(&mut Bindings, R, &mut dyn FnMut(&Tuple, &R)),
        f: &mut dyn FnMut(&Tuple, &R),
    ) {
        if acc.is_zero() {
            return;
        }
        if ci == self.children[node].len() {
            k(bindings, acc, f);
            return;
        }
        let child = self.children[node][ci];
        let idx = self.child_index[child].as_ref().expect("non-root");
        let key = bindings
            .project(idx.key())
            .expect("parent bound before child");
        let Some(group) = idx.group(&key) else { return };
        let residual = idx.residual_schema();
        for (res, p) in group.iter() {
            bindings.bind_tuple(&residual, res);
            self.descend_rec(
                child,
                0,
                bindings,
                acc.times(p),
                &mut |bs, m, f2| self.descend_rec(node, ci + 1, bs, m, k, f2),
                f,
            );
        }
    }

    /// Materialize the output (test helper).
    pub fn output(&self) -> Relation<R> {
        let mut out = Relation::new(self.query.free.clone());
        self.for_each(&mut |t, r| out.apply(t.clone(), r));
        out
    }
}

/// `target := target ⋉ other` (keep target tuples whose shared projection
/// appears in `other`); payloads untouched.
fn semijoin<R: Semiring>(rels: &mut [Relation<R>], target: usize, other: usize) {
    let shared = rels[target].schema().intersect(rels[other].schema());
    if shared.is_empty() {
        return;
    }
    let other_pos = rels[other].schema().positions_of(&shared);
    let mut keys: FxHashSet<Tuple> = FxHashSet::default();
    for (t, _) in rels[other].iter() {
        keys.insert(t.project(&other_pos));
    }
    let target_pos = rels[target].schema().positions_of(&shared);
    let schema = rels[target].schema().clone();
    let kept: Vec<(Tuple, R)> = rels[target]
        .iter()
        .filter(|(t, _)| keys.contains(&t.project(&target_pos)))
        .map(|(t, r)| (t.clone(), r.clone()))
        .collect();
    rels[target] = Relation::from_rows(schema, kept);
}

/// Insert-only maintenance of an α-acyclic full join (Sec. 4.6):
/// amortized O(1) per insert via deferred factorized rebuilds.
pub struct InsertOnlyEngine<R> {
    query: Query,
    relations: Vec<Relation<R>>,
    factorized: Option<FactorizedJoin<R>>,
    inserts: usize,
    rebuilds: usize,
    rebuild_work: usize,
}

impl<R: Semiring> InsertOnlyEngine<R> {
    /// Build an empty engine; the query must be an α-acyclic full join.
    pub fn new(query: Query) -> Result<Self, EngineError> {
        if join_tree(&query).is_none() {
            return Err(EngineError::NotSupported(format!(
                "{} is cyclic",
                query.name
            )));
        }
        if query.free != query.variables() {
            return Err(EngineError::NotSupported(
                "insert-only engine requires a full join".into(),
            ));
        }
        if !query.is_self_join_free() {
            return Err(EngineError::NotSupported("self-joins unsupported".into()));
        }
        let relations = query
            .atoms
            .iter()
            .map(|a| Relation::new(a.schema.clone()))
            .collect();
        Ok(InsertOnlyEngine {
            query,
            relations,
            factorized: None,
            inserts: 0,
            rebuilds: 0,
            rebuild_work: 0,
        })
    }

    /// Apply an insert (deletes are rejected: Sec. 4.6's asymmetry).
    pub fn insert(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        let i = self
            .query
            .atoms
            .iter()
            .position(|a| a.name == upd.relation)
            .ok_or(EngineError::UnknownRelation(upd.relation))?;
        self.relations[i].apply(upd.tuple.clone(), &upd.payload);
        self.inserts += 1;
        self.factorized = None; // invalidate; rebuilt on demand
        Ok(())
    }

    /// Enumerate the output, rebuilding the factorized representation if
    /// stale. The rebuild is O(|D|); deferred builds amortize to O(1) per
    /// insert when enumerations are spaced out (the paper's batch
    /// argument).
    pub fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) -> Result<(), EngineError> {
        if self.factorized.is_none() {
            self.factorized = Some(FactorizedJoin::build(&self.query, &self.relations)?);
            self.rebuilds += 1;
            self.rebuild_work += self.relations.iter().map(|r| r.len()).sum::<usize>();
        }
        self.factorized.as_ref().expect("just built").for_each(f);
        Ok(())
    }

    /// Number of factorized rebuilds so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Total tuples scanned across rebuilds (amortization numerator).
    pub fn rebuild_work(&self) -> usize {
        self.rebuild_work
    }

    /// Materialize the output (test helper).
    pub fn output(&mut self) -> Result<Relation<R>, EngineError> {
        let mut out = Relation::new(self.query.free.clone());
        self.for_each_output(&mut |t, r| out.apply(t.clone(), r))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::{eval_join_aggregate, lift_one};
    use ivm_data::{sym, tup};

    fn path3() -> Query {
        ivm_query::examples::path3_query()
    }

    #[test]
    fn join_tree_for_path() {
        let q = path3();
        let jt = join_tree(&q).unwrap();
        // A path has a chain join tree; every non-root has a parent.
        let roots = jt.parent.iter().filter(|p| p.is_none()).count();
        assert_eq!(roots, 1);
    }

    #[test]
    fn join_tree_rejects_triangle() {
        let q = ivm_query::examples::triangle_count();
        assert!(join_tree(&q).is_none());
    }

    /// The tree builder and the shared GYO check must agree on every
    /// query shape both layers see (tree exists ⇔ acyclic).
    #[test]
    fn join_tree_agrees_with_shared_gyo_check() {
        use ivm_data::{sym, vars};
        use ivm_query::Atom;
        let [a, b, c, d] = vars(["jt_A", "jt_B", "jt_C", "jt_D"]);
        let cycle4 = Query::new(
            "jt_cycle4",
            [],
            vec![
                Atom::new(sym("jt_R"), [a, b]),
                Atom::new(sym("jt_S"), [b, c]),
                Atom::new(sym("jt_T"), [c, d]),
                Atom::new(sym("jt_U"), [d, a]),
            ],
        );
        let queries = [
            ivm_query::examples::triangle_count(),
            ivm_query::examples::fig3_query(),
            ivm_query::examples::path3_query(),
            ivm_query::examples::job_pkfk_query(),
            cycle4,
        ];
        for q in queries {
            assert_eq!(
                join_tree(&q).is_some(),
                ivm_query::acyclic::is_acyclic(&q),
                "disagreement on {q:?}"
            );
        }
    }

    #[test]
    fn factorized_join_matches_oracle() {
        let q = path3();
        let mut rels: Vec<Relation<i64>> = q
            .atoms
            .iter()
            .map(|a| Relation::new(a.schema.clone()))
            .collect();
        // R(A,B), S(B,C), T(C,D)
        for (a, b) in [(1i64, 10i64), (2, 10), (3, 11)] {
            rels[0].apply(tup![a, b], &1);
        }
        for (b, c) in [(10i64, 20i64), (10, 21), (12, 22)] {
            rels[1].apply(tup![b, c], &1);
        }
        for (c, d) in [(20i64, 30i64), (21, 31), (21, 32)] {
            rels[2].apply(tup![c, d], &1);
        }
        let fj = FactorizedJoin::build(&q, &rels).unwrap();
        let got = fj.output();
        let expect = eval_join_aggregate(&[&rels[0], &rels[1], &rels[2]], &q.free, lift_one);
        assert_eq!(got.len(), expect.len());
        for (t, p) in expect.iter() {
            assert_eq!(&got.get(t), p, "at {t:?}");
        }
        // 2 R-tuples on b=10 × (20→30, 21→31, 21→32) = 6 outputs.
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn empty_relation_means_empty_output() {
        let q = path3();
        let rels: Vec<Relation<i64>> = q
            .atoms
            .iter()
            .map(|a| Relation::new(a.schema.clone()))
            .collect();
        let fj = FactorizedJoin::build(&q, &rels).unwrap();
        assert_eq!(fj.output().len(), 0);
    }

    #[test]
    fn insert_only_engine_amortizes() {
        let q = path3();
        let mut eng: InsertOnlyEngine<i64> = InsertOnlyEngine::new(q.clone()).unwrap();
        let (rn, sn, tn) = (sym("p3_R"), sym("p3_S"), sym("p3_T"));
        for i in 0..30i64 {
            eng.insert(&Update::insert(rn, tup![i, i % 5])).unwrap();
            eng.insert(&Update::insert(sn, tup![i % 5, i % 7])).unwrap();
            eng.insert(&Update::insert(tn, tup![i % 7, i])).unwrap();
        }
        let out = eng.output().unwrap();
        // Oracle.
        let mut rels: Vec<Relation<i64>> = q
            .atoms
            .iter()
            .map(|a| Relation::new(a.schema.clone()))
            .collect();
        for i in 0..30i64 {
            rels[0].apply(tup![i, i % 5], &1);
            rels[1].apply(tup![i % 5, i % 7], &1);
            rels[2].apply(tup![i % 7, i], &1);
        }
        let expect = eval_join_aggregate(&[&rels[0], &rels[1], &rels[2]], &q.free, lift_one);
        assert_eq!(out.len(), expect.len());
        assert_eq!(eng.rebuilds(), 1, "one deferred rebuild");
        // Second enumeration without new inserts: no rebuild.
        let _ = eng.output().unwrap();
        assert_eq!(eng.rebuilds(), 1);
    }

    #[test]
    fn payload_multiplicities_multiply() {
        let q = path3();
        let mut rels: Vec<Relation<i64>> = q
            .atoms
            .iter()
            .map(|a| Relation::new(a.schema.clone()))
            .collect();
        rels[0].apply(tup![1i64, 2i64], &2);
        rels[1].apply(tup![2i64, 3i64], &3);
        rels[2].apply(tup![3i64, 4i64], &5);
        let fj = FactorizedJoin::build(&q, &rels).unwrap();
        let out = fj.output();
        assert_eq!(out.get(&tup![1i64, 2i64, 3i64, 4i64]), 30);
    }
}
