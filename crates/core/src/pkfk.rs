//! Amortized maintenance under primary-key/foreign-key constraints
//! (Sec. 4.4, Ex 4.13).
//!
//! The star join `Q = Σ Fact(k1, …, kd) · Dim1(k1) · … · Dimd(kd)` is not
//! q-hierarchical, so worst-case constant updates are impossible. But
//! under *valid* update batches — batches mapping consistent databases to
//! consistent databases, where every foreign key value appearing in the
//! fact table exists in its dimension — the amortized cost per update is
//! constant, even when individual updates (a dimension insert fixing up
//! `n` waiting fact tuples, or a dimension delete preceding its fact
//! deletes) cost O(n): each fixed-up fact tuple pays O(1) against its own
//! insertion/deletion.
//!
//! The engine tolerates transiently inconsistent states (out-of-order
//! execution) and reports [`PkFkEngine::is_consistent`] so tests can check
//! validity at commit points.

use crate::error::EngineError;
use ivm_data::{GroupedIndex, Relation, Schema, Sym, Tuple, Update};
use ivm_ring::Semiring;

/// A star-join aggregate engine with per-update cost accounting.
pub struct PkFkEngine<R> {
    fact_name: Sym,
    fact: Relation<R>,
    /// One index on the fact table per dimension, keyed by that FK column.
    fact_indexes: Vec<GroupedIndex<R>>,
    dims: Vec<(Sym, Relation<R>)>,
    /// FK column variable per dimension (position in the fact schema).
    fk_pos: Vec<usize>,
    /// The maintained aggregate `Σ Fact·ΠDims`.
    total: R,
    /// Index entries touched by the last update (the paper's `n`).
    last_cost: usize,
    /// Cumulative touched entries, for amortized-cost reporting.
    cumulative_cost: usize,
    updates: usize,
}

impl<R: Semiring> PkFkEngine<R> {
    /// Build an empty engine: `fact_schema` must contain each dimension's
    /// single key variable.
    pub fn new(
        fact_name: Sym,
        fact_schema: Schema,
        dims: Vec<(Sym, Sym)>, // (relation name, key variable)
    ) -> Result<Self, EngineError> {
        let mut fk_pos = Vec::with_capacity(dims.len());
        let mut fact_indexes = Vec::with_capacity(dims.len());
        let mut dim_rels = Vec::with_capacity(dims.len());
        for (name, key) in dims {
            let pos = fact_schema.position(key).ok_or_else(|| {
                EngineError::NotSupported(format!(
                    "dimension key {key} not in fact schema {fact_schema:?}"
                ))
            })?;
            fk_pos.push(pos);
            fact_indexes.push(GroupedIndex::new(fact_schema.clone(), Schema::from([key])));
            dim_rels.push((name, Relation::new(Schema::from([key]))));
        }
        Ok(PkFkEngine {
            fact_name,
            fact: Relation::new(fact_schema),
            fact_indexes,
            dims: dim_rels,
            fk_pos,
            total: R::zero(),
            last_cost: 0,
            cumulative_cost: 0,
            updates: 0,
        })
    }

    /// The maintained aggregate.
    pub fn total(&self) -> &R {
        &self.total
    }

    /// Index entries touched by the last update.
    pub fn last_cost(&self) -> usize {
        self.last_cost
    }

    /// Average cost per update so far (the amortized cost).
    pub fn amortized_cost(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.cumulative_cost as f64 / self.updates as f64
        }
    }

    /// Apply a single-tuple update to the fact table or a dimension.
    pub fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        self.updates += 1;
        if upd.relation == self.fact_name {
            // δQ = δF(t) · Π_i Dim_i(t.k_i): one lookup per dimension.
            self.last_cost = 1;
            self.cumulative_cost += 1;
            let mut d = upd.payload.clone();
            for (i, (_, dim)) in self.dims.iter().enumerate() {
                let k = Tuple::new([upd.tuple.at(self.fk_pos[i]).clone()]);
                d = d.times(&dim.get(&k));
                if d.is_zero() {
                    break;
                }
            }
            self.total.add_assign(&d);
            self.fact.apply(upd.tuple.clone(), &upd.payload);
            for idx in &mut self.fact_indexes {
                idx.apply(&upd.tuple, &upd.payload);
            }
            return Ok(());
        }
        let di = self
            .dims
            .iter()
            .position(|(n, _)| *n == upd.relation)
            .ok_or(EngineError::UnknownRelation(upd.relation))?;
        // δQ = δDim_di(k) · Σ_{t ∈ F: t.k_di = k} F(t) · Π_{j≠di} Dim_j(t.k_j):
        // iterate the fact tuples waiting on this key.
        let key = Tuple::new([upd.tuple.at(0).clone()]);
        let mut cost = 1;
        let mut delta = R::zero();
        if let Some(group) = self.fact_indexes[di].group(&key) {
            // Residual tuples hold the fact columns except the key column.
            let residual_schema = self.fact_indexes[di].residual_schema();
            for (res, payload) in group.iter() {
                cost += 1;
                let mut d = upd.payload.clone().times(payload);
                for (j, (_, dim)) in self.dims.iter().enumerate() {
                    if j == di {
                        continue;
                    }
                    // Find this FK's value in the residual tuple.
                    let var = self.fact.schema().vars()[self.fk_pos[j]];
                    let pos = residual_schema.position(var).expect("distinct fk columns");
                    let k = Tuple::new([res.at(pos).clone()]);
                    d = d.times(&dim.get(&k));
                    if d.is_zero() {
                        break;
                    }
                }
                delta.add_assign(&d);
            }
        }
        self.total.add_assign(&delta);
        self.dims[di].1.apply(upd.tuple.clone(), &upd.payload);
        self.last_cost = cost;
        self.cumulative_cost += cost;
        Ok(())
    }

    /// Whether the current database is PK–FK consistent: every foreign key
    /// value in the fact table exists in its dimension. O(|Fact|·d).
    pub fn is_consistent(&self) -> bool {
        self.fact.iter().all(|(t, _)| {
            self.fk_pos.iter().enumerate().all(|(i, &pos)| {
                let k = Tuple::new([t.at(pos).clone()]);
                !self.dims[i].1.get(&k).is_zero()
            })
        })
    }

    /// Recompute the aggregate from scratch (test oracle).
    pub fn recompute(&self) -> R {
        let mut acc = R::zero();
        for (t, p) in self.fact.iter() {
            let mut d = p.clone();
            for (i, (_, dim)) in self.dims.iter().enumerate() {
                let k = Tuple::new([t.at(self.fk_pos[i]).clone()]);
                d = d.times(&dim.get(&k));
            }
            acc.add_assign(&d);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{sym, tup, vars};

    fn job_engine() -> PkFkEngine<i64> {
        let [m, c] = vars(["pk_movie", "pk_company"]);
        PkFkEngine::new(
            sym("pk_MC"),
            Schema::from([m, c]),
            vec![(sym("pk_Title"), m), (sym("pk_Company"), c)],
        )
        .unwrap()
    }

    #[test]
    fn fact_updates_cost_one() {
        let mut eng = job_engine();
        let (t, c, mc) = (sym("pk_Title"), sym("pk_Company"), sym("pk_MC"));
        eng.apply(&Update::insert(t, tup![1i64])).unwrap();
        eng.apply(&Update::insert(c, tup![7i64])).unwrap();
        eng.apply(&Update::insert(mc, tup![1i64, 7i64])).unwrap();
        assert_eq!(eng.last_cost(), 1);
        assert_eq!(*eng.total(), 1);
        assert!(eng.is_consistent());
    }

    /// Ex 4.13: inserting a company with `n` waiting fact records costs
    /// O(n) once, but the n earlier fact inserts each cost O(1): amortized
    /// constant.
    #[test]
    fn dimension_insert_fixes_up_waiting_facts() {
        let mut eng = job_engine();
        let (t, c, mc) = (sym("pk_Title"), sym("pk_Company"), sym("pk_MC"));
        let n = 50i64;
        for m in 0..n {
            eng.apply(&Update::insert(t, tup![m])).unwrap();
            eng.apply(&Update::insert(mc, tup![m, 7i64])).unwrap();
            assert_eq!(eng.last_cost(), 1);
        }
        assert!(!eng.is_consistent(), "company 7 missing: invalid state");
        assert_eq!(*eng.total(), 0);
        eng.apply(&Update::insert(c, tup![7i64])).unwrap();
        assert_eq!(eng.last_cost() as i64, n + 1, "one spike of size n");
        assert_eq!(*eng.total(), n);
        assert!(eng.is_consistent());
        // Amortized: (2n ones + one spike of n+1) / (2n + 1) < 2.
        assert!(eng.amortized_cost() < 2.0);
    }

    /// Deletes in the other order: deleting the company first costs O(n);
    /// the subsequent fact deletes are O(1) each and restore consistency.
    #[test]
    fn dimension_delete_then_fact_deletes() {
        let mut eng = job_engine();
        let (t, c, mc) = (sym("pk_Title"), sym("pk_Company"), sym("pk_MC"));
        let n = 20i64;
        eng.apply(&Update::insert(c, tup![7i64])).unwrap();
        for m in 0..n {
            eng.apply(&Update::insert(t, tup![m])).unwrap();
            eng.apply(&Update::insert(mc, tup![m, 7i64])).unwrap();
        }
        assert_eq!(*eng.total(), n);
        eng.apply(&Update::delete(c, tup![7i64])).unwrap();
        assert_eq!(eng.last_cost() as i64, n + 1);
        assert_eq!(*eng.total(), 0);
        assert!(!eng.is_consistent());
        for m in 0..n {
            eng.apply(&Update::delete(mc, tup![m, 7i64])).unwrap();
            assert_eq!(eng.last_cost(), 1);
        }
        assert!(eng.is_consistent());
        assert_eq!(*eng.total(), 0);
        assert_eq!(eng.recompute(), 0);
    }

    /// The maintained total always equals the from-scratch oracle, valid
    /// or not.
    #[test]
    fn total_matches_recompute_under_random_updates() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut eng = job_engine();
        let (t, c, mc) = (sym("pk_Title"), sym("pk_Company"), sym("pk_MC"));
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..300 {
            let m: i64 = if rng.gen_bool(0.3) { -1 } else { 1 };
            match rng.gen_range(0..3) {
                0 => eng
                    .apply(&Update::with_payload(t, tup![rng.gen_range(0..5i64)], m))
                    .unwrap(),
                1 => eng
                    .apply(&Update::with_payload(c, tup![rng.gen_range(0..5i64)], m))
                    .unwrap(),
                _ => eng
                    .apply(&Update::with_payload(
                        mc,
                        tup![rng.gen_range(0..5i64), rng.gen_range(0..5i64)],
                        m,
                    ))
                    .unwrap(),
            }
            assert_eq!(*eng.total(), eng.recompute());
        }
    }
}
