//! Maintenance under functional dependencies (Sec. 4.4, Theorem 4.11).
//!
//! When a query's Σ-reduct is q-hierarchical, the original query can be
//! maintained with constant update time and delay over databases
//! satisfying Σ. The engine builds the canonical view tree of the
//! *reduct*, but keeps the *original* schemas at the leaves: the
//! FD-implied values that the reduct's view keys mention are fetched from
//! the providing relations during propagation (at most one value exists by
//! the FD), exactly as in Ex 4.12 / Fig 6.
//!
//! Out-of-order robustness comes for free: if a fetch misses (the
//! determining tuple has not arrived yet), the propagation stops, and the
//! determining tuple's own later insertion carries the accumulated
//! contribution upward — the same amortization as the PK–FK case of
//! Ex 4.13.

use crate::engine::Maintainer;
use crate::error::EngineError;
use crate::viewtree::{Fetcher, ViewTree};
use ivm_data::ops::Lift;
use ivm_data::{Database, Schema, Tuple, Update};
use ivm_query::fd::{sigma_reduct, Fd};
use ivm_query::hierarchy::is_q_hierarchical;
use ivm_query::{Query, VarOrder};
use ivm_ring::Semiring;

/// A maintenance engine for a query whose Σ-reduct is q-hierarchical.
pub struct FdEngine<R> {
    original: Query,
    tree: ViewTree<R>,
}

impl<R: Semiring> FdEngine<R> {
    /// Build the engine; fails when the Σ-reduct is not q-hierarchical or
    /// no relation can provide some FD (no atom contains `lhs ∪ rhs`).
    pub fn new(
        query: Query,
        sigma: &[Fd],
        db: &Database<R>,
        lift: Lift<R>,
    ) -> Result<Self, EngineError> {
        let reduct = sigma_reduct(&query, sigma);
        if !is_q_hierarchical(&reduct) {
            return Err(EngineError::NotSupported(format!(
                "the Σ-reduct of {} is not q-hierarchical (Theorem 4.11 \
                 does not apply)",
                query.name
            )));
        }
        // The tree SHAPE follows the reduct's canonical order (Fig 6), but
        // the dependency sets are recomputed against the ORIGINAL atom
        // schemas. This keeps FD-implied values out of view keys below
        // their providing relation, so remapping an FD value (delete
        // S(x,y1), insert S(x,y2)) repairs the views instead of stranding
        // entries under stale keys.
        let shape = VarOrder::canonical(&reduct)?;
        let tree_query = Query {
            name: reduct.name,
            free: reduct.free.clone(),
            input: Schema::empty(),
            atoms: query.atoms.clone(),
        };
        let vo = VarOrder {
            nodes: shape.nodes,
            roots: shape.roots,
        }
        .validate_and_finish(&tree_query)?;
        // One fetcher per (FD, rhs variable), provided by the first atom
        // whose original schema contains lhs ∪ {var}.
        let mut fetchers = Vec::new();
        for fd in sigma {
            for &var in fd.rhs.vars() {
                let needed = fd.lhs.union(&Schema::from([var]));
                let provider = query
                    .atoms
                    .iter()
                    .position(|a| needed.subset_of(&a.schema))
                    .ok_or_else(|| {
                        EngineError::NotSupported(format!(
                            "no relation provides the FD {:?} → {var}",
                            fd.lhs
                        ))
                    })?;
                fetchers.push(Fetcher {
                    var,
                    lhs: fd.lhs.clone(),
                    provider,
                });
            }
        }
        let storage: Vec<Schema> = query.atoms.iter().map(|a| a.schema.clone()).collect();
        let mut tree = ViewTree::with_order_and_storage(tree_query, vo, lift, storage, fetchers)?;
        tree.preprocess(db)?;
        Ok(FdEngine {
            original: query,
            tree,
        })
    }

    /// The original (non-rewritten) query.
    pub fn original(&self) -> &Query {
        &self.original
    }

    /// The underlying reduct view tree.
    pub fn tree(&self) -> &ViewTree<R> {
        &self.tree
    }
}

impl<R: Semiring> Maintainer<R> for FdEngine<R> {
    /// Note: the maintained query is the Σ-reduct; its free variables are
    /// the closure of the original's (the same set whenever the original's
    /// free set is closed, as in Ex 4.12).
    fn query(&self) -> &Query {
        self.tree.query()
    }

    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        self.tree.apply(upd)
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        self.tree.for_each_output(f)
    }
}

impl<R: ivm_ring::Semiring> std::fmt::Debug for FdEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FdEngine").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::{eval_join_aggregate, lift_one};
    use ivm_data::{sym, tup, Relation};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Ex 4.12: Q(Z,Y,X,W) = R(X,W)·S(X,Y)·T(Y,Z), Σ = {X→Y, Y→Z}.
    fn build() -> FdEngine<i64> {
        let (q, sigma) = ivm_query::examples::ex412_query();
        FdEngine::new(q, &sigma, &Database::new(), lift_one).unwrap()
    }

    #[test]
    fn example_4_12_maintenance() {
        let mut eng = build();
        let (r, s, t) = (sym("e412_R"), sym("e412_S"), sym("e412_T"));
        // FD-satisfying data: X→Y via S, Y→Z via T.
        eng.apply(&Update::insert(s, tup![1i64, 10i64])).unwrap();
        eng.apply(&Update::insert(t, tup![10i64, 100i64])).unwrap();
        eng.apply(&Update::insert(r, tup![1i64, 7i64])).unwrap();
        let out = eng.output();
        // Reduct free order: [Z, Y, X, W].
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(&tup![100i64, 10i64, 1i64, 7i64]), 1);
    }

    /// Out-of-order: R arrives before S and T; the output materializes
    /// when the FD-determining tuples land.
    #[test]
    fn out_of_order_arrival() {
        let mut eng = build();
        let (r, s, t) = (sym("e412_R"), sym("e412_S"), sym("e412_T"));
        eng.apply(&Update::insert(r, tup![1i64, 7i64])).unwrap();
        assert_eq!(eng.output().len(), 0, "no join partners yet");
        eng.apply(&Update::insert(s, tup![1i64, 10i64])).unwrap();
        assert_eq!(eng.output().len(), 0, "T still missing");
        eng.apply(&Update::insert(t, tup![10i64, 100i64])).unwrap();
        let out = eng.output();
        assert_eq!(out.get(&tup![100i64, 10i64, 1i64, 7i64]), 1);
    }

    /// Deletes unwind correctly.
    #[test]
    fn deletes_unwind() {
        let mut eng = build();
        let (r, s, t) = (sym("e412_R"), sym("e412_S"), sym("e412_T"));
        eng.apply(&Update::insert(s, tup![1i64, 10i64])).unwrap();
        eng.apply(&Update::insert(t, tup![10i64, 100i64])).unwrap();
        eng.apply(&Update::insert(r, tup![1i64, 7i64])).unwrap();
        assert_eq!(eng.output().len(), 1);
        eng.apply(&Update::delete(r, tup![1i64, 7i64])).unwrap();
        assert_eq!(eng.output().len(), 0);
    }

    /// Random FD-satisfying streams match the from-scratch oracle on the
    /// ORIGINAL query (the reduct's output equals the original's up to
    /// column order because the FDs hold).
    #[test]
    fn random_fd_stream_matches_oracle() {
        let (q, _) = ivm_query::examples::ex412_query();
        let mut eng = build();
        let (rn, sn, tn) = (sym("e412_R"), sym("e412_S"), sym("e412_T"));
        let mut r_rel = Relation::<i64>::new(q.atoms[0].schema.clone());
        let mut s_rel = Relation::<i64>::new(q.atoms[1].schema.clone());
        let mut t_rel = Relation::<i64>::new(q.atoms[2].schema.clone());
        let mut rng = StdRng::seed_from_u64(31);
        // Fixed FD mappings so every reachable database satisfies Σ.
        let y_of = |x: i64| x * 10 + 1;
        let z_of = |y: i64| y * 10 + 3;
        for step in 0..200 {
            // Valid streams only (Sec. 2): delete only present tuples.
            let (rel, oracle, t) = match rng.gen_range(0..3) {
                0 => {
                    let (x, w) = (rng.gen_range(0..4i64), rng.gen_range(0..4i64));
                    (rn, &mut r_rel, tup![x, w])
                }
                1 => {
                    let x = rng.gen_range(0..4i64);
                    (sn, &mut s_rel, tup![x, y_of(x)])
                }
                _ => {
                    let y = y_of(rng.gen_range(0..4i64));
                    (tn, &mut t_rel, tup![y, z_of(y)])
                }
            };
            let m: i64 = if rng.gen_bool(0.3) && oracle.get(&t) > 0 {
                -1
            } else {
                1
            };
            eng.apply(&Update::with_payload(rel, t.clone(), m)).unwrap();
            oracle.apply(t, &m);
            if step % 23 == 0 {
                let expect = eval_join_aggregate(&[&r_rel, &s_rel, &t_rel], &q.free, lift_one);
                let got = eng.output();
                // Align column orders (reduct free vs original free).
                let reduct_free = eng.tree.query().free.clone();
                let pos = q.free.positions_of(&reduct_free);
                assert_eq!(got.len(), expect.len(), "step {step}");
                for (t, p) in expect.iter() {
                    assert_eq!(&got.get(&t.project(&pos)), p, "step {step} {t:?}");
                }
            }
        }
    }

    /// Remapping an FD value (delete the old determining tuple, insert a
    /// new one) repairs the views: Fig 6's keying by original schemas.
    #[test]
    fn fd_remap_is_consistent() {
        let mut eng = build();
        let (r, s, t) = (sym("e412_R"), sym("e412_S"), sym("e412_T"));
        eng.apply(&Update::insert(r, tup![1i64, 7i64])).unwrap();
        eng.apply(&Update::insert(s, tup![1i64, 10i64])).unwrap();
        eng.apply(&Update::insert(t, tup![10i64, 100i64])).unwrap();
        assert_eq!(eng.output().get(&tup![100i64, 10i64, 1i64, 7i64]), 1);
        // Remap Y→Z for y=10: z 100 → 200 (database stays FD-valid at
        // every step).
        eng.apply(&Update::delete(t, tup![10i64, 100i64])).unwrap();
        assert_eq!(eng.output().len(), 0);
        eng.apply(&Update::insert(t, tup![10i64, 200i64])).unwrap();
        let out = eng.output();
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(&tup![200i64, 10i64, 1i64, 7i64]), 1);
        // Remap X→Y for x=1: y 10 → 11 with its own Z.
        eng.apply(&Update::delete(s, tup![1i64, 10i64])).unwrap();
        eng.apply(&Update::insert(t, tup![11i64, 300i64])).unwrap();
        eng.apply(&Update::insert(s, tup![1i64, 11i64])).unwrap();
        let out = eng.output();
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(&tup![300i64, 11i64, 1i64, 7i64]), 1);
    }

    /// Queries whose reduct is not q-hierarchical are rejected.
    #[test]
    fn rejects_without_enough_fds() {
        let (q, _) = ivm_query::examples::ex412_query();
        let err = FdEngine::<i64>::new(q, &[], &Database::new(), lift_one).unwrap_err();
        assert!(matches!(err, EngineError::NotSupported(_)));
    }
}
