//! Incremental view maintenance engines.
//!
//! This crate implements every maintenance strategy described in the paper
//! for (hierarchies of) conjunctive queries with aggregates:
//!
//! * [`engines`] — the eager/lazy × list/fact grid of Fig 4;
//! * [`viewtree`] — factorized view trees (F-IVM), including mixed
//!   static-dynamic trees (Sec. 4.5) and FD-completed trees (Sec. 4.4);
//! * [`cascade`] — cascading q-hierarchical queries (Sec. 4.2);
//! * [`cqap`] — queries with free access patterns (Sec. 4.3);
//! * [`fd`] — maintenance through Σ-reducts under FDs (Theorem 4.11);
//! * [`pkfk`] — amortized star-join maintenance under valid PK–FK batches
//!   (Ex 4.13);
//! * [`acyclic`] — join trees, the Yannakakis reducer, and insert-only
//!   maintenance for α-acyclic joins (Sec. 4.6).

pub mod acyclic;
pub mod bindings;
pub mod cascade;
pub mod cqap;
pub mod engine;
pub mod engines;
pub mod error;
pub mod fd;
pub mod pkfk;
pub mod viewtree;

pub use engine::Maintainer;
pub use engines::{EagerFactEngine, EagerListEngine, LazyFactEngine, LazyListEngine};
pub use error::EngineError;
pub use viewtree::{Fetcher, ViewTree};
