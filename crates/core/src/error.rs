//! Engine errors.

use ivm_data::Sym;
use ivm_query::VarOrderError;
use std::fmt;

/// Why an engine could not be built or an operation was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The chosen maintenance strategy requires a q-hierarchical query
    /// (or a variable order with the stated properties) and the query is
    /// not one.
    NotSupported(String),
    /// The variable order is invalid for the query.
    VarOrder(VarOrderError),
    /// Updates must target a known dynamic relation.
    UnknownRelation(Sym),
    /// The relation is declared static (Sec. 4.5) and cannot be updated.
    StaticRelation(Sym),
    /// View trees require globally unique relation names (self-join-free).
    DuplicateRelation(Sym),
    /// A single-tuple update on this atom would not propagate in constant
    /// time under the chosen variable order.
    NonConstantUpdate {
        /// The offending relation.
        relation: Sym,
        /// Human-readable reason (which view key is not covered).
        detail: String,
    },
    /// A shard worker of a parallel engine died (panicked or hung up)
    /// before reporting its delta; the engine's state is unrecoverable.
    ShardFailure(String),
    /// The durable store behind a session failed (journal I/O, a corrupt
    /// snapshot, a mismatched recovery). Stringified because the
    /// underlying `io::Error` is neither `Clone` nor `Eq`.
    Store(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NotSupported(m) => write!(f, "not supported: {m}"),
            EngineError::VarOrder(e) => write!(f, "invalid variable order: {e}"),
            EngineError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            EngineError::StaticRelation(r) => write!(f, "relation {r} is static"),
            EngineError::DuplicateRelation(r) => {
                write!(f, "relation {r} occurs in several atoms (self-join)")
            }
            EngineError::NonConstantUpdate { relation, detail } => {
                write!(f, "updates to {relation} are not constant-time: {detail}")
            }
            EngineError::ShardFailure(m) => write!(f, "shard worker failed: {m}"),
            EngineError::Store(m) => write!(f, "durable store: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<VarOrderError> for EngineError {
    fn from(e: VarOrderError) -> Self {
        EngineError::VarOrder(e)
    }
}
