//! The four maintenance strategies of Fig 4, on two axes (Sec. 4.1):
//!
//! * **eager** vs **lazy** — propagate updates immediately, or only touch
//!   the input relations and do the work on an enumeration request;
//! * **list** vs **fact** — keep the output as a materialized list of
//!   tuples, or factorized over the views of a view tree.
//!
//! | engine | paper's name | corresponds to |
//! |---|---|---|
//! | [`EagerFactEngine`] | eager-fact | F-IVM \[22\] |
//! | [`EagerListEngine`] | eager-list | DBToaster \[26\] |
//! | [`LazyFactEngine`] | lazy-fact | F-IVM/delta hybrid |
//! | [`LazyListEngine`] | lazy-list | delta queries (re-evaluation) |

use crate::engine::Maintainer;
use crate::error::EngineError;
use crate::viewtree::ViewTree;
use ivm_data::ops::{eval_join_aggregate, Lift};
use ivm_data::{Database, Relation, Tuple, Update};
use ivm_query::Query;
use ivm_ring::Semiring;

/// Eager, factorized: a view tree maintained on every update; enumeration
/// descends the views with constant delay. O(1) update and delay for
/// q-hierarchical queries — the Theorem 4.1 upper bound.
pub struct EagerFactEngine<R> {
    tree: ViewTree<R>,
}

impl<R: Semiring> EagerFactEngine<R> {
    /// Build over an initial database. O(|D|) preprocessing.
    pub fn new(query: Query, db: &Database<R>, lift: Lift<R>) -> Result<Self, EngineError> {
        let mut tree = ViewTree::new(query, lift)?;
        tree.preprocess(db)?;
        Ok(EagerFactEngine { tree })
    }

    /// Build with an explicit variable order (static-dynamic trees).
    pub fn with_order(
        query: Query,
        vo: ivm_query::VarOrder,
        db: &Database<R>,
        lift: Lift<R>,
    ) -> Result<Self, EngineError> {
        let mut tree = ViewTree::with_order(query, vo, lift)?;
        tree.preprocess(db)?;
        Ok(EagerFactEngine { tree })
    }

    /// The underlying view tree.
    pub fn tree(&self) -> &ViewTree<R> {
        &self.tree
    }
}

impl<R: Semiring> Maintainer<R> for EagerFactEngine<R> {
    fn query(&self) -> &Query {
        self.tree.query()
    }

    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        self.tree.apply(upd)
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        self.tree.for_each_output(f)
    }
}

/// Eager, listed: the same view tree plus a materialized output relation,
/// updated through delta enumeration — each update costs O(|δQ|), the
/// DBToaster-style higher-order maintenance of Sec. 3.2.
pub struct EagerListEngine<R> {
    tree: ViewTree<R>,
    output: Relation<R>,
}

impl<R: Semiring> EagerListEngine<R> {
    /// Build over an initial database.
    pub fn new(query: Query, db: &Database<R>, lift: Lift<R>) -> Result<Self, EngineError> {
        let mut tree = ViewTree::new(query, lift)?;
        tree.preprocess(db)?;
        let output = tree.output();
        Ok(EagerListEngine { tree, output })
    }

    /// Number of materialized output tuples.
    pub fn output_size(&self) -> usize {
        self.output.len()
    }
}

impl<R: Semiring> Maintainer<R> for EagerListEngine<R> {
    fn query(&self) -> &Query {
        self.tree.query()
    }

    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        // Delta-enumerate against the pre-update state, then maintain.
        let output = &mut self.output;
        self.tree
            .delta_for_each(upd, &mut |t, d| output.apply(t.clone(), d))?;
        self.tree.apply(upd)
    }

    /// The update path already delta-enumerates to maintain the
    /// materialized output, so the batch's exact output delta is free:
    /// accumulate the per-update deltas (linearity makes their ⊎-sum the
    /// batch delta) instead of the default's empty placeholder.
    fn apply_batch(&mut self, batch: &[Update<R>]) -> Result<Relation<R>, EngineError> {
        let mut delta = Relation::new(self.tree.query().free.clone());
        for upd in ivm_data::consolidate(batch) {
            let output = &mut self.output;
            self.tree.delta_for_each(&upd, &mut |t, d| {
                output.apply(t.clone(), d);
                delta.apply(t.clone(), d);
            })?;
            self.tree.apply(&upd)?;
        }
        Ok(delta)
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        for (t, r) in self.output.iter() {
            f(t, r);
        }
    }
}

/// Lazy, factorized: updates are queued; an enumeration request first
/// drains the queue through the view tree (constant time each), then
/// enumerates factorized.
pub struct LazyFactEngine<R> {
    tree: ViewTree<R>,
    pending: Vec<Update<R>>,
}

impl<R: Semiring> LazyFactEngine<R> {
    /// Build over an initial database.
    pub fn new(query: Query, db: &Database<R>, lift: Lift<R>) -> Result<Self, EngineError> {
        let mut tree = ViewTree::new(query, lift)?;
        tree.preprocess(db)?;
        Ok(LazyFactEngine {
            tree,
            pending: Vec::new(),
        })
    }

    /// Number of queued updates.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drain the queue through the view tree.
    pub fn refresh(&mut self) -> Result<(), EngineError> {
        for upd in std::mem::take(&mut self.pending) {
            self.tree.apply(&upd)?;
        }
        Ok(())
    }
}

impl<R: Semiring> Maintainer<R> for LazyFactEngine<R> {
    fn query(&self) -> &Query {
        self.tree.query()
    }

    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        // Validate the target eagerly so errors surface at apply time.
        if self.tree.relation(upd.relation).is_none() {
            return Err(EngineError::UnknownRelation(upd.relation));
        }
        self.pending.push(upd.clone());
        Ok(())
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        self.refresh().expect("queued updates must be valid");
        self.tree.for_each_output(f)
    }
}

/// Lazy, listed: updates only touch the base relations; an enumeration
/// request re-evaluates the query from scratch (join + aggregate). This is
/// the classical delta-query/re-evaluation baseline.
pub struct LazyListEngine<R> {
    query: Query,
    db: Database<R>,
    lift: Lift<R>,
}

impl<R: Semiring> LazyListEngine<R> {
    /// Build over an initial database (cloned; updates are applied to the
    /// engine's copy).
    pub fn new(query: Query, db: &Database<R>, lift: Lift<R>) -> Result<Self, EngineError> {
        let mut own: Database<R> = Database::new();
        for atom in &query.atoms {
            match db.get(atom.name) {
                Some(r) => own.add(atom.name, r.clone()),
                None => own.create(atom.name, atom.schema.clone()),
            }
        }
        Ok(LazyListEngine {
            query,
            db: own,
            lift,
        })
    }

    /// Re-evaluate the query from scratch.
    pub fn reevaluate(&self) -> Relation<R> {
        let rels: Vec<&Relation<R>> = self
            .query
            .atoms
            .iter()
            .map(|a| self.db.relation(a.name))
            .collect();
        eval_join_aggregate(&rels, &self.query.free, self.lift)
    }
}

impl<R: Semiring> Maintainer<R> for LazyListEngine<R> {
    fn query(&self) -> &Query {
        &self.query
    }

    fn apply(&mut self, upd: &Update<R>) -> Result<(), EngineError> {
        if self.db.get(upd.relation).is_none() {
            return Err(EngineError::UnknownRelation(upd.relation));
        }
        self.db.apply(upd);
        Ok(())
    }

    fn for_each_output(&mut self, f: &mut dyn FnMut(&Tuple, &R)) {
        let out = self.reevaluate();
        for (t, r) in out.iter() {
            f(t, r);
        }
    }
}

macro_rules! engine_debug {
    ($($name:ident),*) => {$(
        impl<R: Semiring> std::fmt::Debug for $name<R> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name))
                    .field("query", self.query())
                    .finish_non_exhaustive()
            }
        }
    )*};
}
engine_debug!(
    EagerFactEngine,
    EagerListEngine,
    LazyFactEngine,
    LazyListEngine
);

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::ops::lift_one;
    use ivm_data::{sym, tup};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fig3() -> Query {
        ivm_query::examples::fig3_query()
    }

    /// All four engines agree with each other and the oracle under a
    /// random insert/delete stream.
    #[test]
    fn four_engines_agree() {
        let q = fig3();
        let db: Database<i64> = Database::new();
        let mut eager_fact = EagerFactEngine::new(q.clone(), &db, lift_one).unwrap();
        let mut eager_list = EagerListEngine::new(q.clone(), &db, lift_one).unwrap();
        let mut lazy_fact = LazyFactEngine::new(q.clone(), &db, lift_one).unwrap();
        let mut lazy_list = LazyListEngine::new(q.clone(), &db, lift_one).unwrap();

        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut rng = StdRng::seed_from_u64(7);
        let mut mult = std::collections::HashMap::new();
        for step in 0..200 {
            let y = rng.gen_range(0..4i64);
            let v = rng.gen_range(0..4i64);
            let rel = if rng.gen_bool(0.5) { rn } else { sn };
            // Valid streams only (Sec. 2): delete only present tuples.
            let cur = mult.entry((rel, y, v)).or_insert(0i64);
            let m: i64 = if rng.gen_bool(0.3) && *cur > 0 { -1 } else { 1 };
            *cur += m;
            let upd = Update::with_payload(rel, tup![y, v], m);
            eager_fact.apply(&upd).unwrap();
            eager_list.apply(&upd).unwrap();
            lazy_fact.apply(&upd).unwrap();
            lazy_list.apply(&upd).unwrap();

            if step % 37 == 0 {
                let expect = lazy_list.output();
                for (name, got) in [
                    ("eager_fact", eager_fact.output()),
                    ("eager_list", eager_list.output()),
                    ("lazy_fact", lazy_fact.output()),
                ] {
                    assert_eq!(got.len(), expect.len(), "{name} at step {step}");
                    for (t, p) in expect.iter() {
                        assert_eq!(&got.get(t), p, "{name} differs at {t:?}");
                    }
                }
            }
        }
    }

    /// Initial databases are honored by all engines.
    #[test]
    fn preprocessing_loads_database() {
        let q = fig3();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut db: Database<i64> = Database::new();
        db.create(rn, q.atoms[0].schema.clone());
        db.create(sn, q.atoms[1].schema.clone());
        db.apply(&Update::insert(rn, tup![1i64, 10i64]));
        db.apply(&Update::insert(sn, tup![1i64, 20i64]));

        let mut ef = EagerFactEngine::new(q.clone(), &db, lift_one).unwrap();
        let mut el = EagerListEngine::new(q.clone(), &db, lift_one).unwrap();
        let mut lf = LazyFactEngine::new(q.clone(), &db, lift_one).unwrap();
        let mut ll = LazyListEngine::new(q, &db, lift_one).unwrap();
        for eng in [
            &mut ef as &mut dyn Maintainer<i64>,
            &mut el,
            &mut lf,
            &mut ll,
        ] {
            assert_eq!(eng.output().get(&tup![1i64, 10i64, 20i64]), 1);
        }
    }

    /// Lazy engines do no maintenance work until asked to enumerate.
    #[test]
    fn lazy_fact_queues() {
        let q = fig3();
        let db: Database<i64> = Database::new();
        let mut lf = LazyFactEngine::new(q, &db, lift_one).unwrap();
        lf.apply(&Update::insert(sym("f3_R"), tup![1i64, 10i64]))
            .unwrap();
        assert_eq!(lf.pending_len(), 1);
        let _ = lf.output();
        assert_eq!(lf.pending_len(), 0);
    }

    /// Unknown relations are rejected by every engine.
    #[test]
    fn unknown_relation_rejected() {
        let q = fig3();
        let db: Database<i64> = Database::new();
        let bad: Update<i64> = Update::insert(sym("f3_nope"), tup![1i64]);
        assert!(EagerFactEngine::new(q.clone(), &db, lift_one)
            .unwrap()
            .apply(&bad)
            .is_err());
        assert!(LazyFactEngine::new(q.clone(), &db, lift_one)
            .unwrap()
            .apply(&bad)
            .is_err());
        assert!(LazyListEngine::new(q, &db, lift_one)
            .unwrap()
            .apply(&bad)
            .is_err());
    }

    /// All four specialized engines ingest whole batches through the one
    /// trait-level `apply_batch` and land in the same state as
    /// single-tuple application — including mutually cancelling updates,
    /// which consolidation removes before any engine sees them.
    #[test]
    fn trait_apply_batch_equals_singles() {
        let q = fig3();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let mut rng = StdRng::seed_from_u64(11);
        let batch: Vec<Update<i64>> = (0..60)
            .map(|_| {
                let rel = if rng.gen_bool(0.5) { rn } else { sn };
                let m = if rng.gen_bool(0.3) { -1 } else { 1 };
                Update::with_payload(rel, tup![rng.gen_range(0..3i64), rng.gen_range(0..3i64)], m)
            })
            .collect();
        let db: Database<i64> = Database::new();
        let mut batched: Vec<Box<dyn Maintainer<i64>>> = vec![
            Box::new(EagerFactEngine::new(fig3(), &db, lift_one).unwrap()),
            Box::new(EagerListEngine::new(fig3(), &db, lift_one).unwrap()),
            Box::new(LazyFactEngine::new(fig3(), &db, lift_one).unwrap()),
            Box::new(LazyListEngine::new(fig3(), &db, lift_one).unwrap()),
        ];
        let mut oracle = LazyListEngine::new(q, &db, lift_one).unwrap();
        for u in &batch {
            oracle.apply(u).unwrap();
        }
        let expect = oracle.output();
        for eng in &mut batched {
            eng.apply_batch(&batch).unwrap();
            let got = eng.output();
            assert_eq!(got.len(), expect.len());
            for (t, p) in expect.iter() {
                assert_eq!(&got.get(t), p, "at {t:?}");
            }
        }
    }

    /// Eager-list's override reports the exact output delta of the batch;
    /// a fully cancelling batch reports an empty delta and does no work.
    #[test]
    fn eager_list_apply_batch_returns_exact_delta() {
        let q = fig3();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        let db: Database<i64> = Database::new();
        let mut el = EagerListEngine::new(q, &db, lift_one).unwrap();
        let d = el
            .apply_batch(&[
                Update::insert(rn, tup![1i64, 10i64]),
                Update::insert(sn, tup![1i64, 20i64]),
            ])
            .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(&tup![1i64, 10i64, 20i64]), 1);
        // A second copy of the same R tuple adds one derivation.
        let d = el
            .apply_batch(&[Update::insert(rn, tup![1i64, 10i64])])
            .unwrap();
        assert_eq!(d.get(&tup![1i64, 10i64, 20i64]), 1);
        assert_eq!(el.output().get(&tup![1i64, 10i64, 20i64]), 2);
        // Insert ⊎ delete of the same tuple consolidates to nothing.
        let d = el
            .apply_batch(&[
                Update::insert(rn, tup![7i64, 7i64]),
                Update::delete(rn, tup![7i64, 7i64]),
            ])
            .unwrap();
        assert!(d.is_empty());
    }

    /// Eager-list maintains exactly the materialized output size.
    #[test]
    fn eager_list_tracks_output_size() {
        let q = fig3();
        let db: Database<i64> = Database::new();
        let mut el = EagerListEngine::new(q, &db, lift_one).unwrap();
        let (rn, sn) = (sym("f3_R"), sym("f3_S"));
        el.apply(&Update::insert(rn, tup![1i64, 10i64])).unwrap();
        assert_eq!(el.output_size(), 0);
        el.apply(&Update::insert(sn, tup![1i64, 20i64])).unwrap();
        assert_eq!(el.output_size(), 1);
        el.apply(&Update::delete(rn, tup![1i64, 10i64])).unwrap();
        assert_eq!(el.output_size(), 0);
    }
}
