//! Small variable-to-value binding environments used during delta
//! propagation and enumeration.
//!
//! Queries have a handful of variables, so a linear-scanned vector beats a
//! hash map and allocates once per engine (the buffer is reused across
//! updates).

use ivm_data::{Schema, Sym, Tuple, Value};

/// A set of variable bindings.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    entries: Vec<(Sym, Value)>,
}

impl Bindings {
    /// An empty environment.
    pub fn new() -> Self {
        Bindings {
            entries: Vec::with_capacity(8),
        }
    }

    /// Remove all bindings, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: Sym) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(s, _)| *s == v)
            .map(|(_, val)| val)
    }

    /// Bind `v := val`; replaces an existing binding.
    pub fn set(&mut self, v: Sym, val: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(s, _)| *s == v) {
            slot.1 = val;
        } else {
            self.entries.push((v, val));
        }
    }

    /// Remove the binding for `v` (no-op when absent).
    pub fn unset(&mut self, v: Sym) {
        self.entries.retain(|(s, _)| *s != v);
    }

    /// Bind a whole tuple against its schema.
    pub fn bind_tuple(&mut self, schema: &Schema, t: &Tuple) {
        debug_assert_eq!(schema.arity(), t.arity());
        for (i, &v) in schema.vars().iter().enumerate() {
            self.set(v, t.at(i).clone());
        }
    }

    /// Project the bindings onto a schema, `None` when a variable is
    /// unbound.
    pub fn project(&self, schema: &Schema) -> Option<Tuple> {
        let mut vals = Vec::with_capacity(schema.arity());
        for &v in schema.vars() {
            vals.push(self.get(v)?.clone());
        }
        Some(Tuple::new(vals))
    }

    /// Whether every variable in `schema` is bound.
    pub fn covers(&self, schema: &Schema) -> bool {
        schema.vars().iter().all(|&v| self.get(v).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::{tup, vars};

    #[test]
    fn set_get_unset() {
        let [a, b] = vars(["bi_A", "bi_B"]);
        let mut bs = Bindings::new();
        bs.set(a, Value::from(1i64));
        assert_eq!(bs.get(a), Some(&Value::from(1i64)));
        assert_eq!(bs.get(b), None);
        bs.set(a, Value::from(2i64));
        assert_eq!(bs.get(a), Some(&Value::from(2i64)));
        bs.unset(a);
        assert_eq!(bs.get(a), None);
    }

    #[test]
    fn bind_and_project() {
        let [a, b, c] = vars(["bi_A2", "bi_B2", "bi_C2"]);
        let mut bs = Bindings::new();
        bs.bind_tuple(&Schema::from([a, b]), &tup![1i64, 2i64]);
        assert_eq!(bs.project(&Schema::from([b, a])), Some(tup![2i64, 1i64]));
        assert_eq!(bs.project(&Schema::from([c])), None);
        assert!(bs.covers(&Schema::from([a, b])));
        assert!(!bs.covers(&Schema::from([a, c])));
    }
}
