//! Hierarchical and q-hierarchical queries (Def. 4.2) and the dominance
//! relations used by the CQAP dichotomy (Def. 4.7).
//!
//! These checks run in time polynomial in the query size and decide which
//! maintenance strategy applies:
//!
//! * q-hierarchical ⟹ O(|D|) preprocessing, O(1) update, O(1) delay
//!   (Theorem 4.1, upper bound);
//! * otherwise (self-join free) no algorithm gets both update time and
//!   delay below O(|D|^{1/2−γ}) unless the OuMv conjecture fails
//!   (Theorem 4.1, lower bound).

use crate::ast::Query;
use ivm_data::Sym;

/// Relationship between `atoms(X)` and `atoms(Y)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomSetRel {
    /// `atoms(X) = atoms(Y)`.
    Equal,
    /// `atoms(X) ⊂ atoms(Y)` (strict).
    Subset,
    /// `atoms(X) ⊃ atoms(Y)` (strict).
    Superset,
    /// `atoms(X) ∩ atoms(Y) = ∅`.
    Disjoint,
    /// Properly overlapping — the witness of non-hierarchy.
    Crossing,
}

/// Compare `atoms(X)` and `atoms(Y)` in a query.
pub fn atom_set_relation(q: &Query, x: Sym, y: Sym) -> AtomSetRel {
    let ax = q.atoms_of(x);
    let ay = q.atoms_of(y);
    if ax == ay {
        AtomSetRel::Equal
    } else if ax & ay == ax {
        AtomSetRel::Subset
    } else if ax & ay == ay {
        AtomSetRel::Superset
    } else if ax & ay == 0 {
        AtomSetRel::Disjoint
    } else {
        AtomSetRel::Crossing
    }
}

/// Whether the query is *hierarchical*: for any two variables `X`, `Y`,
/// `atoms(X) ⊆ atoms(Y)`, `atoms(Y) ⊆ atoms(X)`, or they are disjoint.
pub fn is_hierarchical(q: &Query) -> bool {
    hierarchy_violation(q).is_none()
}

/// A witness pair violating the hierarchy condition, if any.
pub fn hierarchy_violation(q: &Query) -> Option<(Sym, Sym)> {
    let vs = q.variables();
    for (i, &x) in vs.vars().iter().enumerate() {
        for &y in &vs.vars()[i + 1..] {
            if atom_set_relation(q, x, y) == AtomSetRel::Crossing {
                return Some((x, y));
            }
        }
    }
    None
}

/// Whether `b` *dominates* `a`: `atoms(a) ⊂ atoms(b)` strictly (Def. 4.7).
pub fn dominates(q: &Query, b: Sym, a: Sym) -> bool {
    atom_set_relation(q, a, b) == AtomSetRel::Subset
}

/// Whether the query is *free-dominant*: whenever `B` dominates `A` and `A`
/// is free, `B` is free. For hierarchical queries this is exactly the
/// "q" condition of Def. 4.2 (footnote 4 of the paper).
pub fn is_free_dominant(q: &Query) -> bool {
    let vs = q.variables();
    for &a in vs.vars() {
        if !q.is_free(a) {
            continue;
        }
        for &b in vs.vars() {
            if b != a && dominates(q, b, a) && !q.is_free(b) {
                return false;
            }
        }
    }
    true
}

/// Whether the query is *input-dominant*: whenever `B` dominates `A` and
/// `A` is an input variable, `B` is an input variable (Def. 4.7).
pub fn is_input_dominant(q: &Query) -> bool {
    let vs = q.variables();
    for &a in vs.vars() {
        if !q.is_input(a) {
            continue;
        }
        for &b in vs.vars() {
            if b != a && dominates(q, b, a) && !q.is_input(b) {
                return false;
            }
        }
    }
    true
}

/// Whether the query is *q-hierarchical* (Def. 4.2): hierarchical, and for
/// any `X`, `Y` with `atoms(X) ⊃ atoms(Y)`, if `Y` is free then `X` is free.
pub fn is_q_hierarchical(q: &Query) -> bool {
    is_hierarchical(q) && is_free_dominant(q)
}

/// The verdict of Theorem 4.1 for a self-join-free query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dichotomy {
    /// O(|D|) preprocessing, O(1) single-tuple update, O(1) delay.
    Tractable,
    /// No O(|D|^{1/2−γ}) update + delay, conditioned on OuMv.
    Hard,
}

/// Classify a self-join-free query per Theorem 4.1.
pub fn classify(q: &Query) -> Dichotomy {
    if is_q_hierarchical(q) {
        Dichotomy::Tractable
    } else {
        Dichotomy::Hard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;
    use ivm_data::{sym, vars};

    /// Ex 4.3: Q = Σ_{X,Y} R(X)·S(X,Y)·T(Y) is non-hierarchical.
    #[test]
    fn example_4_3_non_hierarchical() {
        let [x, y] = vars(["h_X", "h_Y"]);
        let q = Query::new(
            "h_q1",
            [],
            vec![
                Atom::new(sym("h_R"), [x]),
                Atom::new(sym("h_S"), [x, y]),
                Atom::new(sym("h_T"), [y]),
            ],
        );
        assert!(!is_hierarchical(&q));
        let (a, b) = hierarchy_violation(&q).unwrap();
        assert!((a == x && b == y) || (a == y && b == x));
        assert_eq!(classify(&q), Dichotomy::Hard);
    }

    /// Ex 4.3: dropping any atom makes it hierarchical.
    #[test]
    fn example_4_3_drop_atom_hierarchical() {
        let [x, y] = vars(["h_X2", "h_Y2"]);
        let q = Query::new(
            "h_q2",
            [],
            vec![Atom::new(sym("h_S2"), [x, y]), Atom::new(sym("h_T2"), [y])],
        );
        assert!(is_hierarchical(&q));
        assert!(is_q_hierarchical(&q)); // Boolean: no free vars to dominate.
    }

    /// Ex 4.3: Q(X) = Σ_Y R(X,Y)·S(Y) is hierarchical but not q-hierarchical.
    #[test]
    fn example_4_3_hierarchical_not_q() {
        let [x, y] = vars(["h_X3", "h_Y3"]);
        let q = Query::new(
            "h_q3",
            [x],
            vec![Atom::new(sym("h_R3"), [x, y]), Atom::new(sym("h_S3"), [y])],
        );
        assert!(is_hierarchical(&q));
        // atoms(X) = {R} ⊂ atoms(Y) = {R, S}; Y dominates X... check
        // direction: X free, Y bound, atoms(Y) ⊃ atoms(X) means Y dominates
        // X, so Y must be free — it is not.
        assert!(!is_free_dominant(&q));
        assert!(!is_q_hierarchical(&q));
        assert_eq!(classify(&q), Dichotomy::Hard);
    }

    /// Fig 3: Q(Y,X,Z) = R(Y,X)·S(Y,Z) is q-hierarchical.
    #[test]
    fn fig3_query_q_hierarchical() {
        let [x, y, z] = vars(["h_X4", "h_Y4", "h_Z4"]);
        let q = Query::new(
            "h_q4",
            [y, x, z],
            vec![
                Atom::new(sym("h_R4"), [y, x]),
                Atom::new(sym("h_S4"), [y, z]),
            ],
        );
        assert!(is_q_hierarchical(&q));
        assert_eq!(classify(&q), Dichotomy::Tractable);
    }

    /// Ex 4.5: Q2(A,B,C) = R(A,B)·S(B,C) is q-hierarchical; the path
    /// Q1(A,B,C,D) = R(A,B)·S(B,C)·T(C,D) is not hierarchical.
    #[test]
    fn example_4_5_cascade_pair() {
        let [a, b, c, d] = vars(["h_A5", "h_B5", "h_C5", "h_D5"]);
        let (r, s, t) = (sym("h_R5"), sym("h_S5"), sym("h_T5"));
        let q2 = Query::new(
            "h_q2of5",
            [a, b, c],
            vec![Atom::new(r, [a, b]), Atom::new(s, [b, c])],
        );
        assert!(is_q_hierarchical(&q2));
        let q1 = Query::new(
            "h_q1of5",
            [a, b, c, d],
            vec![
                Atom::new(r, [a, b]),
                Atom::new(s, [b, c]),
                Atom::new(t, [c, d]),
            ],
        );
        assert!(!is_hierarchical(&q1));
    }

    /// The triangle count query is not hierarchical.
    #[test]
    fn triangle_not_hierarchical() {
        let [a, b, c] = vars(["h_A6", "h_B6", "h_C6"]);
        let q = Query::new(
            "h_tri",
            [],
            vec![
                Atom::new(sym("h_R6"), [a, b]),
                Atom::new(sym("h_S6"), [b, c]),
                Atom::new(sym("h_T6"), [c, a]),
            ],
        );
        assert!(!is_hierarchical(&q));
    }

    /// Equal atom sets never violate q-hierarchy regardless of freeness.
    #[test]
    fn equal_atom_sets_are_fine() {
        let [a, b] = vars(["h_A7", "h_B7"]);
        let q = Query::new("h_q7", [a], vec![Atom::new(sym("h_R7"), [a, b])]);
        assert!(is_q_hierarchical(&q));
    }

    /// Input dominance on Q(A|B) = S(A,B)·T(B): atoms(A) = {S} ⊂ {S,T} =
    /// atoms(B); B input, A output. B dominates A; A is free so B must be
    /// free (it is); A is not input so input-dominance holds.
    #[test]
    fn input_dominance_example() {
        let [a, b] = vars(["h_A8", "h_B8"]);
        let q = Query::with_access_pattern(
            "h_q8",
            [a],
            [b],
            vec![Atom::new(sym("h_S8"), [a, b]), Atom::new(sym("h_T8"), [b])],
        );
        assert!(is_hierarchical(&q));
        assert!(is_free_dominant(&q));
        assert!(is_input_dominant(&q));
    }
}
