//! Constructors for every query named in the paper, shared by tests,
//! examples, and benchmarks. Relation and variable names are namespaced
//! (`ret_`, `tri_`, …) so concurrent tests never collide in the interner.

use crate::ast::{Atom, Query};
use ivm_data::{sym, Sym};

/// The Boolean triangle count `Q = Σ_{A,B,C} R(A,B)·S(B,C)·T(C,A)`
/// (Sec. 3) over relation names `tri_R`, `tri_S`, `tri_T`.
pub fn triangle_count() -> Query {
    let [a, b, c] = ivm_data::vars(["tri_A", "tri_B", "tri_C"]);
    Query::new(
        "tri_Q",
        [],
        vec![
            Atom::new(sym("tri_R"), [a, b]),
            Atom::new(sym("tri_S"), [b, c]),
            Atom::new(sym("tri_T"), [c, a]),
        ],
    )
}

/// Ex 4.6: triangle detection with all nodes given,
/// `Q(·|A,B,C) = E(A,B)·E(B,C)·E(C,A)` — a tractable CQAP.
pub fn triangle_detect_cqap() -> Query {
    let [a, b, c] = ivm_data::vars(["tdc_A", "tdc_B", "tdc_C"]);
    let e = sym("tdc_E");
    Query::with_access_pattern(
        "tdc_Q",
        [],
        [a, b, c],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    )
}

/// Ex 4.6: edge triangle listing `Q(C|A,B)` — not a tractable CQAP.
pub fn edge_triangle_listing_cqap() -> Query {
    let [a, b, c] = ivm_data::vars(["etl_A", "etl_B", "etl_C"]);
    let e = sym("etl_E");
    Query::with_access_pattern(
        "etl_Q",
        [c],
        [a, b],
        vec![
            Atom::new(e, [a, b]),
            Atom::new(e, [b, c]),
            Atom::new(e, [c, a]),
        ],
    )
}

/// Ex 4.6: `Q(A|B) = S(A,B)·T(B)` — a tractable CQAP.
pub fn lookup_cqap() -> Query {
    let [a, b] = ivm_data::vars(["lk_A", "lk_B"]);
    Query::with_access_pattern(
        "lk_Q",
        [a],
        [b],
        vec![Atom::new(sym("lk_S"), [a, b]), Atom::new(sym("lk_T"), [b])],
    )
}

/// Fig 3 / Ex 4.4: `Q(Y,X,Z) = R(Y,X)·S(Y,Z)` — q-hierarchical.
pub fn fig3_query() -> Query {
    let [x, y, z] = ivm_data::vars(["f3_X", "f3_Y", "f3_Z"]);
    Query::new(
        "f3_Q",
        [y, x, z],
        vec![
            Atom::new(sym("f3_R"), [y, x]),
            Atom::new(sym("f3_S"), [y, z]),
        ],
    )
}

/// Ex 4.3: `Q = Σ_{X,Y} R(X)·S(X,Y)·T(Y)` — the simplest non-hierarchical
/// query.
pub fn ex43_non_hierarchical() -> Query {
    let [x, y] = ivm_data::vars(["e43_X", "e43_Y"]);
    Query::new(
        "e43_Q",
        [],
        vec![
            Atom::new(sym("e43_R"), [x]),
            Atom::new(sym("e43_S"), [x, y]),
            Atom::new(sym("e43_T"), [y]),
        ],
    )
}

/// Ex 4.3 / Ex 5.1: `Q(X) = Σ_Y R(X,Y)·S(Y)` — hierarchical but not
/// q-hierarchical; the simplest query with a preprocessing/update/delay
/// trade-off (Fig 7).
pub fn ex51_query() -> Query {
    let [x, y] = ivm_data::vars(["e51_A", "e51_B"]);
    Query::new(
        "e51_Q",
        [x],
        vec![
            Atom::new(sym("e51_R"), [x, y]),
            Atom::new(sym("e51_S"), [y]),
        ],
    )
}

/// Ex 4.5: the cascade pair `(Q1, Q2)` with
/// `Q1(A,B,C,D) = R(A,B)·S(B,C)·T(C,D)` and `Q2(A,B,C) = R(A,B)·S(B,C)`.
pub fn ex45_pair() -> (Query, Query) {
    let [a, b, c, d] = ivm_data::vars(["e45_A", "e45_B", "e45_C", "e45_D"]);
    let (r, s, t) = (sym("e45_R"), sym("e45_S"), sym("e45_T"));
    let q1 = Query::new(
        "e45_Q1",
        [a, b, c, d],
        vec![
            Atom::new(r, [a, b]),
            Atom::new(s, [b, c]),
            Atom::new(t, [c, d]),
        ],
    );
    let q2 = Query::new(
        "e45_Q2",
        [a, b, c],
        vec![Atom::new(r, [a, b]), Atom::new(s, [b, c])],
    );
    (q1, q2)
}

/// Ex 4.12: `Q(Z,Y,X,W) = R(X,W)·S(X,Y)·T(Y,Z)` with FDs `X→Y`, `Y→Z`.
pub fn ex412_query() -> (Query, Vec<crate::fd::Fd>) {
    let [w, x, y, z] = ivm_data::vars(["e412_W", "e412_X", "e412_Y", "e412_Z"]);
    let q = Query::new(
        "e412_Q",
        [z, y, x, w],
        vec![
            Atom::new(sym("e412_R"), [x, w]),
            Atom::new(sym("e412_S"), [x, y]),
            Atom::new(sym("e412_T"), [y, z]),
        ],
    );
    let sigma = vec![crate::fd::Fd::new([x], [y]), crate::fd::Fd::new([y], [z])];
    (q, sigma)
}

/// Ex 4.14: `Q(A,B,C) = Σ_D R^d(A,D)·S^d(A,B)·T^s(B,C)` — tractable with
/// static `T`, intractable all-dynamic.
pub fn ex414_query() -> Query {
    let [a, b, c, d] = ivm_data::vars(["e414_A", "e414_B", "e414_C", "e414_D"]);
    Query::new(
        "e414_Q",
        [a, b, c],
        vec![
            Atom::new(sym("e414_R"), [a, d]),
            Atom::new(sym("e414_S"), [a, b]),
            Atom::new_static(sym("e414_T"), [b, c]),
        ],
    )
}

/// Names of the Retailer relations used by the Fig 4 experiment.
pub struct RetailerNames {
    /// Inventory(locn, dateid, ksn) — the frequently updated fact table.
    pub inventory: Sym,
    /// Sales(locn, dateid, ksn, units).
    pub sales: Sym,
    /// Weather(locn, dateid, rain).
    pub weather: Sym,
    /// Location(locn, zip).
    pub location: Sym,
    /// Census(locn, zip, population) — materialized Σ-reduct of
    /// Census(zip, population) under the FD `zip → locn` (Ex 4.10).
    pub census: Sym,
}

/// The Fig 4 q-hierarchical 5-relation Retailer join.
///
/// The paper's query is non-hierarchical as written but becomes
/// q-hierarchical under the FD `zip → locn` (Ex 4.10); as Theorem 4.11
/// prescribes, the engines run on the Σ-reduct, whose only schema change is
/// the extension of Census by the FD-implied `locn` column. Our generator
/// materializes that column, so the query below is the reduct.
pub fn retailer_query() -> (Query, RetailerNames) {
    let [locn, dateid, ksn, units, rain, zip, pop] = ivm_data::vars([
        "ret_locn",
        "ret_dateid",
        "ret_ksn",
        "ret_units",
        "ret_rain",
        "ret_zip",
        "ret_population",
    ]);
    let names = RetailerNames {
        inventory: sym("ret_Inventory"),
        sales: sym("ret_Sales"),
        weather: sym("ret_Weather"),
        location: sym("ret_Location"),
        census: sym("ret_Census"),
    };
    let q = Query::new(
        "ret_Q",
        [locn, dateid, ksn, units, rain, zip, pop],
        vec![
            Atom::new(names.inventory, [locn, dateid, ksn]),
            Atom::new(names.sales, [locn, dateid, ksn, units]),
            Atom::new(names.weather, [locn, dateid, rain]),
            Atom::new(names.location, [locn, zip]),
            Atom::new(names.census, [locn, zip, pop]),
        ],
    );
    (q, names)
}

/// Ex 4.13: the JOB-style PK–FK join
/// `Q = Title(m)·MovieCompanies(m,c)·CompanyName(c)` (non-join columns
/// elided; `m`/`c` are the movie/company keys).
pub fn job_pkfk_query() -> Query {
    let [m, c] = ivm_data::vars(["job_movie", "job_company"]);
    Query::new(
        "job_Q",
        [],
        vec![
            Atom::new(sym("job_Title"), [m]),
            Atom::new(sym("job_MovieCompanies"), [m, c]),
            Atom::new(sym("job_CompanyName"), [c]),
        ],
    )
}

/// The 3-path join used by the insert-only experiment (Sec. 4.6):
/// `Q(A,B,C,D) = R(A,B)·S(B,C)·T(C,D)` — α-acyclic, not q-hierarchical.
pub fn path3_query() -> Query {
    let [a, b, c, d] = ivm_data::vars(["p3_A", "p3_B", "p3_C", "p3_D"]);
    Query::new(
        "p3_Q",
        [a, b, c, d],
        vec![
            Atom::new(sym("p3_R"), [a, b]),
            Atom::new(sym("p3_S"), [b, c]),
            Atom::new(sym("p3_T"), [c, d]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic::{is_acyclic, is_free_connex};
    use crate::cqap::is_tractable_cqap;
    use crate::fd::reduct_is_q_hierarchical;
    use crate::hierarchy::{is_hierarchical, is_q_hierarchical};

    /// The complete classification table of the paper's example queries —
    /// each verdict is stated in the text.
    #[test]
    fn paper_classification_table() {
        assert!(!is_hierarchical(&triangle_count()));
        assert!(!is_acyclic(&triangle_count()));

        assert!(is_tractable_cqap(&triangle_detect_cqap()));
        assert!(!is_tractable_cqap(&edge_triangle_listing_cqap()));
        assert!(is_tractable_cqap(&lookup_cqap()));

        assert!(is_q_hierarchical(&fig3_query()));
        assert!(!is_hierarchical(&ex43_non_hierarchical()));
        assert!(is_hierarchical(&ex51_query()));
        assert!(!is_q_hierarchical(&ex51_query()));

        let (q1, q2) = ex45_pair();
        assert!(!is_hierarchical(&q1));
        assert!(is_q_hierarchical(&q2));

        let (q412, sigma) = ex412_query();
        assert!(!is_hierarchical(&q412));
        assert!(reduct_is_q_hierarchical(&q412, &sigma));

        assert!(is_q_hierarchical(&retailer_query().0));

        assert!(!is_q_hierarchical(&job_pkfk_query()));
        assert!(is_acyclic(&job_pkfk_query()));

        assert!(is_acyclic(&path3_query()));
        assert!(is_free_connex(&path3_query()));
        assert!(!is_q_hierarchical(&path3_query()));
    }

    /// The Retailer query admits a canonical view tree with constant
    /// updates for all five relations.
    #[test]
    fn retailer_has_constant_update_tree() {
        let (q, _) = retailer_query();
        let vo = crate::varorder::VarOrder::canonical(&q).unwrap();
        assert!(vo.free_top(&q));
        assert!(vo.constant_update_atoms(&q).iter().all(|&b| b));
    }

    /// Ex 4.14 is tractable static-dynamic but not all-dynamic.
    #[test]
    fn ex414_static_dynamic() {
        let q = ex414_query();
        assert!(!is_q_hierarchical(&q));
        assert!(crate::varorder::is_tractable_static_dynamic(&q));
    }
}
