//! Cascading q-hierarchical queries (Sec. 4.2).
//!
//! A non-q-hierarchical query `Q1` can sometimes be rewritten to use a
//! q-hierarchical query `Q2` as a subquery (Ex 4.5): if `Q2`'s atoms embed
//! identically into `Q1` and `Q2` exposes every variable its atoms share
//! with the rest of `Q1`, then `Q1' = Q2 · rest` is equivalent to `Q1`.
//! When `Q1'` is itself q-hierarchical (treating `Q2`'s output as a base
//! relation), both queries can be maintained with amortized constant update
//! time and constant delay, provided `Q2`'s output is enumerated before
//! `Q1`'s — the enumeration piggybacks the propagation of `Q2`'s output
//! tuples into `Q1'`'s view tree.

use crate::ast::{Atom, Query};
use crate::hierarchy::is_q_hierarchical;
use ivm_data::Schema;

/// A successful cascade rewriting of `q1` through `q2`.
#[derive(Clone, Debug)]
pub struct CascadeRewriting {
    /// The q-hierarchical subquery.
    pub q2: Query,
    /// Atoms of `q1` not covered by `q2`.
    pub rest: Vec<Atom>,
    /// The rewriting `Q1'(free(Q1)) = Q2(free(Q2)) · rest` —
    /// q-hierarchical with `Q2` treated as a base relation.
    pub rewritten: Query,
}

/// Attempt to rewrite `q1` using `q2` (identity homomorphism, as in
/// Ex 4.5). Returns `None` when any precondition fails:
///
/// 1. `q2` is q-hierarchical (it must be maintainable on its own);
/// 2. every atom of `q2` occurs in `q1` (same name and schema);
/// 3. `free(q2)` covers both `q1`'s free variables inside `q2` and every
///    variable shared between `q2`'s atoms and the rest of `q1`
///    (equivalence of the rewriting);
/// 4. the rewriting is q-hierarchical.
pub fn rewrite_with(q1: &Query, q2: &Query) -> Option<CascadeRewriting> {
    if !is_q_hierarchical(q2) {
        return None;
    }
    // Condition 2: identity embedding of atoms.
    let mut rest: Vec<Atom> = q1.atoms.clone();
    for a2 in &q2.atoms {
        let pos = rest
            .iter()
            .position(|a1| a1.name == a2.name && a1.schema == a2.schema)?;
        rest.remove(pos);
    }
    // Condition 3: interface coverage.
    let q2_vars = q2.variables();
    let mut rest_vars = Schema::empty();
    for a in &rest {
        rest_vars = rest_vars.union(&a.schema);
    }
    let interface = q2_vars.intersect(&rest_vars);
    if !interface.subset_of(&q2.free) {
        return None;
    }
    let q1_free_in_q2 = q1.free.intersect(&q2_vars);
    if !q1_free_in_q2.subset_of(&q2.free) {
        return None;
    }
    // Condition 4: the rewriting is q-hierarchical.
    let mut atoms = vec![Atom::new(q2.name, q2.free.clone())];
    atoms.extend(rest.iter().cloned());
    let rewritten = Query {
        name: ivm_data::sym(&format!("{}'", q1.name)),
        free: q1.free.clone(),
        input: q1.input.clone(),
        atoms,
    };
    if !is_q_hierarchical(&rewritten) {
        return None;
    }
    Some(CascadeRewriting {
        q2: q2.clone(),
        rest,
        rewritten,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::is_hierarchical;
    use ivm_data::{sym, vars};

    fn ex45() -> (Query, Query) {
        let [a, b, c, d] = vars(["cs_A", "cs_B", "cs_C", "cs_D"]);
        let (r, s, t) = (sym("cs_R"), sym("cs_S"), sym("cs_T"));
        let q1 = Query::new(
            "cs_Q1",
            [a, b, c, d],
            vec![
                Atom::new(r, [a, b]),
                Atom::new(s, [b, c]),
                Atom::new(t, [c, d]),
            ],
        );
        let q2 = Query::new(
            "cs_Q2",
            [a, b, c],
            vec![Atom::new(r, [a, b]), Atom::new(s, [b, c])],
        );
        (q1, q2)
    }

    /// Ex 4.5: Q1 is not hierarchical, Q2 is q-hierarchical, and the
    /// rewriting Q1' = Q2(A,B,C)·T(C,D) is q-hierarchical.
    #[test]
    fn example_4_5_rewrites() {
        let (q1, q2) = ex45();
        assert!(!is_hierarchical(&q1));
        assert!(is_q_hierarchical(&q2));
        let rw = rewrite_with(&q1, &q2).expect("rewriting must exist");
        assert_eq!(rw.rest.len(), 1);
        assert!(is_q_hierarchical(&rw.rewritten));
        assert_eq!(rw.rewritten.atoms.len(), 2);
    }

    /// A subquery hiding the interface variable cannot be used: Q2 with
    /// free vars {A} only does not expose C, which the rest needs.
    #[test]
    fn interface_must_be_exposed() {
        let (q1, _) = ex45();
        let [a, b, c] = vars(["cs_A", "cs_B", "cs_C"]);
        let (r, s) = (sym("cs_R"), sym("cs_S"));
        let q2_hidden = Query::new(
            "cs_Q2h",
            [a],
            vec![Atom::new(r, [a, b]), Atom::new(s, [b, c])],
        );
        // (Also not q-hierarchical since C is bound and dominated... the
        // subquery fails either way.)
        assert!(rewrite_with(&q1, &q2_hidden).is_none());
    }

    /// A q2 whose atoms are not in q1 is rejected.
    #[test]
    fn atoms_must_embed() {
        let (q1, _) = ex45();
        let [x, y] = vars(["cs_X2", "cs_Y2"]);
        let q2 = Query::new("cs_Qx", [x, y], vec![Atom::new(sym("cs_U"), [x, y])]);
        assert!(rewrite_with(&q1, &q2).is_none());
    }

    /// A non-q-hierarchical q2 is rejected immediately.
    #[test]
    fn q2_must_be_q_hierarchical() {
        let (q1, _) = ex45();
        let [a, b, c, d] = vars(["cs_A", "cs_B", "cs_C", "cs_D"]);
        let (r, s, t) = (sym("cs_R"), sym("cs_S"), sym("cs_T"));
        // q2 = q1 itself (not hierarchical).
        let q2 = Query::new(
            "cs_Qall",
            [a, b, c, d],
            vec![
                Atom::new(r, [a, b]),
                Atom::new(s, [b, c]),
                Atom::new(t, [c, d]),
            ],
        );
        assert!(rewrite_with(&q1, &q2).is_none());
    }

    /// Longer paths cascade too: Q1 = R·S·T·U via Q2 = R·S, then the
    /// rewriting is again non-hierarchical — rewriting is not always
    /// enough with one cascade level.
    #[test]
    fn four_path_needs_more_levels() {
        let [a, b, c, d, e] = vars(["cs_A3", "cs_B3", "cs_C3", "cs_D3", "cs_E3"]);
        let (r, s, t, u) = (sym("cs_R3"), sym("cs_S3"), sym("cs_T3"), sym("cs_U3"));
        let q1 = Query::new(
            "cs_Q13",
            [a, b, c, d, e],
            vec![
                Atom::new(r, [a, b]),
                Atom::new(s, [b, c]),
                Atom::new(t, [c, d]),
                Atom::new(u, [d, e]),
            ],
        );
        let q2 = Query::new(
            "cs_Q23",
            [a, b, c],
            vec![Atom::new(r, [a, b]), Atom::new(s, [b, c])],
        );
        // Q2(A,B,C)·T(C,D)·U(D,E) is still a 3-path: not hierarchical.
        assert!(rewrite_with(&q1, &q2).is_none());
        // But cascading twice works: Q3 = Q2·T is q-hierarchical as a
        // rewriting target of the tail.
        let q3 = Query::new(
            "cs_Q33",
            [a, b, c, d],
            vec![Atom::new(sym("cs_Q23"), [a, b, c]), Atom::new(t, [c, d])],
        );
        assert!(is_q_hierarchical(&q3));
        let q1_via_q3 = Query::new(
            "cs_Q13b",
            [a, b, c, d, e],
            vec![Atom::new(sym("cs_Q33"), [a, b, c, d]), Atom::new(u, [d, e])],
        );
        assert!(is_q_hierarchical(&q1_via_q3));
    }
}
