//! α-acyclicity (GYO reduction) and free-connexity.
//!
//! The q-hierarchical queries form a strict subclass of the free-connex
//! α-acyclic queries (Sec. 4.1); α-acyclicity is also the condition under
//! which insert-only maintenance achieves amortized constant time per
//! insert (Sec. 4.6).

use crate::ast::Query;
use ivm_data::Schema;

/// Whether a hypergraph (a list of hyperedges over variables) is α-acyclic,
/// decided by the GYO reduction: repeatedly (1) delete vertices occurring
/// in at most one edge ("ear vertices") and (2) delete edges contained in
/// other edges, until fixpoint; acyclic iff everything vanishes.
pub fn gyo_acyclic(edges: &[Schema]) -> bool {
    let mut edges: Vec<Vec<ivm_data::Sym>> = edges
        .iter()
        .map(|s| s.vars().to_vec())
        .filter(|e| !e.is_empty())
        .collect();
    loop {
        let mut changed = false;

        // Rule 1: remove vertices occurring in exactly one edge.
        let mut counts: ivm_data::FxHashMap<ivm_data::Sym, usize> = Default::default();
        for e in &edges {
            for &v in e {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|v| counts[v] > 1);
            if e.len() != before {
                changed = true;
            }
        }
        edges.retain(|e| !e.is_empty());

        // Rule 2: remove edges contained in another edge.
        let mut keep = vec![true; edges.len()];
        for i in 0..edges.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..edges.len() {
                if i == j || !keep[j] {
                    continue;
                }
                let contained = edges[i].iter().all(|v| edges[j].contains(v));
                // Break ties (equal edges) by index so only one survives.
                let strict = contained
                    && (edges[i].len() < edges[j].len()
                        || (edges[i].len() == edges[j].len() && i > j));
                if strict {
                    keep[i] = false;
                    changed = true;
                    break;
                }
            }
        }
        let mut it = keep.iter();
        edges.retain(|_| *it.next().unwrap());

        if edges.is_empty() {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

/// Whether the query's hypergraph is α-acyclic.
pub fn is_acyclic(q: &Query) -> bool {
    let edges: Vec<Schema> = q.atoms.iter().map(|a| a.schema.clone()).collect();
    gyo_acyclic(&edges)
}

/// Whether the query is free-connex: acyclic, and still acyclic after
/// adding the head (free variables) as an extra hyperedge.
pub fn is_free_connex(q: &Query) -> bool {
    if !is_acyclic(q) {
        return false;
    }
    let mut edges: Vec<Schema> = q.atoms.iter().map(|a| a.schema.clone()).collect();
    if !q.free.is_empty() {
        edges.push(q.free.clone());
    }
    gyo_acyclic(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;
    use ivm_data::{sym, vars};

    #[test]
    fn triangle_is_cyclic() {
        let [a, b, c] = vars(["gy_A", "gy_B", "gy_C"]);
        let q = Query::new(
            "gy_tri",
            [],
            vec![
                Atom::new(sym("gy_R"), [a, b]),
                Atom::new(sym("gy_S"), [b, c]),
                Atom::new(sym("gy_T"), [c, a]),
            ],
        );
        assert!(!is_acyclic(&q));
    }

    #[test]
    fn path_is_acyclic() {
        let [a, b, c, d] = vars(["gy_A2", "gy_B2", "gy_C2", "gy_D2"]);
        let q = Query::new(
            "gy_path",
            [a, d],
            vec![
                Atom::new(sym("gy_R2"), [a, b]),
                Atom::new(sym("gy_S2"), [b, c]),
                Atom::new(sym("gy_T2"), [c, d]),
            ],
        );
        assert!(is_acyclic(&q));
    }

    /// Q(A, D) over a path R(A,B)·S(B,C)·T(C,D) is acyclic but not
    /// free-connex: the head edge {A, D} closes a cycle.
    #[test]
    fn path_endpoints_not_free_connex() {
        let [a, b, c, d] = vars(["gy_A3", "gy_B3", "gy_C3", "gy_D3"]);
        let q = Query::new(
            "gy_path3",
            [a, d],
            vec![
                Atom::new(sym("gy_R3"), [a, b]),
                Atom::new(sym("gy_S3"), [b, c]),
                Atom::new(sym("gy_T3"), [c, d]),
            ],
        );
        assert!(is_acyclic(&q));
        assert!(!is_free_connex(&q));
    }

    /// Full output keeps the path free-connex.
    #[test]
    fn full_path_free_connex() {
        let [a, b, c] = vars(["gy_A4", "gy_B4", "gy_C4"]);
        let q = Query::new(
            "gy_path4",
            [a, b, c],
            vec![
                Atom::new(sym("gy_R4"), [a, b]),
                Atom::new(sym("gy_S4"), [b, c]),
            ],
        );
        assert!(is_free_connex(&q));
    }

    /// Every q-hierarchical query is free-connex α-acyclic (strict
    /// inclusion stated in Sec. 4.1) — spot-check on the Fig 3 query.
    #[test]
    fn q_hierarchical_implies_free_connex() {
        let [x, y, z] = vars(["gy_X5", "gy_Y5", "gy_Z5"]);
        let q = Query::new(
            "gy_q5",
            [y, x, z],
            vec![
                Atom::new(sym("gy_R5"), [y, x]),
                Atom::new(sym("gy_S5"), [y, z]),
            ],
        );
        assert!(crate::hierarchy::is_q_hierarchical(&q));
        assert!(is_free_connex(&q));
    }

    #[test]
    fn duplicate_edges_reduce() {
        let [a, b] = vars(["gy_A6", "gy_B6"]);
        let edges = vec![Schema::from([a, b]), Schema::from([a, b])];
        assert!(gyo_acyclic(&edges));
    }

    #[test]
    fn loomis_whitney_4_is_cyclic() {
        let [a, b, c, d] = vars(["gy_A7", "gy_B7", "gy_C7", "gy_D7"]);
        let edges = vec![
            Schema::from([a, b, c]),
            Schema::from([a, b, d]),
            Schema::from([a, c, d]),
            Schema::from([b, c, d]),
        ];
        assert!(!gyo_acyclic(&edges));
    }
}
