//! Functional dependencies and the Σ-reduct (Sec. 4.4, Def. 4.9).
//!
//! Databases in practice satisfy integrity constraints, and non-hierarchical
//! queries may *behave* hierarchically over such databases. The Σ-reduct
//! extends every atom schema (and the free variables) with their closure
//! under a set Σ of functional dependencies; if the reduct is
//! q-hierarchical, the original query admits the best possible maintenance
//! (Theorem 4.11).

use crate::ast::{Atom, Query};
use crate::hierarchy::is_q_hierarchical;
use ivm_data::Schema;

/// A functional dependency `lhs → rhs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fd {
    /// Determinant variables.
    pub lhs: Schema,
    /// Determined variables.
    pub rhs: Schema,
}

impl Fd {
    /// `lhs → rhs` with single variables.
    pub fn new(lhs: impl Into<Schema>, rhs: impl Into<Schema>) -> Self {
        Fd {
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }
}

/// The closure `C_Σ(S)` of a variable set under a set of FDs: the least
/// fixpoint of applying every dependency whose determinant is contained in
/// the set.
pub fn closure(sigma: &[Fd], s: &Schema) -> Schema {
    let mut acc = s.clone();
    loop {
        let mut grown = false;
        for fd in sigma {
            if fd.lhs.subset_of(&acc) && !fd.rhs.subset_of(&acc) {
                acc = acc.union(&fd.rhs);
                grown = true;
            }
        }
        if !grown {
            return acc;
        }
    }
}

/// The Σ-reduct of a query (Def. 4.9): each atom schema and the free
/// variable set are replaced by their closure under Σ (restricted to the
/// query's variables, which closures cannot leave anyway since FDs only
/// mention query variables in practice).
pub fn sigma_reduct(q: &Query, sigma: &[Fd]) -> Query {
    let atoms = q
        .atoms
        .iter()
        .map(|a| Atom {
            name: a.name,
            schema: closure(sigma, &a.schema),
            dynamic: a.dynamic,
        })
        .collect();
    Query {
        name: ivm_data::sym(&format!("{}_reduct", q.name)),
        free: closure(sigma, &q.free),
        input: q.input.clone(),
        atoms,
    }
}

/// Theorem 4.11 precondition: the query's Σ-reduct is q-hierarchical, so
/// the original query can be maintained with O(|D|) preprocessing, O(1)
/// update, and O(1) delay over databases satisfying Σ.
pub fn reduct_is_q_hierarchical(q: &Query, sigma: &[Fd]) -> bool {
    is_q_hierarchical(&sigma_reduct(q, sigma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::is_hierarchical;
    use ivm_data::{sym, vars};

    #[test]
    fn closure_fixpoint() {
        // Σ = {A → C; BC → D}; C_Σ({A, B}) = {A, B, C, D} (paper example).
        let [a, b, c, d] = vars(["fd_A", "fd_B", "fd_C", "fd_D"]);
        let sigma = vec![Fd::new([a], [c]), Fd::new([b, c], [d])];
        let cl = closure(&sigma, &Schema::from([a, b]));
        assert_eq!(cl, Schema::from([a, b, c, d]));
    }

    #[test]
    fn closure_is_monotone_and_idempotent() {
        let [a, b, c] = vars(["fd_A2", "fd_B2", "fd_C2"]);
        let sigma = vec![Fd::new([a], [b]), Fd::new([b], [c])];
        let s = Schema::from([a]);
        let cl = closure(&sigma, &s);
        assert!(s.subset_of(&cl));
        assert_eq!(closure(&sigma, &cl), cl);
    }

    /// Ex 4.12: Q(Z,Y,X,W) = R(X,W)·S(X,Y)·T(Y,Z) with Σ = {X→Y, Y→Z} is
    /// non-hierarchical, but its Σ-reduct is q-hierarchical.
    #[test]
    fn example_4_12_chain() {
        let [w, x, y, z] = vars(["fd_W3", "fd_X3", "fd_Y3", "fd_Z3"]);
        let q = Query::new(
            "fd_q3",
            [z, y, x, w],
            vec![
                Atom::new(sym("fd_R3"), [x, w]),
                Atom::new(sym("fd_S3"), [x, y]),
                Atom::new(sym("fd_T3"), [y, z]),
            ],
        );
        assert!(!is_hierarchical(&q));
        let sigma = vec![Fd::new([x], [y]), Fd::new([y], [z])];
        let reduct = sigma_reduct(&q, &sigma);
        // R'(X,W,Y,Z), S'(X,Y,Z), T'(Y,Z): hierarchical with X on top.
        assert!(is_hierarchical(&reduct));
        assert!(is_q_hierarchical(&reduct));
        assert!(reduct_is_q_hierarchical(&q, &sigma));
    }

    /// Ex 4.10: the Retailer join is non-hierarchical, but the FD
    /// `zip → locn` makes the reduct hierarchical.
    #[test]
    fn example_4_10_retailer() {
        let [locn, dateid, ksn, zip] = vars(["fd_locn", "fd_dateid", "fd_ksn", "fd_zip"]);
        let q = Query::new(
            "fd_retailer",
            [],
            vec![
                Atom::new(sym("fd_Inventory"), [locn, dateid, ksn]),
                Atom::new(sym("fd_Weather"), [locn, dateid]),
                Atom::new(sym("fd_Location"), [locn, zip]),
                Atom::new(sym("fd_Census"), [zip]),
            ],
        );
        assert!(!is_hierarchical(&q));
        let sigma = vec![Fd::new([zip], [locn])];
        assert!(is_hierarchical(&sigma_reduct(&q, &sigma)));
    }

    /// Without the FD the reduct is the query itself.
    #[test]
    fn empty_sigma_reduct_is_identity_modulo_name() {
        let [a, b] = vars(["fd_A4", "fd_B4"]);
        let q = Query::new("fd_q4", [a], vec![Atom::new(sym("fd_R4"), [a, b])]);
        let r = sigma_reduct(&q, &[]);
        assert_eq!(r.free, q.free);
        assert_eq!(r.atoms[0].schema, q.atoms[0].schema);
    }

    /// Built-in predicate example from Sec. 4.4: A + B = C yields the FDs
    /// AB → C, AC → B, BC → A; the closure of any two is all three.
    #[test]
    fn arithmetic_fd_closure() {
        let [a, b, c] = vars(["fd_A5", "fd_B5", "fd_C5"]);
        let sigma = vec![
            Fd::new([a, b], [c]),
            Fd::new([a, c], [b]),
            Fd::new([b, c], [a]),
        ];
        assert_eq!(
            closure(&sigma, &Schema::from([a, b])),
            Schema::from([a, b, c])
        );
        assert_eq!(
            closure(&sigma, &Schema::from([b, c])),
            Schema::from([b, c, a])
        );
        assert_eq!(closure(&sigma, &Schema::from([a])), Schema::from([a]));
    }
}
