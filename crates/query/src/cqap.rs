//! Conjunctive queries with free access patterns (Sec. 4.3): the fracture
//! construction (Def. 4.7) and the tractability dichotomy (Theorem 4.8).
//!
//! A CQAP `Q(O | I)` returns tuples over the output variables `O` given a
//! binding of the input variables `I`. The *fracture* `Q†` splits the query
//! at its input variables: each occurrence of an input variable becomes a
//! fresh variable, connected components are computed, and within each
//! component the fresh copies of one input variable are re-unified. `Q` is
//! tractable iff `Q†` is hierarchical, free-dominant, and input-dominant.

use crate::ast::{Atom, Query};
use crate::hierarchy::{is_free_dominant, is_hierarchical, is_input_dominant};
use ivm_data::{sym, FxHashMap, Schema, Sym};

/// The fracture `Q†` of a CQAP, together with the mapping from fresh
/// input-variable copies back to the original input variables.
#[derive(Clone, Debug)]
pub struct Fracture {
    /// The fractured query. Its atoms are partitioned into connected
    /// components; `component[i]` is the component id of atom `i`.
    pub query: Query,
    /// Component id per atom (indices align with `query.atoms`).
    pub component: Vec<usize>,
    /// For each fresh variable in the fracture, the original variable it
    /// replaces (identity for non-input variables).
    pub origin: FxHashMap<Sym, Sym>,
}

/// Compute the fracture of a CQAP (Def. 4.7).
pub fn fracture(q: &Query) -> Fracture {
    // Step 1: replace each *occurrence* of an input variable by a fresh
    // variable (one per atom occurrence).
    let mut occ_atoms: Vec<Vec<Sym>> = Vec::with_capacity(q.atoms.len());
    let mut origin: FxHashMap<Sym, Sym> = FxHashMap::default();
    for (i, atom) in q.atoms.iter().enumerate() {
        let mut schema = Vec::new();
        for &v in atom.schema.vars() {
            if q.is_input(v) {
                let fresh = sym(&format!("{}#{}@{}", v, q.name, i));
                origin.insert(fresh, v);
                schema.push(fresh);
            } else {
                origin.insert(v, v);
                schema.push(v);
            }
        }
        occ_atoms.push(schema);
    }

    // Step 2: connected components of the modified query (atoms share a
    // non-fresh variable; fresh variables are singletons per occurrence so
    // they never connect atoms).
    let n = occ_atoms.len();
    let mut comp: Vec<usize> = (0..n).collect();
    fn find(comp: &mut Vec<usize>, i: usize) -> usize {
        if comp[i] != i {
            let r = find(comp, comp[i]);
            comp[i] = r;
        }
        comp[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            let shared = occ_atoms[i].iter().any(|v| occ_atoms[j].contains(v));
            if shared {
                let (ri, rj) = (find(&mut comp, i), find(&mut comp, j));
                if ri != rj {
                    comp[ri] = rj;
                }
            }
        }
    }
    let mut roots: Vec<usize> = Vec::new();
    let mut component = vec![0usize; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let r = find(&mut comp, i);
        let id = match roots.iter().position(|&x| x == r) {
            Some(p) => p,
            None => {
                roots.push(r);
                roots.len() - 1
            }
        };
        component[i] = id;
    }

    // Step 3: within each component, re-unify the fresh copies of each
    // original input variable into one fresh input variable.
    let mut unified: FxHashMap<(usize, Sym), Sym> = FxHashMap::default();
    let mut final_origin: FxHashMap<Sym, Sym> = FxHashMap::default();
    let mut atoms = Vec::with_capacity(n);
    for (i, schema) in occ_atoms.iter().enumerate() {
        let cid = component[i];
        let mut vars = Vec::with_capacity(schema.len());
        for &v in schema {
            let orig = origin[&v];
            let out = if q.is_input(orig) {
                *unified
                    .entry((cid, orig))
                    .or_insert_with(|| sym(&format!("{}†{}@{}", orig, q.name, cid)))
            } else {
                v
            };
            final_origin.insert(out, orig);
            vars.push(out);
        }
        // Re-unification can create duplicate variables within one atom
        // (two occurrences of the same input variable in one atom); schemas
        // are sets, so deduplicate.
        let mut dedup: Vec<Sym> = Vec::with_capacity(vars.len());
        for v in vars {
            if !dedup.contains(&v) {
                dedup.push(v);
            }
        }
        atoms.push(Atom {
            name: q.atoms[i].name,
            schema: Schema::new(dedup),
            dynamic: q.atoms[i].dynamic,
        });
    }

    // Free variables of the fracture: original output variables plus every
    // per-component input variable (all inputs stay free and input).
    let mut free: Vec<Sym> = q.output().vars().to_vec();
    let mut input: Vec<Sym> = Vec::new();
    for atom in &atoms {
        for &v in atom.schema.vars() {
            if q.is_input(final_origin[&v]) && !input.contains(&v) {
                input.push(v);
                free.push(v);
            }
        }
    }

    let query = Query {
        name: sym(&format!("{}†", q.name)),
        free: Schema::new(free),
        input: Schema::new(input),
        atoms,
    };
    Fracture {
        query,
        component,
        origin: final_origin,
    }
}

/// Theorem 4.8: a CQAP is tractable iff its fracture is hierarchical,
/// free-dominant, and input-dominant.
pub fn is_tractable_cqap(q: &Query) -> bool {
    let f = fracture(q);
    is_hierarchical(&f.query) && is_free_dominant(&f.query) && is_input_dominant(&f.query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::vars;

    /// Ex 4.6: triangle detection Q(·|A,B,C) = E(A,B)·E(B,C)·E(C,A) is a
    /// tractable CQAP — the fracture splits into three components, each a
    /// single binary atom.
    #[test]
    fn triangle_detection_tractable() {
        let [a, b, c] = vars(["cq_A", "cq_B", "cq_C"]);
        let e = sym("cq_E");
        let q = Query::with_access_pattern(
            "cq_tridet",
            [],
            [a, b, c],
            vec![
                Atom::new(e, [a, b]),
                Atom::new(e, [b, c]),
                Atom::new(e, [c, a]),
            ],
        );
        let f = fracture(&q);
        // Three disconnected components — all shared variables were inputs.
        assert_eq!(
            f.component
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
        assert!(is_tractable_cqap(&q));
    }

    /// Ex 4.6: edge triangle listing Q(C|A,B) is NOT a tractable CQAP.
    #[test]
    fn edge_triangle_listing_not_tractable() {
        let [a, b, c] = vars(["cq_A2", "cq_B2", "cq_C2"]);
        let e = sym("cq_E2");
        let q = Query::with_access_pattern(
            "cq_trilist",
            [c],
            [a, b],
            vec![
                Atom::new(e, [a, b]),
                Atom::new(e, [b, c]),
                Atom::new(e, [c, a]),
            ],
        );
        // C connects E(B,C) and E(C,A) into one component; the fracture
        // stays cyclic/non-hierarchical.
        assert!(!is_tractable_cqap(&q));
    }

    /// Ex 4.6: Q(A|B) = S(A,B)·T(B) is tractable.
    #[test]
    fn lookup_join_tractable() {
        let [a, b] = vars(["cq_A3", "cq_B3"]);
        let q = Query::with_access_pattern(
            "cq_lookup",
            [a],
            [b],
            vec![
                Atom::new(sym("cq_S3"), [a, b]),
                Atom::new(sym("cq_T3"), [b]),
            ],
        );
        assert!(is_tractable_cqap(&q));
    }

    /// A CQAP with no input variables is tractable iff q-hierarchical
    /// (Sec. 4.3: "q-hierarchical queries are the tractable CQAPs without
    /// input variables").
    #[test]
    fn no_input_reduces_to_q_hierarchical() {
        let [x, y, z] = vars(["cq_X4", "cq_Y4", "cq_Z4"]);
        let qh = Query::new(
            "cq_qh",
            [y, x, z],
            vec![
                Atom::new(sym("cq_R4"), [y, x]),
                Atom::new(sym("cq_S4"), [y, z]),
            ],
        );
        assert!(is_tractable_cqap(&qh));
        assert!(crate::hierarchy::is_q_hierarchical(&qh));

        let not_qh = Query::new(
            "cq_nqh",
            [x],
            vec![
                Atom::new(sym("cq_R5"), [x, y]),
                Atom::new(sym("cq_S5"), [y]),
            ],
        );
        assert!(!is_tractable_cqap(&not_qh));
    }

    /// Fracturing the non-hierarchical Q(X) = Σ_Y R(X,Y)·S(Y) at input X
    /// makes it tractable: Q(·|X) with X input is fine because the fracture
    /// is still connected through Y but X's copy is input-dominant.
    #[test]
    fn fracture_preserves_non_input_connectivity() {
        let [x, y] = vars(["cq_X6", "cq_Y6"]);
        let q = Query::with_access_pattern(
            "cq_q6",
            [],
            [x],
            vec![
                Atom::new(sym("cq_R6"), [x, y]),
                Atom::new(sym("cq_S6"), [y]),
            ],
        );
        let f = fracture(&q);
        // Single component: R and S share the non-input Y.
        assert!(f.component.iter().all(|&c| c == 0));
        // atoms(Y) = {R,S} ⊃ atoms(X') = {R}: Y dominates X'. X' is input
        // and Y is not, violating input-dominance... but X' is also free
        // while Y is bound, violating free-dominance first.
        assert!(!is_tractable_cqap(&q));
    }

    /// Fresh variables are deterministic: fracturing twice gives equal
    /// structures.
    #[test]
    fn fracture_deterministic() {
        let [a, b] = vars(["cq_A7", "cq_B7"]);
        let q =
            Query::with_access_pattern("cq_q7", [a], [b], vec![Atom::new(sym("cq_S7"), [a, b])]);
        let f1 = fracture(&q);
        let f2 = fracture(&q);
        assert_eq!(f1.query, f2.query);
    }
}
