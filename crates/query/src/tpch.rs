//! The TPC-H classification study of Sec. 4.4.
//!
//! The paper reports (citing the SPROUT study \[35\]): of the 22 TPC-H
//! queries, 8 Boolean and 13 non-Boolean versions are hierarchical; the
//! functional dependencies of the TPC-H schema make 4 more of each
//! hierarchical. This module encodes the *join structure* of all 22
//! queries (equi-join graphs over the TPC-H schema, selections elided,
//! nested aggregates flattened into their correlating join) plus the
//! schema's key FDs, so the classifier can be run over the whole workload.
//!
//! The encoding necessarily simplifies (outer joins become joins, NOT
//! EXISTS subqueries are dropped), so measured counts can differ slightly
//! from \[35\]; EXPERIMENTS.md records measured vs. paper.

use crate::ast::{Atom, Query};
use crate::fd::Fd;
use ivm_data::{sym, Schema, Sym};

/// Variable vocabulary shared by all query encodings.
#[allow(missing_docs)]
pub struct Vars {
    pub ok: Sym,    // order key
    pub pk: Sym,    // part key
    pub sk: Sym,    // supplier key
    pub ck: Sym,    // customer key
    pub lk: Sym,    // line number
    pub nk_s: Sym,  // supplier's nation
    pub nk_c: Sym,  // customer's nation
    pub rk: Sym,    // region key
    pub odate: Sym, // order date
    pub opri: Sym,  // order priority
    pub sdate: Sym, // ship date
    pub rf: Sym,    // return flag
    pub ls: Sym,    // line status
    pub qty: Sym,
    pub price: Sym,
    pub disc: Sym,
    pub p_type: Sym,
    pub p_brand: Sym,
    pub p_size: Sym,
    pub ps_cost: Sym,
    pub s_name: Sym,
    pub c_name: Sym,
    pub n_name_s: Sym,
    pub n_name_c: Sym,
    pub r_name: Sym,
    pub c_phone: Sym,
    pub c_acct: Sym,
    pub ship_pri: Sym,
    pub smode: Sym,
}

/// The shared variable vocabulary.
pub fn tpch_vars() -> Vars {
    Vars {
        ok: sym("th_ok"),
        pk: sym("th_pk"),
        sk: sym("th_sk"),
        ck: sym("th_ck"),
        lk: sym("th_lk"),
        nk_s: sym("th_nk_s"),
        nk_c: sym("th_nk_c"),
        rk: sym("th_rk"),
        odate: sym("th_odate"),
        opri: sym("th_opri"),
        sdate: sym("th_sdate"),
        rf: sym("th_rf"),
        ls: sym("th_ls"),
        qty: sym("th_qty"),
        price: sym("th_price"),
        disc: sym("th_disc"),
        p_type: sym("th_p_type"),
        p_brand: sym("th_p_brand"),
        p_size: sym("th_p_size"),
        ps_cost: sym("th_ps_cost"),
        s_name: sym("th_s_name"),
        c_name: sym("th_c_name"),
        n_name_s: sym("th_n_name_s"),
        n_name_c: sym("th_n_name_c"),
        r_name: sym("th_r_name"),
        c_phone: sym("th_c_phone"),
        c_acct: sym("th_c_acct"),
        ship_pri: sym("th_ship_pri"),
        smode: sym("th_smode"),
    }
}

/// The key FDs of the TPC-H schema, expressed over [`tpch_vars`]:
/// each table's primary key determines its attributes (including the
/// foreign keys it carries).
pub fn tpch_fds() -> Vec<Fd> {
    let v = tpch_vars();
    vec![
        // orders: ok → customer, date, priority, ship priority
        Fd::new([v.ok], [v.ck]),
        Fd::new([v.ok], [v.odate]),
        Fd::new([v.ok], [v.opri]),
        Fd::new([v.ok], [v.ship_pri]),
        // lineitem: (ok, lk) → everything on the line
        Fd::new(Schema::from([v.ok, v.lk]), [v.pk]),
        Fd::new(Schema::from([v.ok, v.lk]), [v.sk]),
        Fd::new(Schema::from([v.ok, v.lk]), [v.qty]),
        Fd::new(Schema::from([v.ok, v.lk]), [v.price]),
        Fd::new(Schema::from([v.ok, v.lk]), [v.disc]),
        Fd::new(Schema::from([v.ok, v.lk]), [v.sdate]),
        Fd::new(Schema::from([v.ok, v.lk]), [v.rf]),
        Fd::new(Schema::from([v.ok, v.lk]), [v.ls]),
        Fd::new(Schema::from([v.ok, v.lk]), [v.smode]),
        // customer: ck → nation, name, phone, balance
        Fd::new([v.ck], [v.nk_c]),
        Fd::new([v.ck], [v.c_name]),
        Fd::new([v.ck], [v.c_phone]),
        Fd::new([v.ck], [v.c_acct]),
        // supplier: sk → nation, name
        Fd::new([v.sk], [v.nk_s]),
        Fd::new([v.sk], [v.s_name]),
        // nation (both roles): nk → region, name
        Fd::new([v.nk_s], [v.rk]),
        Fd::new([v.nk_s], [v.n_name_s]),
        Fd::new([v.nk_c], [v.rk]),
        Fd::new([v.nk_c], [v.n_name_c]),
        // part: pk → type, brand, size
        Fd::new([v.pk], [v.p_type]),
        Fd::new([v.pk], [v.p_brand]),
        Fd::new([v.pk], [v.p_size]),
        // partsupp: (pk, sk) → supply cost
        Fd::new(Schema::from([v.pk, v.sk]), [v.ps_cost]),
    ]
}

fn q(name: &str, free: Vec<Sym>, atoms: Vec<Atom>) -> Query {
    Query {
        name: sym(name),
        free: Schema::new(free),
        input: Schema::empty(),
        atoms,
    }
}

/// The 22 TPC-H queries as (name, non-Boolean version) pairs; the Boolean
/// version of a query is the same body with an empty head.
pub fn tpch_queries() -> Vec<(String, Query)> {
    let v = tpch_vars();
    // Table atoms, parameterized by the attributes each query touches.
    let li = |extra: &[Sym]| {
        let mut s = vec![v.ok, v.lk, v.pk, v.sk];
        s.extend_from_slice(extra);
        Atom::new(sym("th_lineitem"), Schema::new(s))
    };
    let ord = |extra: &[Sym]| {
        let mut s = vec![v.ok, v.ck];
        s.extend_from_slice(extra);
        Atom::new(sym("th_orders"), Schema::new(s))
    };
    let cust = |extra: &[Sym]| {
        let mut s = vec![v.ck, v.nk_c];
        s.extend_from_slice(extra);
        Atom::new(sym("th_customer"), Schema::new(s))
    };
    let supp = |extra: &[Sym]| {
        let mut s = vec![v.sk, v.nk_s];
        s.extend_from_slice(extra);
        Atom::new(sym("th_supplier"), Schema::new(s))
    };
    let part = |extra: &[Sym]| {
        let mut s = vec![v.pk];
        s.extend_from_slice(extra);
        Atom::new(sym("th_part"), Schema::new(s))
    };
    let psupp = |extra: &[Sym]| {
        let mut s = vec![v.pk, v.sk];
        s.extend_from_slice(extra);
        Atom::new(sym("th_partsupp"), Schema::new(s))
    };
    let nat_s = |extra: &[Sym]| {
        let mut s = vec![v.nk_s, v.rk];
        s.extend_from_slice(extra);
        Atom::new(sym("th_nation_s"), Schema::new(s))
    };
    let nat_c = |extra: &[Sym]| {
        let mut s = vec![v.nk_c, v.rk];
        s.extend_from_slice(extra);
        Atom::new(sym("th_nation_c"), Schema::new(s))
    };
    let reg = || Atom::new(sym("th_region"), Schema::new(vec![v.rk, v.r_name]));

    vec![
        // Q1: pricing summary — lineitem only.
        (
            "Q1".into(),
            q(
                "th_Q1",
                vec![v.rf, v.ls],
                vec![li(&[v.rf, v.ls, v.qty, v.price, v.disc])],
            ),
        ),
        // Q2: minimum-cost supplier.
        (
            "Q2".into(),
            q(
                "th_Q2",
                vec![v.s_name, v.pk],
                vec![
                    part(&[v.p_size, v.p_type]),
                    psupp(&[v.ps_cost]),
                    supp(&[v.s_name]),
                    nat_s(&[v.n_name_s]),
                    reg(),
                ],
            ),
        ),
        // Q3: shipping priority.
        (
            "Q3".into(),
            q(
                "th_Q3",
                vec![v.ok, v.odate, v.ship_pri],
                vec![
                    cust(&[]),
                    ord(&[v.odate, v.ship_pri]),
                    li(&[v.price, v.disc, v.sdate]),
                ],
            ),
        ),
        // Q4: order priority checking (EXISTS lineitem).
        (
            "Q4".into(),
            q(
                "th_Q4",
                vec![v.opri],
                vec![ord(&[v.odate, v.opri]), li(&[])],
            ),
        ),
        // Q5: local supplier volume (customer and supplier share nation).
        (
            "Q5".into(),
            q(
                "th_Q5",
                vec![v.n_name_s],
                vec![
                    cust(&[]),
                    ord(&[v.odate]),
                    // join condition c_nationkey = s_nationkey: share nk.
                    Atom::new(
                        sym("th_lineitem"),
                        Schema::new(vec![v.ok, v.lk, v.pk, v.sk, v.price, v.disc]),
                    ),
                    {
                        // supplier with s_nk = c_nk: encode both via nk_c.
                        Atom::new(sym("th_supplier"), Schema::new(vec![v.sk, v.nk_c]))
                    },
                    {
                        Atom::new(
                            sym("th_nation_s"),
                            Schema::new(vec![v.nk_c, v.rk, v.n_name_s]),
                        )
                    },
                    reg(),
                ],
            ),
        ),
        // Q6: forecasting revenue — lineitem only.
        (
            "Q6".into(),
            q(
                "th_Q6",
                vec![],
                vec![li(&[v.qty, v.price, v.disc, v.sdate])],
            ),
        ),
        // Q7: volume shipping (two nation roles).
        (
            "Q7".into(),
            q(
                "th_Q7",
                vec![v.n_name_s, v.n_name_c],
                vec![
                    supp(&[]),
                    li(&[v.price, v.disc, v.sdate]),
                    ord(&[]),
                    cust(&[]),
                    Atom::new(sym("th_nation_s"), Schema::new(vec![v.nk_s, v.n_name_s])),
                    Atom::new(sym("th_nation_c"), Schema::new(vec![v.nk_c, v.n_name_c])),
                ],
            ),
        ),
        // Q8: national market share.
        (
            "Q8".into(),
            q(
                "th_Q8",
                vec![v.odate],
                vec![
                    part(&[v.p_type]),
                    li(&[v.price, v.disc]),
                    supp(&[]),
                    ord(&[v.odate]),
                    cust(&[]),
                    Atom::new(sym("th_nation_c"), Schema::new(vec![v.nk_c, v.rk])),
                    Atom::new(sym("th_nation_s"), Schema::new(vec![v.nk_s, v.n_name_s])),
                    reg(),
                ],
            ),
        ),
        // Q9: product type profit.
        (
            "Q9".into(),
            q(
                "th_Q9",
                vec![v.n_name_s, v.odate],
                vec![
                    part(&[v.p_type]),
                    psupp(&[v.ps_cost]),
                    li(&[v.qty, v.price, v.disc]),
                    supp(&[]),
                    ord(&[v.odate]),
                    nat_s(&[v.n_name_s]),
                ],
            ),
        ),
        // Q10: returned items.
        (
            "Q10".into(),
            q(
                "th_Q10",
                vec![v.ck, v.c_name],
                vec![
                    cust(&[v.c_name, v.c_acct, v.c_phone]),
                    ord(&[v.odate]),
                    li(&[v.price, v.disc, v.rf]),
                    nat_c(&[v.n_name_c]),
                ],
            ),
        ),
        // Q11: important stock.
        (
            "Q11".into(),
            q(
                "th_Q11",
                vec![v.pk],
                vec![psupp(&[v.ps_cost, v.qty]), supp(&[]), nat_s(&[v.n_name_s])],
            ),
        ),
        // Q12: shipping modes.
        (
            "Q12".into(),
            q(
                "th_Q12",
                vec![v.smode],
                vec![ord(&[v.opri]), li(&[v.smode, v.sdate])],
            ),
        ),
        // Q13: customer distribution (outer join flattened).
        (
            "Q13".into(),
            q("th_Q13", vec![v.ck], vec![cust(&[]), ord(&[])]),
        ),
        // Q14: promotion effect.
        (
            "Q14".into(),
            q(
                "th_Q14",
                vec![],
                vec![li(&[v.price, v.disc, v.sdate]), part(&[v.p_type])],
            ),
        ),
        // Q15: top supplier (revenue view flattened).
        (
            "Q15".into(),
            q(
                "th_Q15",
                vec![v.sk, v.s_name],
                vec![supp(&[v.s_name]), li(&[v.price, v.disc, v.sdate])],
            ),
        ),
        // Q16: parts/supplier relationship.
        (
            "Q16".into(),
            q(
                "th_Q16",
                vec![v.p_brand, v.p_type, v.p_size],
                vec![psupp(&[]), part(&[v.p_brand, v.p_type, v.p_size])],
            ),
        ),
        // Q17: small-quantity-order revenue.
        (
            "Q17".into(),
            q(
                "th_Q17",
                vec![],
                vec![li(&[v.qty, v.price]), part(&[v.p_brand])],
            ),
        ),
        // Q18: large volume customers.
        (
            "Q18".into(),
            q(
                "th_Q18",
                vec![v.c_name, v.ck, v.ok, v.odate],
                vec![cust(&[v.c_name]), ord(&[v.odate]), li(&[v.qty])],
            ),
        ),
        // Q19: discounted revenue.
        (
            "Q19".into(),
            q(
                "th_Q19",
                vec![],
                vec![li(&[v.qty, v.price, v.disc]), part(&[v.p_brand, v.p_size])],
            ),
        ),
        // Q20: potential part promotion.
        (
            "Q20".into(),
            q(
                "th_Q20",
                vec![v.s_name],
                vec![
                    supp(&[v.s_name]),
                    nat_s(&[v.n_name_s]),
                    psupp(&[v.qty]),
                    part(&[v.p_brand]),
                ],
            ),
        ),
        // Q21: suppliers who kept orders waiting.
        (
            "Q21".into(),
            q(
                "th_Q21",
                vec![v.s_name],
                vec![supp(&[v.s_name]), li(&[]), ord(&[]), nat_s(&[v.n_name_s])],
            ),
        ),
        // Q22: global sales opportunity.
        (
            "Q22".into(),
            q(
                "th_Q22",
                vec![v.c_phone],
                vec![cust(&[v.c_phone, v.c_acct])],
            ),
        ),
    ]
}

/// Classification of one query under the four regimes the paper compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TpchVerdict {
    /// Boolean version hierarchical, without FDs.
    pub bool_plain: bool,
    /// Boolean version hierarchical under the schema FDs.
    pub bool_fds: bool,
    /// Non-Boolean version q-hierarchical, without FDs.
    pub full_plain: bool,
    /// Non-Boolean version q-hierarchical under the schema FDs.
    pub full_fds: bool,
}

/// Classify a query per the Sec. 4.4 study.
pub fn classify_tpch(query: &Query, fds: &[Fd]) -> TpchVerdict {
    use crate::fd::sigma_reduct;
    use crate::hierarchy::{is_hierarchical, is_q_hierarchical};
    let boolean = Query {
        name: sym(&format!("{}_bool", query.name)),
        free: Schema::empty(),
        input: Schema::empty(),
        atoms: query.atoms.clone(),
    };
    TpchVerdict {
        bool_plain: is_hierarchical(&boolean),
        bool_fds: is_hierarchical(&sigma_reduct(&boolean, fds)),
        full_plain: is_q_hierarchical(query),
        full_fds: is_q_hierarchical(&sigma_reduct(query, fds)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_build() {
        let qs = tpch_queries();
        assert_eq!(qs.len(), 22);
        for (name, q) in &qs {
            assert!(!q.atoms.is_empty(), "{name}");
        }
    }

    /// Single-relation queries are trivially hierarchical in all regimes.
    #[test]
    fn single_atom_queries_hierarchical() {
        let fds = tpch_fds();
        for (name, qq) in tpch_queries() {
            if qq.atoms.len() == 1 {
                let v = classify_tpch(&qq, &fds);
                assert!(v.bool_plain && v.bool_fds, "{name}");
            }
        }
    }

    /// Q3 (customer ⋈ orders ⋈ lineitem) is the textbook FD rescue: not
    /// hierarchical as written, hierarchical under ok → ck.
    #[test]
    fn q3_rescued_by_fds() {
        let fds = tpch_fds();
        let (_, q3) = tpch_queries().into_iter().nth(2).unwrap();
        let v = classify_tpch(&q3, &fds);
        assert!(!v.bool_plain, "Q3 plain must not be hierarchical");
        assert!(v.bool_fds, "Q3 must become hierarchical under FDs");
    }

    /// FDs never *destroy* hierarchy: reducts only merge atom sets upward.
    #[test]
    fn fds_are_monotone_on_this_workload() {
        let fds = tpch_fds();
        for (name, qq) in tpch_queries() {
            let v = classify_tpch(&qq, &fds);
            assert!(!v.bool_plain || v.bool_fds, "{name}: FDs lost hierarchy");
        }
    }

    /// The headline shape of the study: FDs strictly increase the number
    /// of hierarchical queries in both the Boolean and full versions.
    #[test]
    fn fds_rescue_queries() {
        let fds = tpch_fds();
        let mut bool_gain = 0usize;
        let mut full_gain = 0usize;
        for (_, qq) in tpch_queries() {
            let v = classify_tpch(&qq, &fds);
            bool_gain += usize::from(!v.bool_plain && v.bool_fds);
            full_gain += usize::from(!v.full_plain && v.full_fds);
        }
        assert!(
            bool_gain >= 3,
            "expect several Boolean rescues, got {bool_gain}"
        );
        assert!(
            full_gain >= 3,
            "expect several full rescues, got {full_gain}"
        );
    }
}
