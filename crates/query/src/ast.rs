//! Query abstract syntax.
//!
//! The query language of Sec. 2:
//!
//! ```text
//! Q(X1, …, Xf) = Σ_{X_{f+1}} … Σ_{X_m}  Π_{i ∈ [n]} R_i(S_i)
//! ```
//!
//! natural joins with group-by aggregates; conjunctive queries are the case
//! where aggregation is projection. Queries with *free access patterns*
//! (Sec. 4.3) additionally split the free variables into input and output:
//! `Q(O | I)`.

use ivm_data::{Schema, Sym};
use std::fmt;

/// A relational atom `R_i(S_i)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation name.
    pub name: Sym,
    /// Schema (tuple of variables).
    pub schema: Schema,
    /// Whether the relation receives updates (Sec. 4.5). Defaults to `true`;
    /// static relations support the mixed static-dynamic dichotomy.
    pub dynamic: bool,
}

impl Atom {
    /// A dynamic atom.
    pub fn new(name: Sym, schema: impl Into<Schema>) -> Self {
        Atom {
            name,
            schema: schema.into(),
            dynamic: true,
        }
    }

    /// A static atom (never updated).
    pub fn new_static(name: Sym, schema: impl Into<Schema>) -> Self {
        Atom {
            name,
            schema: schema.into(),
            dynamic: false,
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{:?}",
            self.name,
            if self.dynamic { "" } else { "ˢ" },
            self.schema
        )
    }
}

/// A conjunctive query with group-by aggregates and (optionally) an access
/// pattern.
#[derive(Clone, PartialEq, Eq)]
pub struct Query {
    /// Query name, for diagnostics.
    pub name: Sym,
    /// Free (group-by) variables, in output order. For CQAPs this is the
    /// concatenation of output and input variables.
    pub free: Schema,
    /// Input variables (for CQAPs): `input ⊆ free`. Empty for plain queries.
    pub input: Schema,
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl Query {
    /// Build a plain query (no access pattern).
    pub fn new(name: &str, free: impl Into<Schema>, atoms: Vec<Atom>) -> Self {
        let q = Query {
            name: ivm_data::sym(name),
            free: free.into(),
            input: Schema::empty(),
            atoms,
        };
        q.validate();
        q
    }

    /// Build a CQAP `Q(output | input)`.
    pub fn with_access_pattern(
        name: &str,
        output: impl Into<Schema>,
        input: impl Into<Schema>,
        atoms: Vec<Atom>,
    ) -> Self {
        let output = output.into();
        let input = input.into();
        let q = Query {
            name: ivm_data::sym(name),
            free: output.union(&input),
            input,
            atoms,
        };
        q.validate();
        q
    }

    fn validate(&self) {
        assert!(!self.atoms.is_empty(), "query {} has no atoms", self.name);
        let all = self.variables();
        assert!(
            self.free.subset_of(&all),
            "free variables {:?} of {} must occur in some atom {:?}",
            self.free,
            self.name,
            all
        );
        assert!(
            self.input.subset_of(&self.free),
            "input variables must be free"
        );
    }

    /// All variables, in first-occurrence order.
    pub fn variables(&self) -> Schema {
        let mut s = Schema::empty();
        for a in &self.atoms {
            s = s.union(&a.schema);
        }
        s
    }

    /// Bound (aggregated-away) variables.
    pub fn bound(&self) -> Schema {
        self.variables().difference(&self.free)
    }

    /// Output variables (free minus input).
    pub fn output(&self) -> Schema {
        self.free.difference(&self.input)
    }

    /// Whether `v` is free.
    pub fn is_free(&self, v: Sym) -> bool {
        self.free.contains(v)
    }

    /// Whether `v` is an input variable.
    pub fn is_input(&self, v: Sym) -> bool {
        self.input.contains(v)
    }

    /// `atoms(X)`: the indices of atoms whose schema contains `X`, as a
    /// bitmask (queries have far fewer than 64 atoms).
    pub fn atoms_of(&self, v: Sym) -> u64 {
        assert!(self.atoms.len() <= 64, "more than 64 atoms unsupported");
        let mut mask = 0u64;
        for (i, a) in self.atoms.iter().enumerate() {
            if a.schema.contains(v) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Whether the query has no repeated relation symbols.
    pub fn is_self_join_free(&self) -> bool {
        for (i, a) in self.atoms.iter().enumerate() {
            if self.atoms[..i].iter().any(|b| b.name == a.name) {
                return false;
            }
        }
        true
    }

    /// Whether the query is Boolean (no free variables).
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// The atom with the given relation name, if unique.
    pub fn atom(&self, name: Sym) -> Option<&Atom> {
        let mut found = None;
        for a in &self.atoms {
            if a.name == name {
                if found.is_some() {
                    return None;
                }
                found = Some(a);
            }
        }
        found
    }

    /// Indices of dynamic atoms.
    pub fn dynamic_atoms(&self) -> Vec<usize> {
        (0..self.atoms.len())
            .filter(|&i| self.atoms[i].dynamic)
            .collect()
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        let out = self.output();
        for (i, v) in out.vars().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if !self.input.is_empty() {
            write!(f, " | ")?;
            for (i, v) in self.input.vars().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
        }
        write!(f, ") = ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " · ")?;
            }
            write!(f, "{a:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivm_data::vars;

    #[test]
    fn variables_and_bound() {
        let [a, b, c] = vars(["ast_A", "ast_B", "ast_C"]);
        let q = Query::new(
            "ast_q1",
            [a],
            vec![
                Atom::new(ivm_data::sym("ast_R"), [a, b]),
                Atom::new(ivm_data::sym("ast_S"), [b, c]),
            ],
        );
        assert_eq!(q.variables(), Schema::from([a, b, c]));
        assert_eq!(q.bound(), Schema::from([b, c]));
        assert!(q.is_free(a));
        assert!(!q.is_free(b));
    }

    #[test]
    fn atoms_of_bitmask() {
        let [a, b] = vars(["ast_A2", "ast_B2"]);
        let q = Query::new(
            "ast_q2",
            [a, b],
            vec![
                Atom::new(ivm_data::sym("ast_R2"), [a, b]),
                Atom::new(ivm_data::sym("ast_S2"), [b]),
            ],
        );
        assert_eq!(q.atoms_of(a), 0b01);
        assert_eq!(q.atoms_of(b), 0b11);
    }

    #[test]
    fn self_join_detection() {
        let [a, b, c] = vars(["ast_A3", "ast_B3", "ast_C3"]);
        let e = ivm_data::sym("ast_E");
        let q = Query::new(
            "ast_tri",
            [],
            vec![
                Atom::new(e, [a, b]),
                Atom::new(e, [b, c]),
                Atom::new(e, [c, a]),
            ],
        );
        assert!(!q.is_self_join_free());
        assert!(q.is_boolean());
    }

    #[test]
    fn access_pattern_split() {
        let [a, b] = vars(["ast_A4", "ast_B4"]);
        let q = Query::with_access_pattern(
            "ast_cqap",
            [a],
            [b],
            vec![Atom::new(ivm_data::sym("ast_S4"), [a, b])],
        );
        assert_eq!(q.output(), Schema::from([a]));
        assert_eq!(q.input, Schema::from([b]));
        assert_eq!(q.free, Schema::from([a, b]));
    }

    #[test]
    #[should_panic(expected = "must occur in some atom")]
    fn free_var_must_occur() {
        let [a, z] = vars(["ast_A5", "ast_Z5"]);
        Query::new(
            "ast_bad",
            [z],
            vec![Atom::new(ivm_data::sym("ast_R5"), [a])],
        );
    }
}
